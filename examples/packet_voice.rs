//! Packetized voice over the controlled window protocol — the paper's
//! motivating application [Cohen 77].
//!
//! A population of talkers alternates talkspurts and silences; during a
//! talkspurt a station emits one voice packet every packetization
//! interval. A packet that misses its playout deadline is worthless, so
//! the right metric is the fraction delivered in time — exactly what the
//! controlled protocol maximizes. The example compares the controlled
//! protocol against the uncontrolled FCFS variant on identical traffic.
//!
//! ```sh
//! cargo run --release --example packet_voice
//! ```

use tcw_mac::traffic::{VoiceConfig, VoiceSource};
use tcw_mac::ChannelConfig;
use tcw_sim::time::{Dur, Time};
use tcw_window::analysis::optimal_window;
use tcw_window::engine::{Engine, EngineConfig};
use tcw_window::metrics::MeasureConfig;
use tcw_window::policy::ControlPolicy;
use tcw_window::trace::NoopObserver;

fn run(
    policy: ControlPolicy,
    channel: ChannelConfig,
    voice: VoiceConfig,
    k: Dur,
) -> (f64, f64, u64, f64) {
    let measure = MeasureConfig {
        start: Time::from_ticks(400_000),
        end: Time::from_ticks(30_000_000),
        deadline: k,
    };
    let mut engine = Engine::new(
        EngineConfig {
            channel,
            policy,
            measure,
            seed: 23,
        },
        VoiceSource::new(voice),
    );
    engine.run_until(Time::from_ticks(33_000_000), &mut NoopObserver);
    engine.drain(&mut NoopObserver);
    let p99 = engine.metrics.true_delay_p99().unwrap_or(0.0) / channel.ticks_per_tau as f64;
    (
        engine.metrics.loss_fraction(),
        engine.metrics.loss_ci95(),
        engine.metrics.offered(),
        p99,
    )
}

fn main() {
    let channel = ChannelConfig {
        ticks_per_tau: 64,
        message_slots: 25, // one voice packet = 25 tau on the channel
        guard: false,
    };
    let tpt = channel.ticks_per_tau;

    // 24 talkers, ~40% activity, one packet every 400 tau while talking:
    // offered load rho' = 0.4 * 24 / 400 * M = 0.6.
    let voice = VoiceConfig {
        stations: 24,
        mean_talkspurt: Dur::from_ticks(64_000), // 1000 tau
        mean_silence: Dur::from_ticks(96_000),   // 1500 tau
        packet_interval: Dur::from_ticks(400 * tpt),
    };
    let lambda_per_tau = voice.aggregate_rate() * tpt as f64;
    let load = lambda_per_tau * channel.message_slots as f64;
    let w = Dur::from_ticks((optimal_window(lambda_per_tau) * tpt as f64) as u64);

    println!("packetized voice over the shared channel");
    println!(
        "  {} talkers, activity {:.2}, offered load rho' = {:.2}",
        voice.stations,
        voice.activity(),
        load
    );
    println!("  (traffic is bursty on/off — a deliberate stress of the Poisson assumption)");
    println!();
    println!(
        "  {:>14} {:>22} {:>22} {:>14}",
        "deadline K", "controlled loss", "uncontrolled FCFS loss", "ctl p99 delay"
    );
    for k_tau in [50u64, 75, 100, 150, 250] {
        let k = Dur::from_ticks(k_tau * tpt);
        let (c_loss, c_ci, n, c_p99) = run(ControlPolicy::controlled(k, w), channel, voice, k);
        let (f_loss, f_ci, _, _) = run(ControlPolicy::fcfs(w), channel, voice, k);
        println!(
            "  {:>10} tau {:>15.4} ±{:.4} {:>15.4} ±{:.4} {:>10.0} tau   ({n} packets)",
            k_tau, c_loss, c_ci, f_loss, f_ci, c_p99
        );
    }
    println!();
    println!("Interpretation: at voice-like deadlines the controlled protocol");
    println!("delivers a usable stream where the uncontrolled protocol wastes");
    println!("channel time on packets that will be discarded at playout.");
}
