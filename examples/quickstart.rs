//! Quickstart: run the controlled time-window protocol on a shared
//! channel and compare the measured loss with the paper's analytic model.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tcw_mac::ChannelConfig;
use tcw_queueing::marching::{controlled_curve, PanelConfig};
use tcw_queueing::service::SchedulingShape;
use tcw_sim::time::{Dur, Time};
use tcw_window::analysis::optimal_window;
use tcw_window::engine::poisson_engine;
use tcw_window::metrics::MeasureConfig;
use tcw_window::policy::ControlPolicy;
use tcw_window::trace::NoopObserver;

fn main() {
    // --- the scenario -----------------------------------------------------
    // A broadcast channel with propagation delay tau; fixed-length messages
    // of M = 25 tau; offered load rho' = 0.6; a hard delivery deadline of
    // K = 75 tau (e.g. a packetized-voice playout deadline).
    let m = 25u64;
    let rho_prime = 0.6;
    let k_tau = 75u64;

    let channel = ChannelConfig {
        ticks_per_tau: 64,
        message_slots: m,
        guard: false,
    };
    let lambda = rho_prime / m as f64; // messages per tau

    // Policy element (2): the heuristic window length of §4.1.
    let w_tau = optimal_window(lambda);
    let w = Dur::from_ticks((w_tau * channel.ticks_per_tau as f64) as u64);
    let k = Dur::from_ticks(k_tau * channel.ticks_per_tau);

    // Elements (1), (3), (4): the Theorem-1 optimal controlled policy.
    let policy = ControlPolicy::controlled(k, w);

    // --- simulate ----------------------------------------------------------
    let measure = MeasureConfig {
        start: Time::from_ticks(500_000),
        end: Time::from_ticks(60_000_000),
        deadline: k,
    };
    let mut engine = poisson_engine(channel, policy, measure, rho_prime, 40, 7);
    engine.run_until(Time::from_ticks(64_000_000), &mut NoopObserver);
    engine.drain(&mut NoopObserver);

    let metrics = &engine.metrics;
    println!("controlled time-window protocol — quickstart");
    println!("  offered load rho'      : {rho_prime}");
    println!("  message length M       : {m} tau");
    println!("  deadline K             : {k_tau} tau");
    println!("  heuristic window w*    : {w_tau:.1} tau");
    println!();
    println!("  messages measured      : {}", metrics.offered());
    println!(
        "  loss (sender+receiver) : {:.4} ± {:.4}",
        metrics.loss_fraction(),
        metrics.loss_ci95()
    );
    println!(
        "  mean delivered delay   : {:.1} tau",
        metrics.true_delay().mean() / channel.ticks_per_tau as f64
    );
    println!(
        "  channel utilization    : {:.3}",
        engine.channel_stats.utilization()
    );

    // --- compare with eq. 4.7 ----------------------------------------------
    let analytic = controlled_curve(
        PanelConfig {
            m,
            rho_prime,
            shape: SchedulingShape::Geometric,
        },
        &[k_tau as f64],
    );
    println!();
    println!(
        "  analytic p(loss)       : {:.4}  (M/G/1 with impatient customers, eq. 4.7)",
        analytic[0].loss
    );
}
