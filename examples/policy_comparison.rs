//! Compares all four protocol disciplines — controlled, FCFS, LCFS,
//! RANDOM — on identical Poisson traffic, reproducing the qualitative
//! content of the paper's Figure 7 in one table.
//!
//! ```sh
//! cargo run --release --example policy_comparison
//! ```

use tcw_experiments::{simulate_panel, Panel, PolicyKind, SimSettings};

fn main() {
    let panel = Panel {
        rho_prime: 0.75,
        m: 25,
    };
    let settings = SimSettings {
        messages: 20_000,
        warmup: 2_000,
        ..Default::default()
    };

    println!(
        "policy comparison at rho' = {}, M = {} ({} messages per point)",
        panel.rho_prime, panel.m, settings.messages
    );
    println!();
    println!(
        "  {:>10} {:>14} {:>14} {:>14} {:>14}",
        "K (tau)", "controlled", "fcfs", "lcfs", "random"
    );
    for k in [50.0, 100.0, 200.0, 400.0] {
        let mut cells = Vec::new();
        for kind in [
            PolicyKind::Controlled,
            PolicyKind::Fcfs,
            PolicyKind::Lcfs,
            PolicyKind::Random,
        ] {
            let p = simulate_panel(panel, kind, k, settings, 5);
            cells.push(format!("{:.4}", p.loss));
        }
        println!(
            "  {:>10} {:>14} {:>14} {:>14} {:>14}",
            k, cells[0], cells[1], cells[2], cells[3]
        );
    }
    println!();
    println!("The controlled protocol dominates at every deadline. The");
    println!("uncontrolled disciplines cross over: LCFS beats FCFS at tight");
    println!("deadlines (fresh messages slip through) while FCFS wins at loose");
    println!("ones (LCFS starves a tail of messages); the discard element keeps");
    println!("the controlled channel free of already-dead messages throughout.");
}
