//! Capacity planning with the analytic model: how much load can the
//! channel carry while keeping the in-deadline delivery rate above a
//! target?
//!
//! The analytic model (eq. 4.7 + the K-marching of §4.1) evaluates a
//! `(load, deadline)` point in microseconds, so it can drive design-space
//! searches that would take hours of simulation — this is exactly why the
//! paper builds the queueing model instead of using its decision model for
//! performance numbers.
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use tcw_queueing::marching::{controlled_curve, PanelConfig};
use tcw_queueing::service::SchedulingShape;

/// Largest rho' (to 0.005 resolution) with loss <= target at deadline K.
fn capacity(m: u64, k_tau: f64, target: f64) -> f64 {
    let mut lo = 0.005f64;
    let mut hi = 2.0f64;
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        let cfg = PanelConfig {
            m,
            rho_prime: mid,
            shape: SchedulingShape::Geometric,
        };
        let loss = controlled_curve(cfg, &[k_tau])[0].loss;
        if loss <= target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

fn main() {
    println!("channel capacity under a 1% in-deadline loss target");
    println!("(controlled window protocol; analytic model, eq. 4.7)");
    println!();
    for m in [25u64, 100] {
        println!("  message length M = {m} tau:");
        println!("  {:>12} {:>20}", "deadline K", "max offered rho'");
        for k_over_m in [2.0, 4.0, 8.0, 16.0] {
            let k = k_over_m * m as f64;
            let c = capacity(m, k, 0.01);
            println!("  {:>9.0} tau {:>20.3}", k, c);
        }
        println!();
    }
    println!("Reading: with deadlines of a few message times, the channel must");
    println!("run well below saturation; by K = 16 M the admissible load is set");
    println!("by queueing stability rather than the deadline.");
}
