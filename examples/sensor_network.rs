//! Distributed sensor network over the controlled window protocol — the
//! paper's second motivating application [DSN 82].
//!
//! Physical events trigger near-simultaneous reports from several sensors:
//! the arrival stream is *clustered*, the worst case for a window protocol
//! (clustered arrivals collide repeatedly) and a deliberate violation of
//! the analysis' Poisson assumption. The example measures how much the
//! burstiness costs relative to Poisson traffic of the same rate, and
//! shows the controlled protocol still degrades gracefully.
//!
//! ```sh
//! cargo run --release --example sensor_network
//! ```

use tcw_mac::traffic::{SensorConfig, SensorSource};
use tcw_mac::{ArrivalSource, ChannelConfig, PoissonArrivals};
use tcw_sim::time::{Dur, Time};
use tcw_window::analysis::optimal_window;
use tcw_window::engine::{Engine, EngineConfig};
use tcw_window::metrics::MeasureConfig;
use tcw_window::policy::ControlPolicy;
use tcw_window::trace::NoopObserver;

fn run<S: ArrivalSource>(source: S, channel: ChannelConfig, k: Dur, w: Dur) -> (f64, f64, u64) {
    let measure = MeasureConfig {
        start: Time::from_ticks(400_000),
        end: Time::from_ticks(40_000_000),
        deadline: k,
    };
    let mut engine = Engine::new(
        EngineConfig {
            channel,
            policy: ControlPolicy::controlled(k, w),
            measure,
            seed: 31,
        },
        source,
    );
    engine.run_until(Time::from_ticks(44_000_000), &mut NoopObserver);
    engine.drain(&mut NoopObserver);
    (
        engine.metrics.loss_fraction(),
        engine.metrics.loss_ci95(),
        engine.metrics.offered(),
    )
}

fn main() {
    let channel = ChannelConfig {
        ticks_per_tau: 64,
        message_slots: 25,
        guard: false,
    };
    let tpt = channel.ticks_per_tau;

    // Events every 250 tau on average; each detected by ~3 sensors within
    // a 10-tau detection jitter.
    let sensors = SensorConfig {
        stations: 40,
        mean_event_gap: Dur::from_ticks(250 * tpt),
        mean_reports: 3.0,
        jitter: Dur::from_ticks(10 * tpt),
    };
    // Aggregate report rate: ~3 reports / 250 tau (slightly lower due to
    // the distinct-station clamp); measure it empirically for a fair
    // Poisson control.
    let lambda_per_tau = {
        let mut src = SensorSource::new(sensors);
        let mut rng = tcw_sim::rng::Rng::new(1);
        let horizon = 50_000_000u64;
        let mut n = 0u64;
        while let Some(a) = src.next_arrival(&mut rng) {
            if a.time.ticks() > horizon {
                break;
            }
            n += 1;
        }
        n as f64 * tpt as f64 / horizon as f64
    };
    let load = lambda_per_tau * channel.message_slots as f64;
    let w = Dur::from_ticks((optimal_window(lambda_per_tau) * tpt as f64) as u64);

    println!("distributed sensor network over the shared channel");
    println!(
        "  {} sensors, ~{:.2} reports per event, offered load rho' = {:.2}",
        sensors.stations, sensors.mean_reports, load
    );
    println!();
    println!(
        "  {:>14} {:>24} {:>24}",
        "deadline K", "bursty sensor traffic", "Poisson (same rate)"
    );
    for k_tau in [50u64, 100, 200, 400] {
        let k = Dur::from_ticks(k_tau * tpt);
        let (s_loss, s_ci, n) = run(SensorSource::new(sensors), channel, k, w);
        let poisson = PoissonArrivals::per_tau(lambda_per_tau, tpt, sensors.stations);
        let (p_loss, p_ci, _) = run(poisson, channel, k, w);
        println!(
            "  {:>10} tau {:>17.4} ±{:.4} {:>17.4} ±{:.4}   ({n} reports)",
            k_tau, s_loss, s_ci, p_loss, p_ci
        );
    }
    println!();
    println!("Interpretation: clustered reports collide more, so the bursty");
    println!("column is worse at tight deadlines; the gap closes as K grows —");
    println!("the analysis' Poisson assumption is optimistic but not fragile.");
}
