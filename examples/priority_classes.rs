//! Priority classes over one channel — the paper's §5 open problem.
//!
//! Voice packets (deadline 60 tau) and sensor data (deadline 600 tau)
//! share the channel. Three designs are compared:
//!
//! 1. one controlled protocol with the voice deadline for everyone
//!    (data inherits discards it did not need);
//! 2. one controlled protocol with the data deadline for everyone
//!    (voice misses its playout);
//! 3. the multi-class engine: per-class deadlines + proportional-urgency
//!    class scheduling (`(now - t_past_c)/K_c`).
//!
//! The example also shows why the *naive* lift of Theorem 1 across
//! classes (absolute minimum slack) fails: the tight class's fresh empty
//! time starves the loose class.
//!
//! ```sh
//! cargo run --release --example priority_classes
//! ```

use tcw_mac::{ChannelConfig, PoissonArrivals};
use tcw_sim::time::{Dur, Time};
use tcw_window::engine::poisson_engine;
use tcw_window::metrics::MeasureConfig;
use tcw_window::multiclass::{ClassRule, ClassSpec, MulticlassEngine};
use tcw_window::policy::ControlPolicy;
use tcw_window::trace::NoopObserver;

const TPT: u64 = 32;
const M: u64 = 25;
const K_VOICE: u64 = 60;
const K_DATA: u64 = 600;
const RATE_EACH: f64 = 0.015; // per tau, per class => rho' 0.375 each

fn channel() -> ChannelConfig {
    ChannelConfig {
        ticks_per_tau: TPT,
        message_slots: M,
        guard: false,
    }
}

fn measure(k_tau: u64) -> MeasureConfig {
    MeasureConfig {
        start: Time::from_ticks(400_000),
        end: Time::from_ticks(40_000_000),
        deadline: Dur::from_ticks(k_tau * TPT),
    }
}

fn spec(k_tau: u64) -> ClassSpec {
    ClassSpec {
        deadline: Dur::from_ticks(k_tau * TPT),
        window: Dur::from_ticks(84 * TPT), // mu*/rate for each class
        source: Box::new(PoissonArrivals::per_tau(RATE_EACH, TPT, 25)),
    }
}

/// Runs a single-deadline engine on the combined traffic and reports the
/// in-own-deadline loss of each class (a message of class c counts as
/// lost if delivered later than K_c, regardless of what the shared
/// protocol's K was).
fn shared_deadline(k_tau: u64) -> (f64, f64) {
    // With a shared controlled protocol the classes are indistinguishable
    // to the channel; their losses differ only through their own deadline
    // evaluation. For voice (tighter than shared K) we must measure
    // deliveries within K_VOICE; the single-class engine reports only its
    // own K, so run it per definition: shared K discards, voice counts a
    // delivery late if > K_VOICE.
    // Approximation via the shared engine's delay histogram:
    let k = Dur::from_ticks(k_tau * TPT);
    let w = Dur::from_ticks(42 * TPT); // heuristic at combined rate
    let mut eng = poisson_engine(
        channel(),
        ControlPolicy::controlled(k, w),
        measure(k_tau),
        2.0 * RATE_EACH * M as f64,
        50,
        3,
    );
    eng.run_until(Time::from_ticks(44_000_000), &mut NoopObserver);
    eng.drain(&mut NoopObserver);
    let base_loss = eng.metrics.loss_fraction();
    // fraction of *delivered* messages later than K_VOICE:
    let hist = eng.metrics.paper_delay_histogram();
    let late_for_voice = 1.0 - hist.cdf((K_VOICE * TPT) as f64);
    let delivered = 1.0 - base_loss;
    let voice_loss = base_loss + delivered * late_for_voice;
    let data_loss = base_loss; // K_DATA >= shared K in both designs here
    (voice_loss, data_loss)
}

fn multiclass(rule: ClassRule) -> (f64, f64) {
    let mut e = MulticlassEngine::new(
        channel(),
        rule,
        vec![spec(K_VOICE), spec(K_DATA)],
        measure(K_VOICE),
        7,
    );
    e.run_until(Time::from_ticks(44_000_000));
    e.drain();
    (
        e.class_metrics(0).loss_fraction(),
        e.class_metrics(1).loss_fraction(),
    )
}

fn main() {
    println!("two traffic classes over one channel (rho' = 0.75 combined)");
    println!("  voice: deadline {K_VOICE} tau     data: deadline {K_DATA} tau");
    println!();
    println!(
        "  {:<44} {:>12} {:>12}",
        "design", "voice loss", "data loss"
    );

    let (v, d) = shared_deadline(K_VOICE);
    println!(
        "  {:<44} {:>12.4} {:>12.4}",
        format!("shared controlled, K = {K_VOICE} (voice-grade)"),
        v,
        d
    );
    let (v, d) = shared_deadline(K_DATA);
    println!(
        "  {:<44} {:>12.4} {:>12.4}",
        format!("shared controlled, K = {K_DATA} (data-grade)"),
        v,
        d
    );
    let (v, d) = multiclass(ClassRule::MinSlack);
    println!(
        "  {:<44} {:>12.4} {:>12.4}",
        "multiclass, naive min-slack (starves data!)", v, d
    );
    let (v, d) = multiclass(ClassRule::ProportionalUrgency);
    println!(
        "  {:<44} {:>12.4} {:>12.4}",
        "multiclass, proportional urgency", v, d
    );
    println!();
    println!("Per-class deadlines with proportional-urgency scheduling deliver");
    println!("voice-grade service to voice AND near-zero data loss — neither");
    println!("shared-deadline design achieves both.");
}
