//! Integration: Theorem 1, measured on the full protocol rather than the
//! decision model. Among policies sharing the same window length and the
//! discard element (4), the minimum-slack choice of elements (1) and (3)
//! — oldest window position, older half first — achieves the lowest
//! actual loss; and the controlled protocol dominates every uncontrolled
//! discipline of [Kurose 83].

use tcw_experiments::{simulate_panel, Panel, PolicyKind, SimSettings};
use tcw_sim::time::{Dur, Time};
use tcw_window::analysis::optimal_mu;
use tcw_window::engine::poisson_engine;
use tcw_window::metrics::MeasureConfig;
use tcw_window::policy::{ControlPolicy, SplitRule, WindowLength, WindowPosition};
use tcw_window::trace::NoopObserver;

const TPT: u64 = 16;

fn run_variant(position: WindowPosition, split: SplitRule, seed: u64) -> f64 {
    let panel = Panel {
        rho_prime: 0.75,
        m: 25,
    };
    let channel = tcw_mac::ChannelConfig {
        ticks_per_tau: TPT,
        message_slots: panel.m,
        guard: false,
    };
    let k = Dur::from_ticks(100 * TPT);
    let w = Dur::from_ticks((optimal_mu() / panel.lambda() * TPT as f64) as u64);
    let policy = ControlPolicy {
        position,
        length: WindowLength::Fixed(w),
        split,
        discard_after: Some(k),
        split_fraction: 0.5,
    };
    let ticks_per_msg = TPT as f64 / panel.lambda();
    let end = (10_000.0 * ticks_per_msg) as u64;
    let measure = MeasureConfig {
        start: Time::from_ticks((500.0 * ticks_per_msg) as u64),
        end: Time::from_ticks(end),
        deadline: k,
    };
    let mut eng = poisson_engine(channel, policy, measure, panel.rho_prime, 40, seed);
    eng.run_until(Time::from_ticks(end + end / 10), &mut NoopObserver);
    eng.drain(&mut NoopObserver);
    eng.metrics.loss_fraction()
}

#[test]
fn minslack_beats_element_variants() {
    let theorem1 = run_variant(WindowPosition::Oldest, SplitRule::OlderFirst, 7);
    let newer_split = run_variant(WindowPosition::Oldest, SplitRule::NewerFirst, 7);
    let newest_pos = run_variant(WindowPosition::Newest, SplitRule::NewerFirst, 7);
    let random = run_variant(WindowPosition::Random, SplitRule::Random, 7);
    assert!(
        theorem1 < newer_split + 0.01,
        "older-first {theorem1:.4} vs newer-first {newer_split:.4}"
    );
    assert!(
        theorem1 < newest_pos + 0.01,
        "oldest-pos {theorem1:.4} vs newest-pos {newest_pos:.4}"
    );
    assert!(
        theorem1 < random + 0.01,
        "theorem-1 {theorem1:.4} vs random {random:.4}"
    );
}

#[test]
fn controlled_dominates_uncontrolled_baselines() {
    let panel = Panel {
        rho_prime: 0.75,
        m: 25,
    };
    let settings = SimSettings {
        messages: 8_000,
        warmup: 800,
        ticks_per_tau: TPT,
        ..Default::default()
    };
    for k in [50.0, 100.0, 200.0] {
        let c = simulate_panel(panel, PolicyKind::Controlled, k, settings, 17);
        for kind in [PolicyKind::Fcfs, PolicyKind::Lcfs, PolicyKind::Random] {
            let b = simulate_panel(panel, kind, k, settings, 17);
            assert!(
                c.loss <= b.loss + 0.01,
                "K={k}: controlled {:.4} vs {} {:.4}",
                c.loss,
                kind.label(),
                b.loss
            );
        }
    }
}

#[test]
fn fcfs_lcfs_cross_over_in_k() {
    // The [Kurose 83] structure the paper builds on: within the
    // uncontrolled family the disciplines cross — at tight deadlines LCFS
    // delivers more (fresh messages slip through while FCFS delays
    // everyone equally); at loose deadlines FCFS wins (LCFS starves a
    // tail of messages forever). The controlled protocol dominates both
    // on either side of the crossover.
    let panel = Panel {
        rho_prime: 0.75,
        m: 25,
    };
    let settings = SimSettings {
        messages: 12_000,
        warmup: 1_200,
        ticks_per_tau: TPT,
        ..Default::default()
    };
    let tight = 50.0;
    let loose = 400.0;
    let f_tight = simulate_panel(panel, PolicyKind::Fcfs, tight, settings, 19);
    let l_tight = simulate_panel(panel, PolicyKind::Lcfs, tight, settings, 19);
    assert!(
        l_tight.loss < f_tight.loss - 0.02,
        "tight K: lcfs {:.4} should beat fcfs {:.4}",
        l_tight.loss,
        f_tight.loss
    );
    let f_loose = simulate_panel(panel, PolicyKind::Fcfs, loose, settings, 19);
    let l_loose = simulate_panel(panel, PolicyKind::Lcfs, loose, settings, 19);
    assert!(
        f_loose.loss < l_loose.loss - 0.005,
        "loose K: fcfs {:.4} should beat lcfs {:.4}",
        f_loose.loss,
        l_loose.loss
    );
}
