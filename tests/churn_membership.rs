//! End-to-end checks of the churn sweep machinery and the versioned,
//! churn-aware failure-replay artifact.

use tcw_experiments::replay::{execute, FailureRecord, ARTIFACT_VERSION};
use tcw_experiments::runner::{
    simulate_churn, simulate_churn_with_detector, simulate_panel_faulty, PolicyKind, SimSettings,
};
use tcw_experiments::Panel;
use tcw_mac::{ChurnPlan, FaultPlan};

fn quick() -> SimSettings {
    SimSettings {
        ticks_per_tau: 16,
        messages: 3_000,
        warmup: 300,
        ..Default::default()
    }
}

fn panel() -> Panel {
    Panel {
        rho_prime: 0.5,
        m: 25,
    }
}

fn crashy() -> ChurnPlan {
    ChurnPlan::crash_restart(0.002, 40, 100)
}

#[test]
fn none_churn_matches_faulty_runner_exactly() {
    let base = simulate_panel_faulty(
        panel(),
        PolicyKind::Controlled,
        100.0,
        quick(),
        7,
        FaultPlan::none(),
    );
    let churny = simulate_churn(
        panel(),
        PolicyKind::Controlled,
        100.0,
        quick(),
        7,
        FaultPlan::none(),
        ChurnPlan::none(),
    );
    assert_eq!(
        format!("{:?} {:?}", base.point, base.faults),
        format!("{:?} {:?}", churny.point, churny.faults)
    );
    assert_eq!(churny.churn.crashes, 0);
    assert_eq!(churny.churn.blocked, 0);
    assert_eq!(churny.churn.losses, 0);
    assert_eq!(churny.churn.reopened, 0);
}

#[test]
fn churn_runs_are_deterministic_and_counted() {
    let run = || {
        simulate_churn(
            panel(),
            PolicyKind::Controlled,
            100.0,
            quick(),
            11,
            FaultPlan::none(),
            crashy(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
    assert!(a.churn.crashes > 0, "no crashes materialized");
    // Stations still down when the run ends never restart; at most one
    // crash per station can be outstanding.
    assert!(a.churn.restarts <= a.churn.crashes);
    assert!(a.churn.crashes - a.churn.restarts <= quick().stations as u64);
    assert!(
        a.churn.rejoin_max_slots >= a.churn.rejoin_mean_slots,
        "max below mean"
    );
}

#[test]
fn churn_artifact_roundtrips_and_replays() {
    // An outage record must diverge, survive the write/load cycle bit-for-
    // bit, and re-execute to the identical failure — the property the
    // `--replay` exit code rests on.
    let churn = ChurnPlan {
        outage_start_slot: 500,
        outage_slots: 32,
        ..crashy()
    };
    let rec = FailureRecord {
        seed: 11,
        plan: FaultPlan::none(),
        churn,
        panel: panel(),
        policy: PolicyKind::Controlled,
        k_tau: 100.0,
        settings: quick(),
        kind: String::new(),
        detail: String::new(),
    };
    let (kind, detail) = execute(&rec);
    assert_eq!(kind, "divergence", "outage must diverge: {detail}");
    assert!(detail.contains("churn repair"), "{detail}");

    let mut failed = rec.clone();
    failed.kind = kind;
    failed.detail = detail;
    let dir = std::env::temp_dir().join("tcw_churn_membership_test");
    let path = dir.join("artifact.json");
    failed.save(&path).expect("save artifact");
    let loaded = FailureRecord::load(&path).expect("load artifact");
    assert_eq!(loaded, failed);
    let (kind2, detail2) = execute(&loaded);
    assert_eq!((kind2, detail2), (loaded.kind, loaded.detail));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_or_corrupted_artifacts_are_rejected() {
    let rec = FailureRecord {
        seed: 3,
        plan: FaultPlan::none(),
        churn: ChurnPlan::none(),
        panel: panel(),
        policy: PolicyKind::Controlled,
        k_tau: 100.0,
        settings: quick(),
        kind: "panic".to_string(),
        detail: "boom".to_string(),
    };
    let dir = std::env::temp_dir().join("tcw_churn_stale_test");
    std::fs::create_dir_all(&dir).expect("mkdir");

    // Version stamped by a different workspace build.
    let stale = rec.to_json().replace(
        &format!("\"version\": \"{ARTIFACT_VERSION}\""),
        "\"version\": \"0.0.0-prehistoric\"",
    );
    let p1 = dir.join("stale.json");
    std::fs::write(&p1, stale).expect("write");
    let err = FailureRecord::load(&p1).unwrap_err();
    assert!(err.contains("0.0.0-prehistoric"), "{err}");

    // Out-of-range churn parameters.
    let corrupt = rec.to_json().replace("\"crash\": 0.0", "\"crash\": 2.5");
    let p2 = dir.join("corrupt.json");
    std::fs::write(&p2, corrupt).expect("write");
    let err = FailureRecord::load(&p2).unwrap_err();
    assert!(err.contains("corrupted churn plan"), "{err}");

    // Not JSON at all.
    let p3 = dir.join("garbage.json");
    std::fs::write(&p3, "definitely not json").expect("write");
    assert!(FailureRecord::load(&p3).is_err());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn detector_report_separates_churn_repairs_from_deaf_resyncs() {
    // Outage only: every resync is a churn repair.
    let outage_only = ChurnPlan {
        outage_start_slot: 400,
        outage_slots: 24,
        ..ChurnPlan::none()
    };
    let (_, det) = simulate_churn_with_detector(
        panel(),
        PolicyKind::Controlled,
        100.0,
        quick(),
        13,
        FaultPlan::none(),
        outage_only,
    );
    assert_eq!(det.churn_repairs, 1);
    assert_eq!(det.resyncs, det.churn_repairs);

    // Deafness only: no resync is a churn repair.
    let mut deaf = FaultPlan::none();
    deaf.deafness = 0.005;
    deaf.deaf_slots = 4;
    let (_, det) = simulate_churn_with_detector(
        panel(),
        PolicyKind::Controlled,
        100.0,
        quick(),
        13,
        deaf,
        ChurnPlan::none(),
    );
    assert!(det.divergences > 0, "deafness never diverged");
    assert_eq!(det.churn_repairs, 0);
}
