//! Integration: the paper's analytic loss model (eq. 4.7 + K-marching,
//! `tcw-queueing`) must agree with the full distributed-protocol
//! simulation (`tcw-window` over `tcw-mac`) — the paper's own validation
//! methodology ("the close agreement between the analytic results and the
//! simulation results", §4.2).

use tcw_experiments::{simulate_panel, Panel, PolicyKind, SimSettings};
use tcw_queueing::marching::{controlled_curve, fcfs_curve, PanelConfig};
use tcw_queueing::service::SchedulingShape;

fn quick() -> SimSettings {
    SimSettings {
        messages: 8_000,
        warmup: 800,
        ticks_per_tau: 16,
        ..Default::default()
    }
}

fn check_panel(panel: Panel, ks: &[f64], seed: u64) {
    let cfg = PanelConfig {
        m: panel.m,
        rho_prime: panel.rho_prime,
        shape: SchedulingShape::Geometric,
    };
    let analytic = controlled_curve(cfg, ks);
    for (a, &k) in analytic.iter().zip(ks) {
        let sim = simulate_panel(panel, PolicyKind::Controlled, k, quick(), seed);
        let tol = (4.0 * sim.ci95).max(0.015);
        assert!(
            (a.loss - sim.loss).abs() <= tol,
            "rho'={} M={} K={k}: analytic {:.4} vs sim {:.4} (tol {:.4})",
            panel.rho_prime,
            panel.m,
            a.loss,
            sim.loss,
            tol
        );
    }
}

#[test]
fn controlled_loss_matches_eq47_rho50_m25() {
    check_panel(
        Panel {
            rho_prime: 0.5,
            m: 25,
        },
        &[50.0, 100.0, 200.0],
        1,
    );
}

#[test]
fn controlled_loss_matches_eq47_rho75_m25() {
    check_panel(
        Panel {
            rho_prime: 0.75,
            m: 25,
        },
        &[50.0, 100.0, 200.0, 400.0],
        2,
    );
}

#[test]
fn controlled_loss_matches_eq47_rho75_m100() {
    check_panel(
        Panel {
            rho_prime: 0.75,
            m: 100,
        },
        &[200.0, 600.0],
        3,
    );
}

#[test]
fn fcfs_receiver_loss_matches_mg1_tail() {
    // The uncontrolled FCFS baseline: receiver loss = P(W > K) of the
    // M/G/1 queue (with the message's own scheduling time included).
    let panel = Panel {
        rho_prime: 0.5,
        m: 25,
    };
    let cfg = PanelConfig {
        m: panel.m,
        rho_prime: panel.rho_prime,
        shape: SchedulingShape::Geometric,
    };
    let ks = [50.0, 100.0, 200.0];
    let analytic = fcfs_curve(cfg, &ks, true);
    for (a, &k) in analytic.iter().zip(&ks) {
        let sim = simulate_panel(panel, PolicyKind::Fcfs, k, quick(), 4);
        let tol = (4.0 * sim.ci95).max(0.02);
        assert!(
            (a.loss - sim.loss).abs() <= tol,
            "K={k}: analytic {:.4} vs sim {:.4}",
            a.loss,
            sim.loss
        );
    }
}

#[test]
fn k_zero_anchor_is_exact() {
    // At K = 0 the marching starts from the exact rho'/(1+rho') anchor.
    for rho_prime in [0.25, 0.5, 0.75] {
        let cfg = PanelConfig {
            m: 25,
            rho_prime,
            shape: SchedulingShape::Geometric,
        };
        // The curve's first point at a tiny K approaches the busy
        // probability rho/(1+rho), where rho includes the (small)
        // scheduling overhead the marching attributes at this K.
        let curve = controlled_curve(cfg, &[0.5]);
        let rho_eff = rho_prime / 25.0 * curve[0].service_mean;
        let anchor = rho_eff / (1.0 + rho_eff);
        assert!(
            (curve[0].loss - anchor).abs() < 0.02,
            "loss at K->0 ({}) far from the anchor ({anchor})",
            curve[0].loss
        );
    }
}
