//! Integration: the scheduling-time analysis (`tcw-window::analysis`, the
//! input to the queueing model's service distribution) against the
//! protocol engine's measurements.

use tcw_experiments::{simulate_panel, Panel, PolicyKind, SimSettings};
use tcw_window::analysis::{expected_overhead_slots, optimal_mu, overhead_slot_pmf};

fn settings() -> SimSettings {
    SimSettings {
        messages: 10_000,
        warmup: 1_000,
        ticks_per_tau: 16,
        ..Default::default()
    }
}

#[test]
fn per_round_overhead_matches_recursion_under_saturation() {
    // In an overloaded FCFS system the backlog is always deeper than the
    // window, so every round draws a full-width window with Poisson(mu*)
    // occupancy — exactly the redraw model. The measured overhead of
    // success-rounds must match the conditional recursion value
    // E[slots | round schedules] = E[S] - q0/(1 - q0).
    let panel = Panel {
        rho_prime: 1.5,
        m: 25,
    };
    let p = simulate_panel(panel, PolicyKind::Fcfs, 1.0e9, settings(), 3);
    let mu = optimal_mu(); // the runner picks w* = mu*/lambda
    let q0 = (-mu).exp();
    let expect = expected_overhead_slots(mu) - q0 / (1.0 - q0);
    // The measured value sits slightly ABOVE the model: Assumption 1 is
    // not exact — the un-consumed sibling regions of collided windows are
    // conditioned toward holding more messages than a fresh Poisson
    // interval, so real rounds collide a bit more often (the paper's own
    // caveat under Assumption 1). The bias is ≈ 0.1 slot per round.
    assert!(
        p.round_overhead_mean >= expect - 0.05,
        "measured {:.3} below the redraw model {expect:.3}",
        p.round_overhead_mean
    );
    assert!(
        (p.round_overhead_mean - expect).abs() < 0.25,
        "overhead per success round: measured {:.3} vs analysis {expect:.3}",
        p.round_overhead_mean
    );
}

#[test]
fn mean_sched_time_between_zero_and_redraw_model() {
    // The true scheduling time (from max(prev end, arrival)) is below the
    // busy-period redraw model (window clipping at small backlog removes
    // idle probes) but well above zero at high load.
    let panel = Panel {
        rho_prime: 0.75,
        m: 25,
    };
    let p = simulate_panel(panel, PolicyKind::Controlled, 400.0, settings(), 4);
    let upper = expected_overhead_slots(optimal_mu());
    assert!(
        p.sched_time_mean > 0.2 && p.sched_time_mean < upper + 0.3,
        "sched time {:.3} outside (0.2, {:.3})",
        p.sched_time_mean,
        upper + 0.3
    );
}

#[test]
fn overhead_pmf_is_consistent_with_its_mean() {
    for mu in [0.6, 1.26, 2.0] {
        let pmf = overhead_slot_pmf(mu, 1e-9);
        let mean: f64 = pmf.iter().enumerate().map(|(s, &p)| s as f64 * p).sum();
        assert!((mean - expected_overhead_slots(mu)).abs() < 1e-5);
    }
}

#[test]
fn heuristic_window_is_near_the_simulated_optimum() {
    // Simulate a few window scales at heavy load; the heuristic w* should
    // be within the flat region around the simulated best utilization.
    let panel = Panel {
        rho_prime: 0.75,
        m: 25,
    };
    // The runner always uses w*; emulate scales by scaling lambda through
    // rho' (same mu = lambda * w). Instead compare utilizations at the
    // heuristic against a deliberately bad tiny-window policy via the
    // per-round overhead bound: E[S](mu*) < E[S](mu*/8).
    let at_opt = expected_overhead_slots(optimal_mu());
    let too_small = expected_overhead_slots(optimal_mu() / 8.0);
    let too_large = expected_overhead_slots(optimal_mu() * 8.0);
    assert!(at_opt < too_small && at_opt < too_large);
    // And the simulated utilization at w* is close to the ideal
    // M / (M + E[S]).
    let p = simulate_panel(panel, PolicyKind::Fcfs, 10_000.0, settings(), 5);
    let ideal = panel.rho_prime; // offered load is carried entirely
    assert!(
        (p.utilization - ideal).abs() < 0.02,
        "utilization {:.4} vs offered {ideal}",
        p.utilization
    );
}
