//! End-to-end checks of the fault-injection sweep machinery and the
//! deterministic failure-replay artifact.

use std::panic::{catch_unwind, AssertUnwindSafe};
use tcw_experiments::replay::FailureRecord;
use tcw_experiments::runner::{
    simulate_panel, simulate_panel_faulty, simulate_with_detector, PolicyKind, SimSettings,
};
use tcw_experiments::Panel;
use tcw_mac::{ChurnPlan, FaultPlan};

fn quick() -> SimSettings {
    SimSettings {
        ticks_per_tau: 16,
        messages: 3_000,
        warmup: 300,
        ..Default::default()
    }
}

fn panel() -> Panel {
    Panel {
        rho_prime: 0.5,
        m: 25,
    }
}

#[test]
fn none_plan_matches_plain_runner_exactly() {
    let base = simulate_panel(panel(), PolicyKind::Controlled, 100.0, quick(), 7);
    let faulty = simulate_panel_faulty(
        panel(),
        PolicyKind::Controlled,
        100.0,
        quick(),
        7,
        FaultPlan::none(),
    );
    assert_eq!(format!("{base:?}"), format!("{:?}", faulty.point));
    assert_eq!(faulty.faults.corrupted_slots, 0);
    assert_eq!(faulty.faults.erased_slots, 0);
    assert_eq!(faulty.faults.resyncs, 0);
    assert_eq!(faulty.faults.fault_losses, 0);
}

#[test]
fn faults_degrade_loss_gracefully() {
    let clean = simulate_panel_faulty(
        panel(),
        PolicyKind::Controlled,
        100.0,
        quick(),
        7,
        FaultPlan::none(),
    );
    let light = simulate_panel_faulty(
        panel(),
        PolicyKind::Controlled,
        100.0,
        quick(),
        7,
        FaultPlan::uniform(0.02),
    );
    let heavy = simulate_panel_faulty(
        panel(),
        PolicyKind::Controlled,
        100.0,
        quick(),
        7,
        FaultPlan::uniform(0.10),
    );
    assert!(light.faults.corrupted_slots > 0);
    assert!(heavy.faults.corrupted_slots > light.faults.corrupted_slots);
    // Degradation is graceful: loss rises with the fault rate but the
    // protocol keeps delivering the vast majority of traffic.
    assert!(light.point.loss >= clean.point.loss);
    assert!(heavy.point.loss > light.point.loss);
    assert!(
        heavy.point.loss < 0.5,
        "loss collapsed: {}",
        heavy.point.loss
    );
}

#[test]
fn detector_run_is_deterministic_and_replayable() {
    let mut plan = FaultPlan::uniform(0.02);
    plan.deafness = 0.005;
    plan.deaf_slots = 4;
    let run = || simulate_with_detector(panel(), PolicyKind::Controlled, 100.0, quick(), 11, plan);
    let (_, det_a) = run();
    let (_, det_b) = run();
    assert!(det_a.divergences > 0, "deafness produced no divergence");
    assert_eq!(det_a.divergences, det_b.divergences);
    assert_eq!(det_a.dropped_slots, det_b.dropped_slots);
    assert_eq!(det_a.first_divergence, det_b.first_divergence);
}

#[test]
fn artifact_roundtrip_reproduces_the_failure() {
    // Build a failing record the way the robustness binary does, write it,
    // reload it, and re-execute: the observed failure must be identical.
    let mut plan = FaultPlan::uniform(0.02);
    plan.deafness = 0.005;
    plan.deaf_slots = 4;
    let (_, det) =
        simulate_with_detector(panel(), PolicyKind::Controlled, 100.0, quick(), 11, plan);
    let first = det.first_divergence.expect("deafness must diverge");
    let rec = FailureRecord {
        seed: 11,
        plan,
        churn: ChurnPlan::none(),
        panel: panel(),
        policy: PolicyKind::Controlled,
        k_tau: 100.0,
        settings: quick(),
        kind: "divergence".to_string(),
        detail: first.clone(),
    };
    let dir = std::env::temp_dir().join("tcw_robustness_test");
    let path = dir.join("artifact.json");
    rec.save(&path).expect("save artifact");
    let loaded = FailureRecord::load(&path).expect("load artifact");
    assert_eq!(loaded, rec);
    // Replay from the loaded record alone.
    let (_, replayed) = simulate_with_detector(
        loaded.panel,
        loaded.policy,
        loaded.k_tau,
        loaded.settings,
        loaded.seed,
        loaded.plan,
    );
    assert_eq!(
        replayed.first_divergence.as_deref(),
        Some(first.as_str()),
        "replay did not reproduce the recorded failure"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn panics_are_catchable_for_the_harness() {
    // The replay harness depends on invalid plans failing loudly inside
    // catch_unwind rather than corrupting a run.
    let bad = FaultPlan {
        collision_to_success: 0.9,
        collision_to_idle: 0.9,
        ..FaultPlan::none()
    };
    let result = catch_unwind(AssertUnwindSafe(|| {
        simulate_panel_faulty(panel(), PolicyKind::Controlled, 100.0, quick(), 7, bad)
    }));
    assert!(result.is_err(), "oversubscribed plan must be rejected");
}
