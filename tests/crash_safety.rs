//! End-to-end crash-safety tests of the supervised chaos sweep: an
//! injected panic quarantines its cell (exit 2, journal intact), the
//! watchdog cuts off a wedged cell, a corrupted or stale journal is
//! rejected up front, and a clean `--resume` finishes the sweep with
//! CSV/TXT outputs byte-identical to an uninterrupted `--jobs 1` run.
//!
//! Each scenario runs the real `chaos` binary in its own temp directory,
//! because the binary writes `results/` relative to the working
//! directory.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const CONFIGS: &str = "8";

fn chaos_in(dir: &Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_chaos"))
        .current_dir(dir)
        .args(args)
        .output()
        .expect("spawn chaos binary")
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tcw_crash_safety_{name}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("chaos terminated by signal")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// The full arc: baseline run, injected panic under supervision
/// (quarantine, exit 2, outputs withheld, journal keeps the completed
/// cells), then a clean resume that skips journaled cells and produces
/// byte-identical outputs.
#[test]
fn injected_panic_quarantines_then_resume_is_byte_identical() {
    let base = fresh_dir("baseline");
    let out = chaos_in(&base, &["--configs", CONFIGS, "--jobs", "1"]);
    assert_eq!(code(&out), 0, "baseline failed: {}", stderr(&out));

    let crashed = fresh_dir("crashed");
    let out = chaos_in(
        &crashed,
        &[
            "--configs",
            CONFIGS,
            "--jobs",
            "2",
            "--resume",
            "sweep.journal",
            "--retries",
            "0",
            "--inject-panic",
            "3",
        ],
    );
    assert_eq!(code(&out), 2, "injected run must fail: {}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("quarantined cell 3"), "{err}");
    assert!(err.contains("injected panic in cell 3"), "{err}");
    assert!(
        !crashed.join("results/chaos.csv").exists(),
        "outputs must be withheld from a partial sweep"
    );
    let journal = fs::read_to_string(crashed.join("sweep.journal")).expect("journal written");
    // Header plus every cell except the quarantined one.
    assert_eq!(journal.lines().count(), 8, "{journal}");
    assert!(!journal.contains("\"cell\": 3"), "{journal}");

    let out = chaos_in(
        &crashed,
        &[
            "--configs",
            CONFIGS,
            "--jobs",
            "2",
            "--resume",
            "sweep.journal",
            "--retries",
            "0",
        ],
    );
    assert_eq!(code(&out), 0, "resume failed: {}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("7 resumed"), "{stdout}");

    for name in ["results/chaos.csv", "results/chaos.txt"] {
        let want = fs::read(base.join(name)).expect("baseline output");
        let got = fs::read(crashed.join(name)).expect("resumed output");
        assert_eq!(want, got, "{name} differs from the uninterrupted run");
    }
    let _ = fs::remove_dir_all(&base);
    let _ = fs::remove_dir_all(&crashed);
}

/// A wedged cell is cut off by the wall-clock watchdog and quarantined
/// with a timeout reason; the sweep still completes and exits 2.
#[test]
fn wedged_cell_is_timed_out_and_quarantined() {
    let dir = fresh_dir("wedged");
    let out = chaos_in(
        &dir,
        &[
            "--configs",
            "4",
            "--jobs",
            "2",
            "--cell-timeout",
            "0.5",
            "--retries",
            "0",
            "--inject-slow",
            "1",
        ],
    );
    assert_eq!(code(&out), 2, "wedged run must fail: {}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("quarantined cell 1"), "{err}");
    assert!(err.contains("timed out"), "{err}");
    let _ = fs::remove_dir_all(&dir);
}

/// Journal corruption (a flipped payload bit) and staleness (a changed
/// cell grid) are both rejected before any cell runs, with exit 2.
#[test]
fn corrupted_or_stale_journal_is_rejected() {
    let dir = fresh_dir("reject");
    let out = chaos_in(
        &dir,
        &[
            "--configs",
            CONFIGS,
            "--jobs",
            "2",
            "--resume",
            "sweep.journal",
        ],
    );
    assert_eq!(code(&out), 0, "clean run failed: {}", stderr(&out));

    // Stale: same journal, different grid.
    let out = chaos_in(
        &dir,
        &["--configs", "9", "--jobs", "2", "--resume", "sweep.journal"],
    );
    assert_eq!(code(&out), 2);
    assert!(stderr(&out).contains("fingerprint"), "{}", stderr(&out));

    // Corrupt: flip one hex digit inside a journaled payload.
    let good = fs::read_to_string(dir.join("sweep.journal")).expect("journal");
    let pos = good.find("\"data\": \"").expect("a data field") + 12;
    let mut bad = good.into_bytes();
    bad[pos] = if bad[pos] == b'0' { b'1' } else { b'0' };
    fs::write(dir.join("corrupt.journal"), bad).expect("write corrupted journal");
    let out = chaos_in(
        &dir,
        &[
            "--configs",
            CONFIGS,
            "--jobs",
            "2",
            "--resume",
            "corrupt.journal",
        ],
    );
    assert_eq!(code(&out), 2);
    assert!(stderr(&out).contains("corrupted"), "{}", stderr(&out));

    // Truncated: chop the journal mid-line.
    let good = fs::read(dir.join("sweep.journal")).expect("journal");
    fs::write(dir.join("truncated.journal"), &good[..good.len() - 20])
        .expect("write truncated journal");
    let out = chaos_in(
        &dir,
        &[
            "--configs",
            CONFIGS,
            "--jobs",
            "2",
            "--resume",
            "truncated.journal",
        ],
    );
    assert_eq!(code(&out), 2);
    assert!(stderr(&out).contains("corrupted"), "{}", stderr(&out));
    let _ = fs::remove_dir_all(&dir);
}

/// Supervision flags compose with neither the observability exports nor
/// bare inject flags: both are usage errors (exit 1).
#[test]
fn incompatible_flag_combinations_are_usage_errors() {
    let dir = fresh_dir("usage");
    let out = chaos_in(
        &dir,
        &[
            "--configs",
            "2",
            "--retries",
            "1",
            "--trace-events",
            "t.ndjson",
        ],
    );
    assert_eq!(code(&out), 1, "{}", stderr(&out));

    let out = chaos_in(&dir, &["--configs", "2", "--inject-panic", "0"]);
    assert_eq!(code(&out), 1, "{}", stderr(&out));
    let _ = fs::remove_dir_all(&dir);
}
