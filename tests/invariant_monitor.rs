//! Mutation tests for the runtime invariant monitor.
//!
//! A monitor is only trustworthy if (a) it stays silent on faithful
//! event streams — including heavily stressed ones — and (b) it fires
//! on corrupted ones. Both directions are covered here: the
//! no-false-positive property over composed chaos configs, and one
//! seeded corruption per invariant class asserting the monitor reports
//! exactly that class.

use tcw_experiments::chaos::{inject_config, ChaosConfig, ChaosController, Mutation, BASE_SEED};
use tcw_experiments::chaos_execute as execute;

/// Faithful event streams are clean, whatever the stress composition.
/// This samples the head of the real chaos sweep, which mixes faults,
/// churn, load shapes, adversaries and all three controllers.
#[test]
fn composed_stress_has_no_false_positives() {
    let mut controllers_seen = [false; 3];
    for index in 0..24 {
        let cfg = ChaosConfig::sample(BASE_SEED, index);
        controllers_seen[match cfg.controller {
            ChaosController::Static => 0,
            ChaosController::Aimd => 1,
            ChaosController::Estimator => 2,
        }] = true;
        let out = execute(&cfg);
        assert_eq!(
            out.kind, "ok",
            "config {index} flagged [{}/{}]: {}",
            out.kind, out.class, out.detail
        );
        assert_eq!(out.violations, 0, "config {index}");
        assert!(out.checks > 0, "config {index} ran no checks");
    }
    assert!(
        controllers_seen.iter().all(|&s| s),
        "sample head must cover all controllers: {controllers_seen:?}"
    );
}

/// The clean seeded baseline used by `chaos --inject` really is clean.
#[test]
fn inject_baseline_is_clean() {
    let out = execute(&inject_config(Mutation::None));
    assert_eq!(out.kind, "ok", "[{}] {}", out.class, out.detail);
    assert!(out.deliveries > 0, "baseline must deliver messages");
}

fn assert_caught(mutation: Mutation) {
    let expected = mutation.expected_class().expect("corrupting mutation");
    let out = execute(&inject_config(mutation));
    assert_eq!(
        out.kind,
        "violation",
        "{} not caught: [{}/{}] {}",
        mutation.label(),
        out.kind,
        out.class,
        out.detail
    );
    assert_eq!(
        out.class,
        expected,
        "{} tripped the wrong class: {}",
        mutation.label(),
        out.detail
    );
    assert!(out.violations >= 1);
}

/// A swallowed delivery breaks message conservation at finish.
#[test]
fn dropped_delivery_trips_conservation() {
    assert_caught(Mutation::DropDelivery);
}

/// An inverted delivery pair breaks global FCFS order.
#[test]
fn reordered_pair_trips_fcfs() {
    assert_caught(Mutation::ReorderPair);
}

/// A back-dated probe breaks clock consistency.
#[test]
fn stale_clock_trips_clock() {
    assert_caught(Mutation::StaleClock);
}

/// Corruptions also fire inside composed stress (faults and churn
/// active), not just on the clean baseline: the monitor separates the
/// corruption from legal stress-induced behavior.
#[test]
fn mutations_caught_under_composed_stress() {
    // Find a stressed sample config that is clean when faithful.
    let cfg = (0..64)
        .map(|i| ChaosConfig::sample(BASE_SEED, i))
        .find(|c| {
            !c.plan.is_none()
                && c.churn != tcw_mac::ChurnPlan::none()
                && execute(c).kind == "ok"
                && execute(&ChaosConfig {
                    mutation: Mutation::DropDelivery,
                    ..c.clone()
                })
                .deliveries
                    >= 4
        })
        .expect("a clean faulted+churned sample in the sweep head");
    for mutation in Mutation::CORRUPTING {
        let out = execute(&ChaosConfig {
            mutation,
            ..cfg.clone()
        });
        assert_eq!(
            out.kind,
            "violation",
            "{} under stress: [{}/{}] {}",
            mutation.label(),
            out.kind,
            out.class,
            out.detail
        );
        assert_eq!(out.class, mutation.expected_class().unwrap());
    }
}

/// Replays are bit-deterministic: the same config yields byte-identical
/// outcome details (the property the record/replay convention rests on).
#[test]
fn outcomes_are_deterministic() {
    for index in [0, 7, 13] {
        let cfg = ChaosConfig::sample(BASE_SEED, index);
        let a = execute(&cfg);
        let b = execute(&cfg);
        assert_eq!(a, b, "config {index} not deterministic");
    }
}
