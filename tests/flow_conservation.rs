//! Integration: the flow-conservation identity of eq. 4.6 / figure 6 —
//! `p(accept) * rho = 1 - P(0)` — holds for the *distributed protocol*,
//! not just the centralized queue abstraction: the fraction of channel
//! time carrying successful transmissions equals the accepted load.

use tcw_experiments::{simulate_panel, Panel, PolicyKind, SimSettings};

fn settings() -> SimSettings {
    SimSettings {
        messages: 8_000,
        warmup: 800,
        ticks_per_tau: 16,
        ..Default::default()
    }
}

#[test]
fn utilization_equals_accepted_load_controlled() {
    for (rho_prime, k) in [(0.5, 100.0), (0.75, 100.0), (0.75, 400.0)] {
        let panel = Panel { rho_prime, m: 25 };
        let p = simulate_panel(panel, PolicyKind::Controlled, k, settings(), 11);
        // Receiver-lost messages *are* transmitted, so channel utilization
        // counts them: utilization ≈ (1 - sender_loss) * rho'.
        let expect = (1.0 - p.sender_loss) * rho_prime;
        assert!(
            (p.utilization - expect).abs() < 0.02,
            "rho'={rho_prime} K={k}: utilization {:.4} vs (1 - sender loss) * rho' = {expect:.4}",
            p.utilization
        );
    }
}

#[test]
fn utilization_equals_offered_load_fcfs() {
    // The uncontrolled protocol transmits everything: utilization ≈ rho'.
    let panel = Panel {
        rho_prime: 0.5,
        m: 25,
    };
    let p = simulate_panel(panel, PolicyKind::Fcfs, 100.0, settings(), 12);
    assert!(
        (p.utilization - 0.5).abs() < 0.02,
        "utilization {:.4} vs 0.5",
        p.utilization
    );
}

#[test]
fn controlled_utilization_is_all_useful_work() {
    // §4.2's qualitative claim: under the controlled protocol the channel
    // is used only for messages accepted at the receiver (up to the small
    // waiting-time-approximation leak); under FCFS at a tight deadline a
    // large share of utilization is wasted on dead messages.
    let panel = Panel {
        rho_prime: 0.75,
        m: 25,
    };
    let k = 100.0;
    let c = simulate_panel(panel, PolicyKind::Controlled, k, settings(), 13);
    let f = simulate_panel(panel, PolicyKind::Fcfs, k, settings(), 13);
    // useful utilization = fraction of channel time carrying messages that
    // met the deadline ≈ utilization * (delivered-in-time / transmitted)
    let c_useful = c.utilization * (1.0 - c.loss) / (1.0 - c.sender_loss);
    let f_useful = f.utilization * (1.0 - f.loss); // fcfs transmits all
    assert!(
        c_useful > f_useful + 0.02,
        "controlled useful {:.4} vs fcfs useful {:.4}",
        c_useful,
        f_useful
    );
}
