//! Integration: the distributed-consistency property of the protocol.
//!
//! A station model that sees only channel feedback (slot outcomes and
//! durations) plus the public policy must reproduce *every* window
//! decision the engine makes — across all disciplines and across traffic
//! models (Poisson, bursty voice, clustered sensor reports). This is the
//! paper's premise that "all stations follow this policy, and thus all
//! stations select the same window".

use tcw_mac::traffic::{SensorConfig, SensorSource, VoiceConfig, VoiceSource};
use tcw_mac::{ArrivalSource, ChannelConfig};
use tcw_sim::time::{Dur, Time};
use tcw_window::engine::{Engine, EngineConfig};
use tcw_window::metrics::MeasureConfig;
use tcw_window::mirror::StationMirror;
use tcw_window::policy::ControlPolicy;

const TPT: u64 = 8;

fn channel() -> ChannelConfig {
    ChannelConfig {
        ticks_per_tau: TPT,
        message_slots: 25,
        guard: false,
    }
}

fn check<S: ArrivalSource>(policy: ControlPolicy, source: S, seed: u64, horizon: u64) {
    let measure = MeasureConfig {
        start: Time::ZERO,
        end: Time::from_ticks(u64::MAX / 2),
        deadline: Dur::from_ticks(100 * TPT),
    };
    let mut mirror = StationMirror::new(policy.clone(), seed);
    let mut eng = Engine::new(
        EngineConfig {
            channel: channel(),
            policy,
            measure,
            seed,
        },
        source,
    );
    eng.run_until(Time::from_ticks(horizon), &mut mirror);
    mirror.assert_consistent();
    assert!(
        mirror.decisions_checked() > 50,
        "too few decisions exercised"
    );
}

fn poisson() -> tcw_mac::PoissonArrivals {
    tcw_mac::PoissonArrivals::per_tau(0.03, TPT, 30)
}

fn voice() -> VoiceSource {
    VoiceSource::new(VoiceConfig {
        stations: 20,
        mean_talkspurt: Dur::from_ticks(8_000),
        mean_silence: Dur::from_ticks(12_000),
        packet_interval: Dur::from_ticks(150 * TPT),
    })
}

fn sensors() -> SensorSource {
    SensorSource::new(SensorConfig {
        stations: 30,
        mean_event_gap: Dur::from_ticks(120 * TPT),
        mean_reports: 3.0,
        jitter: Dur::from_ticks(4 * TPT),
    })
}

#[test]
fn stations_agree_controlled_poisson() {
    let k = Dur::from_ticks(100 * TPT);
    let w = Dur::from_ticks(40 * TPT);
    check(ControlPolicy::controlled(k, w), poisson(), 1, 2_000_000);
}

#[test]
fn stations_agree_all_disciplines_poisson() {
    let w = Dur::from_ticks(40 * TPT);
    check(ControlPolicy::fcfs(w), poisson(), 2, 1_000_000);
    check(ControlPolicy::lcfs(w), poisson(), 3, 1_000_000);
    check(ControlPolicy::random(w), poisson(), 4, 1_000_000);
}

#[test]
fn stations_agree_on_bursty_voice() {
    let k = Dur::from_ticks(100 * TPT);
    let w = Dur::from_ticks(30 * TPT);
    check(ControlPolicy::controlled(k, w), voice(), 5, 2_000_000);
    check(ControlPolicy::lcfs(w), voice(), 6, 1_000_000);
}

#[test]
fn stations_agree_on_clustered_sensors() {
    let k = Dur::from_ticks(150 * TPT);
    let w = Dur::from_ticks(30 * TPT);
    check(ControlPolicy::controlled(k, w), sensors(), 7, 2_000_000);
    check(ControlPolicy::random(w), sensors(), 8, 1_000_000);
}
