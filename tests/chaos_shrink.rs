//! End-to-end tests of the chaos shrinker and its replay artifacts.

use tcw_experiments::chaos::{inject_config, ChaosController, Mutation, BASE_SEED};
use tcw_experiments::chaos_execute as execute;
use tcw_experiments::{shrink, ChaosConfig, ChaosRecord};

/// Shrinking a seeded violation preserves the failure, strictly reduces
/// the config, and lands on a 1-minimal fixpoint: no single remaining
/// candidate transformation still reproduces the violation.
#[test]
fn shrinker_minimizes_seeded_violation() {
    let cfg = inject_config(Mutation::ReorderPair);
    let out = execute(&cfg);
    assert_eq!(out.kind, "violation");
    assert_eq!(out.class, "fcfs");

    let res = shrink(&cfg, &out.kind, &out.class);
    let min_out = execute(&res.config);
    assert_eq!(min_out.kind, "violation", "shrunk config lost the failure");
    assert_eq!(min_out.class, "fcfs");
    assert!(res.trials > 0);
    assert!(res.steps.iter().any(|s| s.kept), "nothing was shrunk");

    // Strictly smaller on at least one axis.
    assert!(
        res.config.horizon_ticks < cfg.horizon_ticks
            || res.config.stations < cfg.stations
            || res.config.segments.len() < cfg.segments.len()
            || (cfg.adv_burst > 0 && res.config.adv_burst == 0),
        "shrinker accepted nothing: {:?}",
        res.config
    );

    // 1-minimality: every candidate applied to the fixpoint must lose
    // the failure (this re-runs the shrinker's own final pass).
    let again = shrink(&res.config, &out.kind, &out.class);
    assert_eq!(
        again.config, res.config,
        "fixpoint not stable under re-shrinking"
    );
    assert!(
        again.steps.iter().all(|s| !s.kept),
        "a candidate still reproduced after the fixpoint"
    );
}

/// The mutation is never shrunk away: it is the seeded failure cause.
#[test]
fn shrinker_keeps_the_mutation() {
    let cfg = inject_config(Mutation::DropDelivery);
    let out = execute(&cfg);
    assert_eq!(out.kind, "violation");
    let res = shrink(&cfg, &out.kind, &out.class);
    assert_eq!(res.config.mutation, Mutation::DropDelivery);
}

/// Records round-trip exactly and replay reproduces bit-identically.
#[test]
fn record_roundtrip_and_replay_reproduce() {
    let cfg = inject_config(Mutation::StaleClock);
    let out = execute(&cfg);
    let rec = ChaosRecord {
        config: cfg,
        kind: out.kind.clone(),
        class: out.class.clone(),
        detail: out.detail.clone(),
    };
    let parsed = ChaosRecord::from_json(&rec.to_json()).expect("roundtrip");
    assert_eq!(parsed, rec);
    let replayed = execute(&parsed.config);
    assert_eq!(replayed.kind, rec.kind);
    assert_eq!(replayed.class, rec.class);
    assert_eq!(replayed.detail, rec.detail, "replay must be bit-identical");
}

/// Stale or foreign artifacts are rejected with an error, never a panic
/// (the shared exit-2 convention depends on it).
#[test]
fn stale_or_foreign_artifacts_are_rejected() {
    let rec = ChaosRecord {
        config: ChaosConfig::sample(BASE_SEED, 1),
        kind: "ok".to_string(),
        class: String::new(),
        detail: "d".to_string(),
    };
    let json = rec.to_json();
    let stale = json.replacen("\"version\": \"", "\"version\": \"stale-", 1);
    assert!(ChaosRecord::from_json(&stale).is_err());
    assert!(ChaosRecord::from_json("{}").is_err());
    assert!(ChaosRecord::from_json(&json.replace("\"chaos\"", "\"robustness\"")).is_err());
    // Out-of-range parameters degrade to an error via ChaosConfig::check.
    let bad = json.replace("\"stations\":", "\"stations_gone\":");
    assert!(ChaosRecord::from_json(&bad).is_err());
}

/// A shrunk clean config stays clean: the shrinker predicate compares
/// (kind, class), so shrinking an "ok" run is a no-op fixpoint search
/// that never fabricates a failure.
#[test]
fn shrinking_a_clean_run_never_fabricates_failure() {
    let cfg = ChaosConfig::sample(BASE_SEED, 2);
    let out = execute(&cfg);
    assert_eq!(out.kind, "ok");
    let res = shrink(&cfg, &out.kind, &out.class);
    let min_out = execute(&res.config);
    assert_eq!(min_out.kind, "ok");
}

/// Candidate transformations preserve config validity (check() passes at
/// every accepted step), including controller downgrades.
#[test]
fn shrunk_configs_stay_valid() {
    let mut cfg = inject_config(Mutation::ReorderPair);
    cfg.controller = ChaosController::Aimd;
    let out = execute(&cfg);
    if out.kind == "violation" {
        let res = shrink(&cfg, &out.kind, &out.class);
        res.config.check().expect("shrunk config valid");
    }
}
