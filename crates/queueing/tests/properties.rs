//! Property-based tests for the analytic queueing models.

use proptest::prelude::*;
use tcw_numerics::grid::GridDist;
use tcw_queueing::impatient::{loss_probability, p_idle, z_series};
use tcw_queueing::lcfs::{lcfs_tail, step_work_pmf};
use tcw_queueing::mg1::{fcfs_tail, rho, waiting_time_cdf};
use tcw_queueing::service::{service_dist, service_mean, SchedulingShape};

/// Strategy: a proper service distribution with no mass at zero.
fn service_strategy() -> impl Strategy<Value = GridDist> {
    proptest::collection::vec(0.0f64..1.0, 1..15).prop_map(|mut v| {
        let total: f64 = v.iter().sum();
        if total <= 0.0 {
            v[0] = 1.0;
        }
        let total: f64 = v.iter().sum();
        for x in &mut v {
            *x /= total;
        }
        let mut pmf = vec![0.0];
        pmf.extend(v);
        GridDist::from_pmf(1.0, pmf)
    })
}

proptest! {
    /// Eq. 4.7 is a probability, monotone non-increasing in K, anchored at
    /// rho/(1+rho) at K = 0.
    #[test]
    fn loss_probability_properties(
        service in service_strategy(),
        lambda_scale in 0.05f64..1.8,
    ) {
        let lambda = lambda_scale / service.mean();
        let anchor = loss_probability(lambda, &service, 0.0);
        let r = lambda * service.mean();
        prop_assert!((anchor - r / (1.0 + r)).abs() < 1e-9);
        let mut prev = anchor;
        for k in [1.0, 2.0, 5.0, 10.0, 25.0, 60.0, 150.0] {
            let p = loss_probability(lambda, &service, k);
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert!(p <= prev + 1e-12, "loss increased at K={k}");
            prev = p;
        }
    }

    /// Flow conservation (eq. 4.6) holds identically: P(0) derived from
    /// the loss is a probability, decreasing in K (busier server at
    /// looser deadlines).
    #[test]
    fn p_idle_properties(service in service_strategy(), lambda_scale in 0.05f64..0.9) {
        let lambda = lambda_scale / service.mean();
        let mut prev = 1.0;
        for k in [0.0, 2.0, 8.0, 30.0, 100.0] {
            let p0 = p_idle(lambda, &service, k);
            prop_assert!((0.0..=1.0).contains(&p0));
            prop_assert!(p0 <= prev + 1e-12);
            prev = p0;
        }
    }

    /// z(K) is non-decreasing in K and bounded by the geometric sum.
    #[test]
    fn z_series_monotone(service in service_strategy(), lambda_scale in 0.05f64..0.9) {
        let lambda = lambda_scale / service.mean();
        let r = rho(lambda, &service);
        let mut prev = 0.0;
        for k in [0.0, 1.0, 4.0, 16.0, 64.0] {
            let z = z_series(lambda, &service, k);
            prop_assert!(z + 1e-12 >= prev);
            prop_assert!(z <= 1.0 / (1.0 - r) + 1e-9);
            prev = z;
        }
    }

    /// FCFS waiting CDF: starts at 1 - rho, monotone, reaches ~1.
    #[test]
    fn fcfs_waiting_cdf_properties(service in service_strategy(), lambda_scale in 0.05f64..0.9) {
        let lambda = lambda_scale / service.mean();
        let cdf = waiting_time_cdf(lambda, &service, 3_000);
        prop_assert!((cdf[0] - (1.0 - lambda_scale)).abs() < 1e-9);
        for w in cdf.windows(2) {
            prop_assert!(w[1] + 1e-12 >= w[0]);
        }
        prop_assert!(cdf.last().unwrap() > &0.98);
    }

    /// LCFS and FCFS share P(W = 0) and the ordering flips between small
    /// and large K cannot make either tail negative or above one.
    #[test]
    fn lcfs_tail_is_probability(service in service_strategy(), lambda_scale in 0.1f64..0.9) {
        let lambda = lambda_scale / service.mean();
        let mut prev = 1.0;
        for k in [0.0, 3.0, 10.0, 40.0, 120.0] {
            let t = lcfs_tail(lambda, &service, k);
            prop_assert!((0.0..=1.0).contains(&t));
            prop_assert!(t <= prev + 1e-12);
            prev = t;
        }
        // Far tails: LCFS >= FCFS (heavier tail, same mean).
        let t_l = lcfs_tail(lambda, &service, 400.0);
        let t_f = fcfs_tail(lambda, &service, 400.0);
        prop_assert!(t_l + 1e-9 >= t_f, "lcfs {t_l} < fcfs {t_f}");
    }

    /// The compound-Poisson step-work pmf has the right mean and mass.
    #[test]
    fn step_work_properties(service in service_strategy(), lam in 0.01f64..0.5) {
        let j = step_work_pmf(lam, &service, 2_000);
        let total: f64 = j.iter().sum();
        prop_assert!(total > 0.999 && total <= 1.0 + 1e-9);
        let mean: f64 = j.iter().enumerate().map(|(n, &p)| n as f64 * p).sum();
        prop_assert!((mean - lam * service.mean()).abs() < 1e-6);
    }

    /// Service-model invariants: both shapes share the mean, which equals
    /// overhead + M; masses are complete.
    #[test]
    fn service_model_invariants(mu in 0.05f64..3.0, m in 1u64..60) {
        let exact = service_dist(SchedulingShape::ExactSplitting, mu, m);
        let geo = service_dist(SchedulingShape::Geometric, mu, m);
        let want = service_mean(mu, m);
        prop_assert!((exact.mean() - want).abs() < 1e-5);
        prop_assert!((geo.mean() - want).abs() < 1e-5);
        prop_assert!(exact.cdf((m - 1) as f64) == 0.0);
        prop_assert!((exact.total_mass() - 1.0).abs() < 1e-7);
        prop_assert!((geo.total_mass() - 1.0).abs() < 1e-7);
    }
}
