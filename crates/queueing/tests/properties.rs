//! Property-based tests for the analytic queueing models.
//!
//! Randomized cases are drawn from the deterministic `tcw_sim` [`Rng`] so
//! every failure reproduces from its case index (the repository builds
//! offline, without an external property-testing framework).

use tcw_numerics::grid::GridDist;
use tcw_queueing::impatient::{loss_probability, p_idle, z_series};
use tcw_queueing::lcfs::{lcfs_tail, step_work_pmf};
use tcw_queueing::mg1::{fcfs_tail, rho, waiting_time_cdf};
use tcw_queueing::service::{service_dist, service_mean, SchedulingShape};
use tcw_sim::rng::Rng;

const CASES: u64 = 100;

/// A proper service distribution with no mass at zero.
fn service(rng: &mut Rng) -> GridDist {
    let n = 1 + rng.below(13) as usize;
    let mut v: Vec<f64> = (0..n).map(|_| rng.f64()).collect();
    let total: f64 = v.iter().sum();
    if total <= 0.0 {
        v[0] = 1.0;
    }
    let total: f64 = v.iter().sum();
    for x in &mut v {
        *x /= total;
    }
    let mut pmf = vec![0.0];
    pmf.extend(v);
    GridDist::from_pmf(1.0, pmf)
}

/// Eq. 4.7 is a probability, monotone non-increasing in K, anchored at
/// rho/(1+rho) at K = 0.
#[test]
fn loss_probability_properties() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x0_1 ^ (case << 8));
        let service = service(&mut rng);
        let lambda = (0.05 + rng.f64() * 1.75) / service.mean();
        let anchor = loss_probability(lambda, &service, 0.0);
        let r = lambda * service.mean();
        assert!((anchor - r / (1.0 + r)).abs() < 1e-9, "case {case}");
        let mut prev = anchor;
        for k in [1.0, 2.0, 5.0, 10.0, 25.0, 60.0, 150.0] {
            let p = loss_probability(lambda, &service, k);
            assert!((0.0..=1.0).contains(&p));
            assert!(p <= prev + 1e-12, "case {case}: loss increased at K={k}");
            prev = p;
        }
    }
}

/// Flow conservation (eq. 4.6) holds identically: P(0) derived from
/// the loss is a probability, decreasing in K (busier server at
/// looser deadlines).
#[test]
fn p_idle_properties() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x0_2 ^ (case << 8));
        let service = service(&mut rng);
        let lambda = (0.05 + rng.f64() * 0.85) / service.mean();
        let mut prev = 1.0;
        for k in [0.0, 2.0, 8.0, 30.0, 100.0] {
            let p0 = p_idle(lambda, &service, k);
            assert!((0.0..=1.0).contains(&p0), "case {case}");
            assert!(p0 <= prev + 1e-12, "case {case}");
            prev = p0;
        }
    }
}

/// z(K) is non-decreasing in K and bounded by the geometric sum.
#[test]
fn z_series_monotone() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x0_3 ^ (case << 8));
        let service = service(&mut rng);
        let lambda = (0.05 + rng.f64() * 0.85) / service.mean();
        let r = rho(lambda, &service);
        let mut prev = 0.0;
        for k in [0.0, 1.0, 4.0, 16.0, 64.0] {
            let z = z_series(lambda, &service, k);
            assert!(z + 1e-12 >= prev, "case {case}");
            assert!(z <= 1.0 / (1.0 - r) + 1e-9, "case {case}");
            prev = z;
        }
    }
}

/// FCFS waiting CDF: starts at 1 - rho, monotone, reaches ~1.
#[test]
fn fcfs_waiting_cdf_properties() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x0_4 ^ (case << 8));
        let service = service(&mut rng);
        let lambda_scale = 0.05 + rng.f64() * 0.85;
        let lambda = lambda_scale / service.mean();
        let cdf = waiting_time_cdf(lambda, &service, 3_000);
        assert!((cdf[0] - (1.0 - lambda_scale)).abs() < 1e-9, "case {case}");
        for w in cdf.windows(2) {
            assert!(w[1] + 1e-12 >= w[0], "case {case}");
        }
        assert!(cdf.last().unwrap() > &0.98, "case {case}");
    }
}

/// LCFS and FCFS share P(W = 0) and the ordering flips between small
/// and large K cannot make either tail negative or above one.
#[test]
fn lcfs_tail_is_probability() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x0_5 ^ (case << 8));
        let service = service(&mut rng);
        let lambda = (0.1 + rng.f64() * 0.8) / service.mean();
        let mut prev = 1.0;
        for k in [0.0, 3.0, 10.0, 40.0, 120.0] {
            let t = lcfs_tail(lambda, &service, k);
            assert!((0.0..=1.0).contains(&t), "case {case}");
            assert!(t <= prev + 1e-12, "case {case}");
            prev = t;
        }
        // Far tails: LCFS >= FCFS (heavier tail, same mean).
        let t_l = lcfs_tail(lambda, &service, 400.0);
        let t_f = fcfs_tail(lambda, &service, 400.0);
        assert!(t_l + 1e-9 >= t_f, "case {case}: lcfs {t_l} < fcfs {t_f}");
    }
}

/// The compound-Poisson step-work pmf has the right mean and mass.
#[test]
fn step_work_properties() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x0_6 ^ (case << 8));
        let service = service(&mut rng);
        let lam = 0.01 + rng.f64() * 0.49;
        let j = step_work_pmf(lam, &service, 2_000);
        let total: f64 = j.iter().sum();
        assert!(total > 0.999 && total <= 1.0 + 1e-9, "case {case}");
        let mean: f64 = j.iter().enumerate().map(|(n, &p)| n as f64 * p).sum();
        assert!((mean - lam * service.mean()).abs() < 1e-6, "case {case}");
    }
}

/// Service-model invariants: both shapes share the mean, which equals
/// overhead + M; masses are complete.
#[test]
fn service_model_invariants() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x0_7 ^ (case << 8));
        let mu = 0.05 + rng.f64() * 2.95;
        let m = 1 + rng.below(59);
        let exact = service_dist(SchedulingShape::ExactSplitting, mu, m);
        let geo = service_dist(SchedulingShape::Geometric, mu, m);
        let want = service_mean(mu, m);
        assert!((exact.mean() - want).abs() < 1e-5, "case {case}");
        assert!((geo.mean() - want).abs() < 1e-5, "case {case}");
        assert!(exact.cdf((m - 1) as f64) == 0.0, "case {case}");
        assert!((exact.total_mass() - 1.0).abs() < 1e-7, "case {case}");
        assert!((geo.total_mass() - 1.0).abs() < 1e-7, "case {case}");
    }
}
