//! Classical M/G/1 results on the lattice.
//!
//! The waiting-time distribution of a stable M/G/1 FCFS queue is the
//! Beneš/Takács series (the paper's eq. 4.4 with `P(0) = 1 - rho`):
//!
//! ```text
//! F_W(w) = (1 - rho) * sum_i rho^i * beta^(i)(w)
//! ```
//!
//! where `beta` is the residual service distribution. On the lattice the
//! series is the prefix sum of [`tcw_numerics::grid::renewal_series`].
//! Closed-form M/M/1 and M/D/1 oracles validate the machinery.

use tcw_numerics::grid::{renewal_series, GridDist};

/// Offered load `rho = lambda * E[X]`.
pub fn rho(lambda: f64, service: &GridDist) -> f64 {
    lambda * service.mean()
}

/// Pollaczek–Khinchine mean waiting time `lambda * E[X^2] / (2 (1 - rho))`.
///
/// # Panics
/// Panics if the queue is unstable (`rho >= 1`).
pub fn pk_mean_wait(lambda: f64, service: &GridDist) -> f64 {
    let r = rho(lambda, service);
    assert!(r < 1.0, "unstable queue: rho = {r}");
    lambda * service.second_moment() / (2.0 * (1.0 - r))
}

/// The FCFS waiting-time CDF evaluated on the lattice up to `n` points.
///
/// Returns the vector `F_W(j)` for `j = 0..n` (in units of the service
/// lattice step).
///
/// # Panics
/// Panics if `rho >= 1` or the service mean is zero.
pub fn waiting_time_cdf(lambda: f64, service: &GridDist, n: usize) -> Vec<f64> {
    let r = rho(lambda, service);
    assert!(r < 1.0, "unstable queue: rho = {r}");
    let beta = service.residual();
    let series = renewal_series(&beta, r, n);
    series
        .prefix_sums()
        .into_iter()
        .map(|z| ((1.0 - r) * z).min(1.0))
        .collect()
}

/// `P(W > k)` for the FCFS M/G/1 queue — the receiver-loss probability of
/// the uncontrolled FCFS window protocol at deadline `k` (paper's [Kurose
/// 83] baseline), under the paper's waiting-time definition (a message's
/// own scheduling time excluded).
///
/// Unstable queues (`rho >= 1`) lose almost every message in steady state:
/// the function returns `1.0`.
pub fn fcfs_tail(lambda: f64, service: &GridDist, k: f64) -> f64 {
    if rho(lambda, service) >= 1.0 {
        return 1.0;
    }
    if k < 0.0 {
        return 1.0;
    }
    let n = (k / service.step()).ceil() as usize + 2;
    let cdf = waiting_time_cdf(lambda, service, n);
    let idx = ((k / service.step() + 1e-9).floor() as usize).min(cdf.len() - 1);
    (1.0 - cdf[idx]).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Discretized exponential service with the given mean (fine lattice).
    fn exp_service(mean: f64, step: f64, tol: f64) -> GridDist {
        // P(X in [j*step, (j+1)*step)) for an exponential; assign to j.
        let mut pmf = Vec::new();
        let mut j = 0usize;
        loop {
            let lo = j as f64 * step;
            let hi = lo + step;
            let p = (-lo / mean).exp() - (-hi / mean).exp();
            pmf.push(p);
            if (-hi / mean).exp() < tol || pmf.len() > 2_000_000 {
                break;
            }
            j += 1;
        }
        GridDist::from_pmf(step, pmf)
    }

    #[test]
    fn pk_matches_mm1() {
        // M/M/1: E[W] = rho / (mu - lambda) with mu = 1/mean.
        let step = 0.01;
        let service = exp_service(1.0, step, 1e-12);
        let lambda = 0.7;
        let expect = 0.7 / (1.0 - 0.7); // rho/(mu - lambda), mu=1
        let got = pk_mean_wait(lambda, &service);
        assert!(
            (got - expect).abs() / expect < 0.02,
            "got {got}, want ≈ {expect}"
        );
    }

    #[test]
    fn pk_matches_md1() {
        // M/D/1: E[W] = rho * d / (2(1-rho)).
        let service = GridDist::point(1.0, 10.0);
        let lambda = 0.08; // rho = 0.8
        let expect = 0.8 * 10.0 / (2.0 * 0.2);
        let got = pk_mean_wait(lambda, &service);
        assert!((got - expect).abs() < 1e-9, "got {got}, want {expect}");
    }

    #[test]
    fn mm1_waiting_tail_is_exponential() {
        // M/M/1 FCFS: P(W > t) = rho * exp(-(mu - lambda) t).
        let step = 0.02;
        let service = exp_service(1.0, step, 1e-13);
        let lambda = 0.6;
        for &t in &[0.5f64, 1.0, 2.0, 5.0] {
            let expect = 0.6 * (-(1.0 - 0.6) * t).exp();
            let got = fcfs_tail(lambda, &service, t);
            assert!(
                (got - expect).abs() < 0.02,
                "t={t}: got {got}, want {expect}"
            );
        }
    }

    #[test]
    fn waiting_cdf_starts_at_p_idle() {
        // P(W = 0) = 1 - rho for M/G/1 FCFS... on the lattice, F(0)
        // includes waits inside the first step; with a deterministic
        // service of >= 1 step the wait is 0 exactly iff the system is
        // empty on arrival.
        let service = GridDist::point(1.0, 5.0);
        let lambda = 0.1; // rho = 0.5
        let cdf = waiting_time_cdf(lambda, &service, 10);
        assert!((cdf[0] - 0.5).abs() < 1e-9, "F(0) = {}", cdf[0]);
    }

    #[test]
    fn waiting_cdf_is_monotone_to_one() {
        let service = GridDist::point(1.0, 4.0);
        let cdf = waiting_time_cdf(0.2, &service, 400);
        for w in cdf.windows(2) {
            assert!(w[1] + 1e-12 >= w[0]);
        }
        assert!((cdf.last().unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn unstable_queue_loses_everything() {
        let service = GridDist::point(1.0, 10.0);
        assert_eq!(fcfs_tail(0.2, &service, 100.0), 1.0); // rho = 2
    }

    #[test]
    fn tail_decreases_with_k() {
        let service = GridDist::point(1.0, 5.0);
        let lambda = 0.15;
        let mut prev = 1.0;
        for k in [0.0, 5.0, 10.0, 20.0, 50.0, 100.0] {
            let t = fcfs_tail(lambda, &service, k);
            assert!(t <= prev + 1e-12);
            prev = t;
        }
        assert!(prev < 0.01, "tail at K=100 still {prev}");
    }
}
