//! The paper's `K`-marching iteration and the Figure-7 analytic curves.
//!
//! The scheduling-time component of the service distribution depends on
//! the traffic actually scheduled, i.e. on `lambda_eff = lambda * (1 -
//! p(loss))` — which itself depends on the loss being computed. The paper
//! resolves the circularity by marching `K` upward from `K = 0` (where the
//! scheduling delay is exactly zero and the loss is exactly
//! `rho'/(1 + rho')`), using the loss at the previous grid point to build
//! the service distribution at the next (§4.1, last paragraph). This
//! module adds an inner fixed-point sweep at each grid point, which makes
//! the result insensitive to the grid spacing.
//!
//! Window lengths follow the heuristic of §4.1: `w* = mu* / lambda`
//! minimizes the mean scheduling time at the *offered* rate; the effective
//! window occupancy at deadline `K` is then `mu = lambda_eff * w*`, which
//! the marching updates as the loss evolves.

use crate::impatient::loss_probability;
use crate::mg1::{fcfs_tail, rho};
use crate::service::{service_dist, SchedulingShape};
use tcw_numerics::grid::GridDist;
use tcw_window::analysis::optimal_mu;

/// Configuration for one Figure-7 panel (one `(rho', M)` pair).
#[derive(Clone, Copy, Debug)]
pub struct PanelConfig {
    /// Message length in units of `tau` (the paper's `M`).
    pub m: u64,
    /// Normalized offered load `rho' = lambda * M * tau` (all messages).
    pub rho_prime: f64,
    /// Scheduling-time distribution shape.
    pub shape: SchedulingShape,
}

impl PanelConfig {
    /// Aggregate arrival rate per `tau`.
    pub fn lambda(&self) -> f64 {
        self.rho_prime / self.m as f64
    }

    /// The heuristic window length `w* = mu*/lambda`, in `tau`.
    pub fn heuristic_window(&self) -> f64 {
        optimal_mu() / self.lambda()
    }
}

/// One point of an analytic loss curve.
#[derive(Clone, Copy, Debug)]
pub struct CurvePoint {
    /// Deadline `K` in units of `tau`.
    pub k: f64,
    /// Loss probability.
    pub loss: f64,
    /// Mean service time (scheduling + transmission) used at this point.
    pub service_mean: f64,
}

/// The controlled protocol's analytic loss curve via `K`-marching.
///
/// `k_grid` must be increasing and start at (or near) zero.
///
/// # Panics
/// Panics if the grid is empty or not increasing.
pub fn controlled_curve(cfg: PanelConfig, k_grid: &[f64]) -> Vec<CurvePoint> {
    assert!(!k_grid.is_empty());
    assert!(
        k_grid.windows(2).all(|w| w[1] > w[0]),
        "K grid must be increasing"
    );
    let lambda = cfg.lambda();
    let w_star = cfg.heuristic_window();

    let mut out = Vec::with_capacity(k_grid.len());
    // K = 0 anchor: scheduling delay exactly 0, loss = rho'/(1 + rho').
    let mut p_prev = cfg.rho_prime / (1.0 + cfg.rho_prime);

    for &k in k_grid {
        // Inner fixed point: service distribution from the accepted rate.
        let mut p = p_prev;
        for _ in 0..50 {
            let mu = (lambda * (1.0 - p) * w_star).max(1e-9);
            let service = service_dist(cfg.shape, mu, cfg.m);
            let p_new = loss_probability(lambda, &service, k);
            if (p_new - p).abs() < 1e-10 {
                p = p_new;
                break;
            }
            p = p_new;
        }
        let mu = (lambda * (1.0 - p) * w_star).max(1e-9);
        let service = service_dist(cfg.shape, mu, cfg.m);
        out.push(CurvePoint {
            k,
            loss: p,
            service_mean: service.mean(),
        });
        p_prev = p;
    }
    out
}

/// The uncontrolled FCFS baseline ([Kurose 83]): every message is served,
/// losses occur only at the receiver when the waiting time exceeds `K`.
///
/// With `include_own_sched` the message's own scheduling time is added to
/// its waiting time (the *true* waiting time measured by the simulation);
/// without it the paper's approximate waiting-time definition is used.
///
/// For `rho >= 1` the queue is unstable and the steady-state loss is 1.
pub fn fcfs_curve(cfg: PanelConfig, k_grid: &[f64], include_own_sched: bool) -> Vec<CurvePoint> {
    let lambda = cfg.lambda();
    // All messages are scheduled: the window occupancy is the universal
    // optimum mu*.
    let mu = optimal_mu();
    let service = service_dist(cfg.shape, mu, cfg.m);
    let service_mean = service.mean();

    // Waiting time of interest: W (queue wait) [+ own scheduling time].
    let wait_dist: WaitModel = if rho(lambda, &service) >= 1.0 {
        WaitModel::Unstable
    } else if include_own_sched {
        // Own scheduling overhead: service minus the deterministic M.
        let overhead_pmf: Vec<f64> = service.pmf()[cfg.m as usize..].to_vec();
        let overhead = GridDist::from_pmf(1.0, overhead_pmf);
        WaitModel::Convolved {
            service,
            overhead,
            lambda,
        }
    } else {
        WaitModel::Plain { service, lambda }
    };

    k_grid
        .iter()
        .map(|&k| CurvePoint {
            k,
            loss: wait_dist.tail(k),
            service_mean,
        })
        .collect()
}

/// The uncontrolled LCFS baseline: every message is served (newest
/// first); losses occur only at the receiver when the waiting time —
/// a delay busy period — exceeds `K`. See [`crate::lcfs`].
///
/// `include_own_sched` adds the message's own scheduling time, matching
/// the simulation's true-waiting-time accounting.
pub fn lcfs_curve(cfg: PanelConfig, k_grid: &[f64], include_own_sched: bool) -> Vec<CurvePoint> {
    use crate::lcfs::lcfs_wait_pmf;
    let lambda = cfg.lambda();
    let mu = optimal_mu();
    let service = service_dist(cfg.shape, mu, cfg.m);
    let service_mean = service.mean();
    let k_max = k_grid.iter().copied().fold(0.0f64, f64::max);
    let nmax = (k_max / service.step()).ceil() as usize + service.len() + 2;
    let (p_zero, pmf) = lcfs_wait_pmf(lambda, &service, nmax);

    // CDF of W (+ own scheduling overhead when requested).
    let mut w_pmf = vec![0.0; nmax];
    w_pmf[0] = p_zero;
    for (n, &p) in pmf.iter().enumerate() {
        w_pmf[n] += p;
    }
    let full = if include_own_sched {
        let overhead = GridDist::from_pmf(1.0, service.pmf()[cfg.m as usize..].to_vec());
        let mut out = vec![0.0; nmax];
        for (a, &pa) in w_pmf.iter().enumerate() {
            if pa == 0.0 {
                continue;
            }
            for (b, &pb) in overhead.pmf().iter().enumerate() {
                if a + b < nmax && pb != 0.0 {
                    out[a + b] += pa * pb;
                }
            }
        }
        out
    } else {
        w_pmf
    };
    let mut cdf = Vec::with_capacity(nmax);
    let mut acc = 0.0;
    for &p in &full {
        acc += p;
        cdf.push(acc.min(1.0));
    }
    k_grid
        .iter()
        .map(|&k| {
            let idx = ((k / service.step()).floor() as usize).min(cdf.len() - 1);
            CurvePoint {
                k,
                loss: (1.0 - cdf[idx]).max(0.0),
                service_mean,
            }
        })
        .collect()
}

enum WaitModel {
    Unstable,
    Plain {
        service: GridDist,
        lambda: f64,
    },
    Convolved {
        service: GridDist,
        overhead: GridDist,
        lambda: f64,
    },
}

impl WaitModel {
    fn tail(&self, k: f64) -> f64 {
        match self {
            WaitModel::Unstable => 1.0,
            WaitModel::Plain { service, lambda } => fcfs_tail(*lambda, service, k),
            WaitModel::Convolved {
                service,
                overhead,
                lambda,
            } => {
                // P(W + S_own > k) = sum_j P(S_own = j) P(W > k - j)
                let mut p = 0.0;
                for (j, &pj) in overhead.pmf().iter().enumerate() {
                    if pj == 0.0 {
                        continue;
                    }
                    p += pj * fcfs_tail(*lambda, service, k - j as f64);
                }
                p.min(1.0)
            }
        }
    }
}

/// Convenience: an evenly spaced `K` grid `{step, 2*step, ..., max}`
/// (starting above zero; the `K = 0` anchor is handled internally).
pub fn k_grid(max: f64, step: f64) -> Vec<f64> {
    assert!(step > 0.0 && max >= step);
    let mut out = Vec::new();
    let mut k = step;
    while k <= max + 1e-9 {
        out.push(k);
        k += step;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn panel(rho_prime: f64, m: u64) -> PanelConfig {
        PanelConfig {
            m,
            rho_prime,
            shape: SchedulingShape::Geometric,
        }
    }

    #[test]
    fn controlled_curve_starts_near_k0_anchor_and_decreases() {
        let cfg = panel(0.5, 25);
        let grid = k_grid(1000.0, 25.0);
        let curve = controlled_curve(cfg, &grid);
        // Early points below the K=0 anchor, decreasing throughout.
        assert!(curve[0].loss < 0.5 / 1.5 + 0.05);
        for w in curve.windows(2) {
            assert!(
                w[1].loss <= w[0].loss + 1e-9,
                "loss increased at K={}",
                w[1].k
            );
        }
        // Large K: loss vanishes (rho' = 0.5 < 1 even with overhead).
        assert!(curve.last().unwrap().loss < 0.02);
    }

    #[test]
    fn controlled_service_mean_exceeds_m() {
        let cfg = panel(0.75, 25);
        let curve = controlled_curve(cfg, &k_grid(500.0, 50.0));
        for p in &curve {
            assert!(p.service_mean >= 25.0);
            assert!(p.service_mean < 25.0 + 5.0, "overhead blew up: {p:?}");
        }
    }

    #[test]
    fn fcfs_curve_decreases_and_exceeds_controlled_at_moderate_k() {
        let cfg = panel(0.75, 25);
        let grid = k_grid(1500.0, 25.0);
        let controlled = controlled_curve(cfg, &grid);
        let fcfs = fcfs_curve(cfg, &grid, true);
        for w in fcfs.windows(2) {
            assert!(w[1].loss <= w[0].loss + 1e-9);
        }
        // The paper's headline: the controlled protocol dominates FCFS.
        let mut controlled_wins = 0;
        for (c, f) in controlled.iter().zip(&fcfs) {
            if c.loss <= f.loss + 1e-9 {
                controlled_wins += 1;
            }
        }
        assert!(
            controlled_wins as f64 >= 0.9 * grid.len() as f64,
            "controlled won only {controlled_wins}/{} grid points",
            grid.len()
        );
    }

    #[test]
    fn fcfs_unstable_load_loses_everything() {
        // rho' close to 1: scheduling overhead pushes rho above 1.
        let cfg = panel(0.99, 25);
        let fcfs = fcfs_curve(cfg, &[100.0, 1000.0], false);
        assert_eq!(fcfs[0].loss, 1.0);
        assert_eq!(fcfs[1].loss, 1.0);
    }

    #[test]
    fn own_sched_component_increases_fcfs_loss() {
        let cfg = panel(0.5, 25);
        let grid = [50.0, 100.0, 200.0];
        let with = fcfs_curve(cfg, &grid, true);
        let without = fcfs_curve(cfg, &grid, false);
        for (a, b) in with.iter().zip(&without) {
            assert!(a.loss >= b.loss - 1e-12);
        }
    }

    #[test]
    fn heavier_load_means_higher_controlled_loss() {
        let grid = k_grid(800.0, 100.0);
        let light = controlled_curve(panel(0.25, 25), &grid);
        let heavy = controlled_curve(panel(0.75, 25), &grid);
        for (l, h) in light.iter().zip(&heavy) {
            assert!(h.loss >= l.loss, "K={}", l.k);
        }
    }

    #[test]
    fn longer_messages_need_proportionally_larger_k() {
        // At the same rho' and K/M ratio, losses are comparable; at the
        // same absolute K, M=100 suffers more.
        let grid = [200.0f64];
        let m25 = controlled_curve(panel(0.5, 25), &grid);
        let m100 = controlled_curve(panel(0.5, 100), &grid);
        assert!(m100[0].loss > m25[0].loss);
    }

    #[test]
    fn exact_and_geometric_shapes_agree_roughly() {
        let grid = k_grid(600.0, 100.0);
        let geo = controlled_curve(panel(0.75, 25), &grid);
        let exact = controlled_curve(
            PanelConfig {
                shape: SchedulingShape::ExactSplitting,
                ..panel(0.75, 25)
            },
            &grid,
        );
        for (g, e) in geo.iter().zip(&exact) {
            assert!(
                (g.loss - e.loss).abs() < 0.05,
                "K={}: geometric {} vs exact {}",
                g.k,
                g.loss,
                e.loss
            );
        }
    }

    #[test]
    fn lcfs_curve_decreases_slowly_with_heavy_tail() {
        let cfg = panel(0.75, 25);
        let grid = k_grid(1000.0, 50.0);
        let lcfs = lcfs_curve(cfg, &grid, true);
        for w in lcfs.windows(2) {
            assert!(w[1].loss <= w[0].loss + 1e-9);
        }
        // Crossover vs FCFS: FCFS worse at tight K, better at loose K.
        let fcfs = fcfs_curve(cfg, &grid, true);
        assert!(
            fcfs[0].loss > lcfs[0].loss,
            "tight K: fcfs {:.4} should exceed lcfs {:.4}",
            fcfs[0].loss,
            lcfs[0].loss
        );
        let last = grid.len() - 1;
        assert!(
            fcfs[last].loss < lcfs[last].loss,
            "loose K: lcfs tail {:.4} should exceed fcfs {:.4}",
            lcfs[last].loss,
            fcfs[last].loss
        );
    }

    #[test]
    fn lcfs_zero_k_loss_is_busy_probability_plus_own_sched() {
        // Without the own-sched component, P(W > 0) = rho - sub-step atom.
        let cfg = panel(0.5, 25);
        let c = lcfs_curve(cfg, &[0.5], false);
        let rho = cfg.lambda() * crate::service::service_mean(optimal_mu(), cfg.m);
        assert!(
            (c[0].loss - rho).abs() < 0.05,
            "loss at K->0 {:.4} vs rho {:.4}",
            c[0].loss,
            rho
        );
    }

    #[test]
    fn k_grid_is_well_formed() {
        let g = k_grid(100.0, 25.0);
        assert_eq!(g, vec![25.0, 50.0, 75.0, 100.0]);
    }
}
