//! Service-time distributions for the centralized queue model.
//!
//! A message's service time is `scheduling time + M` (in units of `tau`,
//! on the unit lattice). Two scheduling-time shapes are provided:
//!
//! * [`SchedulingShape::ExactSplitting`] — the full overhead-slot
//!   distribution from the recursive analysis of the windowing process
//!   (`tcw-window::analysis`);
//! * [`SchedulingShape::Geometric`] — the approximation used by the paper
//!   (and [Kurose 83]): a geometric distribution with the correct mean.
//!   (The original work obtained that mean by fitting two exactly-computed
//!   endpoints; having the exact analysis we evaluate the mean directly,
//!   which only strengthens the approximation being reproduced.)

use tcw_numerics::grid::GridDist;
use tcw_window::analysis::{expected_overhead_slots, overhead_slot_pmf};

/// Which distributional shape models the scheduling time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedulingShape {
    /// Exact overhead-slot pmf from the splitting recursion.
    ExactSplitting,
    /// Geometric (from zero) with the exact mean — the paper's model.
    Geometric,
}

/// Builds the service-time distribution (lattice step = one `tau`) for
/// message length `m` slots and window occupancy `mu = lambda_eff * w`.
///
/// `mu <= 0` (no traffic to schedule) degenerates to zero scheduling
/// overhead.
pub fn service_dist(shape: SchedulingShape, mu: f64, m: u64) -> GridDist {
    let overhead = if mu <= 0.0 {
        GridDist::point(1.0, 0.0)
    } else {
        match shape {
            SchedulingShape::ExactSplitting => {
                let pmf = overhead_slot_pmf(mu, 1e-10);
                GridDist::from_pmf(1.0, pmf)
            }
            SchedulingShape::Geometric => {
                let mean = expected_overhead_slots(mu);
                GridDist::geometric_from_zero(1.0, mean, 1e-12)
            }
        }
    };
    overhead.shift(m as usize)
}

/// Mean of the service time (in `tau`) for the given model without
/// materializing the distribution.
pub fn service_mean(mu: f64, m: u64) -> f64 {
    let overhead = if mu <= 0.0 {
        0.0
    } else {
        expected_overhead_slots(mu)
    };
    overhead + m as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_traffic_service_is_deterministic() {
        let d = service_dist(SchedulingShape::ExactSplitting, 0.0, 25);
        assert_eq!(d.len(), 26);
        assert!((d.mean() - 25.0).abs() < 1e-12);
        assert_eq!(d.variance(), 0.0);
    }

    #[test]
    fn both_shapes_share_the_mean() {
        for &mu in &[0.5, 1.26, 2.0] {
            let exact = service_dist(SchedulingShape::ExactSplitting, mu, 25);
            let geo = service_dist(SchedulingShape::Geometric, mu, 25);
            let want = service_mean(mu, 25);
            assert!(
                (exact.mean() - want).abs() < 1e-6,
                "exact mean {} vs {want}",
                exact.mean()
            );
            assert!(
                (geo.mean() - want).abs() < 1e-6,
                "geometric mean {} vs {want}",
                geo.mean()
            );
        }
    }

    #[test]
    fn service_never_shorter_than_transmission() {
        let d = service_dist(SchedulingShape::ExactSplitting, 1.0, 10);
        assert_eq!(d.cdf(9.0), 0.0);
        assert!(d.cdf(10.0) > 0.0);
    }

    #[test]
    fn geometric_shape_has_larger_variance() {
        // The geometric approximation is heavier-tailed than the true
        // splitting distribution at the optimal occupancy.
        let exact = service_dist(SchedulingShape::ExactSplitting, 1.26, 25);
        let geo = service_dist(SchedulingShape::Geometric, 1.26, 25);
        assert!(geo.variance() > exact.variance());
    }

    #[test]
    fn masses_are_complete() {
        for shape in [SchedulingShape::ExactSplitting, SchedulingShape::Geometric] {
            let d = service_dist(shape, 1.0, 25);
            assert!((d.total_mass() - 1.0).abs() < 1e-8);
        }
    }
}
