//! The M/G/1 queue with impatient customers — eq. 4.7.
//!
//! Customers balk when the unfinished work (their prospective FCFS wait)
//! exceeds the constraint `K`; by the figure-5 argument this produces the
//! same server utilization and loss as the protocol's front-of-queue
//! discard. Combining the truncated workload solution (eq. 4.4), the
//! probability-conservation identity (eq. 4.3) and flow conservation
//! (eq. 4.6) gives the loss in closed form (eq. 4.7):
//!
//! ```text
//! p(loss) = 1 - 1/rho + 1 / (rho + rho^2 * z(K, rho))
//! ```
//!
//! with `z` the truncated renewal series of the residual service
//! distribution. Checks (also in the paper): `K -> 0` gives
//! `rho/(1 + rho)` (an arriving customer is lost iff the server is busy)
//! and `K -> ∞` gives `0` for `rho < 1`.

use tcw_numerics::grid::{renewal_series, GridDist};

/// Loss probability of the impatient-customer M/G/1 queue (eq. 4.7).
///
/// * `lambda` — arrival rate of **all** messages, per lattice step of
///   `service`;
/// * `service` — the full service-time distribution (scheduling +
///   transmission);
/// * `k` — the time constraint, in the same units.
///
/// Valid for any `rho > 0`, including overload (`rho >= 1`), where the
/// loss tends to `1 - 1/rho` as `K` grows.
///
/// # Panics
/// Panics if `lambda <= 0`, `k < 0`, or the service mean is zero.
pub fn loss_probability(lambda: f64, service: &GridDist, k: f64) -> f64 {
    assert!(lambda > 0.0);
    assert!(k >= 0.0);
    let rho = lambda * service.mean();
    assert!(rho > 0.0, "zero service time");
    let z = z_series(lambda, service, k);
    (1.0 - 1.0 / rho + 1.0 / (rho + rho * rho * z)).clamp(0.0, 1.0)
}

/// The truncated series `z(K, rho) = sum_i rho^i Int_0^K beta^(i)`.
pub fn z_series(lambda: f64, service: &GridDist, k: f64) -> f64 {
    let rho = lambda * service.mean();
    let beta = service.residual();
    let n = (k / service.step()).floor() as usize + 2;
    renewal_series(&beta, rho, n).partial_sum(k)
}

/// A full loss curve over a `K` grid (units of the service lattice step),
/// computing the renewal series once.
pub fn loss_curve(lambda: f64, service: &GridDist, k_max: f64, k_step: f64) -> Vec<(f64, f64)> {
    assert!(k_step > 0.0 && k_max >= 0.0);
    let rho = lambda * service.mean();
    let beta = service.residual();
    let n = (k_max / service.step()).floor() as usize + 2;
    let series = renewal_series(&beta, rho, n);
    let mut out = Vec::new();
    let mut k = 0.0;
    while k <= k_max + 1e-9 {
        let z = series.partial_sum(k);
        let p = (1.0 - 1.0 / rho + 1.0 / (rho + rho * rho * z)).clamp(0.0, 1.0);
        out.push((k, p));
        k += k_step;
    }
    out
}

/// Probability the server is idle, from flow conservation (eq. 4.6):
/// `P(0) = 1 - rho * p(accept)`.
pub fn p_idle(lambda: f64, service: &GridDist, k: f64) -> f64 {
    let rho = lambda * service.mean();
    let p_accept = 1.0 - loss_probability(lambda, service, k);
    (1.0 - rho * p_accept).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det_service(m: u64) -> GridDist {
        GridDist::point(1.0, m as f64)
    }

    #[test]
    fn k_zero_limit_is_rho_over_one_plus_rho() {
        for &(lambda, m) in &[(0.02, 25u64), (0.03, 25), (0.0075, 100)] {
            let s = det_service(m);
            let rho = lambda * m as f64;
            let p = loss_probability(lambda, &s, 0.0);
            let expect = rho / (1.0 + rho);
            assert!(
                (p - expect).abs() < 1e-10,
                "lambda={lambda}: {p} vs {expect}"
            );
        }
    }

    #[test]
    fn k_infinity_limit_is_zero_when_stable() {
        let s = det_service(25);
        let lambda = 0.02; // rho = 0.5
        let p = loss_probability(lambda, &s, 5_000.0);
        assert!(p < 1e-6, "p = {p}");
    }

    #[test]
    fn overload_limit_is_one_minus_inverse_rho() {
        let s = det_service(10);
        let lambda = 0.2; // rho = 2
        let p = loss_probability(lambda, &s, 10_000.0);
        assert!((p - 0.5).abs() < 1e-3, "p = {p}");
    }

    #[test]
    fn loss_is_monotone_nonincreasing_in_k() {
        let s = det_service(25);
        let lambda = 0.03;
        let curve = loss_curve(lambda, &s, 800.0, 5.0);
        for w in curve.windows(2) {
            assert!(
                w[1].1 <= w[0].1 + 1e-12,
                "loss increased between K={} and K={}",
                w[0].0,
                w[1].0
            );
        }
    }

    #[test]
    fn loss_increases_with_load() {
        let s = det_service(25);
        let k = 200.0;
        let mut prev = 0.0;
        for &lambda in &[0.01, 0.02, 0.03, 0.035] {
            let p = loss_probability(lambda, &s, k);
            assert!(p >= prev);
            prev = p;
        }
    }

    #[test]
    fn curve_matches_pointwise_evaluation() {
        let s = det_service(25);
        let lambda = 0.02;
        for (k, p) in loss_curve(lambda, &s, 300.0, 25.0) {
            let direct = loss_probability(lambda, &s, k);
            assert!((p - direct).abs() < 1e-12, "K={k}");
        }
    }

    #[test]
    fn p_idle_limits() {
        let s = det_service(25);
        let lambda = 0.02; // rho = 0.5
                           // K = 0: p_accept = 1/(1+rho), P(0) = 1 - rho/(1+rho) = 1/(1+rho)
        let p0 = p_idle(lambda, &s, 0.0);
        assert!((p0 - 1.0 / 1.5).abs() < 1e-9, "P(0) = {p0}");
        // K -> inf: P(0) = 1 - rho
        let pinf = p_idle(lambda, &s, 10_000.0);
        assert!((pinf - 0.5).abs() < 1e-6, "P(0) = {pinf}");
    }

    #[test]
    fn stochastic_service_behaves_like_deterministic_at_limits() {
        let s = GridDist::geometric(1.0, 1.0 / 25.0, 1e-13); // mean 25
        let lambda = 0.02;
        let p0 = loss_probability(lambda, &s, 0.0);
        assert!((p0 - 0.5 / 1.5).abs() < 1e-6);
        let pinf = loss_probability(lambda, &s, 50_000.0);
        assert!(pinf < 1e-4, "p = {pinf}");
    }

    #[test]
    fn deterministic_beats_variable_service_at_moderate_k() {
        // Higher service variability worsens the loss at intermediate K.
        let det = det_service(25);
        let geo = GridDist::geometric(1.0, 1.0 / 25.0, 1e-13);
        let lambda = 0.024; // rho = 0.6
        let k = 150.0;
        assert!(loss_probability(lambda, &det, k) < loss_probability(lambda, &geo, k));
    }
}
