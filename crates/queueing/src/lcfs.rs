//! Waiting-time distribution of the non-preemptive M/G/1 **LCFS** queue —
//! an analytic baseline the paper (like [Kurose 83]) obtained only by
//! simulation.
//!
//! An arriving customer finds the server idle with probability `1 - rho`
//! and waits zero. Otherwise it waits one *delay busy period* initiated by
//! the residual service `R` of the customer in service: under LCFS every
//! later arrival is served before our customer, so its wait is the first
//! passage of the workload process from level `R` to zero.
//!
//! On the lattice the workload between arrivals decreases one step per
//! tick while each tick adds a compound-Poisson amount of fresh work
//! `J` (the services of that tick's arrivals, computed by the Panjer
//! recursion). The walk is *skip-free downward* (never drops more than
//! one per tick), so the hitting-time theorem applies exactly:
//!
//! ```text
//! P(T_x = n) = (x / n) * P(J_1 + ... + J_n = n - x)
//! ```
//!
//! Sanity anchors used as tests: `P(W = 0) = 1 - rho`; the **mean** LCFS
//! wait equals the FCFS (Pollaczek–Khinchine) mean — non-preemptive
//! work-conserving disciplines share it — while the variance is larger;
//! and the distribution matches an independent stack-based queue
//! simulation.

use tcw_numerics::grid::GridDist;

/// Compound-Poisson pmf of the work arriving in one lattice step:
/// `J = sum of N services`, `N ~ Poisson(lambda_step)`, via the Panjer
/// recursion, truncated at `nmax` entries.
///
/// # Panics
/// Panics if `lambda_step < 0` or the service pmf has mass at zero.
pub fn step_work_pmf(lambda_step: f64, service: &GridDist, nmax: usize) -> Vec<f64> {
    assert!(lambda_step >= 0.0);
    let s = service.pmf();
    assert!(
        s.first().copied().unwrap_or(0.0) == 0.0,
        "Panjer recursion here assumes no zero-length services"
    );
    let mut j = vec![0.0; nmax];
    j[0] = (-lambda_step).exp();
    for n in 1..nmax {
        let mut acc = 0.0;
        for (k, &sk) in s.iter().enumerate().take(n + 1).skip(1) {
            acc += k as f64 * sk * j[n - k];
        }
        j[n] = lambda_step / n as f64 * acc;
    }
    j
}

/// Midpoint (trapezoid) discretization of the continuous residual-service
/// density: unbiased to `O(h^2)` in the mean, unlike the right-edge
/// convention of [`GridDist::residual`] (which is deliberately
/// conservative for the eq. 4.7 boundary identities). The initiating level
/// of a delay busy period should not carry that +h/2 bias, or the LCFS
/// mean wait drifts off the Pollaczek–Khinchine anchor by
/// `rho/(1-rho) * h/2`.
fn midpoint_residual(service: &GridDist) -> Vec<f64> {
    let mean = service.mean();
    assert!(mean > 0.0);
    let s = service.pmf();
    // tails t_j = P(X > j)
    let mut tails = Vec::with_capacity(s.len());
    let mut tail = service.total_mass();
    for &p in s {
        tail -= p;
        if tail <= 0.0 {
            break;
        }
        tails.push(tail);
    }
    let h = service.step();
    let mut r = Vec::with_capacity(tails.len() + 1);
    r.push(tails.first().copied().unwrap_or(0.0) * h / (2.0 * mean));
    for x in 1..=tails.len() {
        let prev = tails[x - 1];
        let cur = tails.get(x).copied().unwrap_or(0.0);
        r.push((prev + cur) * h / (2.0 * mean));
    }
    r
}

/// The LCFS waiting-time distribution, as `(p_zero, pmf)` where `pmf[n]`
/// is `P(W = n)` for `n >= 1` up to `nmax` lattice steps (the remaining
/// mass is the tail beyond `nmax`, including an infinite-wait atom when
/// `rho >= 1`).
///
/// `lambda` is per lattice step of `service`.
///
/// # Panics
/// Panics if `lambda <= 0` or `nmax == 0`.
pub fn lcfs_wait_pmf(lambda: f64, service: &GridDist, nmax: usize) -> (f64, Vec<f64>) {
    assert!(lambda > 0.0 && nmax > 0);
    let rho = lambda * service.mean();
    let resid = midpoint_residual(service);
    // An arrival inside the final lattice step of the in-service customer
    // waits essentially zero: fold the residual's sub-step atom into the
    // zero-wait probability.
    let p_zero = (1.0 - rho).max(0.0) + rho.min(1.0) * resid[0];
    let j = step_work_pmf(lambda, service, nmax);

    // Iterate conv powers of j; at power n, read P(S_n = n - x) for every
    // residual level x.
    let mut wait = vec![0.0; nmax];
    let mut power = vec![0.0; nmax];
    power[0] = 1.0; // S_0 = 0
    let r = &resid;
    // Sparse support of j (for deterministic services it is a small set
    // of lattice multiples; the dense double loop would be quadratic in
    // the horizon times the full support length).
    let j_support: Vec<(usize, f64)> = j
        .iter()
        .enumerate()
        .filter(|(_, &v)| v > 1e-300)
        .map(|(i, &v)| (i, v))
        .collect();
    for n in 1..nmax {
        // power <- power ⊛ j (truncated)
        let mut next = vec![0.0; nmax];
        for (a, &pa) in power.iter().enumerate() {
            if pa == 0.0 {
                continue;
            }
            for &(b, jb) in &j_support {
                if a + b >= nmax {
                    break;
                }
                next[a + b] += pa * jb;
            }
        }
        power = next;
        // P(T_x = n) = (x/n) P(S_n = n - x): accumulate over residual x.
        let mut p_n = 0.0;
        for (x, &rx) in r.iter().enumerate().skip(1) {
            if rx == 0.0 || x > n {
                continue;
            }
            p_n += rx * (x as f64 / n as f64) * power[n - x];
        }
        wait[n] = rho.min(1.0) * p_n;
    }
    (p_zero, wait)
}

/// `P(W > k)` for the LCFS M/G/1 queue (receiver-loss probability of the
/// uncontrolled LCFS window protocol at deadline `k`, under the paper's
/// waiting-time definition).
///
/// Works in overload too (`rho >= 1`): the un-accumulated mass — waits
/// beyond the computation horizon plus the never-served atom — counts as
/// tail.
pub fn lcfs_tail(lambda: f64, service: &GridDist, k: f64) -> f64 {
    if k < 0.0 {
        return 1.0;
    }
    let n_k = (k / service.step()).floor() as usize;
    let (p_zero, pmf) = lcfs_wait_pmf(lambda, service, n_k + 2);
    let below: f64 = p_zero + pmf.iter().take(n_k + 1).sum::<f64>();
    (1.0 - below).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mg1::pk_mean_wait;
    use tcw_sim::rng::Rng;

    fn det_service(m: u64) -> GridDist {
        GridDist::point(1.0, m as f64)
    }

    #[test]
    fn step_work_pmf_is_compound_poisson() {
        // mean of J = lambda * E[S]; mass sums to ~1.
        let s = det_service(10);
        let j = step_work_pmf(0.05, &s, 400);
        let total: f64 = j.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "mass {total}");
        let mean: f64 = j.iter().enumerate().map(|(n, &p)| n as f64 * p).sum();
        assert!((mean - 0.5).abs() < 1e-9, "mean {mean}");
        // P(J = 0) = e^{-lambda}
        assert!((j[0] - (-0.05f64).exp()).abs() < 1e-12);
        // Support only at multiples of 10 below 20.
        assert_eq!(j[3], 0.0);
        assert!(j[10] > 0.0);
    }

    #[test]
    fn zero_wait_probability_is_one_minus_rho_plus_substep() {
        let s = det_service(20);
        let (p0, _) = lcfs_wait_pmf(0.03, &s, 50); // rho = 0.6
                                                   // 1 - rho plus the sub-step residual atom rho * h/(2 E[S]).
        let expect = 0.4 + 0.6 * (1.0 / 40.0);
        assert!((p0 - expect).abs() < 1e-12, "p0 = {p0}, want {expect}");
    }

    #[test]
    fn wait_pmf_mass_approaches_one_when_stable() {
        let s = det_service(10);
        let lambda = 0.05; // rho = 0.5
        let (p0, pmf) = lcfs_wait_pmf(lambda, &s, 4_000);
        let total = p0 + pmf.iter().sum::<f64>();
        assert!(total > 0.995, "captured mass {total}");
        assert!(total <= 1.0 + 1e-9);
    }

    #[test]
    fn mean_wait_matches_pollaczek_khinchine() {
        // Non-preemptive work-conserving disciplines share the mean wait:
        // E[W] = rho * E[R] / (1 - rho) with E[T_x] = x/(1-rho) — the
        // delay-busy-period identity — must reproduce Pollaczek-Khinchine.
        // Checked two ways: in closed form through the midpoint residual,
        // and on the truncated pmf at a modest load where the truncated
        // tail is negligible.
        let s = det_service(10);
        let lambda = 0.04; // rho = 0.4
        let pk = pk_mean_wait(lambda, &s);
        let (_, pmf) = lcfs_wait_pmf(lambda, &s, 3_000);
        let mass: f64 = pmf.iter().sum();
        let mean: f64 = pmf.iter().enumerate().map(|(n, &p)| n as f64 * p).sum();
        // positive-wait mass = rho * (1 - r_0) where r_0 = h/(2 E[S]) is
        // the sub-step atom folded into p_zero.
        assert!(mass > 0.4 * (1.0 - 0.05) - 1e-3, "served mass {mass}");
        assert!((mean - pk).abs() < 0.03 * pk, "LCFS mean {mean} vs PK {pk}");
    }

    #[test]
    fn lcfs_tail_heavier_than_fcfs_at_large_k() {
        use crate::mg1::fcfs_tail;
        let s = det_service(10);
        let lambda = 0.07;
        // Same mean, higher variance => heavier far tail.
        let k = 250.0;
        let l = lcfs_tail(lambda, &s, k);
        let f = fcfs_tail(lambda, &s, k);
        assert!(l > f, "LCFS tail {l} vs FCFS tail {f} at K={k}");
    }

    #[test]
    fn overload_tail_includes_never_served_mass() {
        let s = det_service(10);
        let lambda = 0.2; // rho = 2
        let t = lcfs_tail(lambda, &s, 500.0);
        // At least the never-served fraction stays in the tail.
        assert!(t > 0.4, "tail {t}");
    }

    /// Independent stack-based LCFS queue simulation.
    fn simulate_lcfs_tail(lambda: f64, m: u64, k: f64, n: u64, seed: u64) -> f64 {
        let mut rng = Rng::new(seed);
        // event-driven: arrivals (poisson), server takes from stack top.
        let mut stack: Vec<f64> = Vec::new();
        let mut clock;
        let mut next_arrival = -rng.f64_open_left().ln() / lambda;
        let mut server_free = 0.0f64;
        let mut late = 0u64;
        let mut count = 0u64;
        while count < n {
            if next_arrival <= server_free || stack.is_empty() {
                // next event: arrival
                clock = next_arrival;
                if clock >= server_free && !stack.is_empty() {
                    // server idled before this arrival: serve backlog first
                    // (handled below at service decision points)
                }
                stack.push(clock);
                next_arrival += -rng.f64_open_left().ln() / lambda;
                continue;
            }
            // next event: service start at max(server_free, arrival time)
            let arr = stack.pop().unwrap();
            let start = server_free.max(arr);
            if start > next_arrival {
                // an arrival slips in before the service starts: it goes
                // on top of the stack and is served first
                stack.push(arr);
                stack.push(next_arrival);
                next_arrival += -rng.f64_open_left().ln() / lambda;
                continue;
            }
            count += 1;
            if start - arr > k {
                late += 1;
            }
            server_free = start + m as f64;
        }
        late as f64 / count as f64
    }

    #[test]
    fn matches_independent_stack_simulation() {
        let m = 10u64;
        let lambda = 0.07;
        let s = det_service(m);
        for &k in &[10.0, 40.0, 120.0] {
            let ana = lcfs_tail(lambda, &s, k);
            let sim = simulate_lcfs_tail(lambda, m, k, 300_000, 9);
            assert!(
                (ana - sim).abs() < 0.015,
                "K={k}: analytic {ana:.4} vs simulated {sim:.4}"
            );
        }
    }

    #[test]
    fn tail_is_monotone_in_k() {
        let s = det_service(10);
        let lambda = 0.06;
        let mut prev = 1.0;
        for k in [0.0, 10.0, 30.0, 100.0, 300.0] {
            let t = lcfs_tail(lambda, &s, k);
            assert!(t <= prev + 1e-9);
            prev = t;
        }
    }
}
