//! # tcw-queueing — analytic performance model (paper §4)
//!
//! The distributed window protocol is mapped onto a centralized queue: the
//! messages spread across stations form one FCFS queue whose "service
//! time" is the *scheduling time* (windowing overhead preceding a
//! transmission) plus the *transmission time* `M·tau`. Under the optimal
//! control policy, a message is denied service exactly when its waiting
//! time would exceed the constraint `K` — an **M/G/1 queue with impatient
//! customers** (figure 5), whose loss probability has the closed form of
//! eq. 4.7:
//!
//! ```text
//! p(loss) = 1 - 1/rho + 1 / (rho + rho^2 * z(K, rho))
//! z(K, rho) = sum_i rho^i * Int_0^K beta^(i)(w) dw
//! ```
//!
//! Crate layout:
//!
//! * [`service`] — service-time distributions: the exact splitting-process
//!   scheduling model and the geometric approximation used by the paper;
//! * [`mg1`] — classical M/G/1 results (Pollaczek–Khinchine, the
//!   Beneš/Takács waiting-time series) plus M/M/1 and M/D/1 oracles;
//! * [`impatient`] — eq. 4.7 itself;
//! * [`marching`] — the paper's iteration over `K` coupling the loss to
//!   the load-dependent scheduling time, producing the controlled
//!   protocol's analytic loss curve, and the FCFS receiver-loss baseline;
//! * [`simqueue`] — a small centralized-queue simulator used to validate
//!   the analytics (including the figure-5 equivalence of front-of-queue
//!   loss and balking).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod impatient;
pub mod lcfs;
pub mod marching;
pub mod mg1;
pub mod service;
pub mod simqueue;
