//! A centralized-queue simulator for validating the analytics.
//!
//! Simulates a single-server FCFS queue with Poisson arrivals and
//! deadline-induced loss in either of the paper's two equivalent forms
//! (figure 5):
//!
//! * [`LossMode::FrontOfQueue`] — every customer joins; a customer found
//!   to have waited longer than `K` when reaching the head of the queue is
//!   denied service;
//! * [`LossMode::Balking`] — an arriving customer observes the unfinished
//!   work and joins only if it does not exceed `K`.
//!
//! The simulator validates eq. 4.7 (and the figure-5 equivalence of the
//! two loss models in utilization and loss) independently of the protocol
//! engine.

use tcw_numerics::grid::GridDist;
use tcw_sim::rng::Rng;

/// How deadline losses are realized.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LossMode {
    /// Join always; drop at the head of the queue if wait exceeded `K`.
    FrontOfQueue,
    /// Join only if the unfinished work is at most `K`.
    Balking,
}

/// Results of a queue simulation.
#[derive(Clone, Copy, Debug)]
pub struct SimResult {
    /// Fraction of customers lost.
    pub loss: f64,
    /// Fraction of time the server was busy.
    pub busy: f64,
    /// Mean wait of customers that entered service.
    pub mean_wait_served: f64,
    /// Number of customers simulated.
    pub customers: u64,
}

/// Samples a `GridDist` by inversion (linear scan with cached cdf).
pub struct DistSampler {
    step: f64,
    cdf: Vec<f64>,
}

impl DistSampler {
    /// Builds a sampler; the distribution is renormalized over its stored
    /// mass.
    pub fn new(dist: &GridDist) -> Self {
        let total = dist.total_mass();
        assert!(total > 0.0);
        let mut cdf = Vec::with_capacity(dist.len());
        let mut acc = 0.0;
        for &p in dist.pmf() {
            acc += p / total;
            cdf.push(acc);
        }
        DistSampler {
            step: dist.step(),
            cdf,
        }
    }

    /// Draws one value (a lattice point).
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        let u = rng.f64();
        let idx = self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1);
        idx as f64 * self.step
    }
}

/// Simulates `customers` arrivals through the queue.
///
/// `lambda` is the Poisson arrival rate per unit time (the unit being the
/// lattice step of `service`); `k` is the deadline in the same units.
pub fn simulate(
    lambda: f64,
    service: &GridDist,
    k: f64,
    mode: LossMode,
    customers: u64,
    seed: u64,
) -> SimResult {
    assert!(lambda > 0.0);
    assert!(customers > 0);
    let sampler = DistSampler::new(service);
    let mut rng = Rng::new(seed);

    let mut clock = 0.0f64; // arrival clock
    let mut lost = 0u64;
    let mut busy_time = 0.0f64;
    let mut wait_sum = 0.0f64;
    let mut served = 0u64;

    match mode {
        LossMode::Balking => {
            // Workload (virtual waiting time) recursion.
            let mut workload = 0.0f64;
            let mut last_arrival = 0.0f64;
            for _ in 0..customers {
                clock += -rng.f64_open_left().ln() / lambda;
                workload = (workload - (clock - last_arrival)).max(0.0);
                last_arrival = clock;
                if workload > k {
                    lost += 1;
                } else {
                    wait_sum += workload;
                    served += 1;
                    let x = sampler.sample(&mut rng);
                    workload += x;
                    busy_time += x;
                }
            }
        }
        LossMode::FrontOfQueue => {
            // Explicit FIFO queue; service-start check.
            let mut queue: std::collections::VecDeque<f64> = Default::default();
            let mut server_free_at = 0.0f64;
            for _ in 0..customers {
                clock += -rng.f64_open_left().ln() / lambda;
                // Let the server chew through the queue up to this arrival.
                while let Some(&arr) = queue.front() {
                    let start = server_free_at.max(arr);
                    if start > clock {
                        break;
                    }
                    queue.pop_front();
                    if start - arr > k {
                        lost += 1; // denied service at the head
                        server_free_at = start;
                    } else {
                        wait_sum += start - arr;
                        served += 1;
                        let x = sampler.sample(&mut rng);
                        busy_time += x;
                        server_free_at = start + x;
                    }
                }
                queue.push_back(clock);
            }
            // Drain the remaining queue.
            while let Some(arr) = queue.pop_front() {
                let start = server_free_at.max(arr);
                if start - arr > k {
                    lost += 1;
                    server_free_at = start;
                } else {
                    wait_sum += start - arr;
                    served += 1;
                    let x = sampler.sample(&mut rng);
                    busy_time += x;
                    server_free_at = start + x;
                }
            }
        }
    }

    SimResult {
        loss: lost as f64 / customers as f64,
        busy: busy_time / clock.max(1e-12),
        mean_wait_served: if served > 0 {
            wait_sum / served as f64
        } else {
            0.0
        },
        customers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impatient::loss_probability;

    const N: u64 = 400_000;

    #[test]
    fn front_loss_equals_balking() {
        // Figure 5: the two loss models agree in loss and utilization.
        let service = GridDist::point(1.0, 25.0);
        let lambda = 0.03;
        let k = 100.0;
        let a = simulate(lambda, &service, k, LossMode::FrontOfQueue, N, 1);
        let b = simulate(lambda, &service, k, LossMode::Balking, N, 2);
        assert!(
            (a.loss - b.loss).abs() < 0.01,
            "loss: front {} vs balk {}",
            a.loss,
            b.loss
        );
        assert!(
            (a.busy - b.busy).abs() < 0.01,
            "busy: front {} vs balk {}",
            a.busy,
            b.busy
        );
    }

    #[test]
    fn balking_matches_eq_4_7_deterministic_service() {
        let service = GridDist::point(1.0, 25.0);
        let lambda = 0.03; // rho = 0.75
        for &k in &[0.0, 50.0, 100.0, 200.0, 400.0] {
            let sim = simulate(lambda, &service, k, LossMode::Balking, N, 3);
            let ana = loss_probability(lambda, &service, k);
            assert!(
                (sim.loss - ana).abs() < 0.012,
                "K={k}: sim {} vs analytic {}",
                sim.loss,
                ana
            );
        }
    }

    #[test]
    fn balking_matches_eq_4_7_geometric_service() {
        let service = GridDist::geometric(1.0, 0.1, 1e-13); // mean 10
        let lambda = 0.06; // rho = 0.6
        for &k in &[0.0, 20.0, 60.0, 150.0] {
            let sim = simulate(lambda, &service, k, LossMode::Balking, N, 4);
            let ana = loss_probability(lambda, &service, k);
            assert!(
                (sim.loss - ana).abs() < 0.012,
                "K={k}: sim {} vs analytic {}",
                sim.loss,
                ana
            );
        }
    }

    #[test]
    fn flow_conservation_eq_4_6_holds_in_simulation() {
        // p(accept) * rho = 1 - P(0): measured utilization equals accepted
        // load.
        let service = GridDist::point(1.0, 20.0);
        let lambda = 0.04; // rho = 0.8
        let k = 60.0;
        let sim = simulate(lambda, &service, k, LossMode::Balking, N, 5);
        let rho = lambda * 20.0;
        let expect_busy = (1.0 - sim.loss) * rho;
        assert!(
            (sim.busy - expect_busy).abs() < 0.01,
            "busy {} vs p(accept)*rho = {}",
            sim.busy,
            expect_busy
        );
    }

    #[test]
    fn overloaded_queue_sheds_excess() {
        let service = GridDist::point(1.0, 10.0);
        let lambda = 0.2; // rho = 2
        let sim = simulate(lambda, &service, 100.0, LossMode::Balking, N, 6);
        assert!((sim.loss - 0.5).abs() < 0.02, "loss = {}", sim.loss);
        assert!(sim.busy > 0.97, "busy = {}", sim.busy);
    }

    #[test]
    fn sampler_reproduces_distribution_mean() {
        let d = GridDist::geometric(1.0, 0.25, 1e-12);
        let s = DistSampler::new(&d);
        let mut rng = Rng::new(7);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| s.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.05, "mean = {mean}");
    }
}
