//! Property-based tests for the semi-Markov decision model.
//!
//! Randomized cases are drawn from the deterministic `tcw_sim` [`Rng`] so
//! every failure reproduces from its case index (the repository builds
//! offline, without an external property-testing framework).

use tcw_mdp::howard::{evaluate_policy, policy_iteration, test_quantity};
use tcw_mdp::smdp::{Smdp, SmdpConfig};
use tcw_mdp::splitting::round_distribution;
use tcw_sim::rng::Rng;

const CASES: u64 = 24;

/// A round's law accounts for all probability, never consumes more
/// than the window, and wider windows never raise the empty-round
/// probability.
#[test]
fn round_law_invariants() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x3D70_0001 ^ case);
        let w = 1 + rng.below(23) as usize;
        let lam = 0.02 + rng.f64() * 0.58;
        let law = round_distribution(w, lam);
        let total = law.p_empty + law.success.mass();
        assert!((total - 1.0).abs() < 1e-8, "case {case}: mass {total}");
        for (c, _, p) in law.success.iter() {
            assert!(c <= w || p == 0.0, "case {case}");
        }
        if w >= 2 {
            let narrower = round_distribution(w - 1, lam);
            assert!(law.p_empty <= narrower.p_empty + 1e-12, "case {case}");
        }
    }
}

/// Transition rows are stochastic, holding times at least one slot,
/// losses non-negative, for every (state, action).
#[test]
fn smdp_rows_are_stochastic() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x3D70_0002 ^ case);
        let k = 4 + rng.below(20) as usize;
        let m = 1 + rng.below(11);
        let lam = 0.05 + rng.f64() * 0.45;
        let model = Smdp::new(SmdpConfig { k, m, lambda: lam });
        for i in 1..=k {
            for w in model.actions(i) {
                let law = model.action_law(i, w);
                let total: f64 = law.p.iter().sum();
                assert!((total - 1.0).abs() < 1e-9, "case {case}");
                assert!(law.tau >= 1.0 - 1e-9, "case {case}");
                assert!(law.loss >= 0.0, "case {case}");
            }
        }
    }
}

/// Value determination solves eq. A1 exactly for random policies.
#[test]
fn value_determination_residuals() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x3D70_0003 ^ case);
        let k = 4 + rng.below(16) as usize;
        let m = 1 + rng.below(7);
        let lam = 0.05 + rng.f64() * 0.45;
        let picks: Vec<usize> = (0..20).map(|_| 1 + rng.below(99) as usize).collect();
        let model = Smdp::new(SmdpConfig { k, m, lambda: lam });
        let policy: Vec<usize> = (0..=k)
            .map(|i| {
                if i == 0 {
                    0
                } else {
                    picks[i % picks.len()].clamp(1, i)
                }
            })
            .collect();
        let (gain, values) = evaluate_policy(&model, &policy);
        for i in 0..=k {
            let law = if i == 0 {
                model.idle_law()
            } else {
                model.action_law(i, policy[i])
            };
            let mut rhs = law.loss - gain * law.tau;
            for (j, &p) in law.p.iter().enumerate() {
                rhs += p * values[j];
            }
            assert!((values[i] - rhs).abs() < 1e-7, "case {case}, state {i}");
        }
        assert!(gain >= -1e-12, "case {case}");
    }
}

/// Policy iteration never worsens the gain and is a fixed point at
/// its own output; the optimum satisfies the eq. A2 optimality test
/// in every state.
#[test]
fn policy_iteration_optimality() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x3D70_0004 ^ case);
        let k = 4 + rng.below(12) as usize;
        let m = 1 + rng.below(7);
        let lam = 0.05 + rng.f64() * 0.45;
        let start_w = 1 + rng.below(11) as usize;
        let model = Smdp::new(SmdpConfig { k, m, lambda: lam });
        let start: Vec<usize> = (0..=k).map(|i| start_w.clamp(1, i.max(1))).collect();
        let (g0, _) = evaluate_policy(&model, &start);
        let opt = policy_iteration(&model, &start);
        assert!(opt.gain <= g0 + 1e-12, "case {case}");
        // eq. A2: no action strictly improves the test quantity.
        for i in 1..=k {
            let incumbent = test_quantity(&model, i, opt.window[i], opt.gain, &opt.values);
            for w in model.actions(i) {
                let t = test_quantity(&model, i, w, opt.gain, &opt.values);
                assert!(
                    t >= incumbent - 1e-8,
                    "case {case}, state {i}: action {w} improves ({t} < {incumbent})"
                );
            }
        }
    }
}
