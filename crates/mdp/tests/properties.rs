//! Property-based tests for the semi-Markov decision model.

use proptest::prelude::*;
use tcw_mdp::howard::{evaluate_policy, policy_iteration, test_quantity};
use tcw_mdp::smdp::{Smdp, SmdpConfig};
use tcw_mdp::splitting::round_distribution;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A round's law accounts for all probability, never consumes more
    /// than the window, and wider windows never raise the empty-round
    /// probability.
    #[test]
    fn round_law_invariants(w in 1usize..24, lam in 0.02f64..0.6) {
        let law = round_distribution(w, lam);
        let total = law.p_empty + law.success.mass();
        prop_assert!((total - 1.0).abs() < 1e-8, "mass {total}");
        for (c, _, p) in law.success.iter() {
            prop_assert!(c <= w || p == 0.0);
        }
        if w >= 2 {
            let narrower = round_distribution(w - 1, lam);
            prop_assert!(law.p_empty <= narrower.p_empty + 1e-12);
        }
    }

    /// Transition rows are stochastic, holding times at least one slot,
    /// losses non-negative, for every (state, action).
    #[test]
    fn smdp_rows_are_stochastic(k in 4usize..24, m in 1u64..12, lam in 0.05f64..0.5) {
        let model = Smdp::new(SmdpConfig { k, m, lambda: lam });
        for i in 1..=k {
            for w in model.actions(i) {
                let law = model.action_law(i, w);
                let total: f64 = law.p.iter().sum();
                prop_assert!((total - 1.0).abs() < 1e-9);
                prop_assert!(law.tau >= 1.0 - 1e-9);
                prop_assert!(law.loss >= 0.0);
            }
        }
    }

    /// Value determination solves eq. A1 exactly for random policies.
    #[test]
    fn value_determination_residuals(
        k in 4usize..20,
        m in 1u64..8,
        lam in 0.05f64..0.5,
        picks in proptest::collection::vec(1usize..100, 20),
    ) {
        let model = Smdp::new(SmdpConfig { k, m, lambda: lam });
        let policy: Vec<usize> = (0..=k)
            .map(|i| if i == 0 { 0 } else { picks[i % picks.len()].clamp(1, i) })
            .collect();
        let (gain, values) = evaluate_policy(&model, &policy);
        for i in 0..=k {
            let law = if i == 0 {
                model.idle_law()
            } else {
                model.action_law(i, policy[i])
            };
            let mut rhs = law.loss - gain * law.tau;
            for (j, &p) in law.p.iter().enumerate() {
                rhs += p * values[j];
            }
            prop_assert!((values[i] - rhs).abs() < 1e-7, "state {i}");
        }
        prop_assert!(gain >= -1e-12);
    }

    /// Policy iteration never worsens the gain and is a fixed point at
    /// its own output; the optimum satisfies the eq. A2 optimality test
    /// in every state.
    #[test]
    fn policy_iteration_optimality(
        k in 4usize..16,
        m in 1u64..8,
        lam in 0.05f64..0.5,
        start_w in 1usize..12,
    ) {
        let model = Smdp::new(SmdpConfig { k, m, lambda: lam });
        let start: Vec<usize> = (0..=k).map(|i| start_w.clamp(1, i.max(1))).collect();
        let (g0, _) = evaluate_policy(&model, &start);
        let opt = policy_iteration(&model, &start);
        prop_assert!(opt.gain <= g0 + 1e-12);
        // eq. A2: no action strictly improves the test quantity.
        for i in 1..=k {
            let incumbent = test_quantity(&model, i, opt.window[i], opt.gain, &opt.values);
            for w in model.actions(i) {
                let t = test_quantity(&model, i, w, opt.gain, &opt.values);
                prop_assert!(
                    t >= incumbent - 1e-8,
                    "state {i}: action {w} improves ({t} < {incumbent})"
                );
            }
        }
    }
}
