//! The semi-Markov decision process over the pseudo-time state space.
//!
//! State `i` is the pseudo-time backlog in `Delta = tau` units (eq. 3.2);
//! the action in state `i >= 1` is the window length `w ∈ {1..i}`; state 0
//! has the single forced action "idle one slot". One transition is one
//! windowing round:
//!
//! * elapsed time `sigma` = overhead slots (+ `M` on a success);
//! * next state `i' = min(K, i - c + sigma)` where `c` is the consumed
//!   window prefix;
//! * one-step pseudo loss (§3.2) `r = lambda * max(0, i + sigma - K - c)`:
//!   the expected number of untransmitted messages in the backlog portion
//!   whose pseudo delay crosses `K` before the next decision (the
//!   transmitted message itself sits inside the consumed prefix, so it is
//!   never double-counted).
//!
//! Poisson arrival density `lambda` in every unexamined interval is the
//! paper's Assumption 1.

use crate::splitting::{round_distribution, RoundLaw};

/// Model parameters.
#[derive(Clone, Copy, Debug)]
pub struct SmdpConfig {
    /// Deadline `K` in `Delta = tau` units (also the largest state).
    pub k: usize,
    /// Message length in slots (the paper's `M`).
    pub m: u64,
    /// Arrival rate per `Delta`.
    pub lambda: f64,
}

/// One action's outcome statistics in one state.
#[derive(Clone, Debug)]
pub struct ActionLaw {
    /// Transition probabilities to states `0..=K`.
    pub p: Vec<f64>,
    /// Expected holding time (in `Delta`).
    pub tau: f64,
    /// Expected one-step pseudo loss (messages).
    pub loss: f64,
}

/// The assembled decision model.
pub struct Smdp {
    cfg: SmdpConfig,
    /// Round laws indexed by window width (1..=K).
    rounds: Vec<RoundLaw>,
}

impl Smdp {
    /// Builds the model (computes every window width's round law once).
    ///
    /// # Panics
    /// Panics if `k == 0`, `m == 0` or `lambda <= 0`.
    pub fn new(cfg: SmdpConfig) -> Self {
        assert!(cfg.k >= 1);
        assert!(cfg.m >= 1);
        assert!(cfg.lambda > 0.0);
        let rounds = (1..=cfg.k)
            .map(|w| round_distribution(w, cfg.lambda))
            .collect();
        Smdp { cfg, rounds }
    }

    /// Model parameters.
    pub fn config(&self) -> &SmdpConfig {
        &self.cfg
    }

    /// The admissible window lengths in state `i`.
    #[allow(clippy::reversed_empty_ranges)] // state 0 is forced: no choices
    pub fn actions(&self, i: usize) -> std::ops::RangeInclusive<usize> {
        if i == 0 {
            1..=0 // empty range: state 0 is forced
        } else {
            1..=i
        }
    }

    /// The law of the forced idle action in state 0: one slot elapses, the
    /// backlog becomes 1, nothing is lost.
    pub fn idle_law(&self) -> ActionLaw {
        let mut p = vec![0.0; self.cfg.k + 1];
        p[1.min(self.cfg.k)] = 1.0;
        ActionLaw {
            p,
            tau: 1.0,
            loss: 0.0,
        }
    }

    /// The law of taking window length `w` in state `i`.
    ///
    /// # Panics
    /// Panics if `i == 0` or `w` is not in `1..=i`.
    pub fn action_law(&self, i: usize, w: usize) -> ActionLaw {
        assert!(i >= 1 && w >= 1 && w <= i, "invalid action ({i}, {w})");
        let k = self.cfg.k;
        let m = self.cfg.m as usize;
        let law = &self.rounds[w - 1];
        let mut p = vec![0.0; k + 1];
        let mut tau = 0.0;
        let mut loss = 0.0;

        // Empty round: one idle slot, whole window consumed.
        {
            let sigma = 1usize;
            let c = w;
            let next = (i - c + sigma).min(k);
            p[next] += law.p_empty;
            tau += law.p_empty * sigma as f64;
            let clip = (i + sigma).saturating_sub(k + c);
            loss += law.p_empty * self.cfg.lambda * clip as f64;
        }
        // Successful rounds.
        for (c, s, prob) in law.success.iter() {
            let sigma = s + m;
            let next = (i - c + sigma).min(k);
            p[next] += prob;
            tau += prob * sigma as f64;
            let clip = (i + sigma).saturating_sub(k + c);
            loss += prob * self.cfg.lambda * clip as f64;
        }

        // Renormalize the tiny Poisson truncation deficit into the
        // distribution (keeps value determination well-posed).
        let mass: f64 = p.iter().sum();
        debug_assert!(mass > 0.999, "round law lost mass: {mass}");
        for q in &mut p {
            *q /= mass;
        }
        ActionLaw {
            p,
            tau: tau / mass,
            loss: loss / mass,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> Smdp {
        Smdp::new(SmdpConfig {
            k: 30,
            m: 5,
            lambda: 0.2,
        })
    }

    #[test]
    fn transition_rows_are_stochastic() {
        let s = model();
        for i in 1..=30usize {
            for w in s.actions(i) {
                let law = s.action_law(i, w);
                let total: f64 = law.p.iter().sum();
                assert!((total - 1.0).abs() < 1e-9, "({i},{w}): {total}");
                assert!(law.tau >= 1.0 - 1e-9);
                assert!(law.loss >= 0.0);
            }
        }
    }

    #[test]
    fn idle_law_moves_to_state_one() {
        let s = model();
        let law = s.idle_law();
        assert_eq!(law.p[1], 1.0);
        assert_eq!(law.tau, 1.0);
        assert_eq!(law.loss, 0.0);
    }

    #[test]
    fn small_state_with_full_window_cannot_lose() {
        // i + sigma - K - c <= 0 whenever i and sigma are small relative
        // to K: no loss at light states.
        let s = model();
        let law = s.action_law(3, 3);
        // Only the extreme slot tail (probability ~1e-9) can push
        // 3 + sigma past K + c here.
        assert!(law.loss < 1e-6, "loss in a light state: {}", law.loss);
    }

    #[test]
    fn saturated_state_loses_under_tiny_window() {
        // In state K, a tiny window consumes little; after sigma slots the
        // overflow is discarded.
        let s = model();
        let law = s.action_law(30, 1);
        assert!(law.loss > 0.0);
    }

    #[test]
    fn holding_time_includes_message_on_success() {
        let s = model();
        let law = s.action_law(20, 10);
        // mostly successful rounds => tau close to overhead + M
        assert!(law.tau > 4.0, "tau = {}", law.tau);
    }

    #[test]
    fn state_never_exceeds_k() {
        let s = model();
        for i in [1usize, 10, 30] {
            for w in s.actions(i) {
                let law = s.action_law(i, w);
                assert_eq!(law.p.len(), 31);
            }
        }
    }

    #[test]
    fn larger_lambda_means_larger_loss_in_saturated_state() {
        let light = Smdp::new(SmdpConfig {
            k: 30,
            m: 5,
            lambda: 0.05,
        });
        let heavy = Smdp::new(SmdpConfig {
            k: 30,
            m: 5,
            lambda: 0.4,
        });
        let ll = light.action_law(30, 5).loss;
        let hl = heavy.action_law(30, 5).loss;
        assert!(hl > ll);
    }
}
