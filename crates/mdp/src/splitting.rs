//! Exact law of one windowing round.
//!
//! A round starts with an initial window of integer width `w` (in `Delta =
//! tau` units) containing `N ~ Poisson(lambda * w)` arrivals, uniformly
//! positioned, and resolves collisions by binary splitting with the
//! older-half-first rule. The protocol facts used (mirroring
//! `tcw-window::engine` exactly):
//!
//! * a probe costs one slot unless it is the success (the transmission
//!   starts in that slot);
//! * everything *examined* during a round (idle probes + the success
//!   window) forms a contiguous **prefix** of the initial window under the
//!   older-first rule;
//! * a sibling known to contain ≥ 2 arrivals is split without a probe;
//! * a window one `Delta` wide that still collides is resolved by fair
//!   coin flips (sub-`Delta` splitting), consuming no window prefix.
//!
//! `BODY(v, n)` below is the law of (consumed prefix, overhead slots)
//! after a collision among `n >= 2` messages uniform in a window of width
//! `v` whose collision slot is already paid; the recursion follows the
//! engine's state machine case by case.

use std::collections::HashMap;
use tcw_numerics::special::{binomial_pmf, poisson_pmf};

/// Hard cap on tracked overhead slots; residual mass is accumulated on the
/// last index (the tail beyond ~64 slots is < 1e-15 in every regime used).
pub const SMAX: usize = 64;

/// A sub-probability law over `(consumed prefix c, overhead slots s)` with
/// `c ∈ 0..=width`, `s ∈ 0..SMAX`.
#[derive(Clone, Debug)]
pub struct Joint {
    width: usize,
    data: Vec<f64>, // (width+1) x SMAX, row-major by c
}

impl Joint {
    /// A zero law for prefixes within a window of `width`.
    pub fn zero(width: usize) -> Self {
        Joint {
            width,
            data: vec![0.0; (width + 1) * SMAX],
        }
    }

    /// The window width this law refers to.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Probability mass at `(c, s)`.
    pub fn get(&self, c: usize, s: usize) -> f64 {
        self.data[c * SMAX + s.min(SMAX - 1)]
    }

    /// Adds mass at `(c, s)` (slots clamp into the last tracked index).
    pub fn add(&mut self, c: usize, s: usize, p: f64) {
        self.data[c * SMAX + s.min(SMAX - 1)] += p;
    }

    /// Accumulates `p * other`, offsetting consumed prefixes by `dc` and
    /// slots by `ds`.
    pub fn add_shifted(&mut self, other: &Joint, dc: usize, ds: usize, p: f64) {
        if p == 0.0 {
            return;
        }
        for c in 0..=other.width {
            for s in 0..SMAX {
                let q = other.get(c, s);
                if q != 0.0 {
                    self.add(c + dc, s + ds, p * q);
                }
            }
        }
    }

    /// Total mass.
    pub fn mass(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Expected consumed prefix.
    pub fn mean_consumed(&self) -> f64 {
        let mut m = 0.0;
        for c in 0..=self.width {
            for s in 0..SMAX {
                m += c as f64 * self.get(c, s);
            }
        }
        m
    }

    /// Expected overhead slots.
    pub fn mean_slots(&self) -> f64 {
        let mut m = 0.0;
        for c in 0..=self.width {
            for s in 0..SMAX {
                m += s as f64 * self.get(c, s);
            }
        }
        m
    }

    /// Iterates over non-zero outcomes `(c, s, p)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..=self.width).flat_map(move |c| {
            (0..SMAX).filter_map(move |s| {
                let p = self.get(c, s);
                (p != 0.0).then_some((c, s, p))
            })
        })
    }
}

/// Slot law of sub-`Delta` (coin-flip) resolution of an `n >= 2` cluster
/// whose collision is already paid: `pmf[s]` = P(`s` further overhead
/// slots before the success). Same recursion as the window-level split but
/// with fair halves and no prefix consumption.
fn cluster_slots(n: usize) -> Vec<f64> {
    debug_assert!(n >= 2);
    // d[k][s] computed jointly for k = 2..=n, forward in s.
    let mut d: Vec<Vec<f64>> = vec![Vec::new(); n + 1];
    for (k, dk) in d.iter_mut().enumerate().skip(2) {
        dk.push(binomial_pmf(1, k as u64, 0.5)); // s = 0
    }
    for s in 1..SMAX {
        for k in 2..=n {
            let k64 = k as u64;
            let p_stay = binomial_pmf(0, k64, 0.5) + binomial_pmf(k64, k64, 0.5);
            let mut val = p_stay * d[k][s - 1];
            for (j, dj) in d.iter().enumerate().take(k).skip(2) {
                val += binomial_pmf(j as u64, k64, 0.5) * dj[s - 1];
            }
            d[k].push(val);
        }
        let captured: f64 = d[n].iter().sum();
        if 1.0 - captured < 1e-14 {
            break;
        }
    }
    d.swap_remove(n)
}

/// Memoized resolver for `BODY(v, n)`.
struct Resolver {
    memo: HashMap<(usize, usize), Joint>,
    clusters: HashMap<usize, Vec<f64>>,
}

impl Resolver {
    fn new() -> Self {
        Resolver {
            memo: HashMap::new(),
            clusters: HashMap::new(),
        }
    }

    fn cluster(&mut self, n: usize) -> &[f64] {
        self.clusters.entry(n).or_insert_with(|| cluster_slots(n))
    }

    /// Law of (consumed prefix, slots) for a window of width `v` known to
    /// contain `n >= 2` messages whose collision slot is already paid.
    fn body(&mut self, v: usize, n: usize) -> Joint {
        debug_assert!(n >= 2);
        if let Some(j) = self.memo.get(&(v, n)) {
            return j.clone();
        }
        let mut out = Joint::zero(v);
        if v == 1 {
            // Sub-Delta cluster: no prefix consumed.
            let pmf = self.cluster(n).to_vec();
            for (s, &p) in pmf.iter().enumerate() {
                out.add(0, s, p);
            }
        } else {
            let vl = v / 2;
            let vr = v - vl;
            let p_left = vl as f64 / v as f64;
            for k in 0..=n {
                let pk = binomial_pmf(k as u64, n as u64, p_left);
                if pk < 1e-16 {
                    continue;
                }
                match k {
                    0 => {
                        // Older half idle (+1 slot), consumed vl; the
                        // younger half holds all n, known >= 2, split
                        // without a probe — unless it is a single Delta,
                        // which must be probed (collision, +1) first.
                        if vr >= 2 {
                            let sub = self.body(vr, n);
                            out.add_shifted(&sub, vl, 1, pk);
                        } else {
                            let pmf = self.cluster(n).to_vec();
                            for (s, &p) in pmf.iter().enumerate() {
                                out.add(vl, s + 2, pk * p);
                            }
                        }
                    }
                    1 => {
                        // Older half probes as the success: the whole
                        // older half is examined, no overhead.
                        out.add(vl, 0, pk);
                    }
                    _ => {
                        // Older half collides (+1 slot); recurse into it.
                        let sub = self.body(vl, k);
                        out.add_shifted(&sub, 0, 1, pk);
                    }
                }
            }
        }
        self.memo.insert((v, n), out.clone());
        out
    }
}

/// The complete law of one windowing round for a window of width `w`
/// (`Delta = tau` units) under Poisson traffic of rate `lambda` per
/// `Delta`.
#[derive(Clone, Debug)]
pub struct RoundLaw {
    /// Window width.
    pub width: usize,
    /// Probability that the round schedules no message (empty window):
    /// the outcome is then one idle slot with the full window consumed.
    pub p_empty: f64,
    /// Joint law of `(consumed prefix, overhead slots)` on rounds that end
    /// in a transmission (mass = `1 - p_empty` up to Poisson truncation).
    pub success: Joint,
}

impl RoundLaw {
    /// Expected elapsed time of the round in `Delta` given message length
    /// `m` slots: empty rounds take 1 slot; successful rounds take
    /// overhead + `m`.
    pub fn mean_elapsed(&self, m: u64) -> f64 {
        self.p_empty + self.success.mean_slots() + (self.success.mass()) * m as f64
    }
}

/// Computes the round law for window width `w >= 1` and rate `lambda > 0`
/// arrivals per `Delta`, truncating the Poisson occupancy at relative tail
/// `1e-12`.
///
/// # Panics
/// Panics if `w == 0` or `lambda <= 0`.
pub fn round_distribution(w: usize, lambda: f64) -> RoundLaw {
    assert!(w >= 1);
    assert!(lambda > 0.0);
    let mu = lambda * w as f64;
    let mut resolver = Resolver::new();
    let mut success = Joint::zero(w);
    // n = 1: the initial probe is the success; whole window examined.
    success.add(w, 0, poisson_pmf(1, mu));
    // n >= 2: initial collision (+1 slot), then the split recursion.
    let mut n = 2usize;
    let mut tail = 1.0 - poisson_pmf(0, mu) - poisson_pmf(1, mu);
    while tail > 1e-12 && n < 300 {
        let pn = poisson_pmf(n as u64, mu);
        if pn > 1e-14 {
            let body = resolver.body(w, n);
            success.add_shifted(&body, 0, 1, pn);
        }
        tail -= pn;
        n += 1;
    }
    RoundLaw {
        width: w,
        p_empty: poisson_pmf(0, mu),
        success,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcw_sim::rng::Rng;

    #[test]
    fn masses_account_for_everything() {
        let law = round_distribution(8, 0.2);
        let total = law.p_empty + law.success.mass();
        assert!((total - 1.0).abs() < 1e-9, "total = {total}");
    }

    #[test]
    fn singleton_round_consumes_whole_window() {
        // With tiny lambda, conditioned on success it is almost surely a
        // singleton: c = w, s = 0.
        let law = round_distribution(10, 1e-4);
        let p_single = law.success.get(10, 0);
        assert!((p_single / law.success.mass() - 1.0).abs() < 1e-2);
    }

    #[test]
    fn two_message_window_width_two() {
        // w=2, exactly 2 messages (condition on n=2 via tiny lambda trick
        // is imprecise; instead compute BODY directly).
        let mut r = Resolver::new();
        let body = r.body(2, 2);
        // Split into (1, 1); k ~ Bin(2, 1/2):
        //  k=0 (1/4): idle +1, right is width-1 cluster of 2: +1 collision
        //             then cluster slots; consumed 1.
        //  k=1 (1/2): success, consumed 1, slots 0.
        //  k=2 (1/4): left collides +1, width-1 cluster of 2; consumed 0.
        assert!((body.get(1, 0) - 0.5).abs() < 1e-12);
        assert!((body.mass() - 1.0).abs() < 1e-9);
        // cluster of 2: D_2(s) = (1/2)^{s+1}
        assert!((body.get(0, 1) - 0.25 * 0.5).abs() < 1e-12);
        assert!((body.get(1, 2) - 0.25 * 0.5).abs() < 1e-12);
    }

    /// Monte Carlo of the same protocol semantics, entirely independent of
    /// the analytic recursion.
    fn mc_round(w: usize, lambda: f64, rng: &mut Rng) -> (usize, usize, bool) {
        // arrivals: Poisson(lambda*w) uniform positions in [0, w) with
        // fractional sub-Delta parts.
        let mu = lambda * w as f64;
        let n = {
            let l = (-mu).exp();
            let mut k = 0;
            let mut p = 1.0;
            loop {
                p *= rng.f64_open_left();
                if p <= l {
                    break k;
                }
                k += 1;
            }
        };
        let mut pos: Vec<f64> = (0..n).map(|_| rng.f64() * w as f64).collect();
        pos.sort_by(|a, b| a.partial_cmp(b).unwrap());
        if n == 0 {
            return (w, 1, false);
        }
        if n == 1 {
            return (w, 0, true);
        }
        // splitting on integer boundaries; cluster by coins below width 1.
        let mut slots = 1usize; // initial collision
        let mut lo = 0usize;
        let mut hi = w;
        let mut members: Vec<f64> = pos;
        loop {
            if hi - lo == 1 {
                // coin-flip cluster among `members`
                loop {
                    let older: Vec<f64> = members
                        .iter()
                        .copied()
                        .filter(|_| rng.chance(0.5))
                        .collect();
                    match older.len() {
                        1 => return (lo, slots, true),
                        0 => slots += 1,
                        _ => {
                            slots += 1;
                            members = older;
                        }
                    }
                }
            }
            let mid = lo + (hi - lo) / 2;
            let left: Vec<f64> = members
                .iter()
                .copied()
                .filter(|&p| p < mid as f64)
                .collect();
            match left.len() {
                0 => {
                    slots += 1; // idle on left
                    if hi - mid == 1 {
                        slots += 1; // must probe the single-Delta right
                    }
                    lo = mid;
                }
                1 => {
                    return (mid, slots, true);
                }
                _ => {
                    // left collides
                    slots += 1;
                    hi = mid;
                    members = left;
                }
            }
        }
    }

    #[test]
    fn analytic_matches_monte_carlo() {
        let w = 8;
        let lambda = 0.2; // mu = 1.6
        let law = round_distribution(w, lambda);
        let mut rng = Rng::new(42);
        let n = 300_000;
        let mut empty = 0u64;
        let mut slot_sum = 0u64;
        let mut consumed_sum = 0u64;
        let mut succ = 0u64;
        for _ in 0..n {
            let (c, s, success) = mc_round(w, lambda, &mut rng);
            if success {
                succ += 1;
                slot_sum += s as u64;
                consumed_sum += c as u64;
            } else {
                empty += 1;
            }
        }
        let p_empty_mc = empty as f64 / n as f64;
        assert!(
            (p_empty_mc - law.p_empty).abs() < 0.005,
            "p_empty: mc {p_empty_mc} vs analytic {}",
            law.p_empty
        );
        let mean_slots_mc = slot_sum as f64 / succ as f64;
        let mean_slots_an = law.success.mean_slots() / law.success.mass();
        assert!(
            (mean_slots_mc - mean_slots_an).abs() < 0.03,
            "slots: mc {mean_slots_mc} vs analytic {mean_slots_an}"
        );
        let mean_c_mc = consumed_sum as f64 / succ as f64;
        let mean_c_an = law.success.mean_consumed() / law.success.mass();
        assert!(
            (mean_c_mc - mean_c_an).abs() < 0.05,
            "consumed: mc {mean_c_mc} vs analytic {mean_c_an}"
        );
    }

    #[test]
    fn wider_windows_consume_more_and_collide_more() {
        let lambda = 0.2;
        let narrow = round_distribution(4, lambda);
        let wide = round_distribution(16, lambda);
        assert!(wide.success.mean_consumed() > narrow.success.mean_consumed());
        assert!(wide.success.mean_slots() > narrow.success.mean_slots());
        assert!(wide.p_empty < narrow.p_empty);
    }

    #[test]
    fn consumed_prefix_never_exceeds_window() {
        let law = round_distribution(6, 0.5);
        for (c, _, p) in law.success.iter() {
            assert!(c <= 6 || p == 0.0);
        }
    }

    #[test]
    fn mean_elapsed_accounts_for_message_time() {
        let law = round_distribution(8, 0.15);
        let m = 25;
        let e = law.mean_elapsed(m);
        // elapsed >= success probability * message time
        assert!(e > law.success.mass() * m as f64);
        assert!(e < 1.0 + law.success.mass() * m as f64 + 10.0);
    }
}
