//! Computational verification of Theorem 1 (via Lemma 3).
//!
//! Lemma 3 compares, within the family `{P^w}` of policies sharing the
//! same window-length element, the **one-step pseudo loss** of different
//! choices for elements (1) (window position) and (3) (split rule). The
//! paper's bookkeeping — exact under the minimum-slack policy by Lemma 2,
//! and exactly the accounting of its decision model — advances every
//! message's pseudo delay by the elapsed time `sigma` between decisions.
//! A decision's one-step pseudo loss is then
//!
//! ```text
//! r = E[ lambda * max(0, i + sigma - K)          (messages crossing K)
//!        - 1{ transmitted message would have crossed K } ]
//! ```
//!
//! The first term depends only on the window *length* (Assumption 1:
//! equal-length windows are statistically identical, so `sigma`'s law is
//! position- and split-independent); the disciplines differ only in which
//! message they transmit. The minimum-slack policy transmits the message
//! with the largest pseudo delay — precisely the one that is critical if
//! any message is — so it maximizes the rescue term and minimizes `r`
//! (Lemma 3); Lemma 4 + Appendix A lift this to the long-run average,
//! which [`crate::howard`] exercises directly.
//!
//! This module estimates `r` for each discipline by Monte Carlo over the
//! actual splitting dynamics (no analytic shortcuts shared with the thing
//! being tested), so the comparison is an independent check.

use tcw_sim::rng::Rng;

/// The policy-element-(1)/(3) alternatives compared by Theorem 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Discipline {
    /// Window at the oldest backlog, older half first (Theorem 1 optimum:
    /// transmits the oldest message in the window).
    MinSlack,
    /// Window at the oldest backlog, newer half first (transmits the
    /// youngest message in the window).
    OldestNewerSplit,
    /// Window at the newest backlog, newer half first (LCFS: transmits
    /// the youngest message overall).
    NewestPos,
}

/// Result of a one-step pseudo-loss estimate.
#[derive(Clone, Copy, Debug)]
pub struct OneStepLoss {
    /// Estimated expected one-step pseudo loss (messages per decision).
    pub mean: f64,
    /// Standard error of the estimate.
    pub std_err: f64,
    /// Trials performed.
    pub trials: u64,
}

/// Simulates the elapsed slots and the transmitted message's position for
/// one windowing round over `n` messages at the given (sorted ascending,
/// within `[0,1)`) relative positions, under the given split preference.
///
/// Returns `(overhead_slots, index_of_transmitted)`; positions are split
/// by exact halving (continuous pseudo time, as in the paper's model).
fn resolve(positions: &[f64], older_first: bool, rng: &mut Rng) -> (u64, usize) {
    debug_assert!(positions.len() >= 2);
    let mut slots = 1u64; // the initial collision
    let mut members: Vec<usize> = (0..positions.len()).collect();
    let mut lo = 0.0f64;
    let mut hi = 1.0f64;
    loop {
        let mid = 0.5 * (lo + hi);
        let (first, _second): (Vec<usize>, Vec<usize>) = if older_first {
            members.iter().partition(|&&i| positions[i] < mid)
        } else {
            members.iter().partition(|&&i| positions[i] >= mid)
        };
        match first.len() {
            1 => return (slots, first[0]),
            0 => {
                slots += 1; // idle probe of the preferred half
                            // the other half holds everyone, known >= 2: split again
                if older_first {
                    lo = mid;
                } else {
                    hi = mid;
                }
                // members unchanged
            }
            _ => {
                slots += 1; // collision in the preferred half
                members = first;
                if older_first {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
        }
        // Guard against floating-point exhaustion (identical positions):
        // fall back to fair coins, statistically identical to continued
        // halving of uniform positions.
        if hi - lo < 1e-12 {
            let mut cluster = members;
            loop {
                let older: Vec<usize> = cluster
                    .iter()
                    .copied()
                    .filter(|_| rng.chance(0.5))
                    .collect();
                match older.len() {
                    1 => return (slots, older[0]),
                    0 => slots += 1,
                    _ => {
                        slots += 1;
                        cluster = older;
                    }
                }
            }
        }
    }
}

/// Estimates the one-step pseudo loss in state `i` (pseudo backlog, in
/// `tau`), window length `w <= i`, message length `m`, deadline `k`,
/// arrival density `lambda` per `tau`.
///
/// # Panics
/// Panics if the geometry is inconsistent (`w > i` or `i > k`).
#[allow(clippy::too_many_arguments)] // mirrors the paper's parameterization
pub fn one_step_pseudo_loss(
    discipline: Discipline,
    i: f64,
    w: f64,
    k: f64,
    m: u64,
    lambda: f64,
    trials: u64,
    seed: u64,
) -> OneStepLoss {
    assert!(w > 0.0 && w <= i && i <= k);
    assert!(lambda > 0.0 && trials > 0);
    let mut rng = Rng::new(seed);
    let mu = lambda * w;
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    for _ in 0..trials {
        // Window occupancy.
        let n = {
            let l = (-mu).exp();
            let mut count = 0usize;
            let mut p = 1.0;
            loop {
                p *= rng.f64_open_left();
                if p <= l {
                    break count;
                }
                count += 1;
            }
        };
        let (slots, tx_rel_pos) = match n {
            0 => (1u64, None),
            1 => (0u64, Some(rng.f64())),
            _ => {
                let positions: Vec<f64> = (0..n).map(|_| rng.f64()).collect();
                let older_first = discipline == Discipline::MinSlack;
                let (s, idx) = resolve(&positions, older_first, &mut rng);
                (s, Some(positions[idx]))
            }
        };
        let sigma = slots as f64 + if tx_rel_pos.is_some() { m as f64 } else { 0.0 };
        // Messages whose pseudo delay crosses K: density lambda over the
        // backlog, crossing zone length (i + sigma - K)^+.
        let zone = (i + sigma - k).max(0.0).min(i);
        let mut r = lambda * zone;
        // Rescue: was the transmitted message critical?
        if let Some(u) = tx_rel_pos {
            // Pseudo delay of the transmitted message at this decision.
            let d_tx = match discipline {
                Discipline::MinSlack | Discipline::OldestNewerSplit => i - u * w,
                Discipline::NewestPos => w - u * w,
            };
            if d_tx + sigma > k {
                r -= 1.0;
            }
        }
        sum += r;
        sum_sq += r * r;
    }
    let mean = sum / trials as f64;
    let var = (sum_sq / trials as f64 - mean * mean).max(0.0);
    OneStepLoss {
        mean,
        std_err: (var / trials as f64).sqrt(),
        trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_isolates_oldest_under_older_first() {
        let mut rng = Rng::new(1);
        for trial in 0..200 {
            let n = 2 + (trial % 5) as usize;
            let positions: Vec<f64> = (0..n).map(|_| rng.f64()).collect();
            let (_, idx) = resolve(&positions, true, &mut rng);
            let min_idx = positions
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            assert_eq!(idx, min_idx, "positions: {positions:?}");
        }
    }

    #[test]
    fn resolve_isolates_youngest_under_newer_first() {
        let mut rng = Rng::new(2);
        for trial in 0..200 {
            let n = 2 + (trial % 5) as usize;
            let positions: Vec<f64> = (0..n).map(|_| rng.f64()).collect();
            let (_, idx) = resolve(&positions, false, &mut rng);
            let max_idx = positions
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            assert_eq!(idx, max_idx);
        }
    }

    #[test]
    fn resolve_handles_identical_positions() {
        let mut rng = Rng::new(3);
        let positions = vec![0.5, 0.5, 0.5];
        let (slots, idx) = resolve(&positions, true, &mut rng);
        assert!(idx < 3);
        assert!(slots >= 1);
    }

    #[test]
    fn lemma3_minslack_minimizes_one_step_pseudo_loss() {
        // Across a grid of states and window lengths, the minimum-slack
        // discipline never does worse than the alternatives (beyond noise).
        let (k, m, lambda) = (60.0, 25u64, 0.04);
        let trials = 60_000;
        for &(i, w) in &[(60.0, 30.0), (60.0, 60.0), (50.0, 25.0), (45.0, 10.0)] {
            let ms = one_step_pseudo_loss(Discipline::MinSlack, i, w, k, m, lambda, trials, 7);
            let ns =
                one_step_pseudo_loss(Discipline::OldestNewerSplit, i, w, k, m, lambda, trials, 7);
            let lc = one_step_pseudo_loss(Discipline::NewestPos, i, w, k, m, lambda, trials, 7);
            let noise = 4.0 * (ms.std_err + ns.std_err);
            assert!(
                ms.mean <= ns.mean + noise,
                "(i={i}, w={w}): min-slack {} vs newer-split {}",
                ms.mean,
                ns.mean
            );
            assert!(
                ms.mean <= lc.mean + 4.0 * (ms.std_err + lc.std_err),
                "(i={i}, w={w}): min-slack {} vs newest-pos {}",
                ms.mean,
                lc.mean
            );
        }
    }

    #[test]
    fn lemma3_strict_in_a_loss_prone_state() {
        // In a saturated state the rescue term matters and min-slack is
        // strictly better than LCFS positioning.
        let (k, m, lambda) = (40.0, 25u64, 0.05);
        let i = 40.0;
        let w = 40.0;
        let trials = 120_000;
        let ms = one_step_pseudo_loss(Discipline::MinSlack, i, w, k, m, lambda, trials, 11);
        let lc = one_step_pseudo_loss(Discipline::NewestPos, i, w, k, m, lambda, trials, 11);
        assert!(
            ms.mean + 3.0 * (ms.std_err + lc.std_err) < lc.mean,
            "expected strict dominance: min-slack {} ± {} vs newest {} ± {}",
            ms.mean,
            ms.std_err,
            lc.mean,
            lc.std_err
        );
    }

    #[test]
    fn light_state_has_zero_one_step_loss() {
        // i + sigma stays below K: nothing can cross the deadline.
        let r = one_step_pseudo_loss(
            Discipline::MinSlack,
            10.0,
            10.0,
            1_000.0,
            25,
            0.05,
            20_000,
            13,
        );
        assert_eq!(r.mean, 0.0);
    }
}
