//! Howard policy iteration for the average-loss SMDP (Appendix A).
//!
//! Value determination solves the linear system of eq. A1,
//!
//! ```text
//! h_i + g * tau_i = cost_i + sum_j p_ij h_j,      h_ref = 0,
//! ```
//!
//! for the relative values `h` and the gain `g` (here: expected pseudo
//! loss per unit time — the paper maximizes `-loss`, we minimize loss);
//! policy improvement applies the test quantity of eq. A2 in each state.
//! Iteration terminates when no state changes its action, which for a
//! finite unichain SMDP happens in finitely many steps at the optimal
//! policy.

use crate::smdp::Smdp;
use tcw_numerics::linalg::{solve, Matrix};

/// The result of policy iteration.
#[derive(Clone, Debug)]
pub struct OptimalPolicy {
    /// Optimal window length per state (`w[0]` is unused — state 0 is
    /// forced; it is reported as 0).
    pub window: Vec<usize>,
    /// Gain: expected pseudo loss per `Delta` of time.
    pub gain: f64,
    /// Relative values `h_i` (with `h_0 = 0`).
    pub values: Vec<f64>,
    /// Number of improvement sweeps performed.
    pub iterations: usize,
}

impl OptimalPolicy {
    /// Loss expressed as a fraction of offered traffic (`g / lambda`).
    pub fn loss_fraction(&self, lambda: f64) -> f64 {
        self.gain / lambda
    }
}

/// Evaluates a fixed policy: returns `(gain, values)` with `h_0 = 0`.
///
/// `policy[i]` is the window chosen in state `i >= 1` (entry 0 ignored).
pub fn evaluate_policy(model: &Smdp, policy: &[usize]) -> (f64, Vec<f64>) {
    let k = model.config().k;
    let n = k + 1; // states 0..=K
                   // Unknowns: x = [g, h_1, ..., h_K]; h_0 = 0.
                   // Equation for state i: sum_j p_ij h_j - h_i - g tau_i = -cost_i.
    let mut a = Matrix::zeros(n, n);
    let mut b = vec![0.0; n];
    for i in 0..=k {
        let law = if i == 0 {
            model.idle_law()
        } else {
            model.action_law(i, policy[i])
        };
        a[(i, 0)] = -law.tau; // g coefficient
        for j in 1..=k {
            a[(i, j)] += law.p[j];
        }
        if i >= 1 {
            a[(i, i)] -= 1.0;
        }
        b[i] = -law.loss;
    }
    let x = solve(&a, &b).expect("value determination is singular");
    let gain = x[0];
    let mut values = vec![0.0; n];
    values[1..=k].copy_from_slice(&x[1..=k]);
    (gain, values)
}

/// The improvement test quantity of eq. A2 for `(i, w)` given `(g, h)`:
/// smaller is better for loss minimization.
pub fn test_quantity(model: &Smdp, i: usize, w: usize, gain: f64, values: &[f64]) -> f64 {
    let law = model.action_law(i, w);
    let mut t = law.loss - gain * law.tau;
    for (j, &p) in law.p.iter().enumerate() {
        t += p * values[j];
    }
    t
}

/// Runs Howard policy iteration from the given initial policy
/// (`initial[i]` for `i >= 1`; clamped into `1..=i`).
pub fn policy_iteration(model: &Smdp, initial: &[usize]) -> OptimalPolicy {
    let k = model.config().k;
    let mut policy: Vec<usize> = (0..=k)
        .map(|i| if i == 0 { 0 } else { initial[i].clamp(1, i) })
        .collect();
    let mut iterations = 0;
    loop {
        iterations += 1;
        let (gain, values) = evaluate_policy(model, &policy);
        let mut changed = false;
        for (i, slot) in policy.iter_mut().enumerate().skip(1) {
            let mut best_w = *slot;
            let mut best = test_quantity(model, i, best_w, gain, &values);
            for w in model.actions(i) {
                if w == *slot {
                    continue;
                }
                let t = test_quantity(model, i, w, gain, &values);
                if t < best - 1e-12 {
                    best = t;
                    best_w = w;
                }
            }
            if best_w != *slot {
                *slot = best_w;
                changed = true;
            }
        }
        if !changed || iterations > 200 {
            let (gain, values) = evaluate_policy(model, &policy);
            return OptimalPolicy {
                window: policy,
                gain,
                values,
                iterations,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smdp::SmdpConfig;

    fn model() -> Smdp {
        Smdp::new(SmdpConfig {
            k: 30,
            m: 5,
            lambda: 0.2,
        })
    }

    fn full_window_policy(k: usize) -> Vec<usize> {
        (0..=k).collect() // w = i
    }

    #[test]
    fn evaluation_residuals_are_zero() {
        let m = model();
        let policy = full_window_policy(30);
        let (gain, values) = evaluate_policy(&m, &policy);
        // Check the defining equations directly.
        for i in 0..=30usize {
            let law = if i == 0 {
                m.idle_law()
            } else {
                m.action_law(i, policy[i])
            };
            let mut rhs = law.loss - gain * law.tau;
            for (j, &p) in law.p.iter().enumerate() {
                rhs += p * values[j];
            }
            assert!(
                (values[i] - rhs).abs() < 1e-8,
                "state {i}: {} vs {rhs}",
                values[i]
            );
        }
    }

    #[test]
    fn gain_is_a_plausible_loss_rate() {
        let m = model();
        let (gain, _) = evaluate_policy(&m, &full_window_policy(30));
        // losses per Delta must be nonnegative and below lambda.
        assert!(gain >= 0.0);
        assert!(gain < 0.2);
    }

    #[test]
    fn iteration_converges_and_never_worsens() {
        let m = model();
        let start = full_window_policy(30);
        let (g0, _) = evaluate_policy(&m, &start);
        let opt = policy_iteration(&m, &start);
        assert!(
            opt.gain <= g0 + 1e-12,
            "gain got worse: {g0} -> {}",
            opt.gain
        );
        assert!(opt.iterations < 50);
        // Re-running from the optimum changes nothing.
        let again = policy_iteration(&m, &opt.window);
        assert!((again.gain - opt.gain).abs() < 1e-10);
        assert_eq!(again.window, opt.window);
    }

    #[test]
    fn optimal_policy_beats_fixed_one_slot_windows() {
        let m = model();
        let ones = vec![1usize; 31];
        let (g_ones, _) = evaluate_policy(&m, &ones);
        let opt = policy_iteration(&m, &ones);
        assert!(opt.gain <= g_ones + 1e-12);
    }

    #[test]
    fn different_starts_reach_the_same_gain() {
        let m = model();
        let a = policy_iteration(&m, &vec![1usize; 31]);
        let b = policy_iteration(&m, &full_window_policy(30));
        assert!(
            (a.gain - b.gain).abs() < 1e-9,
            "gains differ: {} vs {}",
            a.gain,
            b.gain
        );
    }

    #[test]
    fn loss_fraction_is_gain_over_lambda() {
        let m = model();
        let opt = policy_iteration(&m, &full_window_policy(30));
        assert!((opt.loss_fraction(0.2) - opt.gain / 0.2).abs() < 1e-15);
        assert!((0.0..=1.0).contains(&opt.loss_fraction(0.2)));
    }
}
