//! # tcw-mdp — the semi-Markov decision model of the window protocol
//!
//! Reproduces Section 3 and Appendix A of the paper computationally.
//!
//! The protocol is controlled at decision points; between decisions it
//! evolves stochastically through one *windowing round*. With pseudo time
//! discretized at `Delta = tau`, the model is:
//!
//! * **state** `i ∈ S = {0, 1, ..., K}` — the pseudo-time backlog (eq.
//!   3.2): how much past time may still contain untransmitted messages
//!   (never more than `K` thanks to policy element (4));
//! * **action** — the initial window length `w ∈ {1..i}` (element (2));
//!   elements (1) and (3) are fixed to their Theorem-1 optima inside the
//!   model and *verified* optimal by [`verify`];
//! * **transition** — the exact joint law of (consumed window prefix,
//!   overhead slots, success) of one round, computed by recursion over the
//!   binary splitting tree ([`splitting`]);
//! * **one-step pseudo loss** (§3.2) — the expected number of messages
//!   whose pseudo delay crosses `K` during the round.
//!
//! [`howard`] runs Howard policy iteration (value determination via a
//! dense linear solve — eq. A1 — plus the improvement test of eq. A2),
//! which yields the piece the paper could not characterize in closed form:
//! the **optimal window length as a function of the backlog**, `w*(i)`.
//!
//! The paper notes this computation is "too computationally expensive to
//! be of practical use" — on 1983 hardware. Here the full model for
//! `K = 100` solves in well under a second, so we can finally exhibit the
//! optimal element (2) and quantify how close the §4.1 heuristic comes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod howard;
pub mod smdp;
pub mod splitting;
pub mod verify;

pub use howard::{policy_iteration, OptimalPolicy};
pub use smdp::{Smdp, SmdpConfig};
pub use splitting::{round_distribution, Joint, RoundLaw};
