//! Bench-regression gate for CI.
//!
//! Compares a freshly-written `BENCH_engine.json` against the committed
//! copy and fails when any field regresses by more than 20%:
//!
//! * `*_per_sec_*` fields are rates — higher is better; a regression is
//!   `fresh < 0.8 * committed`;
//! * fields containing `allocs` are costs — lower is better; a
//!   regression is `fresh > 1.2 * committed + 0.01` (the additive slack
//!   keeps near-zero steady-state counts from tripping on noise);
//! * `sweep_parallel_speedup` is gated as a rate when both snapshots
//!   come from multi-core hosts. When the **fresh** run is single-core
//!   the gate is skipped with a note — the executor cannot speed
//!   anything up there. When only the **committed** baseline is
//!   single-core (it records speedup 0.984 on such a host), a relative
//!   comparison is meaningless, so a multi-core fresh run is instead
//!   held to an absolute floor: the parallel executor must deliver at
//!   least 1.1x, or the parallelism claim has regressed;
//! * `engine_light_jump_speedup` is a same-host on/off A-B of the
//!   event-horizon fast path and is held to an absolute floor rather
//!   than compared against the committed value;
//! * `host_parallelism` describes the host, not the code, and is
//!   reported but never gated;
//! * the two field sets must match in **both** directions — a key
//!   present in only one of the snapshots fails the gate, so a grown
//!   bench cannot ship without a re-measured committed baseline.
//!
//! Usage: `check_bench <committed.json> <fresh.json>`. Both files are
//! the flat single-level JSON the engine bench writes; parsing is done
//! by hand because the workspace is dependency-free. Exit codes follow
//! the [`tcw_experiments::diag`] convention: 1 = usage, 2 = stale or
//! corrupt snapshot, or a gate failure.

use std::collections::BTreeMap;
use std::process::ExitCode;
use tcw_experiments::diag;

/// Parses the flat `{"key": number, ...}` JSON the benches emit.
fn parse_flat_json(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let inner = text
        .trim()
        .strip_prefix('{')
        .and_then(|t| t.strip_suffix('}'))
        .ok_or("not a JSON object")?;
    let mut out = BTreeMap::new();
    for field in inner.split(',') {
        let field = field.trim();
        if field.is_empty() {
            continue;
        }
        let (key, value) = field
            .split_once(':')
            .ok_or_else(|| format!("bad field {field:?}"))?;
        let key = key.trim().trim_matches('"').to_string();
        let value: f64 = value
            .trim()
            .parse()
            .map_err(|e| format!("bad number for {key:?}: {e}"))?;
        out.insert(key, value);
    }
    if out.is_empty() {
        return Err("no fields".into());
    }
    Ok(out)
}

/// Fields that describe the machine the bench ran on, not the code.
fn environmental(key: &str) -> bool {
    key == "host_parallelism"
}

/// Minimum parallel-sweep speedup demanded of a multi-core host when
/// the committed baseline is single-core and offers no reference.
const SPEEDUP_FLOOR: f64 = 1.1;

/// Minimum light-load speedup of the event-horizon fast path over the
/// slot-stepped engine. An on/off A-B on the same host and build, so no
/// relative comparison against the committed snapshot is needed — the
/// absolute floor is the claim itself.
const LIGHT_JUMP_FLOOR: f64 = 5.0;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [committed_path, fresh_path] = &args[..] else {
        diag::error(
            "check_bench",
            "usage: check_bench <committed.json> <fresh.json>",
        );
        return ExitCode::from(diag::EXIT_USAGE as u8);
    };
    let read = |path: &str| -> Result<BTreeMap<String, f64>, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        parse_flat_json(&text).map_err(|e| format!("{path}: {e}"))
    };
    let (committed, fresh) = match (read(committed_path), read(fresh_path)) {
        (Ok(c), Ok(f)) => (c, f),
        (Err(e), _) | (_, Err(e)) => {
            diag::error("check_bench", &e);
            return ExitCode::from(diag::EXIT_FAILURE as u8);
        }
    };

    // A parallel-speedup comparison is only meaningful when both the
    // committed baseline and this host actually had cores to parallelize
    // over.
    let single_core = |m: &BTreeMap<String, f64>| m.get("host_parallelism") == Some(&1.0);
    let speedup_gated = !single_core(&committed) && !single_core(&fresh);

    let mut failed = false;
    for (key, &base) in &committed {
        let Some(&now) = fresh.get(key) else {
            diag::error(
                "check_bench",
                &format!("FAIL {key}: missing from fresh run"),
            );
            failed = true;
            continue;
        };
        if environmental(key) {
            println!("  ok {key}: {base} -> {now} (environmental, not gated)");
            continue;
        }
        if key == "engine_light_jump_speedup" {
            if now < LIGHT_JUMP_FLOOR {
                diag::error(
                    "check_bench",
                    &format!(
                        "FAIL {key}: fresh {now} (absolute floor {LIGHT_JUMP_FLOOR}; jump-ahead must beat slot stepping at light load)"
                    ),
                );
                failed = true;
            } else {
                println!("  ok {key}: {base} -> {now} (absolute floor {LIGHT_JUMP_FLOOR})");
            }
            continue;
        }
        if key == "sweep_parallel_speedup" && !speedup_gated {
            if single_core(&fresh) {
                println!(
                    "  ok {key}: {base} -> {now} (skipped: single-core host, speedup not meaningful)"
                );
            } else if now < SPEEDUP_FLOOR {
                diag::error(
                    "check_bench",
                    &format!(
                        "FAIL {key}: fresh {now} on a multi-core host (absolute floor {SPEEDUP_FLOOR}; committed baseline is single-core)"
                    ),
                );
                failed = true;
            } else {
                println!(
                    "  ok {key}: {base} -> {now} (absolute floor {SPEEDUP_FLOOR}; committed baseline is single-core)"
                );
            }
            continue;
        }
        let (bad, rule) = if key.contains("allocs") {
            (now > 1.2 * base + 0.01, "must stay within +20% (+0.01)")
        } else {
            (now < 0.8 * base, "must stay within -20%")
        };
        if bad {
            diag::error(
                "check_bench",
                &format!("FAIL {key}: committed {base}, fresh {now} ({rule})"),
            );
            failed = true;
        } else {
            println!("  ok {key}: {base} -> {now}");
        }
    }
    // The committed snapshot and the bench must agree on the field set in
    // both directions: a fresh-only key means the snapshot was never
    // re-measured after the bench grew a gate, leaving it silently ungated.
    for key in fresh.keys() {
        if !committed.contains_key(key) {
            diag::error(
                "check_bench",
                &format!("FAIL {key}: missing from committed snapshot (re-run the bench and commit the result)"),
            );
            failed = true;
        }
    }
    if failed {
        ExitCode::from(diag::EXIT_FAILURE as u8)
    } else {
        println!("check_bench: no field regressed more than 20%");
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::parse_flat_json;

    #[test]
    fn parses_the_engine_bench_shape() {
        let json = "{\n  \"engine_steps_per_sec_clean\": 7153396,\n  \"engine_allocs_per_slot\": 0.0012,\n  \"host_parallelism\": 1\n}\n";
        let map = parse_flat_json(json).unwrap();
        assert_eq!(map.len(), 3);
        assert_eq!(map["host_parallelism"], 1.0);
        assert!((map["engine_allocs_per_slot"] - 0.0012).abs() < 1e-12);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_flat_json("[]").is_err());
        assert!(parse_flat_json("{\"k\": nope}").is_err());
        assert!(parse_flat_json("{}").is_err());
    }
}
