//! # tcw-bench — criterion benchmarks
//!
//! Three suites:
//!
//! * `fig7` — one benchmark per Figure-7 panel: the full regeneration
//!   unit (analytic controlled curve + one simulated point) so the cost
//!   of reproducing each panel is tracked;
//! * `kernel` — micro-benchmarks of the hot substrate paths (event queue,
//!   RNG, lattice convolution, renewal series, splitting recursion,
//!   policy iteration, protocol engine throughput);
//! * `ablations` — design-choice comparisons (policy disciplines,
//!   scheduling-time shapes, guard slot) as timed units.
//!
//! Run with `cargo bench --workspace`.

/// A reduced simulation size used by the benches so a full `cargo bench`
/// stays in the minutes range while still exercising every code path.
pub fn bench_settings() -> tcw_experiments::SimSettings {
    tcw_experiments::SimSettings {
        messages: 2_000,
        warmup: 200,
        ticks_per_tau: 16,
        ..Default::default()
    }
}
