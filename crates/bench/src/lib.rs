//! # tcw-bench — benchmarks on a dependency-free timing harness
//!
//! Three suites:
//!
//! * `fig7` — one benchmark per Figure-7 panel: the full regeneration
//!   unit (analytic controlled curve + one simulated point) so the cost
//!   of reproducing each panel is tracked;
//! * `kernel` — micro-benchmarks of the hot substrate paths (event queue,
//!   RNG, lattice convolution, renewal series, splitting recursion,
//!   policy iteration, protocol engine throughput);
//! * `ablations` — design-choice comparisons (policy disciplines,
//!   scheduling-time shapes, guard slot) as timed units.
//!
//! Run with `cargo bench --workspace`. The harness is implemented here
//! (~60 lines) rather than imported: the repository builds with no
//! external dependencies, and median-of-samples wall-clock timing is all
//! the suites need.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// A reduced simulation size used by the benches so a full `cargo bench`
/// stays in the minutes range while still exercising every code path.
pub fn bench_settings() -> tcw_experiments::SimSettings {
    tcw_experiments::SimSettings {
        messages: 2_000,
        warmup: 200,
        ticks_per_tau: 16,
        ..Default::default()
    }
}

/// A minimal wall-clock benchmark runner: runs each closure for a fixed
/// number of samples and reports min / median / max per-iteration time.
pub struct Bench {
    suite: &'static str,
    samples: usize,
}

impl Bench {
    /// Creates a runner for the given suite name.
    pub fn new(suite: &'static str) -> Self {
        Bench { suite, samples: 10 }
    }

    /// Overrides the number of timed samples (default 10).
    pub fn samples(mut self, n: usize) -> Self {
        self.samples = n.max(3);
        self
    }

    /// Times `f` (one sample = one call) and prints a one-line report.
    /// The closure's return value is consumed via [`std::hint::black_box`]
    /// so the optimizer cannot discard the measured work.
    pub fn run<T>(&self, name: &str, mut f: impl FnMut() -> T) {
        // One warm-up call outside the timed samples.
        std::hint::black_box(f());
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std::hint::black_box(f());
            times.push(t0.elapsed());
        }
        times.sort();
        let median = times[times.len() / 2];
        println!(
            "{}/{:<40} min {:>12?}  median {:>12?}  max {:>12?}  ({} samples)",
            self.suite,
            name,
            times[0],
            median,
            times[times.len() - 1],
            self.samples
        );
    }
}
