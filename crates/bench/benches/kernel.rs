//! Micro-benchmarks of the substrate hot paths.

use std::hint::black_box;
use tcw_bench::Bench;
use tcw_mdp::howard::policy_iteration;
use tcw_mdp::smdp::{Smdp, SmdpConfig};
use tcw_mdp::splitting::round_distribution;
use tcw_numerics::grid::{renewal_series, GridDist};
use tcw_sim::events::EventQueue;
use tcw_sim::rng::Rng;
use tcw_sim::time::Time;
use tcw_window::analysis::{expected_overhead_slots, overhead_slot_pmf};

fn main() {
    let b = Bench::new("kernel");

    let mut rng = Rng::new(1);
    b.run("event_queue_push_pop_1k", || {
        let mut q = EventQueue::new();
        for i in 0..1_000u64 {
            q.schedule(Time::from_ticks(rng.next_u64() % 10_000), i);
        }
        let mut acc = 0u64;
        while let Some((_, e)) = q.pop() {
            acc = acc.wrapping_add(e);
        }
        black_box(acc)
    });

    let mut rng = Rng::new(2);
    b.run("rng_f64_10k", || {
        let mut acc = 0.0;
        for _ in 0..10_000 {
            acc += rng.f64();
        }
        black_box(acc)
    });

    let d = GridDist::geometric(1.0, 0.01, 1e-12);
    b.run("griddist_convolve_512", || black_box(d.convolve(&d, 512)));

    let service = GridDist::geometric_from_zero(1.0, 1.5, 1e-12).shift(25);
    let beta = service.residual();
    b.run("renewal_series_2k", || {
        black_box(renewal_series(&beta, 0.8, 2_000))
    });

    b.run("round_distribution_w64", || {
        black_box(round_distribution(64, 0.02))
    });
    b.run("overhead_pmf_mu126", || {
        black_box(overhead_slot_pmf(1.26, 1e-10))
    });
    b.run("expected_overhead_mu126", || {
        black_box(expected_overhead_slots(1.26))
    });

    b.run("mdp/policy_iteration_k50_m10", || {
        let model = Smdp::new(SmdpConfig {
            k: 50,
            m: 10,
            lambda: 0.1,
        });
        let start: Vec<usize> = (0..=50).map(|i| i.clamp(1, 12)).collect();
        black_box(policy_iteration(&model, &start))
    });
}
