//! Micro-benchmarks of the substrate hot paths.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tcw_mdp::howard::policy_iteration;
use tcw_mdp::smdp::{Smdp, SmdpConfig};
use tcw_mdp::splitting::round_distribution;
use tcw_numerics::grid::{renewal_series, GridDist};
use tcw_sim::events::EventQueue;
use tcw_sim::rng::Rng;
use tcw_sim::time::Time;
use tcw_window::analysis::{expected_overhead_slots, overhead_slot_pmf};

fn event_queue(c: &mut Criterion) {
    c.bench_function("kernel/event_queue_push_pop_1k", |b| {
        let mut rng = Rng::new(1);
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1_000u64 {
                q.schedule(Time::from_ticks(rng.next_u64() % 10_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            black_box(acc)
        });
    });
}

fn rng_throughput(c: &mut Criterion) {
    c.bench_function("kernel/rng_f64_10k", |b| {
        let mut rng = Rng::new(2);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..10_000 {
                acc += rng.f64();
            }
            black_box(acc)
        });
    });
}

fn convolution(c: &mut Criterion) {
    c.bench_function("kernel/griddist_convolve_512", |b| {
        let d = GridDist::geometric(1.0, 0.01, 1e-12);
        b.iter(|| black_box(d.convolve(&d, 512)));
    });
}

fn renewal(c: &mut Criterion) {
    c.bench_function("kernel/renewal_series_2k", |b| {
        let service = GridDist::geometric_from_zero(1.0, 1.5, 1e-12).shift(25);
        let beta = service.residual();
        b.iter(|| black_box(renewal_series(&beta, 0.8, 2_000)));
    });
}

fn splitting(c: &mut Criterion) {
    c.bench_function("kernel/round_distribution_w64", |b| {
        b.iter(|| black_box(round_distribution(64, 0.02)));
    });
    c.bench_function("kernel/overhead_pmf_mu126", |b| {
        b.iter(|| black_box(overhead_slot_pmf(1.26, 1e-10)));
    });
    c.bench_function("kernel/expected_overhead_mu126", |b| {
        b.iter(|| black_box(expected_overhead_slots(1.26)));
    });
}

fn mdp(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel/mdp");
    group.sample_size(10);
    group.bench_function("policy_iteration_k50_m10", |b| {
        b.iter(|| {
            let model = Smdp::new(SmdpConfig {
                k: 50,
                m: 10,
                lambda: 0.1,
            });
            let start: Vec<usize> = (0..=50).map(|i| i.max(1).min(12)).collect();
            black_box(policy_iteration(&model, &start))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    event_queue,
    rng_throughput,
    convolution,
    renewal,
    splitting,
    mdp
);
criterion_main!(benches);
