//! One benchmark per Figure-7 panel: times the regeneration unit for the
//! panel — the analytic controlled curve over the full `K` grid plus one
//! simulated protocol point at `K = 4 M`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tcw_bench::bench_settings;
use tcw_experiments::{simulate_panel, PolicyKind, PANELS};
use tcw_queueing::marching::{controlled_curve, PanelConfig};
use tcw_queueing::service::SchedulingShape;

fn fig7_panels(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    for panel in PANELS {
        group.bench_function(format!("analytic_{}", panel.id()), |b| {
            let cfg = PanelConfig {
                m: panel.m,
                rho_prime: panel.rho_prime,
                shape: SchedulingShape::Geometric,
            };
            let grid = panel.k_grid();
            b.iter(|| black_box(controlled_curve(cfg, &grid)));
        });
        group.bench_function(format!("simulated_{}", panel.id()), |b| {
            let k = 4.0 * panel.m as f64;
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(simulate_panel(
                    panel,
                    PolicyKind::Controlled,
                    k,
                    bench_settings(),
                    seed,
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, fig7_panels);
criterion_main!(benches);
