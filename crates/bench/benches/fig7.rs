//! One benchmark per Figure-7 panel: times the regeneration unit for the
//! panel — the analytic controlled curve over the full `K` grid plus one
//! simulated protocol point at `K = 4 M`.

use std::hint::black_box;
use tcw_bench::{bench_settings, Bench};
use tcw_experiments::{simulate_panel, PolicyKind, PANELS};
use tcw_queueing::marching::{controlled_curve, PanelConfig};
use tcw_queueing::service::SchedulingShape;

fn main() {
    let b = Bench::new("fig7");
    for panel in PANELS {
        let cfg = PanelConfig {
            m: panel.m,
            rho_prime: panel.rho_prime,
            shape: SchedulingShape::Geometric,
        };
        let grid = panel.k_grid();
        b.run(&format!("analytic_{}", panel.id()), || {
            black_box(controlled_curve(cfg, &grid))
        });
        let k = 4.0 * panel.m as f64;
        let mut seed = 0u64;
        b.run(&format!("simulated_{}", panel.id()), || {
            seed += 1;
            black_box(simulate_panel(
                panel,
                PolicyKind::Controlled,
                k,
                bench_settings(),
                seed,
            ))
        });
    }
}
