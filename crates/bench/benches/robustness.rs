//! Engine-throughput snapshot under fault and churn injection.
//!
//! Measures protocol-engine probe slots per second at zero and nonzero
//! fault/churn rates — the robustness subsystems promise bit-identity
//! when disabled and bounded overhead when enabled, and this snapshot
//! makes both costs visible. Besides the console report, the median
//! rates are written to `BENCH_robustness.json` (flat JSON, no
//! serialization dependency) so CI can archive the snapshot.

use std::time::Instant;
use tcw_mac::{ChannelConfig, ChurnPlan, FaultPlan, PoissonArrivals};
use tcw_sim::time::{Dur, Time};
use tcw_window::engine::{poisson_engine, Engine};
use tcw_window::metrics::MeasureConfig;
use tcw_window::policy::ControlPolicy;
use tcw_window::trace::NoopObserver;

const HORIZON_TICKS: u64 = 200_000;
const SAMPLES: usize = 7;
const STATIONS: u32 = 20;

fn build() -> Engine<PoissonArrivals> {
    let channel = ChannelConfig {
        ticks_per_tau: 4,
        message_slots: 5,
        guard: false,
    };
    let measure = MeasureConfig {
        start: Time::ZERO,
        end: Time::from_ticks(u64::MAX / 2),
        deadline: Dur::from_ticks(300),
    };
    poisson_engine(
        channel,
        ControlPolicy::controlled(Dur::from_ticks(300), Dur::from_ticks(12)),
        measure,
        0.6,
        STATIONS,
        1983,
    )
}

/// Runs one configuration to the horizon and returns the median probe
/// slots per second across samples.
fn steps_per_sec(plan: FaultPlan, churn: ChurnPlan) -> f64 {
    let mut rates: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let mut eng = build();
            eng.set_fault_plan(plan);
            eng.set_churn_plan(churn, STATIONS);
            let t0 = Instant::now();
            eng.run_until(Time::from_ticks(HORIZON_TICKS), &mut NoopObserver);
            eng.drain(&mut NoopObserver);
            let elapsed = t0.elapsed().as_secs_f64();
            let slots = eng.channel_stats.idle_slots
                + eng.channel_stats.collision_slots
                + eng.channel_stats.successes
                + eng.channel_stats.erased_slots;
            std::hint::black_box(eng.metrics.offered());
            slots as f64 / elapsed
        })
        .collect();
    rates.sort_by(|a, b| a.total_cmp(b));
    rates[rates.len() / 2]
}

fn main() {
    let configs: [(&str, FaultPlan, ChurnPlan); 4] = [
        ("clean", FaultPlan::none(), ChurnPlan::none()),
        ("faults_p02", FaultPlan::uniform(0.02), ChurnPlan::none()),
        (
            "churn_c002",
            FaultPlan::none(),
            ChurnPlan::crash_restart(0.002, 40, 100),
        ),
        (
            "faults_p02_churn_c002",
            FaultPlan::uniform(0.02),
            ChurnPlan::crash_restart(0.002, 40, 100),
        ),
    ];

    let mut json = String::from("{\n");
    for (i, (name, plan, churn)) in configs.iter().enumerate() {
        let rate = steps_per_sec(*plan, *churn);
        println!(
            "robustness/engine_steps_per_sec_{name:<24} {rate:>14.0} slots/s ({SAMPLES} samples)"
        );
        json.push_str(&format!(
            "  \"engine_steps_per_sec_{name}\": {:.0}{}\n",
            rate,
            if i + 1 == configs.len() { "" } else { "," }
        ));
    }
    json.push_str("}\n");
    // Cargo runs benches with the package directory as cwd; anchor the
    // snapshot at the workspace root where CI picks it up.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_robustness.json");
    std::fs::write(path, &json).expect("write BENCH_robustness.json");
    println!("wrote BENCH_robustness.json");
}
