//! Ablation benches: protocol engine throughput per discipline and
//! analytic-model cost per scheduling-time shape.

use std::hint::black_box;
use tcw_bench::{bench_settings, Bench};
use tcw_experiments::{simulate_panel, Panel, PolicyKind};
use tcw_queueing::marching::{controlled_curve, PanelConfig};
use tcw_queueing::service::SchedulingShape;

fn main() {
    let b = Bench::new("ablation");

    let panel = Panel {
        rho_prime: 0.75,
        m: 25,
    };
    for kind in [
        PolicyKind::Controlled,
        PolicyKind::Fcfs,
        PolicyKind::Lcfs,
        PolicyKind::Random,
    ] {
        let mut seed = 100u64;
        b.run(&format!("engine_policy/{}", kind.label()), || {
            seed += 1;
            black_box(simulate_panel(panel, kind, 100.0, bench_settings(), seed))
        });
    }

    let grid: Vec<f64> = (1..=32).map(|i| i as f64 * 12.5).collect();
    for (name, shape) in [
        ("geometric", SchedulingShape::Geometric),
        ("exact_splitting", SchedulingShape::ExactSplitting),
    ] {
        let cfg = PanelConfig {
            m: 25,
            rho_prime: 0.75,
            shape,
        };
        b.run(&format!("analytic_shape/{name}"), || {
            black_box(controlled_curve(cfg, &grid))
        });
    }

    let panel = Panel {
        rho_prime: 0.5,
        m: 25,
    };
    for (name, guard) in [("no_guard", false), ("guard", true)] {
        let settings = tcw_experiments::SimSettings {
            guard,
            ..bench_settings()
        };
        let mut seed = 200u64;
        b.run(&format!("guard/{name}"), || {
            seed += 1;
            black_box(simulate_panel(
                panel,
                PolicyKind::Controlled,
                100.0,
                settings,
                seed,
            ))
        });
    }
}
