//! Ablation benches: protocol engine throughput per discipline and
//! analytic-model cost per scheduling-time shape.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tcw_bench::bench_settings;
use tcw_experiments::{simulate_panel, Panel, PolicyKind};
use tcw_queueing::marching::{controlled_curve, PanelConfig};
use tcw_queueing::service::SchedulingShape;

fn engine_by_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/engine_policy");
    group.sample_size(10);
    let panel = Panel {
        rho_prime: 0.75,
        m: 25,
    };
    for kind in [
        PolicyKind::Controlled,
        PolicyKind::Fcfs,
        PolicyKind::Lcfs,
        PolicyKind::Random,
    ] {
        group.bench_function(kind.label(), |b| {
            let mut seed = 100u64;
            b.iter(|| {
                seed += 1;
                black_box(simulate_panel(panel, kind, 100.0, bench_settings(), seed))
            });
        });
    }
    group.finish();
}

fn analytic_by_shape(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/analytic_shape");
    group.sample_size(10);
    let grid: Vec<f64> = (1..=32).map(|i| i as f64 * 12.5).collect();
    for (name, shape) in [
        ("geometric", SchedulingShape::Geometric),
        ("exact_splitting", SchedulingShape::ExactSplitting),
    ] {
        group.bench_function(name, |b| {
            let cfg = PanelConfig {
                m: 25,
                rho_prime: 0.75,
                shape,
            };
            b.iter(|| black_box(controlled_curve(cfg, &grid)));
        });
    }
    group.finish();
}

fn guard_slot(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/guard");
    group.sample_size(10);
    let panel = Panel {
        rho_prime: 0.5,
        m: 25,
    };
    for (name, guard) in [("no_guard", false), ("guard", true)] {
        group.bench_function(name, |b| {
            let settings = tcw_experiments::SimSettings {
                guard,
                ..bench_settings()
            };
            let mut seed = 200u64;
            b.iter(|| {
                seed += 1;
                black_box(simulate_panel(
                    panel,
                    PolicyKind::Controlled,
                    100.0,
                    settings,
                    seed,
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, engine_by_policy, analytic_by_shape, guard_slot);
criterion_main!(benches);
