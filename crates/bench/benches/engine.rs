//! Engine hot-path and sweep-throughput snapshot.
//!
//! Three measurements, written to `BENCH_engine.json` next to
//! `BENCH_robustness.json`:
//!
//! * **steps/sec (clean)** — probe slots per second of a clean engine,
//!   the number the zero-allocation rework must never regress;
//! * **steps/sec (light) and jump speedup** — probe slots per second at
//!   rho = 0.05, where the event-horizon fast path collapses idle
//!   stretches, plus the on/off A-B ratio on the same build (gated by
//!   `check_bench` against an absolute floor);
//! * **allocations/slot** — heap allocations per probe slot in steady
//!   state, counted by a global counting allocator (the scratch-buffer
//!   invariant says this approaches zero once buffers reach their
//!   steady-state capacity);
//! * **cells/sec, serial vs. parallel** — sweep-executor throughput on
//!   a small cell grid at `--jobs 1` and at the host parallelism, plus
//!   the resulting speedup. `host_parallelism` is recorded so the
//!   speedup can be judged against the cores actually available (on a
//!   single-core host the two rates coincide);
//! * **snapshot+restore round trips/sec** — the cost of one crash-safe
//!   checkpoint: `Engine::snapshot()` on a warmed engine followed by
//!   `Engine::restore()` into a freshly built one. Checkpointing is
//!   opt-in and off the probe-slot hot path, so this is a capacity
//!   number for supervisors, not a hot-path gate — the zero-overhead
//!   claim for non-checkpointing runs rests on `allocs_per_slot` and
//!   `steps_per_sec_clean` staying put.
//!
//! Pass `--quick` for the CI smoke mode (shorter horizon, fewer
//! samples; the JSON fields keep the same meaning).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use tcw_experiments::runner::{PolicyKind, SimSettings};
use tcw_experiments::sweep::{default_jobs, run_cells, Cell};
use tcw_experiments::PANELS;
use tcw_mac::{ChannelConfig, PoissonArrivals};
use tcw_sim::time::{Dur, Time};
use tcw_window::engine::{poisson_engine, Engine};
use tcw_window::metrics::MeasureConfig;
use tcw_window::policy::ControlPolicy;
use tcw_window::trace::NoopObserver;

/// Counts every allocation and reallocation; the simulation workspace
/// forbids unsafe code, but the bench binary may host the allocator shim
/// (it delegates straight to [`System`]).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const STATIONS: u32 = 20;

/// The light-load offered rate for the event-horizon measurements: at
/// rho = 0.05 almost every decision cycle is an idle probe, the regime
/// the jump-ahead kernel collapses into O(1) work per stretch.
const RHO_LIGHT: f64 = 0.05;

fn build_at(rho: f64) -> Engine<PoissonArrivals> {
    let channel = ChannelConfig {
        ticks_per_tau: 4,
        message_slots: 5,
        guard: false,
    };
    let measure = MeasureConfig {
        start: Time::ZERO,
        end: Time::from_ticks(u64::MAX / 2),
        deadline: Dur::from_ticks(300),
    };
    poisson_engine(
        channel,
        ControlPolicy::controlled(Dur::from_ticks(300), Dur::from_ticks(12)),
        measure,
        rho,
        STATIONS,
        1983,
    )
}

fn build() -> Engine<PoissonArrivals> {
    build_at(0.6)
}

fn slots(eng: &Engine<PoissonArrivals>) -> u64 {
    eng.channel_stats.idle_slots
        + eng.channel_stats.collision_slots
        + eng.channel_stats.successes
        + eng.channel_stats.erased_slots
}

/// Median clean-engine probe slots per second.
fn steps_per_sec(samples: usize, horizon: u64) -> f64 {
    let mut rates: Vec<f64> = (0..samples)
        .map(|_| {
            let mut eng = build();
            let t0 = Instant::now();
            eng.run_until(Time::from_ticks(horizon), &mut NoopObserver);
            eng.drain(&mut NoopObserver);
            let elapsed = t0.elapsed().as_secs_f64();
            std::hint::black_box(eng.metrics.offered());
            slots(&eng) as f64 / elapsed
        })
        .collect();
    rates.sort_by(|a, b| a.total_cmp(b));
    rates[rates.len() / 2]
}

/// Median light-load probe slots per second with the event-horizon fast
/// path on or off. The on/off pair is the A-B the `check_bench` floor
/// gates: both runs are bit-identical in every metric (pinned by the
/// `horizon_equivalence` property suite), so the ratio is pure
/// dispatch-cost reduction.
fn steps_per_sec_light(samples: usize, horizon: u64, jump: bool) -> f64 {
    let mut rates: Vec<f64> = (0..samples)
        .map(|_| {
            let mut eng = build_at(RHO_LIGHT);
            eng.set_jump_ahead(jump);
            let t0 = Instant::now();
            eng.run_until(Time::from_ticks(horizon), &mut NoopObserver);
            eng.drain(&mut NoopObserver);
            let elapsed = t0.elapsed().as_secs_f64();
            std::hint::black_box(eng.metrics.offered());
            slots(&eng) as f64 / elapsed
        })
        .collect();
    rates.sort_by(|a, b| a.total_cmp(b));
    rates[rates.len() / 2]
}

/// Steady-state allocations per probe slot: warm the engine for a
/// quarter of the horizon (scratch buffers grow to their steady-state
/// capacity), then count allocations over the remainder. Deterministic —
/// the engine makes the same allocations on every run of a fixed seed.
fn allocs_per_slot(horizon: u64) -> f64 {
    let mut eng = build();
    eng.run_until(Time::from_ticks(horizon / 4), &mut NoopObserver);
    let slots_before = slots(&eng);
    let allocs_before = ALLOCS.load(Ordering::Relaxed);
    eng.run_until(Time::from_ticks(horizon), &mut NoopObserver);
    let measured_slots = slots(&eng) - slots_before;
    let measured_allocs = ALLOCS.load(Ordering::Relaxed) - allocs_before;
    std::hint::black_box(eng.metrics.offered());
    measured_allocs as f64 / measured_slots.max(1) as f64
}

/// Median snapshot+restore round trips per second on a warmed engine.
/// Each round trip serializes the full engine state (arrival cursor,
/// per-station windows, metrics, scratch buffers) and revives it in a
/// freshly built engine, exactly what a supervisor pays per checkpoint.
fn snapshot_restore_per_sec(samples: usize, horizon: u64) -> f64 {
    let mut eng = build();
    eng.run_until(Time::from_ticks(horizon / 4), &mut NoopObserver);
    let rounds: u64 = 200;
    let mut rates: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..rounds {
                let words = eng.snapshot().expect("snapshot a warmed engine");
                let mut fresh = build();
                fresh.restore(&words).expect("restore a fresh snapshot");
                std::hint::black_box(slots(&fresh));
            }
            rounds as f64 / t0.elapsed().as_secs_f64()
        })
        .collect();
    rates.sort_by(|a, b| a.total_cmp(b));
    rates[rates.len() / 2]
}

fn sweep_grid(cells: usize) -> Vec<Cell> {
    let settings = SimSettings {
        ticks_per_tau: 8,
        messages: 1_000,
        warmup: 100,
        ..Default::default()
    };
    (0..cells)
        .map(|i| {
            Cell::clean(
                PANELS[i % PANELS.len()],
                PolicyKind::Controlled,
                100.0,
                settings,
                1983 + i as u64,
            )
        })
        .collect()
}

/// Median sweep throughput (cells per second) at the given worker count.
fn cells_per_sec(cells: &[Cell], jobs: usize, samples: usize) -> f64 {
    let mut rates: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            let out = run_cells(cells, jobs);
            let elapsed = t0.elapsed().as_secs_f64();
            std::hint::black_box(out.len());
            cells.len() as f64 / elapsed
        })
        .collect();
    rates.sort_by(|a, b| a.total_cmp(b));
    rates[rates.len() / 2]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let samples = if quick { 3 } else { 7 };
    let horizon: u64 = if quick { 80_000 } else { 200_000 };
    let grid = sweep_grid(if quick { 4 } else { 8 });
    let parallel_jobs = default_jobs();

    let steps = steps_per_sec(samples, horizon);
    println!("engine/steps_per_sec_clean        {steps:>14.0} slots/s ({samples} samples)");

    // Light load runs a longer simulated horizon: with the fast path on,
    // the wall-clock per run would otherwise be too small to time.
    let horizon_light = horizon * 16;
    let light = steps_per_sec_light(samples, horizon_light, true);
    println!("engine/steps_per_sec_light        {light:>14.0} slots/s (rho={RHO_LIGHT}, {samples} samples)");
    let light_off = steps_per_sec_light(samples, horizon_light, false);
    let jump_speedup = light / light_off;
    println!(
        "engine/light_jump_speedup         {jump_speedup:>14.2} x (jump-ahead on vs off at rho={RHO_LIGHT})"
    );

    let allocs = allocs_per_slot(horizon);
    println!("engine/allocs_per_slot            {allocs:>14.4} allocs/slot");

    let serial = cells_per_sec(&grid, 1, samples);
    println!("engine/sweep_cells_per_sec_serial {serial:>14.3} cells/s ({samples} samples)");
    let parallel = cells_per_sec(&grid, parallel_jobs, samples);
    println!(
        "engine/sweep_cells_per_sec_parallel {parallel:>12.3} cells/s ({parallel_jobs} jobs, {samples} samples)"
    );
    let speedup = parallel / serial;
    println!(
        "engine/sweep_parallel_speedup     {speedup:>14.2} x ({parallel_jobs} workers available)"
    );

    let snap = snapshot_restore_per_sec(samples, horizon);
    println!("engine/snapshot_restore_per_sec   {snap:>14.0} round trips/s ({samples} samples)");

    // Flat JSON, manual formatting (the workspace has no serialization
    // dependency); CI parses it and compares against the committed copy.
    let json = format!(
        "{{\n  \"engine_steps_per_sec_clean\": {steps:.0},\n  \"engine_steps_per_sec_light\": {light:.0},\n  \"engine_light_jump_speedup\": {jump_speedup:.3},\n  \"engine_allocs_per_slot\": {allocs:.4},\n  \"sweep_cells_per_sec_serial\": {serial:.3},\n  \"sweep_cells_per_sec_parallel\": {parallel:.3},\n  \"sweep_parallel_speedup\": {speedup:.3},\n  \"engine_snapshot_restore_per_sec\": {snap:.0},\n  \"host_parallelism\": {parallel_jobs}\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    std::fs::write(path, &json).expect("write BENCH_engine.json");
    println!("wrote BENCH_engine.json");
}
