//! Message-lifecycle span tracing: an [`EngineObserver`] that encodes
//! every message's protocol lifecycle (admission → window membership →
//! collision episodes → delivery / discard / drop) as schema-versioned
//! NDJSON, one JSON object per line.
//!
//! Unlike [`crate::EventTracer`], the span tracer keeps
//! [`EngineObserver::slow_path`] at `false`: span events are emitted on
//! the event-horizon fast path too. That is sound because no message
//! event can occur inside a jumped idle run (the pending book is empty by
//! construction) and the batched resolution kernel reports its singleton
//! window memberships and deliveries through the same callbacks, at the
//! same instants, as the slot-stepped path — pinned by the
//! `span_stream_is_identical_on_both_paths` A-B property test in
//! `tcw-window`.
//!
//! The line format is documented at the crate root ([`crate`]). Span
//! lines carry `seq` and `t` but no `slot` — probe-slot attribution is
//! the event stream's job, and slot counting would tie the span stream to
//! the slot-stepped path.

use std::fmt::Write as _;

use tcw_mac::Message;
use tcw_sim::time::{Dur, Time};
use tcw_window::trace::{DropCause, EngineObserver};

use crate::event::SCHEMA_VERSION;

/// Capacity of the preallocated record ring (see [`crate::EventTracer`]).
const RING_CAP: usize = 4096;

/// Compact payload of one span event. Fixed-size and `Copy` so ring
/// storage never allocates.
#[derive(Clone, Copy, Debug)]
enum Sp {
    /// Lifecycle opens: the message was admitted into the protocol.
    Open {
        msg: u64,
        station: u32,
        arrival: u64,
    },
    /// The message joined the initial window of a windowing round.
    Window { msg: u64, age: u64 },
    /// The message transmitted into a collision episode.
    Collision { msg: u64, age: u64 },
    /// Lifecycle closes: delivered.
    Delivered {
        msg: u64,
        station: u32,
        start: u64,
        paper_delay: u64,
        true_delay: u64,
    },
    /// Lifecycle closes: discarded at the sender (policy element 4).
    Discarded { msg: u64, station: u32, age: u64 },
    /// Lifecycle closes: dropped by churn.
    Dropped {
        msg: u64,
        station: u32,
        age: u64,
        cause: DropCause,
    },
}

/// One ring entry: event time plus payload.
#[derive(Clone, Copy, Debug)]
struct SpanRecord {
    t: u64,
    ev: Sp,
}

/// Ring-buffered NDJSON lifecycle-span tracer. See the crate root for the
/// schema; use [`SpanTracer::begin_cell`] / [`SpanTracer::finish`] exactly
/// like the event tracer.
#[derive(Debug)]
pub struct SpanTracer {
    ring: Vec<SpanRecord>,
    out: String,
    /// Line number within the current cell (the `cell` header excluded).
    seq: u64,
    /// Most recent event time, to keep `t` non-decreasing for deliveries
    /// reported at completion with an earlier transmission start.
    last_t: u64,
}

impl Default for SpanTracer {
    fn default() -> Self {
        Self::new()
    }
}

impl SpanTracer {
    /// Creates a tracer with a preallocated record ring.
    pub fn new() -> Self {
        SpanTracer {
            ring: Vec::with_capacity(RING_CAP),
            out: String::new(),
            seq: 0,
            last_t: 0,
        }
    }

    /// Flushes pending records and writes a `cell` header line; `seq`
    /// restarts from zero so each cell's stream is self-contained.
    pub fn begin_cell(&mut self, index: usize, label: &str) {
        self.flush();
        let _ = write!(
            self.out,
            "{{\"schema_version\":{SCHEMA_VERSION},\"ev\":\"cell\",\"cell\":{index},\"label\":"
        );
        crate::event::escape_json_str(label, &mut self.out);
        self.out.push_str("}\n");
        self.seq = 0;
        self.last_t = 0;
    }

    /// Flushes pending records and returns the accumulated NDJSON text,
    /// leaving the tracer empty and reusable.
    pub fn finish(&mut self) -> String {
        self.flush();
        std::mem::take(&mut self.out)
    }

    fn record(&mut self, t: Time, ev: Sp) {
        self.last_t = t.ticks();
        if self.ring.len() == RING_CAP {
            self.flush();
        }
        self.ring.push(SpanRecord { t: t.ticks(), ev });
    }

    fn flush(&mut self) {
        let ring = std::mem::take(&mut self.ring);
        for rec in &ring {
            let _ = write!(
                self.out,
                "{{\"schema_version\":{SCHEMA_VERSION},\"seq\":{},\"t\":{},",
                self.seq, rec.t
            );
            self.seq += 1;
            match rec.ev {
                Sp::Open {
                    msg,
                    station,
                    arrival,
                } => {
                    let _ = write!(
                        self.out,
                        "\"ev\":\"span_open\",\"msg\":{msg},\"station\":{station},\"arrival\":{arrival}"
                    );
                }
                Sp::Window { msg, age } => {
                    let _ = write!(
                        self.out,
                        "\"ev\":\"span_window\",\"msg\":{msg},\"age\":{age}"
                    );
                }
                Sp::Collision { msg, age } => {
                    let _ = write!(
                        self.out,
                        "\"ev\":\"span_collision\",\"msg\":{msg},\"age\":{age}"
                    );
                }
                Sp::Delivered {
                    msg,
                    station,
                    start,
                    paper_delay,
                    true_delay,
                } => {
                    let _ = write!(
                        self.out,
                        "\"ev\":\"span_close\",\"outcome\":\"delivered\",\"msg\":{msg},\"station\":{station},\"start\":{start},\"paper_delay\":{paper_delay},\"true_delay\":{true_delay}"
                    );
                }
                Sp::Discarded { msg, station, age } => {
                    let _ = write!(
                        self.out,
                        "\"ev\":\"span_close\",\"outcome\":\"discarded\",\"msg\":{msg},\"station\":{station},\"age\":{age}"
                    );
                }
                Sp::Dropped {
                    msg,
                    station,
                    age,
                    cause,
                } => {
                    let _ = write!(
                        self.out,
                        "\"ev\":\"span_close\",\"outcome\":\"dropped\",\"msg\":{msg},\"station\":{station},\"age\":{age},\"cause\":\"{}\"",
                        cause.label()
                    );
                }
            }
            self.out.push_str("}\n");
        }
        self.ring = ring;
        self.ring.clear();
    }
}

impl EngineObserver for SpanTracer {
    // Deliberately *not* overriding `slow_path`: span events survive the
    // event-horizon fast path bit-for-bit (see the module doc).

    fn on_arrival(&mut self, msg: &Message, now: Time) {
        self.record(
            now,
            Sp::Open {
                msg: msg.id.0,
                station: msg.station.0,
                arrival: msg.arrival.ticks(),
            },
        );
    }

    fn on_window_member(&mut self, msg: &Message, now: Time) {
        self.record(
            now,
            Sp::Window {
                msg: msg.id.0,
                age: msg.age_at(now).ticks(),
            },
        );
    }

    fn on_collision_member(&mut self, msg: &Message, now: Time) {
        self.record(
            now,
            Sp::Collision {
                msg: msg.id.0,
                age: msg.age_at(now).ticks(),
            },
        );
    }

    fn on_transmit(&mut self, msg: &Message, start: Time, paper_delay: Dur, true_delay: Dur) {
        // Deliveries are reported at completion, so `start` can precede
        // the latest recorded instant; keep `t` monotone like the event
        // tracer and carry the raw start in the payload.
        self.record(
            Time::from_ticks(self.last_t.max(start.ticks())),
            Sp::Delivered {
                msg: msg.id.0,
                station: msg.station.0,
                start: start.ticks(),
                paper_delay: paper_delay.ticks(),
                true_delay: true_delay.ticks(),
            },
        );
    }

    fn on_sender_discard(&mut self, msg: &Message, now: Time) {
        self.record(
            now,
            Sp::Discarded {
                msg: msg.id.0,
                station: msg.station.0,
                age: msg.age_at(now).ticks(),
            },
        );
    }

    fn on_message_drop(&mut self, msg: &Message, now: Time, cause: DropCause) {
        self.record(
            now,
            Sp::Dropped {
                msg: msg.id.0,
                station: msg.station.0,
                age: msg.age_at(now).ticks(),
                cause,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcw_mac::{MessageId, StationId};

    fn msg(id: u64, station: u32, arrival: u64) -> Message {
        Message::new(MessageId(id), StationId(station), Time::from_ticks(arrival))
    }

    #[test]
    fn span_lines_carry_schema_and_lifecycle() {
        let mut tr = SpanTracer::new();
        tr.begin_cell(0, "demo");
        let m = msg(3, 1, 2);
        tr.on_arrival(&m, Time::from_ticks(8));
        tr.on_window_member(&m, Time::from_ticks(8));
        tr.on_collision_member(&m, Time::from_ticks(8));
        tr.on_transmit(
            &m,
            Time::from_ticks(12),
            Dur::from_ticks(6),
            Dur::from_ticks(10),
        );
        let text = tr.finish();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].contains("\"ev\":\"cell\""));
        assert!(lines[1].contains("\"ev\":\"span_open\""));
        assert!(lines[1].contains("\"arrival\":2"));
        assert!(lines[2].contains("\"ev\":\"span_window\""));
        assert!(lines[2].contains("\"age\":6"));
        assert!(lines[3].contains("\"ev\":\"span_collision\""));
        assert!(lines[4].contains("\"outcome\":\"delivered\""));
        assert!(lines[4].contains("\"true_delay\":10"));
        for l in &lines {
            assert!(l.starts_with("{\"schema_version\":1,"), "{l}");
        }
    }

    #[test]
    fn close_events_cover_every_cause() {
        let mut tr = SpanTracer::new();
        tr.begin_cell(0, "causes");
        let m = msg(1, 0, 0);
        tr.on_arrival(&m, Time::from_ticks(0));
        tr.on_sender_discard(&m, Time::from_ticks(5));
        let m2 = msg(2, 1, 1);
        tr.on_arrival(&m2, Time::from_ticks(1));
        tr.on_message_drop(&m2, Time::from_ticks(7), DropCause::StationLeft);
        let m3 = msg(3, 2, 2);
        tr.on_arrival(&m3, Time::from_ticks(2));
        tr.on_message_drop(&m3, Time::from_ticks(9), DropCause::RejoinExpired);
        let text = tr.finish();
        assert!(text.contains("\"outcome\":\"discarded\""));
        assert!(text.contains("\"cause\":\"station_left\""));
        assert!(text.contains("\"cause\":\"rejoin_expired\""));
    }

    #[test]
    fn delivery_start_before_last_t_stays_monotone() {
        let mut tr = SpanTracer::new();
        tr.begin_cell(0, "mono");
        let m = msg(1, 0, 0);
        tr.on_arrival(&m, Time::from_ticks(50));
        // Transmission started at 40 but is reported after the t=50 line.
        tr.on_transmit(
            &m,
            Time::from_ticks(40),
            Dur::from_ticks(40),
            Dur::from_ticks(40),
        );
        let text = tr.finish();
        let last = text.lines().last().unwrap();
        assert!(last.contains("\"t\":50"), "{last}");
        assert!(last.contains("\"start\":40"), "{last}");
    }

    #[test]
    fn begin_cell_resets_seq() {
        let mut tr = SpanTracer::new();
        tr.begin_cell(0, "a");
        let m = msg(1, 0, 0);
        tr.on_arrival(&m, Time::from_ticks(1));
        tr.begin_cell(1, "b");
        tr.on_arrival(&m, Time::from_ticks(2));
        let text = tr.finish();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].contains("\"seq\":0"));
        assert!(lines[3].contains("\"seq\":0"));
    }

    #[test]
    fn ring_overflow_flushes_in_order() {
        let mut tr = SpanTracer::new();
        tr.begin_cell(0, "big");
        let m = msg(1, 0, 0);
        for i in 0..(super::RING_CAP as u64 + 10) {
            tr.on_window_member(&m, Time::from_ticks(i));
        }
        let text = tr.finish();
        assert_eq!(text.lines().count(), super::RING_CAP + 11);
        let last = text.lines().last().unwrap();
        assert!(
            last.contains(&format!("\"seq\":{}", super::RING_CAP + 9)),
            "{last}"
        );
    }
}
