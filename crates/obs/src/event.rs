//! Structured event tracing: an [`EngineObserver`] that encodes protocol
//! events into a preallocated ring of fixed-size records and drains them
//! as schema-versioned NDJSON (one JSON object per line).
//!
//! The tracer is strictly passive: it copies scalars out of the engine's
//! callbacks and never draws from an RNG stream, so enabling it cannot
//! perturb simulated results. The line format is documented at the crate
//! root ([`crate`]); [`SCHEMA_VERSION`] stamps every line.

use std::fmt::Write as _;

use tcw_mac::{ChurnEvent, Message, SlotOutcome};
use tcw_sim::rng::Rng;
use tcw_sim::time::{Dur, Time};
use tcw_window::interval::Interval;
use tcw_window::timeline::Timeline;
use tcw_window::trace::EngineObserver;

/// Version stamped into every NDJSON line as `"schema_version"`.
pub const SCHEMA_VERSION: u32 = 1;

/// Capacity of the preallocated record ring: events are encoded to text in
/// batches of this many, so the steady-state cost per event is one `Copy`
/// store plus amortized text growth.
const RING_CAP: usize = 4096;

/// Compact payload of one traced event. Fixed-size and `Copy` so ring
/// storage never allocates.
#[derive(Clone, Copy, Debug)]
enum Ev {
    /// Decision point chose an initial window.
    Decision {
        segments: u32,
        win_start: u64,
        win_end: u64,
    },
    /// Decision point found nothing unexamined.
    DecisionIdle,
    /// One probe slot resolved idle.
    ProbeIdle { dur: u64, segments: u32 },
    /// One probe slot resolved as a success.
    ProbeSuccess { msg: u64, dur: u64, segments: u32 },
    /// One probe slot resolved as a collision among `n`.
    ProbeCollision { n: u32, dur: u64, segments: u32 },
    /// Window known to hold two or more arrivals split unprobed.
    Split {
        segments: u32,
        win_start: u64,
        win_end: u64,
    },
    /// Successful delivery. `start` is the transmission's start tick; it
    /// can precede the line's `t` because the engine reports deliveries
    /// at completion, after later-timestamped slot events.
    Transmit {
        start: u64,
        msg: u64,
        station: u32,
        paper_delay: u64,
        true_delay: u64,
    },
    /// Sender discard (policy element 4).
    Discard { msg: u64, station: u32 },
    /// Slot feedback corrupted by an injected fault.
    Corrupted { dur: u64 },
    /// Quiet backoff before re-probe.
    Backoff { dur: u64 },
    /// Windowing round abandoned after repeated corruption.
    Abandoned,
    /// Examined interval reopened for stranded arrivals.
    Reopen { start: u64, end: u64 },
    /// Membership transition.
    Churn { what: u8, station: u32 },
}

/// One ring entry: event time, probe-slot index and payload.
#[derive(Clone, Copy, Debug)]
struct EventRecord {
    t: u64,
    slot: u64,
    ev: Ev,
}

/// Ring-buffered NDJSON event tracer. See the crate root for the schema.
///
/// Use [`EventTracer::begin_cell`] to mark the start of each sweep cell's
/// stream and [`EventTracer::finish`] to flush and take the text.
#[derive(Debug)]
pub struct EventTracer {
    ring: Vec<EventRecord>,
    out: String,
    /// Line number within the current cell (the `cell` header excluded).
    seq: u64,
    /// Probe slots consumed so far in the current cell.
    slot: u64,
    /// Most recent event time, for events reported without one (`reopen`).
    last_t: u64,
}

impl Default for EventTracer {
    fn default() -> Self {
        Self::new()
    }
}

impl EventTracer {
    /// Creates a tracer with a preallocated record ring.
    pub fn new() -> Self {
        EventTracer {
            ring: Vec::with_capacity(RING_CAP),
            out: String::new(),
            seq: 0,
            slot: 0,
            last_t: 0,
        }
    }

    /// Flushes pending records and writes a `cell` header line; `seq` and
    /// `slot` restart from zero so each cell's stream is self-contained.
    pub fn begin_cell(&mut self, index: usize, label: &str) {
        self.flush();
        let _ = write!(
            self.out,
            "{{\"schema_version\":{SCHEMA_VERSION},\"ev\":\"cell\",\"cell\":{index},\"label\":"
        );
        escape_json_str(label, &mut self.out);
        self.out.push_str("}\n");
        self.seq = 0;
        self.slot = 0;
        self.last_t = 0;
    }

    /// Flushes pending records and returns the accumulated NDJSON text,
    /// leaving the tracer empty and reusable.
    pub fn finish(&mut self) -> String {
        self.flush();
        std::mem::take(&mut self.out)
    }

    fn record(&mut self, t: Time, ev: Ev) {
        self.last_t = t.ticks();
        if self.ring.len() == RING_CAP {
            self.flush();
        }
        self.ring.push(EventRecord {
            t: t.ticks(),
            slot: self.slot,
            ev,
        });
    }

    fn flush(&mut self) {
        // Swap the ring out so encoding can borrow `self.out` mutably.
        let ring = std::mem::take(&mut self.ring);
        for rec in &ring {
            let _ = write!(
                self.out,
                "{{\"schema_version\":{SCHEMA_VERSION},\"seq\":{},\"slot\":{},\"t\":{},",
                self.seq, rec.slot, rec.t
            );
            self.seq += 1;
            match rec.ev {
                Ev::Decision {
                    segments,
                    win_start,
                    win_end,
                } => {
                    let _ = write!(
                        self.out,
                        "\"ev\":\"decision\",\"segments\":{segments},\"win_start\":{win_start},\"win_end\":{win_end}"
                    );
                }
                Ev::DecisionIdle => {
                    self.out.push_str("\"ev\":\"decision_idle\"");
                }
                Ev::ProbeIdle { dur, segments } => {
                    let _ = write!(
                        self.out,
                        "\"ev\":\"probe\",\"outcome\":\"idle\",\"dur\":{dur},\"segments\":{segments}"
                    );
                }
                Ev::ProbeSuccess { msg, dur, segments } => {
                    let _ = write!(
                        self.out,
                        "\"ev\":\"probe\",\"outcome\":\"success\",\"msg\":{msg},\"dur\":{dur},\"segments\":{segments}"
                    );
                }
                Ev::ProbeCollision { n, dur, segments } => {
                    let _ = write!(
                        self.out,
                        "\"ev\":\"probe\",\"outcome\":\"collision\",\"n\":{n},\"dur\":{dur},\"segments\":{segments}"
                    );
                }
                Ev::Split {
                    segments,
                    win_start,
                    win_end,
                } => {
                    let _ = write!(
                        self.out,
                        "\"ev\":\"split\",\"segments\":{segments},\"win_start\":{win_start},\"win_end\":{win_end}"
                    );
                }
                Ev::Transmit {
                    start,
                    msg,
                    station,
                    paper_delay,
                    true_delay,
                } => {
                    let _ = write!(
                        self.out,
                        "\"ev\":\"transmit\",\"start\":{start},\"msg\":{msg},\"station\":{station},\"paper_delay\":{paper_delay},\"true_delay\":{true_delay}"
                    );
                }
                Ev::Discard { msg, station } => {
                    let _ = write!(
                        self.out,
                        "\"ev\":\"discard\",\"msg\":{msg},\"station\":{station}"
                    );
                }
                Ev::Corrupted { dur } => {
                    let _ = write!(self.out, "\"ev\":\"corrupted_slot\",\"dur\":{dur}");
                }
                Ev::Backoff { dur } => {
                    let _ = write!(self.out, "\"ev\":\"backoff\",\"dur\":{dur}");
                }
                Ev::Abandoned => {
                    self.out.push_str("\"ev\":\"round_abandoned\"");
                }
                Ev::Reopen { start, end } => {
                    let _ = write!(
                        self.out,
                        "\"ev\":\"reopen\",\"start\":{start},\"end\":{end}"
                    );
                }
                Ev::Churn { what, station } => {
                    let what = match what {
                        0 => "crash",
                        1 => "restart",
                        2 => "join",
                        _ => "leave",
                    };
                    let _ = write!(
                        self.out,
                        "\"ev\":\"churn\",\"what\":\"{what}\",\"station\":{station}"
                    );
                }
            }
            self.out.push_str("}\n");
        }
        // Hand the (cleared) allocation back to the ring.
        self.ring = ring;
        self.ring.clear();
    }
}

/// Window bounds as (segment count, first lo, last hi); zeros when empty.
fn window_bounds(segments: &[Interval]) -> (u32, u64, u64) {
    match (segments.first(), segments.last()) {
        (Some(a), Some(b)) => (segments.len() as u32, a.lo.ticks(), b.hi.ticks()),
        _ => (0, 0, 0),
    }
}

pub(crate) fn escape_json_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl EngineObserver for EventTracer {
    // NDJSON traces are a per-event record by definition; the tracer
    // forces the slot-stepped path so no event is aggregated away.
    fn slow_path(&self) -> bool {
        true
    }

    fn on_decision(&mut self, now: Time, segments: Option<&[Interval]>) {
        match segments {
            Some(s) => {
                let (segments, win_start, win_end) = window_bounds(s);
                self.record(
                    now,
                    Ev::Decision {
                        segments,
                        win_start,
                        win_end,
                    },
                );
            }
            None => self.record(now, Ev::DecisionIdle),
        }
    }

    fn on_probe(&mut self, start: Time, segments: &[Interval], outcome: &SlotOutcome, dur: Dur) {
        let n_segments = segments.len() as u32;
        let ev = match outcome {
            SlotOutcome::Idle => Ev::ProbeIdle {
                dur: dur.ticks(),
                segments: n_segments,
            },
            SlotOutcome::Success(id) => Ev::ProbeSuccess {
                msg: id.0,
                dur: dur.ticks(),
                segments: n_segments,
            },
            SlotOutcome::Collision(n) => Ev::ProbeCollision {
                n: *n,
                dur: dur.ticks(),
                segments: n_segments,
            },
        };
        self.record(start, ev);
        self.slot += 1;
    }

    fn on_immediate_split(&mut self, now: Time, segments: &[Interval]) {
        let (segments, win_start, win_end) = window_bounds(segments);
        self.record(
            now,
            Ev::Split {
                segments,
                win_start,
                win_end,
            },
        );
    }

    fn on_transmit(&mut self, msg: &Message, start: Time, paper_delay: Dur, true_delay: Dur) {
        // Deliveries are reported at completion, so `start` can precede
        // events already recorded; keep the line's `t` monotone (the
        // observation time) and carry the raw start in the payload.
        self.record(
            Time::from_ticks(self.last_t.max(start.ticks())),
            Ev::Transmit {
                start: start.ticks(),
                msg: msg.id.0,
                station: msg.station.0,
                paper_delay: paper_delay.ticks(),
                true_delay: true_delay.ticks(),
            },
        );
    }

    fn on_sender_discard(&mut self, msg: &Message, now: Time) {
        self.record(
            now,
            Ev::Discard {
                msg: msg.id.0,
                station: msg.station.0,
            },
        );
    }

    fn on_corrupted_slot(&mut self, now: Time, dur: Dur) {
        self.record(now, Ev::Corrupted { dur: dur.ticks() });
        self.slot += 1;
    }

    fn on_backoff(&mut self, now: Time, dur: Dur) {
        self.record(now, Ev::Backoff { dur: dur.ticks() });
    }

    fn on_round_abandoned(&mut self, now: Time) {
        self.record(now, Ev::Abandoned);
    }

    fn on_reopen(&mut self, iv: Interval) {
        // The engine reports reopens without a timestamp; attribute them to
        // the most recent event time so `t` stays non-decreasing.
        self.record(
            Time::from_ticks(self.last_t),
            Ev::Reopen {
                start: iv.lo.ticks(),
                end: iv.hi.ticks(),
            },
        );
    }

    fn on_beacon(&mut self, _now: Time, _timeline: &Timeline, _rng: &Rng) {
        // Beacons carry full consensus state; tracing them would dominate
        // the stream without adding per-event information.
    }

    fn on_churn_event(&mut self, now: Time, ev: &ChurnEvent) {
        let (what, station) = match ev {
            ChurnEvent::Crash(s) => (0u8, s.0),
            ChurnEvent::Restart(s) => (1, s.0),
            ChurnEvent::Join(s) => (2, s.0),
            ChurnEvent::Leave(s) => (3, s.0),
        };
        self.record(now, Ev::Churn { what, station });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcw_mac::{MessageId, StationId};

    #[test]
    fn lines_carry_schema_version_and_seq() {
        let mut tr = EventTracer::new();
        tr.begin_cell(0, "demo");
        tr.on_decision(Time::from_ticks(0), Some(&[Interval::from_ticks(0, 8)]));
        tr.on_probe(
            Time::from_ticks(0),
            &[Interval::from_ticks(0, 8)],
            &SlotOutcome::Collision(2),
            Dur::from_ticks(64),
        );
        let msg = Message::new(MessageId(3), StationId(1), Time::from_ticks(2));
        tr.on_transmit(
            &msg,
            Time::from_ticks(64),
            Dur::from_ticks(70),
            Dur::from_ticks(70),
        );
        let text = tr.finish();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"ev\":\"cell\""));
        assert!(lines[0].contains("\"label\":\"demo\""));
        assert!(lines[1].contains("\"seq\":0"));
        assert!(lines[2].contains("\"outcome\":\"collision\""));
        assert!(lines[2].contains("\"n\":2"));
        assert!(lines[3].contains("\"ev\":\"transmit\""));
        assert!(lines[3].contains("\"start\":64"));
        assert!(lines[3].contains("\"paper_delay\":70"));
        for l in &lines {
            assert!(l.starts_with("{\"schema_version\":1,"), "{l}");
            assert!(l.ends_with('}'), "{l}");
        }
    }

    #[test]
    fn slot_counter_tracks_probes_and_corrupted_slots() {
        let mut tr = EventTracer::new();
        tr.begin_cell(0, "slots");
        tr.on_probe(
            Time::from_ticks(0),
            &[],
            &SlotOutcome::Idle,
            Dur::from_ticks(64),
        );
        tr.on_corrupted_slot(Time::from_ticks(64), Dur::from_ticks(64));
        tr.on_probe(
            Time::from_ticks(128),
            &[],
            &SlotOutcome::Idle,
            Dur::from_ticks(64),
        );
        let text = tr.finish();
        let slots: Vec<&str> = text
            .lines()
            .skip(1)
            .map(|l| {
                let i = l.find("\"slot\":").unwrap() + 7;
                &l[i..i + 1]
            })
            .collect();
        assert_eq!(slots, ["0", "1", "2"]);
    }

    #[test]
    fn begin_cell_resets_seq_and_flushes() {
        let mut tr = EventTracer::new();
        tr.begin_cell(0, "a");
        tr.on_round_abandoned(Time::from_ticks(5));
        tr.begin_cell(1, "b");
        tr.on_round_abandoned(Time::from_ticks(9));
        let text = tr.finish();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"cell\":0"));
        assert!(lines[2].contains("\"cell\":1"));
        assert!(lines[1].contains("\"seq\":0"));
        assert!(lines[3].contains("\"seq\":0"));
    }

    #[test]
    fn ring_overflow_flushes_in_order() {
        let mut tr = EventTracer::new();
        tr.begin_cell(0, "big");
        for i in 0..(super::RING_CAP as u64 + 10) {
            tr.on_round_abandoned(Time::from_ticks(i));
        }
        let text = tr.finish();
        assert_eq!(text.lines().count(), super::RING_CAP + 11);
        let last = text.lines().last().unwrap();
        assert!(
            last.contains(&format!("\"seq\":{}", super::RING_CAP + 9)),
            "{last}"
        );
    }

    #[test]
    fn labels_are_json_escaped() {
        let mut tr = EventTracer::new();
        tr.begin_cell(0, "a\"b\\c\nd");
        let text = tr.finish();
        assert!(text.contains(r#""label":"a\"b\\c\nd""#), "{text}");
    }

    #[test]
    fn reopen_reuses_last_event_time() {
        let mut tr = EventTracer::new();
        tr.begin_cell(0, "reopen");
        tr.on_round_abandoned(Time::from_ticks(42));
        tr.on_reopen(Interval::from_ticks(7, 9));
        let text = tr.finish();
        let last = text.lines().last().unwrap();
        assert!(last.contains("\"t\":42"), "{last}");
        assert!(last.contains("\"start\":7"), "{last}");
        assert!(last.contains("\"end\":9"), "{last}");
    }
}
