//! Validators for the artifacts this crate exports: the NDJSON event
//! schema ([`lint_events`]), the lifecycle-span schema ([`lint_spans`])
//! and the Prometheus text exposition format ([`lint_prom`]). The
//! `obs_lint` binary wraps all three for CI.

use std::collections::BTreeMap;

use crate::event::SCHEMA_VERSION;
use crate::registry::valid_metric_name;

/// Summary of a validated NDJSON event stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EventStats {
    /// Total lines.
    pub lines: usize,
    /// `cell` header lines.
    pub cells: usize,
    /// Event lines (everything but headers).
    pub events: usize,
}

/// Scalar values the flat-JSON line parser distinguishes.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum Scalar {
    Num(f64),
    Str(String),
}

/// Parses one flat JSON object (`{"k":scalar,...}`, no nesting) into its
/// fields. Returns an error describing the first malformation.
pub(crate) fn parse_flat_line(line: &str) -> Result<BTreeMap<String, Scalar>, String> {
    let body = line
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or("not a JSON object")?;
    let mut fields = BTreeMap::new();
    let mut rest = body.trim_start();
    while !rest.is_empty() {
        let (key, after_key) = parse_string(rest)?;
        rest = after_key
            .trim_start()
            .strip_prefix(':')
            .ok_or("missing ':' after key")?
            .trim_start();
        let (value, after_value) = if rest.starts_with('"') {
            let (s, r) = parse_string(rest)?;
            (Scalar::Str(s), r)
        } else {
            let end = rest.find([',', '}']).unwrap_or(rest.len()).min(rest.len());
            let token = rest[..end].trim();
            let n: f64 = token
                .parse()
                .map_err(|_| format!("unparseable value {token:?}"))?;
            (Scalar::Num(n), &rest[end..])
        };
        if fields.insert(key.clone(), value).is_some() {
            return Err(format!("duplicate key {key:?}"));
        }
        rest = after_value.trim_start();
        match rest.strip_prefix(',') {
            Some(r) => rest = r.trim_start(),
            None if rest.is_empty() => break,
            None => return Err("missing ',' between fields".to_string()),
        }
    }
    Ok(fields)
}

/// Parses a leading JSON string, returning it unescaped plus the rest.
fn parse_string(s: &str) -> Result<(String, &str), String> {
    let rest = s.strip_prefix('"').ok_or("expected '\"'")?;
    let mut out = String::new();
    let mut chars = rest.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((out, &rest[i + 1..])),
            '\\' => match chars.next() {
                Some((_, 'n')) => out.push('\n'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'u')) => {
                    // Skip 4 hex digits; keep a placeholder.
                    for _ in 0..4 {
                        chars.next();
                    }
                    out.push('\u{fffd}');
                }
                Some((_, e)) => out.push(e),
                None => return Err("dangling escape".to_string()),
            },
            c => out.push(c),
        }
    }
    Err("unterminated string".to_string())
}

pub(crate) fn num(fields: &BTreeMap<String, Scalar>, key: &str) -> Option<f64> {
    match fields.get(key) {
        Some(Scalar::Num(n)) => Some(*n),
        _ => None,
    }
}

/// Validates an NDJSON event stream against the schema documented at the
/// crate root: every line parses as a flat JSON object, carries
/// `schema_version` == [`SCHEMA_VERSION`] and a string `ev`; event lines
/// carry `seq` (dense from 0 per cell), `slot` and `t` (both
/// non-decreasing per cell).
pub fn lint_events(text: &str) -> Result<EventStats, String> {
    let mut stats = EventStats::default();
    let mut expected_seq: u64 = 0;
    let mut last_slot: u64 = 0;
    let mut last_t: u64 = 0;
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        stats.lines += 1;
        let fields = parse_flat_line(line).map_err(|e| format!("line {n}: {e}"))?;
        match num(&fields, "schema_version") {
            Some(v) if v == SCHEMA_VERSION as f64 => {}
            Some(v) => return Err(format!("line {n}: schema_version {v} != {SCHEMA_VERSION}")),
            None => return Err(format!("line {n}: missing schema_version")),
        }
        let ev = match fields.get("ev") {
            Some(Scalar::Str(s)) => s.clone(),
            _ => return Err(format!("line {n}: missing string field \"ev\"")),
        };
        if ev == "cell" {
            if num(&fields, "cell").is_none() {
                return Err(format!("line {n}: cell header missing \"cell\""));
            }
            if !matches!(fields.get("label"), Some(Scalar::Str(_))) {
                return Err(format!("line {n}: cell header missing \"label\""));
            }
            stats.cells += 1;
            expected_seq = 0;
            last_slot = 0;
            last_t = 0;
            continue;
        }
        stats.events += 1;
        let seq = num(&fields, "seq").ok_or(format!("line {n}: missing seq"))? as u64;
        if seq != expected_seq {
            return Err(format!("line {n}: seq {seq}, expected {expected_seq}"));
        }
        expected_seq += 1;
        let slot = num(&fields, "slot").ok_or(format!("line {n}: missing slot"))? as u64;
        if slot < last_slot {
            return Err(format!("line {n}: slot {slot} < previous {last_slot}"));
        }
        last_slot = slot;
        let t = num(&fields, "t").ok_or(format!("line {n}: missing t"))? as u64;
        if t < last_t {
            return Err(format!("line {n}: t {t} < previous {last_t}"));
        }
        last_t = t;
    }
    Ok(stats)
}

/// Summary of a validated NDJSON lifecycle-span stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Total lines.
    pub lines: usize,
    /// `cell` header lines.
    pub cells: usize,
    /// Completed spans (`span_open` balanced by `span_close`).
    pub spans: usize,
}

/// Validates an NDJSON lifecycle-span stream against the span schema
/// documented at the crate root: every line parses flat, carries
/// `schema_version` == [`SCHEMA_VERSION`] and a string `ev`; span lines
/// carry `seq` (dense from 0 per cell) and `t` (non-decreasing per cell);
/// within a cell each `msg` opens exactly once, interior
/// `span_window`/`span_collision` lines fall strictly between its open
/// and close, every open is balanced by exactly one `span_close` with a
/// valid `outcome` (and a `cause` when dropped), and no message id is
/// reused after closing.
pub fn lint_spans(text: &str) -> Result<SpanStats, String> {
    use std::collections::BTreeSet;
    let mut stats = SpanStats::default();
    let mut expected_seq: u64 = 0;
    let mut last_t: u64 = 0;
    let mut open: BTreeSet<u64> = BTreeSet::new();
    let mut closed: BTreeSet<u64> = BTreeSet::new();
    let cell_end = |open: &mut BTreeSet<u64>, closed: &mut BTreeSet<u64>| -> Result<(), String> {
        if let Some(msg) = open.iter().next() {
            return Err(format!(
                "cell ended with {} unbalanced span(s), e.g. msg {msg}",
                open.len()
            ));
        }
        open.clear();
        closed.clear();
        Ok(())
    };
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        stats.lines += 1;
        let fields = parse_flat_line(line).map_err(|e| format!("line {n}: {e}"))?;
        match num(&fields, "schema_version") {
            Some(v) if v == SCHEMA_VERSION as f64 => {}
            Some(v) => return Err(format!("line {n}: schema_version {v} != {SCHEMA_VERSION}")),
            None => return Err(format!("line {n}: missing schema_version")),
        }
        let ev = match fields.get("ev") {
            Some(Scalar::Str(s)) => s.clone(),
            _ => return Err(format!("line {n}: missing string field \"ev\"")),
        };
        if ev == "cell" {
            if num(&fields, "cell").is_none() {
                return Err(format!("line {n}: cell header missing \"cell\""));
            }
            if !matches!(fields.get("label"), Some(Scalar::Str(_))) {
                return Err(format!("line {n}: cell header missing \"label\""));
            }
            cell_end(&mut open, &mut closed).map_err(|e| format!("line {n}: {e}"))?;
            stats.cells += 1;
            expected_seq = 0;
            last_t = 0;
            continue;
        }
        let seq = num(&fields, "seq").ok_or(format!("line {n}: missing seq"))? as u64;
        if seq != expected_seq {
            return Err(format!("line {n}: seq {seq}, expected {expected_seq}"));
        }
        expected_seq += 1;
        let t = num(&fields, "t").ok_or(format!("line {n}: missing t"))? as u64;
        if t < last_t {
            return Err(format!("line {n}: t {t} < previous {last_t}"));
        }
        last_t = t;
        let msg = num(&fields, "msg").ok_or(format!("line {n}: missing msg"))? as u64;
        match ev.as_str() {
            "span_open" => {
                if num(&fields, "station").is_none() || num(&fields, "arrival").is_none() {
                    return Err(format!("line {n}: span_open missing station/arrival"));
                }
                if open.contains(&msg) || closed.contains(&msg) {
                    return Err(format!("line {n}: msg {msg} opened twice"));
                }
                open.insert(msg);
            }
            "span_window" | "span_collision" => {
                if !open.contains(&msg) {
                    return Err(format!("line {n}: {ev} for msg {msg} outside its span"));
                }
            }
            "span_close" => {
                if !open.remove(&msg) {
                    return Err(format!("line {n}: span_close for msg {msg} without open"));
                }
                closed.insert(msg);
                stats.spans += 1;
                let outcome = match fields.get("outcome") {
                    Some(Scalar::Str(s)) => s.as_str(),
                    _ => return Err(format!("line {n}: span_close missing \"outcome\"")),
                };
                match outcome {
                    "delivered" => {
                        if num(&fields, "true_delay").is_none() {
                            return Err(format!("line {n}: delivered close missing true_delay"));
                        }
                    }
                    "discarded" => {}
                    "dropped" => match fields.get("cause") {
                        Some(Scalar::Str(c)) if c == "station_left" || c == "rejoin_expired" => {}
                        _ => return Err(format!("line {n}: dropped close missing valid cause")),
                    },
                    other => return Err(format!("line {n}: unknown outcome {other:?}")),
                }
            }
            other => return Err(format!("line {n}: unknown span event {other:?}")),
        }
    }
    cell_end(&mut open, &mut closed).map_err(|e| format!("end of stream: {e}"))?;
    Ok(stats)
}

/// Summary of a validated Prometheus exposition.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PromStats {
    /// Metric families declared with `# TYPE`.
    pub families: usize,
    /// Sample lines.
    pub samples: usize,
}

/// Minimal linter for the Prometheus text exposition format: every `TYPE`
/// names a known kind, every sample references a declared family (with
/// `_bucket`/`_sum`/`_count` suffixes allowed for histograms), metric
/// names match the Prometheus grammar and values parse as floats.
pub fn lint_prom(text: &str) -> Result<PromStats, String> {
    lint_prom_families(text).map(|(stats, _)| stats)
}

/// [`lint_prom`] variant that also returns the declared family names, so
/// callers can assert that required metrics (e.g. the engine's
/// `tcw_horizon_*` fast-path counters) are actually present in an
/// exposition.
pub fn lint_prom_families(text: &str) -> Result<(PromStats, Vec<String>), String> {
    let mut stats = PromStats::default();
    let mut families: BTreeMap<String, String> = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.splitn(2, ' ');
            let name = it.next().unwrap_or("");
            let kind = it.next().unwrap_or("");
            if !valid_metric_name(name) {
                return Err(format!("line {n}: invalid metric name {name:?}"));
            }
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(format!("line {n}: unknown TYPE {kind:?}"));
            }
            families.insert(name.to_string(), kind.to_string());
            stats.families += 1;
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap_or("");
            if !valid_metric_name(name) {
                return Err(format!("line {n}: invalid metric name {name:?}"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // arbitrary comment
        }
        // Sample line: name[{labels}] value
        let name_end = line.find(['{', ' ']).ok_or(format!("line {n}: no value"))?;
        let name = &line[..name_end];
        if !valid_metric_name(name) {
            return Err(format!("line {n}: invalid metric name {name:?}"));
        }
        let after = &line[name_end..];
        let value_str = if let Some(rest) = after.strip_prefix('{') {
            let close = rest.find('}').ok_or(format!("line {n}: unclosed labels"))?;
            lint_labels(&rest[..close]).map_err(|e| format!("line {n}: {e}"))?;
            rest[close + 1..].trim()
        } else {
            after.trim()
        };
        if value_str.parse::<f64>().is_err() {
            return Err(format!("line {n}: unparseable value {value_str:?}"));
        }
        let family_known = families.contains_key(name)
            || [
                ("_bucket", "histogram"),
                ("_sum", "histogram"),
                ("_count", "histogram"),
            ]
            .iter()
            .any(|(suffix, kind)| {
                name.strip_suffix(suffix)
                    .is_some_and(|base| families.get(base).map(String::as_str) == Some(*kind))
            });
        if !family_known {
            return Err(format!("line {n}: sample {name:?} has no TYPE declaration"));
        }
        stats.samples += 1;
    }
    Ok((stats, families.into_keys().collect()))
}

/// Validates a `key="value",...` label body.
fn lint_labels(body: &str) -> Result<(), String> {
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or("label without '='")?;
        let key = &rest[..eq];
        if !valid_metric_name(key) {
            return Err(format!("invalid label name {key:?}"));
        }
        rest = rest[eq + 1..]
            .strip_prefix('"')
            .ok_or("label value not quoted")?;
        // Find the closing quote, skipping escapes.
        let mut close = None;
        let mut prev_backslash = false;
        for (i, c) in rest.char_indices() {
            if prev_backslash {
                prev_backslash = false;
            } else if c == '\\' {
                prev_backslash = true;
            } else if c == '"' {
                close = Some(i);
                break;
            }
        }
        let close = close.ok_or("unterminated label value")?;
        rest = &rest[close + 1..];
        match rest.strip_prefix(',') {
            Some(r) => rest = r,
            None if rest.is_empty() => break,
            None => return Err("missing ',' between labels".to_string()),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventTracer;
    use crate::registry::Registry;
    use tcw_sim::stats::{Histogram, MetricSink};
    use tcw_sim::time::{Dur, Time};
    use tcw_window::trace::EngineObserver;

    #[test]
    fn tracer_output_passes_lint() {
        let mut tr = EventTracer::new();
        tr.begin_cell(0, "cell \"zero\"");
        tr.on_decision(Time::from_ticks(0), None);
        tr.on_probe(
            Time::from_ticks(64),
            &[],
            &tcw_mac::SlotOutcome::Idle,
            Dur::from_ticks(64),
        );
        tr.begin_cell(1, "one");
        tr.on_round_abandoned(Time::from_ticks(3));
        let stats = lint_events(&tr.finish()).unwrap();
        assert_eq!(
            stats,
            EventStats {
                lines: 5,
                cells: 2,
                events: 3
            }
        );
    }

    #[test]
    fn lint_rejects_bad_streams() {
        assert!(lint_events("not json\n").is_err());
        assert!(lint_events("{\"ev\":\"decision\"}\n").is_err()); // no version
        assert!(
            lint_events("{\"schema_version\":99,\"ev\":\"x\",\"seq\":0,\"slot\":0,\"t\":0}\n")
                .is_err()
        );
        // slot decreases
        let bad = concat!(
            "{\"schema_version\":1,\"seq\":0,\"slot\":5,\"t\":0,\"ev\":\"a\"}\n",
            "{\"schema_version\":1,\"seq\":1,\"slot\":4,\"t\":1,\"ev\":\"a\"}\n",
        );
        let err = lint_events(bad).unwrap_err();
        assert!(err.contains("slot 4"), "{err}");
        // t decreases
        let bad = concat!(
            "{\"schema_version\":1,\"seq\":0,\"slot\":0,\"t\":9,\"ev\":\"a\"}\n",
            "{\"schema_version\":1,\"seq\":1,\"slot\":0,\"t\":3,\"ev\":\"a\"}\n",
        );
        assert!(lint_events(bad).is_err());
        // seq gap
        let bad = "{\"schema_version\":1,\"seq\":1,\"slot\":0,\"t\":0,\"ev\":\"a\"}\n";
        assert!(lint_events(bad).is_err());
    }

    #[test]
    fn registry_exposition_passes_lint() {
        let mut r = Registry::new();
        r.set_labels(&[("panel", "rho'=0.50 M=25"), ("seed", "42")]);
        r.counter("tcw_test_total", "counts", 3);
        r.gauge("tcw_test_util", "gauge", 0.5);
        let mut h = Histogram::new(0.0, 100.0, 4);
        h.record(3.0);
        h.record(250.0);
        r.histogram("tcw_test_delay", "delays", &h);
        let stats = lint_prom(&r.to_prometheus()).unwrap();
        assert_eq!(stats.families, 3);
        // 2 scalars + 4 finite buckets + Inf bucket + sum + count
        assert_eq!(stats.samples, 9);
    }

    #[test]
    fn prom_lint_rejects_malformed_expositions() {
        assert!(lint_prom("# TYPE bad-name counter\n").is_err());
        assert!(lint_prom("# TYPE m mystery\n").is_err());
        assert!(lint_prom("orphan_sample 1\n").is_err());
        assert!(lint_prom("# TYPE m counter\nm not_a_number\n").is_err());
        assert!(lint_prom("# TYPE m counter\nm{l=\"unterminated} 1\n").is_err());
        let ok = "# HELP m help text\n# TYPE m counter\nm{a=\"x\",b=\"y\"} 4\n";
        assert_eq!(
            lint_prom(ok).unwrap(),
            PromStats {
                families: 1,
                samples: 1
            }
        );
    }

    #[test]
    fn span_tracer_output_passes_span_lint() {
        use crate::span::SpanTracer;
        use tcw_mac::{Message, MessageId, StationId};
        use tcw_window::trace::DropCause;
        let mut tr = SpanTracer::new();
        tr.begin_cell(0, "cell \"zero\"");
        let m1 = Message::new(MessageId(1), StationId(0), Time::from_ticks(2));
        let m2 = Message::new(MessageId(2), StationId(1), Time::from_ticks(3));
        tr.on_arrival(&m1, Time::from_ticks(4));
        tr.on_arrival(&m2, Time::from_ticks(4));
        tr.on_window_member(&m1, Time::from_ticks(5));
        tr.on_collision_member(&m1, Time::from_ticks(5));
        tr.on_transmit(
            &m1,
            Time::from_ticks(6),
            Dur::from_ticks(4),
            Dur::from_ticks(4),
        );
        tr.on_message_drop(&m2, Time::from_ticks(7), DropCause::StationLeft);
        tr.begin_cell(1, "one");
        let m3 = Message::new(MessageId(3), StationId(2), Time::from_ticks(0));
        tr.on_arrival(&m3, Time::from_ticks(1));
        tr.on_sender_discard(&m3, Time::from_ticks(9));
        let stats = lint_spans(&tr.finish()).unwrap();
        assert_eq!(
            stats,
            SpanStats {
                lines: 10,
                cells: 2,
                spans: 3
            }
        );
    }

    #[test]
    fn span_lint_rejects_unbalanced_and_misordered_streams() {
        // Unbalanced at end of stream.
        let open_only =
            "{\"schema_version\":1,\"seq\":0,\"t\":1,\"ev\":\"span_open\",\"msg\":1,\"station\":0,\"arrival\":0}\n";
        let err = lint_spans(open_only).unwrap_err();
        assert!(err.contains("unbalanced"), "{err}");
        // Interior event outside its span.
        let stray =
            "{\"schema_version\":1,\"seq\":0,\"t\":1,\"ev\":\"span_window\",\"msg\":7,\"age\":1}\n";
        let err = lint_spans(stray).unwrap_err();
        assert!(err.contains("outside its span"), "{err}");
        // Close without open.
        let close =
            "{\"schema_version\":1,\"seq\":0,\"t\":1,\"ev\":\"span_close\",\"outcome\":\"discarded\",\"msg\":7,\"station\":0,\"age\":1}\n";
        assert!(lint_spans(close).is_err());
        // Double open.
        let double = concat!(
            "{\"schema_version\":1,\"seq\":0,\"t\":1,\"ev\":\"span_open\",\"msg\":1,\"station\":0,\"arrival\":0}\n",
            "{\"schema_version\":1,\"seq\":1,\"t\":2,\"ev\":\"span_open\",\"msg\":1,\"station\":0,\"arrival\":0}\n",
        );
        let err = lint_spans(double).unwrap_err();
        assert!(err.contains("opened twice"), "{err}");
        // t decreases within a cell.
        let nonmono = concat!(
            "{\"schema_version\":1,\"seq\":0,\"t\":9,\"ev\":\"span_open\",\"msg\":1,\"station\":0,\"arrival\":0}\n",
            "{\"schema_version\":1,\"seq\":1,\"t\":3,\"ev\":\"span_close\",\"outcome\":\"discarded\",\"msg\":1,\"station\":0,\"age\":1}\n",
        );
        assert!(lint_spans(nonmono).is_err());
        // Dropped close without a valid cause.
        let nocause = concat!(
            "{\"schema_version\":1,\"seq\":0,\"t\":1,\"ev\":\"span_open\",\"msg\":1,\"station\":0,\"arrival\":0}\n",
            "{\"schema_version\":1,\"seq\":1,\"t\":2,\"ev\":\"span_close\",\"outcome\":\"dropped\",\"msg\":1,\"station\":0,\"age\":1}\n",
        );
        assert!(lint_spans(nocause).is_err());
    }

    #[test]
    fn flat_parser_handles_escapes_and_rejects_junk() {
        let f = parse_flat_line(r#"{"a":"x\"y","b":3.5}"#).unwrap();
        assert_eq!(f.get("a"), Some(&Scalar::Str("x\"y".to_string())));
        assert_eq!(f.get("b"), Some(&Scalar::Num(3.5)));
        assert!(parse_flat_line(r#"{"a":}"#).is_err());
        assert!(parse_flat_line(r#"{"a":1 "b":2}"#).is_err());
        assert!(parse_flat_line(r#"{"a":1,"a":2}"#).is_err());
    }
}
