//! Metrics registry: named counters, gauges and histograms collected via
//! [`MetricSink`], with Prometheus text exposition and JSON export.
//!
//! Producers across the workspace ([`tcw_window::metrics::Metrics`],
//! [`tcw_mac::ChannelStats`], [`tcw_mac::ChurnProcess`],
//! [`tcw_window::mirror::DivergenceDetector`]) push their state through
//! the push-style [`MetricSink`] trait; the registry stores one sample per
//! (metric, label set). A sweep snapshots one labeled registry per cell
//! and merges them in cell order with [`Registry::absorb`], so exported
//! files are byte-identical for any worker count.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use tcw_sim::stats::{Histogram, MetricSink};

/// Version stamped into the JSON export as `"schema_version"`.
pub const METRICS_SCHEMA_VERSION: u32 = 1;

/// Metric families a registry can hold, mirroring the Prometheus types.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Frozen histogram contents: cumulative bucket counts per upper bound,
/// plus the implicit `+Inf` bucket and an approximate sum.
#[derive(Clone, Debug)]
struct HistSnapshot {
    /// Upper bounds of the finite buckets, ascending.
    bounds: Vec<f64>,
    /// Cumulative counts: observations ≤ the matching bound (underflow
    /// observations are below every bound and count toward all of them).
    cumulative: Vec<u64>,
    /// Total observations (the `+Inf` bucket).
    total: u64,
    /// Approximate sum of observations (bin midpoints × counts).
    sum: f64,
}

#[derive(Clone, Debug)]
enum Value {
    Scalar(f64),
    Hist(HistSnapshot),
}

#[derive(Clone, Debug)]
struct Sample {
    /// Label pairs, in insertion order (already deterministic: label sets
    /// are built per cell from the sweep grid).
    labels: Vec<(String, String)>,
    value: Value,
}

#[derive(Clone, Debug)]
struct Metric {
    help: String,
    kind: MetricKind,
    samples: Vec<Sample>,
}

/// A named-metric registry implementing [`MetricSink`].
///
/// Metric names must match the Prometheus grammar
/// `[a-zA-Z_:][a-zA-Z0-9_:]*` (asserted in debug builds). The first
/// registration of a name fixes its kind and help text; later samples for
/// the same name (other cells) append under their own label sets.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    metrics: BTreeMap<String, Metric>,
    current_labels: Vec<(String, String)>,
}

impl Registry {
    /// Creates an empty registry with no ambient labels.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the label pairs attached to every subsequently recorded
    /// sample (e.g. the sweep-cell coordinates).
    pub fn set_labels(&mut self, labels: &[(&str, &str)]) {
        self.current_labels = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
    }

    /// Number of distinct metric names registered.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether no metrics have been registered.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Appends all of `other`'s samples to this registry. Kind and help of
    /// an existing name are kept from the first registration. Call in cell
    /// order for deterministic exports.
    pub fn absorb(&mut self, other: &Registry) {
        for (name, metric) in &other.metrics {
            match self.metrics.get_mut(name) {
                Some(existing) => existing.samples.extend(metric.samples.iter().cloned()),
                None => {
                    self.metrics.insert(name.clone(), metric.clone());
                }
            }
        }
    }

    fn push(&mut self, name: &str, help: &str, kind: MetricKind, value: Value) {
        debug_assert!(valid_metric_name(name), "invalid metric name {name:?}");
        let metric = self.metrics.entry(name.to_string()).or_insert(Metric {
            help: help.to_string(),
            kind,
            samples: Vec::new(),
        });
        debug_assert_eq!(metric.kind, kind, "metric {name} re-registered as {kind:?}");
        metric.samples.push(Sample {
            labels: self.current_labels.clone(),
            value,
        });
    }

    /// Renders the registry in the Prometheus text exposition format.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, m) in &self.metrics {
            let _ = writeln!(out, "# HELP {name} {}", m.help.replace('\n', " "));
            let _ = writeln!(out, "# TYPE {name} {}", m.kind.as_str());
            for s in &m.samples {
                match &s.value {
                    Value::Scalar(v) => {
                        let _ = writeln!(out, "{name}{} {}", fmt_labels(&s.labels), fmt_f64(*v));
                    }
                    Value::Hist(h) => {
                        for (bound, cum) in h.bounds.iter().zip(&h.cumulative) {
                            let _ = writeln!(
                                out,
                                "{name}_bucket{} {cum}",
                                fmt_labels_with(&s.labels, "le", &fmt_f64(*bound))
                            );
                        }
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {}",
                            fmt_labels_with(&s.labels, "le", "+Inf"),
                            h.total
                        );
                        let _ = writeln!(
                            out,
                            "{name}_sum{} {}",
                            fmt_labels(&s.labels),
                            fmt_f64(h.sum)
                        );
                        let _ = writeln!(out, "{name}_count{} {}", fmt_labels(&s.labels), h.total);
                    }
                }
            }
        }
        out
    }

    /// Renders the registry as a single JSON document (schema_version 1):
    /// `{"schema_version":1,"metrics":{name:{"help","kind","samples":[...]}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"schema_version\":{METRICS_SCHEMA_VERSION},\"metrics\":{{"
        );
        for (i, (name, m)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_str(name, &mut out);
            out.push_str(":{\"help\":");
            json_str(&m.help, &mut out);
            let _ = write!(out, ",\"kind\":\"{}\",\"samples\":[", m.kind.as_str());
            for (j, s) in m.samples.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("{\"labels\":{");
                for (k, (lk, lv)) in s.labels.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    json_str(lk, &mut out);
                    out.push(':');
                    json_str(lv, &mut out);
                }
                out.push('}');
                match &s.value {
                    Value::Scalar(v) => {
                        let _ = write!(out, ",\"value\":{}", fmt_f64(*v));
                    }
                    Value::Hist(h) => {
                        out.push_str(",\"bounds\":[");
                        for (k, b) in h.bounds.iter().enumerate() {
                            if k > 0 {
                                out.push(',');
                            }
                            out.push_str(&fmt_f64(*b));
                        }
                        out.push_str("],\"cumulative\":[");
                        for (k, c) in h.cumulative.iter().enumerate() {
                            if k > 0 {
                                out.push(',');
                            }
                            let _ = write!(out, "{c}");
                        }
                        let _ = write!(out, "],\"count\":{},\"sum\":{}", h.total, fmt_f64(h.sum));
                    }
                }
                out.push('}');
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

impl MetricSink for Registry {
    fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.push(name, help, MetricKind::Counter, Value::Scalar(value as f64));
    }

    fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.push(name, help, MetricKind::Gauge, Value::Scalar(value));
    }

    fn histogram(&mut self, name: &str, help: &str, h: &Histogram) {
        let bins = h.bins();
        let mut bounds = Vec::with_capacity(bins);
        let mut cumulative = Vec::with_capacity(bins);
        // Underflow observations lie below every finite bound, so they are
        // included in each cumulative bucket; overflow only reaches +Inf.
        let mut cum = h.underflow();
        let mut sum = 0.0;
        for i in 0..bins {
            let (lo, hi) = h.bin_bounds(i);
            let n = h.bin_count(i);
            cum += n;
            bounds.push(hi);
            cumulative.push(cum);
            sum += n as f64 * 0.5 * (lo + hi);
        }
        self.push(
            name,
            help,
            MetricKind::Histogram,
            Value::Hist(HistSnapshot {
                bounds,
                cumulative,
                total: h.count(),
                sum,
            }),
        );
    }
}

/// Whether `name` matches the Prometheus metric-name grammar
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`.
pub fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Deterministic float formatting: integral values print without a
/// fractional part, everything else uses Rust's shortest round-trip form.
pub fn fmt_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn fmt_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    out.push('}');
    out
}

fn fmt_labels_with(labels: &[(String, String)], extra_key: &str, extra_val: &str) -> String {
    let mut out = String::from("{");
    for (k, v) in labels {
        let _ = write!(out, "{k}=\"{}\",", escape_label(v));
    }
    let _ = write!(out, "{extra_key}=\"{}\"", escape_label(extra_val));
    out.push('}');
    out
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn json_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcw_sim::stats::Tally;

    #[test]
    fn prometheus_scalar_exposition() {
        let mut r = Registry::new();
        r.set_labels(&[("panel", "a"), ("k", "100")]);
        r.counter("tcw_test_total", "a test counter", 7);
        r.gauge("tcw_test_ratio", "a test gauge", 0.25);
        let text = r.to_prometheus();
        assert!(
            text.contains("# HELP tcw_test_total a test counter"),
            "{text}"
        );
        assert!(text.contains("# TYPE tcw_test_total counter"), "{text}");
        assert!(
            text.contains("tcw_test_total{panel=\"a\",k=\"100\"} 7"),
            "{text}"
        );
        assert!(
            text.contains("tcw_test_ratio{panel=\"a\",k=\"100\"} 0.25"),
            "{text}"
        );
    }

    #[test]
    fn prometheus_histogram_exposition() {
        let mut r = Registry::new();
        let mut h = Histogram::new(0.0, 10.0, 2);
        h.record(1.0); // bin 0
        h.record(7.0); // bin 1
        h.record(99.0); // overflow
        r.histogram("tcw_test_hist", "a test histogram", &h);
        let text = r.to_prometheus();
        assert!(text.contains("# TYPE tcw_test_hist histogram"), "{text}");
        assert!(text.contains("tcw_test_hist_bucket{le=\"5\"} 1"), "{text}");
        assert!(text.contains("tcw_test_hist_bucket{le=\"10\"} 2"), "{text}");
        assert!(
            text.contains("tcw_test_hist_bucket{le=\"+Inf\"} 3"),
            "{text}"
        );
        assert!(text.contains("tcw_test_hist_count 3"), "{text}");
    }

    #[test]
    fn tally_decomposes_through_sink() {
        let mut r = Registry::new();
        let mut t = Tally::new();
        t.record(2.0);
        t.record(4.0);
        r.tally("tcw_test_delay", "delays", &t);
        let text = r.to_prometheus();
        assert!(text.contains("tcw_test_delay_count 2"), "{text}");
        assert!(text.contains("tcw_test_delay_mean 3"), "{text}");
    }

    #[test]
    fn absorb_appends_samples_in_order() {
        let mut a = Registry::new();
        a.set_labels(&[("cell", "0")]);
        a.counter("tcw_test_total", "c", 1);
        let mut b = Registry::new();
        b.set_labels(&[("cell", "1")]);
        b.counter("tcw_test_total", "c", 2);
        let mut merged = Registry::new();
        merged.absorb(&a);
        merged.absorb(&b);
        let text = merged.to_prometheus();
        let i0 = text.find("cell=\"0\"").unwrap();
        let i1 = text.find("cell=\"1\"").unwrap();
        assert!(i0 < i1, "{text}");
    }

    #[test]
    fn json_export_is_flat_and_versioned() {
        let mut r = Registry::new();
        r.set_labels(&[("seed", "11")]);
        r.counter("tcw_test_total", "c", 3);
        let j = r.to_json();
        assert!(j.starts_with("{\"schema_version\":1,"), "{j}");
        assert!(j.contains("\"tcw_test_total\""), "{j}");
        assert!(j.contains("\"labels\":{\"seed\":\"11\"}"), "{j}");
        assert!(j.contains("\"value\":3"), "{j}");
    }

    #[test]
    fn metric_name_grammar() {
        assert!(valid_metric_name("tcw_engine_messages_total"));
        assert!(valid_metric_name(":ns:metric"));
        assert!(!valid_metric_name("9starts_with_digit"));
        assert!(!valid_metric_name("has-dash"));
        assert!(!valid_metric_name(""));
    }

    #[test]
    fn float_formatting_is_integral_when_exact() {
        assert_eq!(fmt_f64(3.0), "3");
        assert_eq!(fmt_f64(0.25), "0.25");
        assert_eq!(fmt_f64(-2.0), "-2");
    }
}
