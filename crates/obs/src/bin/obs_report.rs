//! Offline analyzer for lifecycle-span streams (`*.spans.ndjson`):
//! reconstructs per-message lifecycles and prints, per sweep cell,
//! outcome counts, collision-resolution episode statistics, the
//! queueing/contention/resolution latency breakdown, a per-station
//! age-of-information summary and deadline-miss forensics.
//!
//! Usage: `obs_report [--deadline TICKS] [--top N] FILE...`
//!
//! `--deadline TICKS` classifies deliveries with `true_delay > TICKS` as
//! late and includes them in the forensics section (discards and churn
//! drops are always included). `--top N` bounds each ranked list
//! (default 5). Parsing tolerates streams a crash cut short: unclosed
//! spans are reported, not fatal.
//!
//! Exit codes: `0` report printed, `1` usage error, `2` unreadable or
//! malformed file.

use std::process::ExitCode;

use tcw_obs::report::{parse_spans, render_report};

fn usage() -> ExitCode {
    eprintln!("usage: obs_report [--deadline TICKS] [--top N] FILE...");
    ExitCode::from(1)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut deadline: Option<u64> = None;
    let mut top: usize = 5;
    let mut files: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deadline" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => deadline = Some(v),
                None => {
                    eprintln!("obs_report: --deadline needs an integer tick count");
                    return usage();
                }
            },
            "--top" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => top = v,
                None => {
                    eprintln!("obs_report: --top needs an integer");
                    return usage();
                }
            },
            "--help" | "-h" => return usage(),
            _ => files.push(arg.clone()),
        }
    }
    if files.is_empty() {
        return usage();
    }
    for path in &files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("obs_report: {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let cells = match parse_spans(&text) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("obs_report: {path}: {e}");
                return ExitCode::from(2);
            }
        };
        println!("== {path}");
        print!("{}", render_report(&cells, deadline, top));
    }
    ExitCode::SUCCESS
}
