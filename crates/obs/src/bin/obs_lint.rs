//! Validates observability artifacts: NDJSON event streams
//! (`.ndjson`/`.jsonl`) against the tcw-obs event schema, and `.prom`
//! files against the Prometheus text exposition format.
//!
//! Usage: `obs_lint FILE...` — each file is dispatched on its extension.
//!
//! Exit codes: `0` all files valid, `1` usage error, `2` validation
//! failure or unreadable file.

use std::process::ExitCode;

use tcw_obs::lint::{lint_events, lint_prom};

fn fail(msg: &str) -> ExitCode {
    eprintln!("obs_lint: {msg}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: obs_lint FILE...   (.ndjson/.jsonl = event stream, .prom = exposition)");
        return ExitCode::from(1);
    }
    for path in &args {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => return fail(&format!("{path}: {e}")),
        };
        if path.ends_with(".ndjson") || path.ends_with(".jsonl") {
            match lint_events(&text) {
                Ok(s) => println!(
                    "obs_lint: {path}: ok ({} lines, {} cells, {} events)",
                    s.lines, s.cells, s.events
                ),
                Err(e) => return fail(&format!("{path}: {e}")),
            }
        } else if path.ends_with(".prom") {
            match lint_prom(&text) {
                Ok(s) => println!(
                    "obs_lint: {path}: ok ({} families, {} samples)",
                    s.families, s.samples
                ),
                Err(e) => return fail(&format!("{path}: {e}")),
            }
        } else {
            eprintln!("obs_lint: {path}: unknown extension (want .ndjson, .jsonl or .prom)");
            return ExitCode::from(1);
        }
    }
    ExitCode::SUCCESS
}
