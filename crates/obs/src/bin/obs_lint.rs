//! Validates observability artifacts: NDJSON lifecycle-span streams
//! (`.spans.ndjson`) against the tcw-obs span schema (balanced
//! open/close per message id, monotone `t` within each cell), other
//! NDJSON event streams (`.ndjson`/`.jsonl`) against the event schema,
//! and `.prom` files against the Prometheus text exposition format.
//!
//! Usage: `obs_lint [--require NAME]... FILE...` — each file is
//! dispatched on its extension. Every `--require NAME` demands that the
//! metric family `NAME` is declared in **each** `.prom` file passed
//! (used by CI to pin the engine's `tcw_horizon_*` fast-path counters
//! and the `tcw_aoi_*` age-of-information families into the telemetry
//! stream; a wiring regression that silently drops them would otherwise
//! still lint clean).
//!
//! Exit codes: `0` all files valid, `1` usage error, `2` validation
//! failure, missing required family, or unreadable file.

use std::process::ExitCode;

use tcw_obs::lint::{lint_events, lint_prom_families, lint_spans};

fn fail(msg: &str) -> ExitCode {
    eprintln!("obs_lint: {msg}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut required: Vec<String> = Vec::new();
    let mut files: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--require" {
            match it.next() {
                Some(name) => required.push(name.clone()),
                None => {
                    eprintln!("obs_lint: --require needs a metric family name");
                    return ExitCode::from(1);
                }
            }
        } else {
            files.push(arg.clone());
        }
    }
    if files.is_empty() || files.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: obs_lint [--require NAME]... FILE...   (.spans.ndjson = span stream, .ndjson/.jsonl = event stream, .prom = exposition)"
        );
        return ExitCode::from(1);
    }
    for path in &files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => return fail(&format!("{path}: {e}")),
        };
        if path.ends_with(".spans.ndjson") || path.ends_with(".spans.jsonl") {
            match lint_spans(&text) {
                Ok(s) => println!(
                    "obs_lint: {path}: ok ({} lines, {} cells, {} spans)",
                    s.lines, s.cells, s.spans
                ),
                Err(e) => return fail(&format!("{path}: {e}")),
            }
        } else if path.ends_with(".ndjson") || path.ends_with(".jsonl") {
            match lint_events(&text) {
                Ok(s) => println!(
                    "obs_lint: {path}: ok ({} lines, {} cells, {} events)",
                    s.lines, s.cells, s.events
                ),
                Err(e) => return fail(&format!("{path}: {e}")),
            }
        } else if path.ends_with(".prom") {
            match lint_prom_families(&text) {
                Ok((s, families)) => {
                    for name in &required {
                        if !families.contains(name) {
                            return fail(&format!(
                                "{path}: required metric family {name:?} is not declared"
                            ));
                        }
                    }
                    println!(
                        "obs_lint: {path}: ok ({} families, {} samples)",
                        s.families, s.samples
                    )
                }
                Err(e) => return fail(&format!("{path}: {e}")),
            }
        } else {
            eprintln!(
                "obs_lint: {path}: unknown extension (want .spans.ndjson, .ndjson, .jsonl or .prom)"
            );
            return ExitCode::from(1);
        }
    }
    ExitCode::SUCCESS
}
