//! Offline analysis of lifecycle-span streams (`*.spans.ndjson`): parses
//! the span schema documented at the crate root back into per-message
//! lifecycles and renders, per sweep cell,
//!
//! * outcome counts and collision-resolution episode statistics,
//! * a per-message latency breakdown — queueing (arrival → first window
//!   membership) vs contention (first window → transmission start) vs
//!   resolution (first collision episode → transmission start),
//! * a per-station age-of-information summary reconstructed from the
//!   delivery saw-tooth, and
//! * deadline-miss forensics: the worst offenders with their full
//!   breakdowns, for a caller-supplied deadline in ticks.
//!
//! The `obs_report` binary wraps [`parse_spans`] + [`render_report`].

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::lint::{num, parse_flat_line, Scalar};
use crate::SCHEMA_VERSION;

/// How a message's lifecycle span closed.
#[derive(Clone, Debug, PartialEq)]
pub enum Close {
    /// Delivered successfully; `t` is the completion tick.
    Delivered {
        /// Completion tick of the delivery.
        t: u64,
        /// Transmission start tick.
        start: u64,
        /// Paper-clock delay (policy element 3 accounting), ticks.
        paper_delay: u64,
        /// Arrival-to-completion delay, ticks.
        true_delay: u64,
    },
    /// Discarded at the sender (policy element 4) at tick `t`.
    Discarded {
        /// Discard tick.
        t: u64,
        /// Message age at discard, ticks.
        age: u64,
    },
    /// Dropped by churn at tick `t`.
    Dropped {
        /// Drop tick.
        t: u64,
        /// Message age at drop, ticks.
        age: u64,
        /// Drop cause label (`station_left` or `rejoin_expired`).
        cause: String,
    },
}

/// One message's reconstructed lifecycle.
#[derive(Clone, Debug)]
pub struct MessageLife {
    /// Message id.
    pub msg: u64,
    /// Station holding the message.
    pub station: u32,
    /// Arrival tick at the station.
    pub arrival: u64,
    /// Tick at which the span opened (protocol admission).
    pub open_t: u64,
    /// Number of windowing rounds whose initial window held the message.
    pub windows: u32,
    /// Tick of the first window membership, if any.
    pub first_window_t: Option<u64>,
    /// Number of collision episodes the message transmitted into.
    pub collisions: u32,
    /// Tick of the first collision episode, if any.
    pub first_collision_t: Option<u64>,
    /// How the span closed; `None` for a stream truncated mid-span.
    pub close: Option<Close>,
}

impl MessageLife {
    /// Queueing ticks: arrival → first window membership.
    pub fn queueing(&self) -> Option<u64> {
        self.first_window_t.map(|w| w.saturating_sub(self.arrival))
    }

    /// Contention ticks: first window membership → transmission start.
    /// Only defined for delivered messages.
    pub fn contention(&self) -> Option<u64> {
        match (&self.close, self.first_window_t) {
            (Some(Close::Delivered { start, .. }), Some(w)) => Some(start.saturating_sub(w)),
            _ => None,
        }
    }

    /// Resolution ticks: first collision episode → transmission start.
    /// Only defined for delivered messages that collided at least once.
    pub fn resolution(&self) -> Option<u64> {
        match (&self.close, self.first_collision_t) {
            (Some(Close::Delivered { start, .. }), Some(c)) => Some(start.saturating_sub(c)),
            _ => None,
        }
    }
}

/// One sweep cell's worth of reconstructed lifecycles.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Cell index from the `cell` header.
    pub index: u64,
    /// Cell label from the `cell` header.
    pub label: String,
    /// Reconstructed lifecycles, in span-open order.
    pub messages: Vec<MessageLife>,
}

/// Parses a span NDJSON stream into per-cell message lifecycles. Lines
/// before the first `cell` header are collected into an implicit cell 0
/// labelled `"(headerless)"`. Errors mirror [`crate::lint::lint_spans`]
/// but parsing is tolerant of truncation: an unclosed span surfaces as
/// `close: None` rather than an error, so forensics can run on streams a
/// crash cut short.
pub fn parse_spans(text: &str) -> Result<Vec<Cell>, String> {
    let mut cells: Vec<Cell> = Vec::new();
    let mut index: BTreeMap<u64, usize> = BTreeMap::new(); // msg -> position in current cell
    let ensure_cell = |cells: &mut Vec<Cell>| {
        if cells.is_empty() {
            cells.push(Cell {
                index: 0,
                label: "(headerless)".to_string(),
                messages: Vec::new(),
            });
        }
    };
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        let fields = parse_flat_line(line).map_err(|e| format!("line {n}: {e}"))?;
        match num(&fields, "schema_version") {
            Some(v) if v == SCHEMA_VERSION as f64 => {}
            _ => return Err(format!("line {n}: bad or missing schema_version")),
        }
        let ev = match fields.get("ev") {
            Some(Scalar::Str(s)) => s.clone(),
            _ => return Err(format!("line {n}: missing string field \"ev\"")),
        };
        if ev == "cell" {
            let idx = num(&fields, "cell").ok_or(format!("line {n}: cell missing index"))? as u64;
            let label = match fields.get("label") {
                Some(Scalar::Str(s)) => s.clone(),
                _ => return Err(format!("line {n}: cell missing label")),
            };
            cells.push(Cell {
                index: idx,
                label,
                messages: Vec::new(),
            });
            index.clear();
            continue;
        }
        let t = num(&fields, "t").ok_or(format!("line {n}: missing t"))? as u64;
        let msg = num(&fields, "msg").ok_or(format!("line {n}: missing msg"))? as u64;
        ensure_cell(&mut cells);
        let cell = cells.last_mut().expect("ensured above");
        match ev.as_str() {
            "span_open" => {
                let station =
                    num(&fields, "station").ok_or(format!("line {n}: missing station"))? as u32;
                let arrival =
                    num(&fields, "arrival").ok_or(format!("line {n}: missing arrival"))? as u64;
                index.insert(msg, cell.messages.len());
                cell.messages.push(MessageLife {
                    msg,
                    station,
                    arrival,
                    open_t: t,
                    windows: 0,
                    first_window_t: None,
                    collisions: 0,
                    first_collision_t: None,
                    close: None,
                });
            }
            "span_window" | "span_collision" | "span_close" => {
                let pos = *index
                    .get(&msg)
                    .ok_or(format!("line {n}: {ev} for unopened msg {msg}"))?;
                let life = &mut cell.messages[pos];
                match ev.as_str() {
                    "span_window" => {
                        life.windows += 1;
                        life.first_window_t.get_or_insert(t);
                    }
                    "span_collision" => {
                        life.collisions += 1;
                        life.first_collision_t.get_or_insert(t);
                    }
                    _ => {
                        if life.close.is_some() {
                            return Err(format!("line {n}: msg {msg} closed twice"));
                        }
                        let outcome = match fields.get("outcome") {
                            Some(Scalar::Str(s)) => s.clone(),
                            _ => return Err(format!("line {n}: span_close missing outcome")),
                        };
                        life.close = Some(match outcome.as_str() {
                            "delivered" => Close::Delivered {
                                t,
                                start: num(&fields, "start")
                                    .ok_or(format!("line {n}: missing start"))?
                                    as u64,
                                paper_delay: num(&fields, "paper_delay")
                                    .ok_or(format!("line {n}: missing paper_delay"))?
                                    as u64,
                                true_delay: num(&fields, "true_delay")
                                    .ok_or(format!("line {n}: missing true_delay"))?
                                    as u64,
                            },
                            "discarded" => Close::Discarded {
                                t,
                                age: num(&fields, "age").unwrap_or(0.0) as u64,
                            },
                            "dropped" => Close::Dropped {
                                t,
                                age: num(&fields, "age").unwrap_or(0.0) as u64,
                                cause: match fields.get("cause") {
                                    Some(Scalar::Str(c)) => c.clone(),
                                    _ => return Err(format!("line {n}: dropped missing cause")),
                                },
                            },
                            other => return Err(format!("line {n}: unknown outcome {other:?}")),
                        });
                    }
                }
            }
            other => return Err(format!("line {n}: unknown span event {other:?}")),
        }
    }
    Ok(cells)
}

/// Per-station age-of-information summary reconstructed from deliveries.
#[derive(Clone, Copy, Debug, Default)]
struct StationAoi {
    /// Arrival tick of the freshest delivered message.
    u: u64,
    /// Tick of the first delivery (observation start).
    first_t: u64,
    /// Tick of the latest delivery flushed into the area.
    flushed_to: u64,
    /// 2 × ∫ age dt over [first_t, flushed_to].
    twice_area: u128,
    /// Peak age observed just before a delivery, ticks.
    peak: u64,
    /// Deliveries seen.
    deliveries: u64,
}

fn mean(sum: u128, n: u64) -> f64 {
    if n == 0 {
        0.0
    } else {
        sum as f64 / n as f64
    }
}

/// Renders a plain-text report over parsed cells. `deadline` (ticks)
/// classifies delivered messages as on-time vs late and drives the
/// forensics section; `top` bounds each forensics list.
pub fn render_report(cells: &[Cell], deadline: Option<u64>, top: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "obs_report: {} cell(s)", cells.len());
    for cell in cells {
        let _ = writeln!(out, "\ncell {} [{}]", cell.index, cell.label);
        let n = cell.messages.len();
        let mut delivered = 0u64;
        let mut discarded = 0u64;
        let mut dropped = 0u64;
        let mut open = 0u64;
        let mut queueing_sum = 0u128;
        let mut queueing_n = 0u64;
        let mut contention_sum = 0u128;
        let mut contention_n = 0u64;
        let mut resolution_sum = 0u128;
        let mut resolution_n = 0u64;
        let mut collisions_sum = 0u128;
        let mut collisions_max = 0u32;
        let mut collided = 0u64;
        let mut true_delay_sum = 0u128;
        let mut true_delay_max = 0u64;
        let mut late = 0u64;
        let mut aoi: BTreeMap<u32, StationAoi> = BTreeMap::new();
        let mut horizon = 0u64;
        for life in &cell.messages {
            collisions_sum += life.collisions as u128;
            collisions_max = collisions_max.max(life.collisions);
            if life.collisions > 0 {
                collided += 1;
            }
            if let Some(q) = life.queueing() {
                queueing_sum += q as u128;
                queueing_n += 1;
            }
            if let Some(c) = life.contention() {
                contention_sum += c as u128;
                contention_n += 1;
            }
            if let Some(r) = life.resolution() {
                resolution_sum += r as u128;
                resolution_n += 1;
            }
            match &life.close {
                Some(Close::Delivered { t, true_delay, .. }) => {
                    delivered += 1;
                    true_delay_sum += *true_delay as u128;
                    true_delay_max = true_delay_max.max(*true_delay);
                    if deadline.is_some_and(|k| *true_delay > k) {
                        late += 1;
                    }
                    horizon = horizon.max(*t);
                    let s = aoi.entry(life.station).or_default();
                    if s.deliveries == 0 {
                        s.u = life.arrival;
                        s.first_t = *t;
                        s.flushed_to = *t;
                    } else if *t > s.flushed_to {
                        let a0 = (s.flushed_to - s.u) as u128;
                        let a1 = (*t - s.u) as u128;
                        s.twice_area += a1 * a1 - a0 * a0;
                        s.peak = s.peak.max(*t - s.u);
                        s.flushed_to = *t;
                        s.u = s.u.max(life.arrival);
                    }
                    s.deliveries += 1;
                }
                Some(Close::Discarded { t, .. }) => {
                    discarded += 1;
                    horizon = horizon.max(*t);
                }
                Some(Close::Dropped { t, .. }) => {
                    dropped += 1;
                    horizon = horizon.max(*t);
                }
                None => open += 1,
            }
        }
        let _ = writeln!(
            out,
            "  spans: {n} (delivered {delivered}, discarded {discarded}, dropped {dropped}, unclosed {open})"
        );
        let _ = writeln!(
            out,
            "  collision episodes: mean {:.3}/msg, max {collisions_max}, {collided} msg(s) collided",
            mean(collisions_sum, n as u64)
        );
        let _ = writeln!(
            out,
            "  latency breakdown (ticks): queueing mean {:.2} (n={queueing_n}), contention mean {:.2} (n={contention_n}), resolution mean {:.2} (n={resolution_n})",
            mean(queueing_sum, queueing_n),
            mean(contention_sum, contention_n),
            mean(resolution_sum, resolution_n)
        );
        if delivered > 0 {
            let _ = writeln!(
                out,
                "  true delay (ticks): mean {:.2}, max {true_delay_max}",
                mean(true_delay_sum, delivered)
            );
        }
        // Age-of-information per station (from the delivery saw-tooth).
        if !aoi.is_empty() {
            let mut twice_total = 0u128;
            let mut obs_total = 0u128;
            let mut worst: Vec<(u32, StationAoi)> = Vec::new();
            for (&st, s) in &aoi {
                // Extend each station's saw-tooth to the cell horizon so
                // stations that went quiet still accumulate age.
                let mut s = *s;
                if horizon > s.flushed_to {
                    let a0 = (s.flushed_to - s.u) as u128;
                    let a1 = (horizon - s.u) as u128;
                    s.twice_area += a1 * a1 - a0 * a0;
                    s.flushed_to = horizon;
                }
                twice_total += s.twice_area;
                obs_total += (s.flushed_to - s.first_t) as u128;
                worst.push((st, s));
            }
            worst.sort_by(|a, b| b.1.peak.cmp(&a.1.peak).then(a.0.cmp(&b.0)));
            let mean_age = if obs_total == 0 {
                0.0
            } else {
                twice_total as f64 / 2.0 / obs_total as f64
            };
            let _ = writeln!(
                out,
                "  age-of-information: {} station(s), mean age {mean_age:.2} ticks",
                aoi.len()
            );
            for (st, s) in worst.iter().take(top) {
                let st_mean = if s.flushed_to > s.first_t {
                    s.twice_area as f64 / 2.0 / (s.flushed_to - s.first_t) as f64
                } else {
                    0.0
                };
                let _ = writeln!(
                    out,
                    "    station {st}: {} deliveries, mean age {st_mean:.2}, peak {}",
                    s.deliveries, s.peak
                );
            }
        }
        // Deadline-miss forensics: discarded/dropped spans plus (when a
        // deadline is given) late deliveries, worst first.
        let mut misses: Vec<&MessageLife> = cell
            .messages
            .iter()
            .filter(|l| match &l.close {
                Some(Close::Delivered { true_delay, .. }) => {
                    deadline.is_some_and(|k| *true_delay > k)
                }
                Some(_) => true,
                None => false,
            })
            .collect();
        misses.sort_by_key(|l| {
            std::cmp::Reverse(match &l.close {
                Some(Close::Delivered { true_delay, .. }) => *true_delay,
                Some(Close::Discarded { age, .. }) | Some(Close::Dropped { age, .. }) => *age,
                None => 0,
            })
        });
        if let Some(k) = deadline {
            let _ = writeln!(
                out,
                "  deadline K={k}: {late} late delivery(ies), {} miss(es) total",
                misses.len()
            );
        }
        if !misses.is_empty() {
            let _ = writeln!(out, "  worst misses:");
            for l in misses.iter().take(top) {
                let (verdict, detail) = match &l.close {
                    Some(Close::Delivered { true_delay, .. }) => {
                        ("late", format!("true_delay={true_delay}"))
                    }
                    Some(Close::Discarded { age, .. }) => ("discarded", format!("age={age}")),
                    Some(Close::Dropped { age, cause, .. }) => {
                        ("dropped", format!("age={age} cause={cause}"))
                    }
                    None => ("unclosed", String::new()),
                };
                let q = l.queueing().map_or("-".to_string(), |q| q.to_string());
                let _ = writeln!(
                    out,
                    "    msg {} station {} arrival={} queueing={q} windows={} collisions={} {verdict} {detail}",
                    l.msg, l.station, l.arrival, l.windows, l.collisions
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanTracer;
    use tcw_mac::{Message, MessageId, StationId};
    use tcw_sim::time::{Dur, Time};
    use tcw_window::trace::{DropCause, EngineObserver};

    fn msg(id: u64, station: u32, arrival: u64) -> Message {
        Message::new(MessageId(id), StationId(station), Time::from_ticks(arrival))
    }

    fn sample_stream() -> String {
        let mut tr = SpanTracer::new();
        tr.begin_cell(0, "demo");
        let m1 = msg(1, 0, 0);
        tr.on_arrival(&m1, Time::from_ticks(2));
        tr.on_window_member(&m1, Time::from_ticks(4));
        tr.on_collision_member(&m1, Time::from_ticks(4));
        tr.on_window_member(&m1, Time::from_ticks(8));
        tr.on_transmit(
            &m1,
            Time::from_ticks(10),
            Dur::from_ticks(12),
            Dur::from_ticks(12),
        );
        let m2 = msg(2, 1, 1);
        tr.on_arrival(&m2, Time::from_ticks(2));
        tr.on_sender_discard(&m2, Time::from_ticks(30));
        let m3 = msg(3, 0, 20);
        tr.on_arrival(&m3, Time::from_ticks(21));
        tr.on_window_member(&m3, Time::from_ticks(22));
        tr.on_transmit(
            &m3,
            Time::from_ticks(24),
            Dur::from_ticks(6),
            Dur::from_ticks(6),
        );
        let m4 = msg(4, 2, 25);
        tr.on_arrival(&m4, Time::from_ticks(26));
        tr.on_message_drop(&m4, Time::from_ticks(28), DropCause::StationLeft);
        tr.finish()
    }

    #[test]
    fn parse_reconstructs_lifecycles() {
        let cells = parse_spans(&sample_stream()).unwrap();
        assert_eq!(cells.len(), 1);
        let c = &cells[0];
        assert_eq!(c.label, "demo");
        assert_eq!(c.messages.len(), 4);
        let m1 = &c.messages[0];
        assert_eq!(m1.windows, 2);
        assert_eq!(m1.collisions, 1);
        assert_eq!(m1.first_window_t, Some(4));
        assert_eq!(m1.queueing(), Some(4));
        // start=10, first window at 4 -> contention 6; first collision at
        // 4 -> resolution 6.
        assert_eq!(m1.contention(), Some(6));
        assert_eq!(m1.resolution(), Some(6));
        assert!(matches!(
            m1.close,
            Some(Close::Delivered { true_delay: 12, .. })
        ));
        assert!(matches!(c.messages[1].close, Some(Close::Discarded { .. })));
        assert!(matches!(c.messages[3].close, Some(Close::Dropped { .. })));
    }

    #[test]
    fn parse_tolerates_truncated_streams() {
        let stream = sample_stream();
        // Cut after the third line: m1 is mid-flight.
        let cut: String = stream.lines().take(3).map(|l| format!("{l}\n")).collect();
        let cells = parse_spans(&cut).unwrap();
        assert_eq!(cells[0].messages.len(), 1);
        assert!(cells[0].messages[0].close.is_none());
    }

    #[test]
    fn report_counts_misses_and_aoi() {
        let cells = parse_spans(&sample_stream()).unwrap();
        let text = render_report(&cells, Some(10), 5);
        assert!(
            text.contains("delivered 2, discarded 1, dropped 1"),
            "{text}"
        );
        assert!(
            text.contains("deadline K=10: 1 late delivery(ies), 3 miss(es) total"),
            "{text}"
        );
        // Station 0 delivered twice: sawtooth from t=10 (u=0) to t=24
        // (age 24 just before), then u=20.
        assert!(text.contains("age-of-information: 1 station(s)"), "{text}");
        assert!(text.contains("peak 24"), "{text}");
        assert!(text.contains("msg 2 station 1"), "{text}");
    }

    #[test]
    fn report_without_deadline_lists_non_delivery_misses_only() {
        let cells = parse_spans(&sample_stream()).unwrap();
        let text = render_report(&cells, None, 5);
        assert!(!text.contains("deadline K="), "{text}");
        assert!(text.contains("worst misses:"), "{text}");
        assert!(text.contains("discarded age="), "{text}");
    }
}
