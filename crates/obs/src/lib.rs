//! # tcw-obs — the observability layer
//!
//! Production telemetry for the time-window protocol stack, built on the
//! two seeds the workspace already had: the engine's
//! [`tcw_window::trace::EngineObserver`] hook and the online collectors in
//! [`tcw_sim::stats`]. Four pieces:
//!
//! * [`event::EventTracer`] — an `EngineObserver` that encodes
//!   decision/probe/split/transmit/discard/fault/churn events into a
//!   preallocated ring buffer and drains them as schema-versioned NDJSON
//!   (the `--trace-events PATH` flag of the experiment binaries);
//! * [`registry::Registry`] — a named-metric registry
//!   (counters/gauges/histograms) populated through
//!   [`tcw_sim::stats::MetricSink`] by the engine, the channel accounting,
//!   the churn process and the divergence detector, snapshotted per sweep
//!   cell and exportable as Prometheus text exposition format or JSON
//!   (the `--metrics PATH[.prom|.json]` flag);
//! * [`profile`] — log-scale latency histograms plus (behind the
//!   `obs-profile` feature) a wall-clock slot-phase profiler for the
//!   engine's decision/probe/reopen phases;
//! * [`progress::Progress`] — per-cell state and worker heartbeats for the
//!   parallel sweep executor, rendered as a stderr progress line with ETA
//!   and stall detection.
//!
//! ## Determinism contract
//!
//! Observability is strictly read-only with respect to the simulation:
//! observers receive event data but never touch an RNG stream, so
//!
//! * with tracing/metrics **disabled**, runs are bit-identical to builds
//!   that predate this crate (the golden fingerprints pin this);
//! * with tracing/metrics **enabled**, simulated results are byte-identical
//!   for any `--jobs N` — every cell's telemetry is buffered worker-side
//!   and reassembled in cell order (the `sweep_determinism` test pins
//!   this). Only the stderr progress line is wall-clock dependent.
//!
//! ## Event schema (`schema_version` 1)
//!
//! One JSON object per line, all values scalars. Every line carries
//! `"schema_version"` and `"ev"`; every line except the `cell` header also
//! carries `"seq"` (line number within the cell, from 0), `"slot"` (probe
//! slots consumed so far — non-decreasing within a cell) and `"t"` (the
//! engine time at which the event was observed, in ticks — non-decreasing
//! within a cell; a `transmit` line's true start tick is its `start`
//! field, which can precede `t` because deliveries are reported at
//! completion).
//!
//! | `ev` | extra fields | meaning |
//! |---|---|---|
//! | `cell` | `cell`, `label` | header: start of one sweep cell's stream |
//! | `decision` | `segments`, `win_start`, `win_end` | decision point chose an initial window |
//! | `decision_idle` | — | decision point found nothing unexamined; idle `tau` |
//! | `probe` | `outcome` (`idle`\|`success`\|`collision`), `msg` (success), `n` (collision), `dur`, `segments` | one probe slot resolved |
//! | `split` | `segments`, `win_start`, `win_end` | window known to hold ≥ 2 arrivals split unprobed |
//! | `transmit` | `start`, `msg`, `station`, `paper_delay`, `true_delay` | successful delivery (started at tick `start`) |
//! | `discard` | `msg`, `station` | sender discard (policy element 4) |
//! | `corrupted_slot` | `dur` | slot feedback corrupted by a fault |
//! | `backoff` | `dur` | quiet backoff before re-probe |
//! | `round_abandoned` | — | windowing round abandoned after repeated corruption |
//! | `reopen` | `start`, `end` | examined interval reopened for stranded arrivals |
//! | `churn` | `what` (`crash`\|`restart`\|`join`\|`leave`), `station` | membership transition |
//!
//! Durations and times are integer ticks. The `obs_lint` binary validates
//! streams against this schema.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod event;
pub mod lint;
pub mod profile;
pub mod progress;
pub mod registry;

pub use event::{EventTracer, SCHEMA_VERSION};
pub use progress::Progress;
pub use registry::Registry;
