//! # tcw-obs — the observability layer
//!
//! Production telemetry for the time-window protocol stack, built on the
//! two seeds the workspace already had: the engine's
//! [`tcw_window::trace::EngineObserver`] hook and the online collectors in
//! [`tcw_sim::stats`]. Four pieces:
//!
//! * [`event::EventTracer`] — an `EngineObserver` that encodes
//!   decision/probe/split/transmit/discard/fault/churn events into a
//!   preallocated ring buffer and drains them as schema-versioned NDJSON
//!   (the `--trace-events PATH` flag of the experiment binaries);
//! * [`span::SpanTracer`] — an `EngineObserver` that encodes each
//!   message's lifecycle (admission → window membership → collision
//!   episodes → delivery/discard/drop) as NDJSON spans (the
//!   `--spans PATH` flag); unlike the event tracer it does **not**
//!   disable the event-horizon fast path, and the `obs_report` binary
//!   consumes its output offline;
//! * [`registry::Registry`] — a named-metric registry
//!   (counters/gauges/histograms) populated through
//!   [`tcw_sim::stats::MetricSink`] by the engine, the channel accounting,
//!   the churn process and the divergence detector, snapshotted per sweep
//!   cell and exportable as Prometheus text exposition format or JSON
//!   (the `--metrics PATH[.prom|.json]` flag);
//! * [`profile`] — log-scale latency histograms plus (behind the
//!   `obs-profile` feature) a wall-clock slot-phase profiler for the
//!   engine's decision/probe/reopen phases;
//! * [`progress::Progress`] — per-cell state and worker heartbeats for the
//!   parallel sweep executor, rendered as a stderr progress line with ETA
//!   and stall detection.
//!
//! ## Determinism contract
//!
//! Observability is strictly read-only with respect to the simulation:
//! observers receive event data but never touch an RNG stream, so
//!
//! * with tracing/metrics **disabled**, runs are bit-identical to builds
//!   that predate this crate (the golden fingerprints pin this);
//! * with tracing/metrics **enabled**, simulated results are byte-identical
//!   for any `--jobs N` — every cell's telemetry is buffered worker-side
//!   and reassembled in cell order (the `sweep_determinism` test pins
//!   this). Only the stderr progress line is wall-clock dependent.
//!
//! ## Event schema (`schema_version` 1)
//!
//! One JSON object per line, all values scalars. Every line carries
//! `"schema_version"` and `"ev"`; every line except the `cell` header also
//! carries `"seq"` (line number within the cell, from 0), `"slot"` (probe
//! slots consumed so far — non-decreasing within a cell) and `"t"` (the
//! engine time at which the event was observed, in ticks — non-decreasing
//! within a cell; a `transmit` line's true start tick is its `start`
//! field, which can precede `t` because deliveries are reported at
//! completion).
//!
//! | `ev` | extra fields | meaning |
//! |---|---|---|
//! | `cell` | `cell`, `label` | header: start of one sweep cell's stream |
//! | `decision` | `segments`, `win_start`, `win_end` | decision point chose an initial window |
//! | `decision_idle` | — | decision point found nothing unexamined; idle `tau` |
//! | `probe` | `outcome` (`idle`\|`success`\|`collision`), `msg` (success), `n` (collision), `dur`, `segments` | one probe slot resolved |
//! | `split` | `segments`, `win_start`, `win_end` | window known to hold ≥ 2 arrivals split unprobed |
//! | `transmit` | `start`, `msg`, `station`, `paper_delay`, `true_delay` | successful delivery (started at tick `start`) |
//! | `discard` | `msg`, `station` | sender discard (policy element 4) |
//! | `corrupted_slot` | `dur` | slot feedback corrupted by a fault |
//! | `backoff` | `dur` | quiet backoff before re-probe |
//! | `round_abandoned` | — | windowing round abandoned after repeated corruption |
//! | `reopen` | `start`, `end` | examined interval reopened for stranded arrivals |
//! | `churn` | `what` (`crash`\|`restart`\|`join`\|`leave`), `station` | membership transition |
//!
//! Durations and times are integer ticks. The `obs_lint` binary validates
//! streams against this schema.
//!
//! ## Span schema (`schema_version` 1, `*.spans.ndjson`)
//!
//! Lifecycle-span streams reuse the `cell` header and the `seq`/`t`
//! prefix but carry **no** `slot` field: spans are emitted on the
//! event-horizon fast path too, where probe slots are not individually
//! stepped. Within a cell every `span_open` is eventually balanced by
//! exactly one `span_close` for the same `msg`, with any `span_window` /
//! `span_collision` lines for that `msg` strictly between the two; `t` is
//! non-decreasing line-to-line.
//!
//! | `ev` | extra fields | meaning |
//! |---|---|---|
//! | `cell` | `cell`, `label` | header: start of one sweep cell's stream |
//! | `span_open` | `msg`, `station`, `arrival` | message admitted into the protocol (span opens) |
//! | `span_window` | `msg`, `age` | message joined the initial window of a windowing round |
//! | `span_collision` | `msg`, `age` | message transmitted into a collision episode |
//! | `span_close` | `outcome` (`delivered`\|`discarded`\|`dropped`), plus `start`, `paper_delay`, `true_delay` when delivered; `age` otherwise; `cause` (`station_left`\|`rejoin_expired`) when dropped | lifecycle closes |
//!
//! The `obs_lint` binary validates span balance and monotonicity; the
//! `obs_report` binary reconstructs collision-resolution episodes,
//! per-message latency breakdowns and age-of-information series offline.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod event;
pub mod lint;
pub mod profile;
pub mod progress;
pub mod registry;
pub mod report;
pub mod span;

pub use event::{EventTracer, SCHEMA_VERSION};
pub use progress::Progress;
pub use registry::Registry;
pub use span::SpanTracer;
