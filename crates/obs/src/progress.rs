//! Live sweep progress: per-cell state and worker heartbeats rendered as
//! a single self-overwriting stderr line with ETA and stall detection.
//!
//! The sweep executor calls [`Progress::cell_started`] /
//! [`Progress::cell_done`] from worker threads; a monitor thread calls
//! [`Progress::tick`] periodically to re-render. Everything here is
//! wall-clock dependent by design and touches **only stderr** — no
//! exported artifact ever includes progress state, which is what keeps
//! instrumented runs byte-identical across `--jobs` settings.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A worker is considered stalled when its current cell has been running
/// at least this long without completing.
const STALL_AFTER: Duration = Duration::from_secs(30);

/// Minimum interval between stderr re-renders.
const RENDER_EVERY: Duration = Duration::from_millis(200);

/// Sentinel for "worker holds no cell".
const IDLE: usize = usize::MAX;

struct WorkerSlot {
    /// Milliseconds since `started` at the last heartbeat.
    heartbeat_ms: AtomicU64,
    /// Cell index currently held, or [`IDLE`].
    cell: AtomicUsize,
}

/// Shared progress state for one parallel sweep.
pub struct Progress {
    total: usize,
    done: AtomicUsize,
    started: Instant,
    workers: Vec<WorkerSlot>,
    last_render: Mutex<Instant>,
    /// Supervisor counters (crash-safe sweeps): cells skipped because the
    /// resume journal already held them, attempts retried after a panic
    /// or timeout, attempts cut off by the watchdog, and cells
    /// quarantined after exhausting their retry budget. All zero outside
    /// supervised mode, in which case the render line omits them.
    skipped: AtomicU64,
    retries: AtomicU64,
    timeouts: AtomicU64,
    quarantined: AtomicU64,
    /// Event-horizon fast-path counters, accumulated across completed
    /// cells via [`Progress::note_horizon`]. All zero when the fast path
    /// never engaged, in which case the render line omits them.
    hzn_jumps: AtomicU64,
    hzn_slots_skipped: AtomicU64,
    hzn_batched_runs: AtomicU64,
    hzn_batched_slots: AtomicU64,
}

impl Progress {
    /// Creates progress state for `total` cells executed by `workers`
    /// worker threads.
    pub fn new(total: usize, workers: usize) -> Self {
        let started = Instant::now();
        Progress {
            total,
            done: AtomicUsize::new(0),
            started,
            workers: (0..workers)
                .map(|_| WorkerSlot {
                    heartbeat_ms: AtomicU64::new(0),
                    cell: AtomicUsize::new(IDLE),
                })
                .collect(),
            last_render: Mutex::new(started),
            skipped: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            hzn_jumps: AtomicU64::new(0),
            hzn_slots_skipped: AtomicU64::new(0),
            hzn_batched_runs: AtomicU64::new(0),
            hzn_batched_slots: AtomicU64::new(0),
        }
    }

    /// Accumulates one cell's event-horizon fast-path counters (the
    /// engine's `tcw_horizon_*` families) into the live line. Safe to
    /// call from worker threads.
    pub fn note_horizon(
        &self,
        jumps: u64,
        slots_skipped: u64,
        batched_runs: u64,
        batched_slots: u64,
    ) {
        self.hzn_jumps.fetch_add(jumps, Ordering::Relaxed);
        self.hzn_slots_skipped
            .fetch_add(slots_skipped, Ordering::Relaxed);
        self.hzn_batched_runs
            .fetch_add(batched_runs, Ordering::Relaxed);
        self.hzn_batched_slots
            .fetch_add(batched_slots, Ordering::Relaxed);
    }

    /// Records `n` cells satisfied straight from the resume journal.
    pub fn note_resume_skipped(&self, n: u64) {
        self.skipped.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one supervised attempt retried after a failure.
    pub fn note_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one supervised attempt cut off by the watchdog.
    pub fn note_timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one cell quarantined after exhausting its retries.
    pub fn note_quarantine(&self) {
        self.quarantined.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of cells completed so far.
    pub fn completed(&self) -> usize {
        self.done.load(Ordering::Relaxed)
    }

    /// Total number of cells.
    pub fn total(&self) -> usize {
        self.total
    }

    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// Records that `worker` began executing `cell`.
    pub fn cell_started(&self, worker: usize, cell: usize) {
        if let Some(w) = self.workers.get(worker) {
            w.heartbeat_ms.store(self.now_ms(), Ordering::Relaxed);
            w.cell.store(cell, Ordering::Relaxed);
        }
    }

    /// Records that `worker` finished its current cell.
    pub fn cell_done(&self, worker: usize) {
        if let Some(w) = self.workers.get(worker) {
            w.heartbeat_ms.store(self.now_ms(), Ordering::Relaxed);
            w.cell.store(IDLE, Ordering::Relaxed);
        }
        self.done.fetch_add(1, Ordering::Relaxed);
    }

    /// Cells currently held by workers, with each cell's age; used for the
    /// render line and for stall detection.
    fn active(&self) -> Vec<(usize, Duration)> {
        let now = self.now_ms();
        self.workers
            .iter()
            .filter_map(|w| {
                let cell = w.cell.load(Ordering::Relaxed);
                if cell == IDLE {
                    None
                } else {
                    let hb = w.heartbeat_ms.load(Ordering::Relaxed);
                    Some((cell, Duration::from_millis(now.saturating_sub(hb))))
                }
            })
            .collect()
    }

    /// Builds the progress line for the given elapsed time. Public so the
    /// formatting is unit-testable without threads or a terminal.
    pub fn render_line(&self, elapsed: Duration) -> String {
        let done = self.completed();
        let pct = if self.total == 0 {
            100.0
        } else {
            100.0 * done as f64 / self.total as f64
        };
        let mut line = format!(
            "sweep: {done}/{} cells ({pct:.0}%) elapsed {}",
            self.total,
            fmt_dur(elapsed)
        );
        if done > 0 && done < self.total {
            let per_cell = elapsed.as_secs_f64() / done as f64;
            let eta = Duration::from_secs_f64(per_cell * (self.total - done) as f64);
            line.push_str(&format!(" eta {}", fmt_dur(eta)));
        }
        let active = self.active();
        if !active.is_empty() && done < self.total {
            let cells: Vec<String> = active.iter().map(|(c, _)| format!("#{c}")).collect();
            line.push_str(&format!(" running {}", cells.join(" ")));
        }
        let stalled: Vec<String> = active
            .iter()
            .filter(|(_, age)| *age >= STALL_AFTER)
            .map(|(c, age)| format!("#{c} ({}s)", age.as_secs()))
            .collect();
        if !stalled.is_empty() {
            line.push_str(&format!(" STALLED {}", stalled.join(" ")));
        }
        let (skipped, retries, timeouts, quarantined) = (
            self.skipped.load(Ordering::Relaxed),
            self.retries.load(Ordering::Relaxed),
            self.timeouts.load(Ordering::Relaxed),
            self.quarantined.load(Ordering::Relaxed),
        );
        if skipped + retries + timeouts + quarantined > 0 {
            line.push_str(&format!(
                " [sup: {skipped} skipped {retries} retries {timeouts} timeouts {quarantined} quarantined]"
            ));
        }
        let (jumps, slots_skipped, batched_runs, batched_slots) = (
            self.hzn_jumps.load(Ordering::Relaxed),
            self.hzn_slots_skipped.load(Ordering::Relaxed),
            self.hzn_batched_runs.load(Ordering::Relaxed),
            self.hzn_batched_slots.load(Ordering::Relaxed),
        );
        if jumps + slots_skipped + batched_runs + batched_slots > 0 {
            line.push_str(&format!(
                " [hzn: {jumps} jumps {slots_skipped} skipped {batched_runs} batched {batched_slots} slots]"
            ));
        }
        line
    }

    /// Re-renders the stderr progress line if enough time has passed since
    /// the previous render. Safe to call from any thread.
    pub fn tick(&self) {
        let mut last = match self.last_render.lock() {
            Ok(g) => g,
            Err(_) => return,
        };
        if last.elapsed() < RENDER_EVERY {
            return;
        }
        *last = Instant::now();
        let line = self.render_line(self.started.elapsed());
        // Pad then carriage-return so a shrinking line leaves no residue.
        eprint!("\r{line:<78}");
    }

    /// Renders the final state and terminates the stderr line.
    pub fn finish(&self) {
        let line = self.render_line(self.started.elapsed());
        eprintln!("\r{line:<78}");
    }
}

fn fmt_dur(d: Duration) -> String {
    let s = d.as_secs();
    if s >= 60 {
        format!("{}m{:02}s", s / 60, s % 60)
    } else {
        format!("{}.{}s", s, d.subsec_millis() / 100)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_reports_counts_and_eta() {
        let p = Progress::new(10, 2);
        p.cell_started(0, 0);
        p.cell_done(0);
        p.cell_started(0, 1);
        p.cell_started(1, 2);
        let line = p.render_line(Duration::from_secs(4));
        assert!(line.contains("1/10"), "{line}");
        assert!(line.contains("(10%)"), "{line}");
        // 4s for 1 cell -> 36s for the remaining 9.
        assert!(line.contains("eta 36"), "{line}");
        assert!(line.contains("#1"), "{line}");
        assert!(line.contains("#2"), "{line}");
        assert!(!line.contains("STALLED"), "{line}");
    }

    #[test]
    fn completed_sweep_renders_without_eta() {
        let p = Progress::new(2, 1);
        p.cell_started(0, 0);
        p.cell_done(0);
        p.cell_started(0, 1);
        p.cell_done(0);
        let line = p.render_line(Duration::from_secs(1));
        assert!(line.contains("2/2"), "{line}");
        assert!(line.contains("(100%)"), "{line}");
        assert!(!line.contains("eta"), "{line}");
        assert!(!line.contains("running"), "{line}");
    }

    #[test]
    fn supervisor_counters_render_only_when_used() {
        let p = Progress::new(4, 1);
        let quiet = p.render_line(Duration::from_secs(1));
        assert!(!quiet.contains("[sup:"), "{quiet}");
        p.note_resume_skipped(2);
        p.note_retry();
        p.note_timeout();
        p.note_quarantine();
        let line = p.render_line(Duration::from_secs(1));
        assert!(
            line.contains("[sup: 2 skipped 1 retries 1 timeouts 1 quarantined]"),
            "{line}"
        );
    }

    #[test]
    fn horizon_counters_render_only_when_fast_path_engaged() {
        let p = Progress::new(4, 1);
        let quiet = p.render_line(Duration::from_secs(1));
        assert!(!quiet.contains("[hzn:"), "{quiet}");
        p.note_horizon(3, 120, 2, 40);
        p.note_horizon(1, 8, 0, 0);
        let line = p.render_line(Duration::from_secs(1));
        assert!(
            line.contains("[hzn: 4 jumps 128 skipped 2 batched 40 slots]"),
            "{line}"
        );
    }

    #[test]
    fn zero_total_is_full() {
        let p = Progress::new(0, 1);
        let line = p.render_line(Duration::from_millis(100));
        assert!(line.contains("(100%)"), "{line}");
    }

    #[test]
    fn out_of_range_worker_ids_are_ignored() {
        let p = Progress::new(1, 1);
        p.cell_started(5, 0);
        p.cell_done(5);
        assert_eq!(p.completed(), 1);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_dur(Duration::from_millis(2500)), "2.5s");
        assert_eq!(fmt_dur(Duration::from_secs(125)), "2m05s");
    }
}
