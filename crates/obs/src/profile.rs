//! Slot-phase profiling: log-scale wall-clock histograms, and (behind the
//! `obs-profile` feature) an [`EngineObserver`] that attributes the time
//! between consecutive engine callbacks to the protocol phase that
//! produced them.
//!
//! [`LogHistogram`] is always compiled (and unit-tested); only the
//! [`PhaseProfiler`], which reads the wall clock, is feature-gated — so
//! default builds carry no timing code on the engine path at all.
//!
//! Profiling output is wall-clock dependent and therefore never part of a
//! deterministic artifact; it is printed to stderr on demand.

#[cfg(feature = "obs-profile")]
pub use gated::PhaseProfiler;

/// A histogram over `u64` magnitudes (nanoseconds, ticks, …) with one
/// bucket per power of two — 64 buckets cover the full range with no
/// configuration and O(1) recording.
#[derive(Clone, Debug)]
pub struct LogHistogram {
    counts: [u64; 64],
    total: u64,
    sum: u128,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: [0; 64],
            total: 0,
            sum: 0,
        }
    }

    /// Bucket index for a value: 0 holds {0, 1}, bucket `i` holds
    /// `[2^i, 2^(i+1))` for `i >= 1`.
    fn bucket(v: u64) -> usize {
        (64 - v.leading_zeros() as usize).saturating_sub(1)
    }

    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket(v)] += 1;
        self.total += 1;
        self.sum += v as u128;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Upper bound (exclusive) of the bucket containing the `q`-quantile,
    /// or `None` when empty. Resolution is a factor of two — adequate for
    /// phase timing, where only the order of magnitude matters.
    pub fn quantile_bound(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut cum = 0;
        for (i, n) in self.counts.iter().enumerate() {
            cum += n;
            if cum >= target {
                return Some(if i >= 63 { u64::MAX } else { 2u64 << i });
            }
        }
        Some(u64::MAX)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
    }
}

#[cfg(feature = "obs-profile")]
mod gated {
    use super::LogHistogram;
    use std::fmt::Write as _;
    use std::time::Instant;
    use tcw_mac::{ChurnEvent, Message, SlotOutcome};
    use tcw_sim::rng::Rng;
    use tcw_sim::time::{Dur, Time};
    use tcw_window::interval::Interval;
    use tcw_window::timeline::Timeline;
    use tcw_window::trace::EngineObserver;

    /// Engine phases the profiler attributes wall-clock time to.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    enum Phase {
        /// Work culminating in a decision-point callback.
        Decision,
        /// Work culminating in a probe resolution.
        Probe,
        /// Work culminating in a reopen of examined time.
        Reopen,
        /// Everything else (transmit bookkeeping, churn, faults, …).
        Other,
    }

    /// Wall-clock slot-phase profiler (feature `obs-profile`).
    ///
    /// Implements [`EngineObserver`] by measuring the host time elapsed
    /// between consecutive callbacks and attributing each gap to the phase
    /// of the callback that ended it. Purely an observer: reads the wall
    /// clock, never the simulation's RNG, so simulated results are
    /// unaffected — but its output is machine-dependent and must never be
    /// written into a deterministic artifact.
    pub struct PhaseProfiler {
        last: Instant,
        decision: LogHistogram,
        probe: LogHistogram,
        reopen: LogHistogram,
        other: LogHistogram,
        jumps: u64,
        slots_skipped: u64,
        batched_runs: u64,
        batched_slots: u64,
    }

    impl Default for PhaseProfiler {
        fn default() -> Self {
            Self::new()
        }
    }

    impl PhaseProfiler {
        /// Creates a profiler; the first gap is measured from this call.
        pub fn new() -> Self {
            PhaseProfiler {
                last: Instant::now(),
                decision: LogHistogram::new(),
                probe: LogHistogram::new(),
                reopen: LogHistogram::new(),
                other: LogHistogram::new(),
                jumps: 0,
                slots_skipped: 0,
                batched_runs: 0,
                batched_slots: 0,
            }
        }

        /// Idle-run jumps observed (event-horizon fast path).
        pub fn jumps(&self) -> u64 {
            self.jumps
        }

        /// Idle decision rounds aggregated into jumps.
        pub fn slots_skipped(&self) -> u64 {
            self.slots_skipped
        }

        /// Batched resolution kernel activations observed.
        pub fn batched_runs(&self) -> u64 {
            self.batched_runs
        }

        /// Rounds resolved by the batched kernel.
        pub fn batched_slots(&self) -> u64 {
            self.batched_slots
        }

        fn lap(&mut self, phase: Phase) {
            let now = Instant::now();
            let ns = now
                .duration_since(self.last)
                .as_nanos()
                .min(u64::MAX as u128) as u64;
            self.last = now;
            match phase {
                Phase::Decision => self.decision.record(ns),
                Phase::Probe => self.probe.record(ns),
                Phase::Reopen => self.reopen.record(ns),
                Phase::Other => self.other.record(ns),
            }
        }

        /// Human-readable per-phase summary (counts, mean, p50/p99 bucket
        /// bounds in nanoseconds).
        pub fn summary(&self) -> String {
            let mut out = String::from("phase profile (wall-clock ns between engine callbacks)\n");
            for (name, h) in [
                ("decision", &self.decision),
                ("probe", &self.probe),
                ("reopen", &self.reopen),
                ("other", &self.other),
            ] {
                let _ = writeln!(
                    out,
                    "  {name:<8} n={} mean={:.0} p50<{} p99<{}",
                    h.count(),
                    h.mean(),
                    h.quantile_bound(0.5).unwrap_or(0),
                    h.quantile_bound(0.99).unwrap_or(0),
                );
            }
            let _ = writeln!(
                out,
                "  horizon  jumps={} slots_skipped={} batched_runs={} batched_slots={}",
                self.jumps, self.slots_skipped, self.batched_runs, self.batched_slots,
            );
            out
        }
    }

    impl EngineObserver for PhaseProfiler {
        fn on_decision(&mut self, _now: Time, _segments: Option<&[Interval]>) {
            self.lap(Phase::Decision);
        }
        fn on_probe(
            &mut self,
            _start: Time,
            _segments: &[Interval],
            _outcome: &SlotOutcome,
            _dur: Dur,
        ) {
            self.lap(Phase::Probe);
        }
        fn on_immediate_split(&mut self, _now: Time, _segments: &[Interval]) {
            self.lap(Phase::Probe);
        }
        fn on_transmit(
            &mut self,
            _msg: &Message,
            _start: Time,
            _paper_delay: Dur,
            _true_delay: Dur,
        ) {
            self.lap(Phase::Other);
        }
        fn on_sender_discard(&mut self, _msg: &Message, _now: Time) {
            self.lap(Phase::Other);
        }
        fn on_corrupted_slot(&mut self, _now: Time, _dur: Dur) {
            self.lap(Phase::Other);
        }
        fn on_backoff(&mut self, _now: Time, _dur: Dur) {
            self.lap(Phase::Other);
        }
        fn on_round_abandoned(&mut self, _now: Time) {
            self.lap(Phase::Other);
        }
        fn on_reopen(&mut self, _iv: Interval) {
            self.lap(Phase::Reopen);
        }
        fn on_beacon(&mut self, _now: Time, _timeline: &Timeline, _rng: &Rng) {}
        fn on_churn_event(&mut self, _now: Time, _ev: &ChurnEvent) {
            self.lap(Phase::Other);
        }
        // Deliberately keeps the default `slow_path() == false`: the
        // profiler tolerates aggregated stretches and counts them here.
        fn on_idle_jump(&mut self, _from: Time, _to: Time, slots: u64) {
            self.jumps += 1;
            self.slots_skipped += slots;
            self.lap(Phase::Other);
        }
        fn on_batched_run(&mut self, _from: Time, _to: Time, slots: u64) {
            self.batched_runs += 1;
            self.batched_slots += slots;
            self.lap(Phase::Other);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(LogHistogram::bucket(0), 0);
        assert_eq!(LogHistogram::bucket(1), 0);
        assert_eq!(LogHistogram::bucket(2), 1);
        assert_eq!(LogHistogram::bucket(3), 1);
        assert_eq!(LogHistogram::bucket(4), 2);
        assert_eq!(LogHistogram::bucket(u64::MAX), 63);
    }

    #[test]
    fn count_mean_and_quantiles() {
        let mut h = LogHistogram::new();
        for v in [1u64, 2, 2, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.mean() - 251.25).abs() < 1e-9);
        // p50 falls in the bucket holding the 2s: [2,4) -> bound 4.
        assert_eq!(h.quantile_bound(0.5), Some(4));
        // p99 falls in the bucket holding 1000: [512,1024) -> bound 1024.
        assert_eq!(h.quantile_bound(0.99), Some(1024));
        assert_eq!(LogHistogram::new().quantile_bound(0.5), None);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = LogHistogram::new();
        a.record(10);
        let mut b = LogHistogram::new();
        b.record(10_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mean() - 5005.0).abs() < 1e-9);
    }
}
