//! Regenerates **Figure 7** of the paper: loss probability vs. time
//! constraint `K`, for all six `(rho', M)` panels, comparing
//!
//! * the controlled protocol — analytic curve (eq. 4.7 + K-marching) and
//!   simulation points (the paper's dots);
//! * the uncontrolled FCFS protocol of [Kurose 83] — analytic curve and
//!   simulation points;
//! * the uncontrolled LCFS protocol of [Kurose 83] — analytic curve
//!   (delay-busy-period analysis, `tcw-queueing::lcfs` — a result beyond
//!   the paper, which had LCFS only by simulation) and simulation points.
//!
//! Output: `results/fig7_<panel>.csv` plus an ASCII rendering of each
//! panel and a summary of the shape checks. Run with `--quick` for a
//! fast smoke pass (fewer messages), `--jobs N` to set the sweep worker
//! count (`--jobs 1` reproduces the serial output byte-for-byte), or
//! pass a panel id (e.g. `rho50_m25`) to regenerate a single panel.
//!
//! Observability (see EXPERIMENTS.md): `--trace-events PATH` streams
//! every protocol event as NDJSON, `--metrics PATH[.prom]` snapshots the
//! per-cell metrics registries, `--progress` renders a live stderr
//! progress line. `--obs-cell` runs a single tiny sample cell (panel
//! `rho50_m25`, controlled, `K = 100`) and writes its trace/metrics to
//! the given paths — the committed `results/obs/` samples come from it.

use std::path::{Path, PathBuf};
use tcw_experiments::diag;
use tcw_experiments::plot::{ascii_plot, write_csv, Series};
use tcw_experiments::supervise::{supervised_cells, SupervisorOptions};
use tcw_experiments::sweep::run_parallel_with_progress;
use tcw_experiments::{
    observed_cell, write_observability, CellArtifacts, ObsConfig, Panel, PolicyKind, SimPoint,
    SimSettings, SweepMeta, PANELS,
};
use tcw_mac::{ChurnPlan, FaultPlan};
use tcw_queueing::marching::{controlled_curve, fcfs_curve, lcfs_curve, CurvePoint, PanelConfig};
use tcw_queueing::service::SchedulingShape;

struct PanelResult {
    panel: Panel,
    analytic_controlled: Vec<CurvePoint>,
    analytic_fcfs: Vec<CurvePoint>,
    analytic_lcfs: Vec<CurvePoint>,
    sim_controlled: Vec<SimPoint>,
    sim_fcfs: Vec<SimPoint>,
    sim_lcfs: Vec<SimPoint>,
}

/// One simulated point of the Figure-7 grid, fully specified (the seed
/// mixes the panel salt and K exactly like the historical serial loop).
#[derive(Clone, Copy)]
struct Job {
    panel: Panel,
    kind: PolicyKind,
    k: f64,
    seed: u64,
}

const KINDS: [(PolicyKind, u64); 3] = [
    (PolicyKind::Controlled, 0x01),
    (PolicyKind::Fcfs, 0x02),
    (PolicyKind::Lcfs, 0x03),
];

/// Runs every selected panel: analytic curves inline (cheap marching),
/// all simulated points of all panels through one parallel sweep, then
/// reassembles each panel's three point series in grid order. Telemetry,
/// when requested, is captured per cell and returned in cell order.
fn run_panels(
    panels: &[Panel],
    settings: SimSettings,
    seed: u64,
    jobs: usize,
    obs: &ObsConfig,
    sup: Option<&SupervisorOptions>,
) -> (Vec<PanelResult>, Vec<CellArtifacts>) {
    let mut cells = Vec::new();
    for &panel in panels {
        for (kind, salt) in KINDS {
            for &k in &panel.k_grid_sim() {
                cells.push(Job {
                    panel,
                    kind,
                    k,
                    seed: seed ^ salt ^ (k as u64),
                });
            }
        }
    }
    let (points, artifacts): (Vec<SimPoint>, Vec<CellArtifacts>) = if let Some(sup) = sup {
        // The settings plus every job's full specification define the
        // grid; any change invalidates a resume journal. The per-job seed
        // already mixes in the policy salt, so the policy is covered.
        let mut words = vec![
            settings.ticks_per_tau,
            settings.messages,
            settings.warmup,
            u64::from(settings.stations),
            u64::from(settings.guard),
        ];
        for j in &cells {
            words.extend([
                j.panel.rho_prime.to_bits(),
                j.panel.m,
                j.k.to_bits(),
                j.seed,
            ]);
        }
        let fingerprint = tcw_sim::snap::checksum(&words);
        let sup_jobs = cells.clone();
        let points = supervised_cells(
            "fig7",
            "fig7",
            cells.len(),
            jobs,
            sup,
            obs.progress,
            fingerprint,
            |cell| {
                let j = &cells[cell];
                format!(
                    "{} {} K={} seed {}",
                    j.panel.id(),
                    j.kind.label(),
                    j.k,
                    j.seed
                )
            },
            move |i| {
                let j = sup_jobs[i];
                tcw_experiments::runner::simulate_churn(
                    j.panel,
                    j.kind,
                    j.k,
                    settings,
                    j.seed,
                    FaultPlan::none(),
                    ChurnPlan::none(),
                )
                .point
            },
        );
        let n = points.len();
        (points, (0..n).map(|_| CellArtifacts::default()).collect())
    } else {
        let caps = obs.capture();
        let progress = obs
            .progress
            .then(|| tcw_obs::Progress::new(cells.len(), jobs));
        let outcomes = run_parallel_with_progress(&cells, jobs, progress.as_ref(), |i, j| {
            let id = j.panel.id();
            let label = format!("{id} {} K={}", j.kind.label(), j.k);
            let k = format!("{}", j.k);
            let seed_str = format!("{}", j.seed);
            let labels = [
                ("panel", id.as_str()),
                ("policy", j.kind.label()),
                ("k", k.as_str()),
                ("seed", seed_str.as_str()),
            ];
            let (p, art) = observed_cell(
                caps,
                i,
                &label,
                &labels,
                j.panel,
                j.kind,
                j.k,
                settings,
                j.seed,
                FaultPlan::none(),
                ChurnPlan::none(),
            );
            if let Some(pr) = &progress {
                let h = p.horizon;
                pr.note_horizon(h.jumps, h.slots_skipped, h.batched_runs, h.batched_slots);
            }
            (p.point, art)
        });
        if let Some(p) = &progress {
            p.finish();
        }
        outcomes.into_iter().unzip()
    };

    let mut results = Vec::new();
    let mut cursor = points.into_iter();
    for &panel in panels {
        let cfg = PanelConfig {
            m: panel.m,
            rho_prime: panel.rho_prime,
            shape: SchedulingShape::Geometric,
        };
        let grid = panel.k_grid();
        let n_sim = panel.k_grid_sim().len();
        let mut take = |n: usize| -> Vec<SimPoint> { cursor.by_ref().take(n).collect() };
        results.push(PanelResult {
            panel,
            analytic_controlled: controlled_curve(cfg, &grid),
            analytic_fcfs: fcfs_curve(cfg, &grid, true),
            analytic_lcfs: lcfs_curve(cfg, &grid, true),
            sim_controlled: take(n_sim),
            sim_fcfs: take(n_sim),
            sim_lcfs: take(n_sim),
        });
    }
    (results, artifacts)
}

fn emit(result: &PanelResult, out_dir: &Path) {
    let p = result.panel;
    // CSV: one row per K of the dense analytic grid; simulation columns
    // are filled on their sparser grid.
    let mut rows = Vec::new();
    for (i, a) in result.analytic_controlled.iter().enumerate() {
        let f = &result.analytic_fcfs[i];
        let l = &result.analytic_lcfs[i];
        let sim = |points: &[SimPoint]| -> (String, String) {
            match points.iter().find(|s| (s.k - a.k).abs() < 1e-9) {
                Some(s) => (format!("{:.6}", s.loss), format!("{:.6}", s.ci95)),
                None => (String::new(), String::new()),
            }
        };
        let (sc, scci) = sim(&result.sim_controlled);
        let (sf, sfci) = sim(&result.sim_fcfs);
        let (sl, slci) = sim(&result.sim_lcfs);
        rows.push(vec![
            format!("{:.1}", a.k),
            format!("{:.6}", a.loss),
            format!("{:.6}", f.loss),
            format!("{:.6}", l.loss),
            sc,
            scci,
            sf,
            sfci,
            sl,
            slci,
        ]);
    }
    let path = out_dir.join(format!("fig7_{}.csv", p.id()));
    write_csv(
        &path,
        &[
            "k_tau",
            "analytic_controlled",
            "analytic_fcfs",
            "analytic_lcfs",
            "sim_controlled",
            "sim_controlled_ci95",
            "sim_fcfs",
            "sim_fcfs_ci95",
            "sim_lcfs",
            "sim_lcfs_ci95",
        ],
        &rows,
    )
    .expect("writing CSV");

    let y_max = result
        .analytic_fcfs
        .iter()
        .map(|c| c.loss)
        .chain(result.sim_lcfs.iter().map(|s| s.loss))
        .fold(0.05, f64::max)
        .min(1.0);
    let series = vec![
        Series {
            label: "controlled (analytic)".into(),
            glyph: 'c',
            points: result
                .analytic_controlled
                .iter()
                .map(|c| (c.k, c.loss))
                .collect(),
        },
        Series {
            label: "controlled (sim)".into(),
            glyph: 'o',
            points: result
                .sim_controlled
                .iter()
                .map(|s| (s.k, s.loss))
                .collect(),
        },
        Series {
            label: "fcfs (analytic)".into(),
            glyph: 'f',
            points: result.analytic_fcfs.iter().map(|c| (c.k, c.loss)).collect(),
        },
        Series {
            label: "fcfs (sim)".into(),
            glyph: 'x',
            points: result.sim_fcfs.iter().map(|s| (s.k, s.loss)).collect(),
        },
        Series {
            label: "lcfs (analytic)".into(),
            glyph: 'l',
            points: result.analytic_lcfs.iter().map(|c| (c.k, c.loss)).collect(),
        },
        Series {
            label: "lcfs (sim)".into(),
            glyph: 'L',
            points: result.sim_lcfs.iter().map(|s| (s.k, s.loss)).collect(),
        },
    ];
    let title = format!(
        "Figure 7 panel rho' = {}, M = {} — p(loss) vs K (tau units)",
        p.rho_prime, p.m
    );
    println!("{}", ascii_plot(&title, &series, 72, 18, 0.0, y_max));

    // Shape checks (the claims the paper makes in prose).
    let mut agree = 0usize;
    for s in &result.sim_controlled {
        let a = result
            .analytic_controlled
            .iter()
            .find(|c| (c.k - s.k).abs() < 1e-9)
            .expect("sim K on analytic grid");
        if (a.loss - s.loss).abs() <= (3.0 * s.ci95).max(0.01) {
            agree += 1;
        }
    }
    println!(
        "  [check] analytic-vs-sim agreement (controlled): {agree}/{} points within max(3*CI, 0.01)",
        result.sim_controlled.len()
    );
    let mut agree_l = 0usize;
    for s in &result.sim_lcfs {
        let a = result
            .analytic_lcfs
            .iter()
            .find(|c| (c.k - s.k).abs() < 1e-9)
            .expect("sim K on analytic grid");
        if (a.loss - s.loss).abs() <= (4.0 * s.ci95).max(0.02) {
            agree_l += 1;
        }
    }
    println!(
        "  [check] analytic-vs-sim agreement (lcfs): {agree_l}/{} points within max(4*CI, 0.02)",
        result.sim_lcfs.len()
    );
    let mut wins_f = 0usize;
    let mut wins_l = 0usize;
    for (s, (f, l)) in result
        .sim_controlled
        .iter()
        .zip(result.sim_fcfs.iter().zip(&result.sim_lcfs))
    {
        if s.loss <= f.loss + 0.005 {
            wins_f += 1;
        }
        if s.loss <= l.loss + 0.005 {
            wins_l += 1;
        }
    }
    println!(
        "  [check] controlled <= FCFS at {wins_f}/{} simulated K, <= LCFS at {wins_l}/{}",
        result.sim_fcfs.len(),
        result.sim_lcfs.len()
    );
    println!("  [data]  {}", path.display());
    println!();
}

/// Runs the single tiny sample cell behind `--obs-cell`: panel
/// `rho50_m25`, controlled protocol, `K = 100`, scaled down far enough
/// that its full event stream is a readable, committable artifact. The
/// cell is fully deterministic (fixed seed, no wall-clock values), so the
/// outputs can be diff-checked in CI.
fn run_obs_cell(obs: &ObsConfig) -> i32 {
    if obs.trace_events.is_none() || obs.metrics.is_none() {
        diag::error(
            "fig7",
            "--obs-cell needs both --trace-events PATH and --metrics PATH",
        );
        return diag::EXIT_USAGE;
    }
    let panel = PANELS[4]; // rho' = 0.75, M = 25: busy enough to collide
    let (kind, salt) = KINDS[0]; // controlled
    let k = 100.0;
    let seed = 42 ^ salt ^ (k as u64);
    let settings = SimSettings {
        ticks_per_tau: 8,
        messages: 12,
        warmup: 2,
        stations: 20,
        guard: false,
    };
    let id = panel.id();
    let label = format!("{id} {} K={k}", kind.label());
    let seed_str = format!("{seed}");
    let labels = [
        ("panel", id.as_str()),
        ("policy", kind.label()),
        ("k", "100"),
        ("seed", seed_str.as_str()),
    ];
    let (p, art) = observed_cell(
        obs.capture(),
        0,
        &label,
        &labels,
        panel,
        kind,
        k,
        settings,
        seed,
        FaultPlan::none(),
        ChurnPlan::none(),
    );
    if let Err(e) = write_observability(obs, &[art], SweepMeta { cells: 1 }) {
        diag::error("fig7", &e);
        return diag::EXIT_FAILURE;
    }
    println!(
        "obs-cell: {label} (seed {seed}) loss={:.6} offered={} -> {} + {}",
        p.point.loss,
        p.point.offered,
        obs.trace_events.as_ref().unwrap().display(),
        obs.metrics.as_ref().unwrap().display(),
    );
    0
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let (obs, args) = match ObsConfig::split_args(&raw) {
        Ok(v) => v,
        Err(e) => {
            diag::error("fig7", &e);
            std::process::exit(diag::EXIT_USAGE);
        }
    };
    let (sup, args) = match SupervisorOptions::split_args(&args) {
        Ok(v) => v,
        Err(e) => {
            diag::error("fig7", &e);
            std::process::exit(diag::EXIT_USAGE);
        }
    };
    if sup.is_some() && obs.wants_telemetry() {
        diag::error(
            "fig7",
            "supervision flags are incompatible with --trace-events/--spans/--metrics",
        );
        std::process::exit(diag::EXIT_USAGE);
    }
    if args.iter().any(|a| a == "--obs-cell") {
        std::process::exit(run_obs_cell(&obs));
    }
    let quick = args.iter().any(|a| a == "--quick");
    let jobs = tcw_experiments::jobs_from_args(&args);
    let panel_filter: Vec<&String> = args
        .iter()
        .filter(|a| !a.starts_with("--") && a.parse::<u64>().is_err())
        .collect();
    let settings = if quick {
        SimSettings {
            messages: 5_000,
            warmup: 500,
            ..Default::default()
        }
    } else {
        SimSettings::default()
    };
    let out_dir = PathBuf::from("results");

    println!(
        "Reproducing Figure 7 ({} messages per simulated point; seed base 42)\n",
        settings.messages
    );
    let panels: Vec<Panel> = PANELS
        .into_iter()
        .filter(|panel| panel_filter.is_empty() || panel_filter.iter().any(|f| **f == panel.id()))
        .collect();
    let (results, artifacts) = run_panels(&panels, settings, 42, jobs, &obs, sup.as_ref());
    for result in &results {
        emit(result, &out_dir);
    }
    if let Err(e) = write_observability(
        &obs,
        &artifacts,
        SweepMeta {
            cells: artifacts.len(),
        },
    ) {
        diag::error("fig7", &e);
        std::process::exit(diag::EXIT_FAILURE);
    }
}
