//! Light-load sweep with the event-horizon fast path engaged.
//!
//! Sweeps rho' in {0.02, 0.05, 0.10} over the three deterministic
//! window orders at M = 25, K = 100 tau — the regime where almost every
//! probe slot is empty and the engine's idle-slot jump-ahead carries
//! the run. Next to the protocol measurements, each row records the
//! fast path's own activation counters (`jumps`, `slots_skipped`,
//! `batched_runs`, `batched_slots`).
//!
//! The sweep is fully deterministic (fixed seed, no wall-clock values),
//! so `results/light.csv` and `results/light.txt` are committed
//! artifacts CI regenerates under `git diff --exit-code`: a changed
//! metric bit means the fast path is no longer bit-identical to slot
//! stepping, and a zeroed `jumps` column means it silently stopped
//! engaging in exactly the regime it exists for (the binary also fails
//! outright on that). RANDOM order is excluded by design — its window
//! draws consume RNG per slot, so the fast path correctly refuses to
//! jump there.

use std::fmt::Write as _;
use std::path::Path;
use tcw_experiments::plot::write_csv;
use tcw_experiments::runner::{simulate_with_horizon, PolicyKind, SimSettings};
use tcw_experiments::Panel;

const LOADS: [f64; 3] = [0.02, 0.05, 0.10];
const KINDS: [PolicyKind; 3] = [PolicyKind::Controlled, PolicyKind::Fcfs, PolicyKind::Lcfs];
const M: u64 = 25;
const K_TAU: f64 = 100.0;
const SEED: u64 = 1983;

fn settings() -> SimSettings {
    SimSettings {
        ticks_per_tau: 16,
        messages: 2_000,
        warmup: 200,
        ..Default::default()
    }
}

fn main() {
    let results = Path::new("results");
    std::fs::create_dir_all(results).expect("create results dir");

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut report = String::from(
        "Light-load sweep (event-horizon fast path on, M=25, K=100 tau)\n\
         Counters are telemetry only: every metric is bit-identical to the\n\
         slot-stepped engine (see crates/window/tests/horizon_equivalence.rs).\n\n",
    );
    for rho_prime in LOADS {
        for kind in KINDS {
            let panel = Panel { rho_prime, m: M };
            let (p, h) = simulate_with_horizon(panel, kind, K_TAU, settings(), SEED);
            assert!(
                h.jumps > 0,
                "fast path never engaged at rho'={rho_prime} {}",
                kind.label()
            );
            rows.push(vec![
                format!("{rho_prime}"),
                kind.label().to_string(),
                format!("{}", p.loss),
                format!("{}", p.sender_loss),
                format!("{}", p.utilization),
                format!("{}", p.offered),
                format!("{}", h.jumps),
                format!("{}", h.slots_skipped),
                format!("{}", h.batched_runs),
                format!("{}", h.batched_slots),
            ]);
            let line = format!(
                "rho'={rho_prime:.2} {:<10} loss={:.4} util={:.3} offered={} jumps={} skipped={} batched={}/{}",
                kind.label(),
                p.loss,
                p.utilization,
                p.offered,
                h.jumps,
                h.slots_skipped,
                h.batched_runs,
                h.batched_slots,
            );
            println!("{line}");
            let _ = writeln!(report, "{line}");
        }
    }

    write_csv(
        &results.join("light.csv"),
        &[
            "rho_prime",
            "policy",
            "loss",
            "sender_loss",
            "utilization",
            "offered",
            "jumps",
            "slots_skipped",
            "batched_runs",
            "batched_slots",
        ],
        &rows,
    )
    .expect("write csv");
    std::fs::write(results.join("light.txt"), &report).expect("write report");
    println!("\nwrote results/light.csv and results/light.txt");
}
