//! Reproduces the waiting-time distribution machinery of §4.1 (eq. 4.4):
//! the truncated workload solution
//!
//! ```text
//! F(w) = P(0) * sum_i rho^i * beta^(i)(w),     0 <= w <= K,
//! ```
//!
//! is the distribution of unfinished work found by an arriving message —
//! i.e. the FCFS waiting time of *accepted* messages once conditioned on
//! acceptance (`F(w)/F(K)`). The binary compares that analytic CDF against
//! the protocol simulation's empirical waiting-time histogram (paper
//! definition of waiting time), reporting the sup distance.
//!
//! Output: `results/wait_dist.csv` + an ASCII overlay. The shared
//! observability flags are accepted: `--trace-events PATH` (NDJSON event
//! stream for the single simulated cell), `--metrics PATH[.prom]` and
//! `--progress`. A sup distance above 0.05 is a gate failure (exit 2).

use std::path::PathBuf;
use tcw_experiments::plot::{ascii_plot, write_csv, Series};
use tcw_experiments::sweep::{jobs_from_args, run_parallel_with_progress};
use tcw_experiments::{diag, observe_engine_cell, write_observability, ObsConfig, SweepMeta};
use tcw_mac::ChannelConfig;
use tcw_numerics::grid::renewal_series;
use tcw_queueing::marching::{controlled_curve, PanelConfig};
use tcw_queueing::service::{service_dist, SchedulingShape};
use tcw_sim::time::{Dur, Time};
use tcw_window::analysis::optimal_mu;
use tcw_window::engine::poisson_engine;
use tcw_window::metrics::MeasureConfig;
use tcw_window::policy::ControlPolicy;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let (obs, args) = match ObsConfig::split_args(&raw) {
        Ok(v) => v,
        Err(e) => {
            diag::error("wait_dist", &e);
            std::process::exit(diag::EXIT_USAGE);
        }
    };
    let jobs = jobs_from_args(&args);
    let (rho_prime, m, k_tau) = (0.75f64, 25u64, 200.0f64);
    let lambda = rho_prime / m as f64;
    println!("waiting-time distribution at rho' = {rho_prime}, M = {m}, K = {k_tau} tau\n");

    // --- analytic: truncated workload CDF (eq. 4.4) ---------------------
    // Use the marching's converged service distribution at this K.
    let cfg = PanelConfig {
        m,
        rho_prime,
        shape: SchedulingShape::Geometric,
    };
    let point = controlled_curve(cfg, &[k_tau])[0];
    let mu_eff = lambda * (1.0 - point.loss) * (optimal_mu() / lambda);
    let service = service_dist(SchedulingShape::Geometric, mu_eff, m);
    let rho = lambda * service.mean();
    let beta = service.residual();
    let series = renewal_series(&beta, rho, k_tau as usize + 2);
    let z_k = series.partial_sum(k_tau);
    // F(w)/F(K): conditional-on-acceptance waiting CDF.
    let analytic_cdf = |w: f64| series.partial_sum(w) / z_k;

    // --- simulated -------------------------------------------------------
    // One cell on the sweep executor: this figure needs a single long
    // run, so the executor is used for interface uniformity with the
    // sweep binaries (`--jobs` is accepted, extra workers stay idle).
    let tpt = 64u64;
    let grid: Vec<f64> = (1..=40).map(|i| k_tau * i as f64 / 40.0).collect();
    let seeds = [77u64];
    let caps = obs.capture();
    let progress = obs
        .progress
        .then(|| tcw_obs::Progress::new(seeds.len(), jobs));
    let sim = run_parallel_with_progress(&seeds, jobs, progress.as_ref(), |i, &seed| {
        let label = format!("wait_dist seed={seed}");
        let seed_s = format!("{seed}");
        let labels = [("seed", seed_s.as_str())];
        observe_engine_cell(caps, i, &label, &labels, |observer, sink| {
            let channel = ChannelConfig {
                ticks_per_tau: tpt,
                message_slots: m,
                guard: false,
            };
            let k = Dur::from_ticks((k_tau * tpt as f64) as u64);
            let w_star = Dur::from_ticks((optimal_mu() / lambda * tpt as f64) as u64);
            let measure = MeasureConfig {
                start: Time::from_ticks(500_000),
                end: Time::from_ticks(120_000_000),
                deadline: k,
            };
            let mut eng = poisson_engine(
                channel,
                ControlPolicy::controlled(k, w_star),
                measure,
                rho_prime,
                50,
                seed,
            );
            eng.run_until(Time::from_ticks(130_000_000), observer);
            eng.drain(observer);
            if let Some(sink) = sink {
                eng.metrics.emit(sink);
                eng.channel_stats.emit(sink);
            }
            let hist = eng.metrics.paper_delay_histogram();
            let cdf: Vec<f64> = grid.iter().map(|&w| hist.cdf(w * tpt as f64)).collect();
            (cdf, eng.metrics.offered())
        })
    });
    if let Some(p) = &progress {
        p.finish();
    }
    let (sim, cell_artifacts): (Vec<_>, Vec<_>) = sim.into_iter().unzip();
    let (sim_cdf, offered) = &sim[0];

    // --- compare ----------------------------------------------------------
    let mut rows = Vec::new();
    let mut sup = 0.0f64;
    let mut ana_pts = Vec::new();
    let mut sim_pts = Vec::new();
    for (i, &w) in grid.iter().enumerate() {
        let a = analytic_cdf(w);
        let s = sim_cdf[i];
        sup = sup.max((a - s).abs());
        rows.push(vec![
            format!("{w:.1}"),
            format!("{a:.6}"),
            format!("{s:.6}"),
        ]);
        ana_pts.push((w, a));
        sim_pts.push((w, s));
    }
    let path = PathBuf::from("results/wait_dist.csv");
    write_csv(&path, &["w_tau", "analytic_cdf", "sim_cdf"], &rows).expect("csv");

    let plot = ascii_plot(
        "accepted-message waiting-time CDF: a = analytic (eq. 4.4), s = simulated",
        &[
            Series {
                label: "analytic F(w)/F(K)".into(),
                glyph: 'a',
                points: ana_pts,
            },
            Series {
                label: "simulated (protocol)".into(),
                glyph: 's',
                points: sim_pts,
            },
        ],
        72,
        16,
        0.0,
        1.0,
    );
    println!("{plot}");
    println!("messages simulated : {offered}");
    println!("sup |analytic - simulated| over the CDF grid = {sup:.4}");
    println!("data: {}", path.display());
    if let Err(e) = write_observability(
        &obs,
        &cell_artifacts,
        SweepMeta {
            cells: cell_artifacts.len(),
        },
    ) {
        diag::error("wait_dist", &e);
        std::process::exit(diag::EXIT_FAILURE);
    }
    if sup > 0.05 {
        diag::error(
            "wait_dist",
            &format!("distributions deviate by more than 0.05 (sup = {sup:.4})"),
        );
        std::process::exit(diag::EXIT_FAILURE);
    }
}
