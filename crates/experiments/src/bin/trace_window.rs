//! Reproduces the operational walk-throughs of the paper:
//!
//! * **Figure 1** — the windowing process: an empty initial window, a new
//!   window with a collision, a split with another collision, and the
//!   final split isolating station 3's message;
//! * **Figure 4** — the controlled protocol maintaining `t_past`;
//! * **Figure 2** — a station's fragmented view of the time axis under a
//!   non-FCFS discipline (LCFS leaves examined gaps).

use tcw_mac::{ChannelConfig, TraceArrivals};
use tcw_sim::time::{Dur, Time};
use tcw_window::engine::{Engine, EngineConfig};
use tcw_window::metrics::MeasureConfig;
use tcw_window::policy::ControlPolicy;
use tcw_window::trace::TraceRecorder;

fn channel() -> ChannelConfig {
    ChannelConfig {
        ticks_per_tau: 8,
        message_slots: 4,
        guard: false,
    }
}

fn measure() -> MeasureConfig {
    MeasureConfig {
        start: Time::ZERO,
        end: Time::from_ticks(1 << 40),
        deadline: Dur::from_ticks(8 * 40),
    }
}

fn main() {
    println!("== Figure 1: operation of the time window protocol ==\n");
    println!("Four stations; station 1 and 2 and 3 hold messages whose arrival");
    println!("times fall inside the second initial window; splitting isolates");
    println!("them one at a time (all times in ticks; tau = 8 ticks).\n");
    {
        // First window [0,32) is empty (fig 1a); the next window catches
        // three clustered arrivals (fig 1b); splitting resolves (fig 1c/1d).
        let arrivals = TraceArrivals::from_ticks(&[(34, 1), (45, 2), (52, 3)]);
        let mut eng = Engine::new(
            EngineConfig {
                channel: channel(),
                policy: ControlPolicy::fcfs(Dur::from_ticks(32)),
                measure: measure(),
                seed: 1,
            },
            arrivals,
        );
        let mut rec = TraceRecorder::new(64);
        eng.run_until(Time::from_ticks(300), &mut rec);
        eng.drain(&mut rec);
        println!("{}\n", rec.text());
    }

    println!("== Figure 4: the controlled window protocol and t_past ==\n");
    println!("Same arrivals, deadline K = 40 tau; the window always begins at");
    println!("t_past, the oldest instant that may hold untransmitted messages,");
    println!("and everything older than K is discarded.\n");
    {
        let arrivals = TraceArrivals::from_ticks(&[(34, 1), (45, 2), (52, 3), (200, 0)]);
        let mut eng = Engine::new(
            EngineConfig {
                channel: channel(),
                policy: ControlPolicy::controlled(Dur::from_ticks(8 * 40), Dur::from_ticks(32)),
                measure: measure(),
                seed: 2,
            },
            arrivals,
        );
        let mut rec = TraceRecorder::new(64);
        eng.run_until(Time::from_ticks(400), &mut rec);
        eng.drain(&mut rec);
        println!("{}\n", rec.text());
    }

    println!("== Figure 2: a station's view of the time axis (LCFS) ==\n");
    println!("Under LCFS the examined intervals fragment the past; the");
    println!("unexamined gaps below may still contain untransmitted messages.\n");
    {
        let arrivals = TraceArrivals::from_ticks(&[(5, 0), (100, 1), (130, 2), (220, 3)]);
        let mut eng = Engine::new(
            EngineConfig {
                channel: channel(),
                policy: ControlPolicy::lcfs(Dur::from_ticks(24)),
                measure: measure(),
                seed: 3,
            },
            arrivals,
        );
        let mut rec = TraceRecorder::new(40);
        eng.run_until(Time::from_ticks(260), &mut rec);
        println!("{}", rec.text());
        let gaps = eng.timeline().unexamined();
        println!("\nunexamined gaps at t={}:", eng.now());
        for g in &gaps {
            println!("  {g}");
        }
        println!(
            "(fragmented into {} gaps; the controlled protocol always has exactly one)",
            gaps.len()
        );
    }
}
