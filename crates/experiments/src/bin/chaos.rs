//! Chaos harness: composed stress sweeps under the invariant monitor.
//!
//! Samples thousands of seeded configs composing fault injection,
//! membership churn, piecewise/adversarial load and all three window
//! controllers, runs each under the `tcw-window` runtime invariant
//! monitor (with the mirror divergence detector as a differential check
//! where it is sound), and delta-debugs any failure down to a minimal
//! version-stamped replay artifact. Results land in `results/chaos.csv`
//! and `results/chaos.txt`; failure artifacts under `results/failures/`.
//!
//! ```text
//! chaos [--configs N] [--jobs N] [--trace-events P] [--metrics P] [--progress]
//! chaos --replay PATH             # must reproduce the recorded outcome
//! chaos --inject MUTATION [PATH]  # seed a violation, shrink it, verify replay
//! ```
//!
//! Crash-safe supervision (`--resume PATH`, `--cell-timeout SECS`,
//! `--retries N`) journals completed cells and quarantines hopeless ones
//! instead of aborting the sweep; `--inject-panic CELL` /
//! `--inject-slow CELL` exist to exercise exactly that machinery from CI.
//!
//! `MUTATION` is one of `drop_delivery`, `reorder_pair`, `stale_clock`.
//! Exit codes follow the shared convention: `0` clean, `1` usage,
//! `2` failure (violation found, replay diverged, artifact stale,
//! quarantined cells).

use std::path::Path;
use tcw_experiments::chaos::{
    execute, inject_config, replay, run_observed, shrink, ChaosConfig, ChaosOutcome, ChaosRecord,
    Mutation, BASE_SEED, DEFAULT_CONFIGS,
};
use tcw_experiments::diag;
use tcw_experiments::plot::write_csv;
use tcw_experiments::supervise::{supervised_cells, SupervisorOptions};
use tcw_experiments::sweep::{jobs_from_args, run_parallel_with_progress};
use tcw_experiments::{
    observe_engine_cell, write_observability, CellArtifacts, ObsConfig, SweepMeta,
};

fn shrink_report(orig: &ChaosConfig, out: &ChaosOutcome) -> (ChaosRecord, String) {
    let mut log = String::new();
    log.push_str(&format!(
        "shrinking [{}/{}] seed={} ({} trials max)\n",
        out.kind,
        out.class,
        orig.seed,
        tcw_experiments::chaos::SHRINK_BUDGET
    ));
    let res = shrink(orig, &out.kind, &out.class);
    for step in &res.steps {
        log.push_str(&format!(
            "  {} {}\n",
            if step.kept { "KEEP" } else { "drop" },
            step.action
        ));
    }
    let min_out = execute(&res.config);
    log.push_str(&format!(
        "  fixpoint after {} trials: horizon={} stations={} segments={} controller={} -> [{}/{}] {}\n",
        res.trials,
        res.config.horizon_ticks,
        res.config.stations,
        res.config.segments.len(),
        res.config.controller.label(),
        min_out.kind,
        min_out.class,
        min_out.detail,
    ));
    let rec = ChaosRecord {
        config: res.config,
        kind: min_out.kind,
        class: min_out.class,
        detail: min_out.detail,
    };
    (rec, log)
}

fn inject_mode(args: &[String]) -> i32 {
    let Some(mutation) = args.first().and_then(|s| Mutation::parse(s)) else {
        diag::error(
            "chaos",
            "--inject needs a mutation: drop_delivery | reorder_pair | stale_clock",
        );
        return diag::EXIT_USAGE;
    };
    let Some(expected) = mutation.expected_class() else {
        diag::error(
            "chaos",
            "--inject none is a no-op; pick a corrupting mutation",
        );
        return diag::EXIT_USAGE;
    };
    let default_path = format!("results/failures/chaos_injected_{}.json", mutation.label());
    let path = args.get(1).cloned().unwrap_or(default_path);
    let cfg = inject_config(mutation);
    println!(
        "injecting {} into a clean static-controller run (seed {})",
        mutation.label(),
        cfg.seed
    );
    let out = execute(&cfg);
    if out.kind != "violation" || out.class != expected {
        diag::error(
            "chaos",
            &format!(
                "seeded mutation was NOT caught: expected violation/{expected}, got [{}/{}] {}",
                out.kind, out.class, out.detail
            ),
        );
        return diag::EXIT_FAILURE;
    }
    println!(
        "monitor caught it: [{}/{}] {}",
        out.kind, out.class, out.detail
    );
    let (rec, log) = shrink_report(&cfg, &out);
    print!("{log}");
    if rec.kind != "violation" || rec.class != expected {
        diag::error(
            "chaos",
            "shrunk config no longer reproduces the violation class",
        );
        return diag::EXIT_FAILURE;
    }
    let path = Path::new(&path);
    if let Err(e) = rec.save(path) {
        diag::error("chaos", &format!("cannot write {}: {e}", path.display()));
        return diag::EXIT_FAILURE;
    }
    println!("minimal artifact written to {}", path.display());
    // Verify the artifact replays before handing it to CI: a faithful
    // reproduction of a violation exits EXIT_FAILURE by convention.
    let code = replay(path);
    if code != diag::EXIT_FAILURE {
        diag::error(
            "chaos",
            &format!("replay of the minimal artifact exited {code}, want EXIT_FAILURE"),
        );
        return diag::EXIT_FAILURE;
    }
    println!("replay verified (exit {code} on reproduced violation, as specified)");
    0
}

/// Parses `NAME CELL` out of `args`, removing both tokens.
fn take_cell_flag(args: &mut Vec<String>, name: &str) -> Option<usize> {
    let i = args.iter().position(|a| a == name)?;
    let Some(v) = args.get(i + 1) else {
        diag::error("chaos", &format!("{name} needs a cell index"));
        std::process::exit(diag::EXIT_USAGE);
    };
    let cell = v.parse::<usize>().unwrap_or_else(|_| {
        diag::error("chaos", &format!("bad {name} value {v:?}"));
        std::process::exit(diag::EXIT_USAGE);
    });
    args.drain(i..=i + 1);
    Some(cell)
}

/// Runs the sweep under the crash-safe supervisor: journaled cells are
/// skipped, failures retried then quarantined. Exits with
/// [`diag::EXIT_FAILURE`] (outputs unwritten, journal intact) when any
/// cell is quarantined, so a later `--resume` run can finish the sweep
/// byte-identically.
fn supervised_outcomes(
    configs: usize,
    jobs: usize,
    sup: &SupervisorOptions,
    show_progress: bool,
    inject_panic: Option<usize>,
    inject_slow: Option<usize>,
) -> Vec<(ChaosConfig, ChaosOutcome, CellArtifacts)> {
    // The fingerprint covers everything that defines the cell grid; the
    // inject flags are deliberately excluded so a clean resume can reuse
    // the journal of an injected (crashed) run.
    let fingerprint = tcw_sim::snap::checksum(&[BASE_SEED, configs as u64]);
    supervised_cells(
        "chaos",
        "chaos",
        configs,
        jobs,
        sup,
        show_progress,
        fingerprint,
        |cell| format!("seed {}", ChaosConfig::sample(BASE_SEED, cell as u64).seed),
        move |i| {
            if inject_panic == Some(i) {
                panic!("injected panic in cell {i}");
            }
            if inject_slow == Some(i) {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
            execute(&ChaosConfig::sample(BASE_SEED, i as u64))
        },
    )
    .into_iter()
    .enumerate()
    .map(|(i, out)| {
        (
            ChaosConfig::sample(BASE_SEED, i as u64),
            out,
            CellArtifacts::default(),
        )
    })
    .collect()
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let (obs, args) = match ObsConfig::split_args(&raw) {
        Ok(v) => v,
        Err(e) => {
            diag::error("chaos", &e);
            std::process::exit(diag::EXIT_USAGE);
        }
    };
    let (sup, mut args) = match SupervisorOptions::split_args(&args) {
        Ok(v) => v,
        Err(e) => {
            diag::error("chaos", &e);
            std::process::exit(diag::EXIT_USAGE);
        }
    };
    if sup.is_some() && obs.wants_telemetry() {
        diag::error(
            "chaos",
            "supervision flags are incompatible with --trace-events/--spans/--metrics",
        );
        std::process::exit(diag::EXIT_USAGE);
    }
    let inject_panic = take_cell_flag(&mut args, "--inject-panic");
    let inject_slow = take_cell_flag(&mut args, "--inject-slow");
    if (inject_panic.is_some() || inject_slow.is_some()) && sup.is_none() {
        diag::error(
            "chaos",
            "--inject-panic/--inject-slow need a supervision flag (--resume/--cell-timeout/--retries)",
        );
        std::process::exit(diag::EXIT_USAGE);
    }
    if args.first().is_some_and(|a| a == "--replay") {
        let Some(path) = args.get(1) else {
            diag::error("chaos", "--replay needs an artifact path");
            std::process::exit(diag::EXIT_USAGE);
        };
        std::process::exit(replay(Path::new(path)));
    }
    if args.first().is_some_and(|a| a == "--inject") {
        std::process::exit(inject_mode(&args[1..]));
    }
    let jobs = jobs_from_args(&args);
    let configs = args
        .iter()
        .position(|a| a == "--configs")
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.parse::<usize>().unwrap_or_else(|_| {
                diag::error("chaos", &format!("bad --configs value {v:?}"));
                std::process::exit(diag::EXIT_USAGE);
            })
        })
        .unwrap_or(DEFAULT_CONFIGS);

    let results = Path::new("results");
    let failures_dir = results.join("failures");
    println!(
        "chaos sweep: {configs} composed configs (faults x churn x load x controllers), \
         invariant monitor on, base seed {BASE_SEED:#x}\n"
    );

    let outcomes: Vec<(ChaosConfig, ChaosOutcome, CellArtifacts)> = if let Some(sup) = &sup {
        supervised_outcomes(configs, jobs, sup, obs.progress, inject_panic, inject_slow)
    } else {
        let cells: Vec<u64> = (0..configs as u64).collect();
        let caps = obs.capture();
        let progress = obs
            .progress
            .then(|| tcw_obs::Progress::new(cells.len(), jobs));
        let outcomes = run_parallel_with_progress(&cells, jobs, progress.as_ref(), |i, &index| {
            let cfg = ChaosConfig::sample(BASE_SEED, index);
            let label = format!("config {index} ({})", cfg.controller.label());
            let idx_s = format!("{index}");
            let labels = [
                ("config", idx_s.as_str()),
                ("controller", cfg.controller.label()),
            ];
            if caps.any() {
                let (out, art) = observe_engine_cell(caps, i, &label, &labels, {
                    let cfg = cfg.clone();
                    move |obs, sink| run_observed(&cfg, obs, sink)
                });
                (cfg, out, art)
            } else {
                let out = execute(&cfg);
                (cfg, out, CellArtifacts::default())
            }
        });
        if let Some(p) = &progress {
            p.finish();
        }
        outcomes
    };

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut report = String::new();
    let mut failures: Vec<(u64, ChaosConfig, ChaosOutcome)> = Vec::new();
    let mut kind_counts = [0u64; 4];
    for (i, (cfg, out, _art)) in outcomes.iter().enumerate() {
        let index = i as u64;
        let kind_idx = match out.kind.as_str() {
            "ok" => 0,
            "violation" => 1,
            "divergence" => 2,
            _ => 3,
        };
        kind_counts[kind_idx] += 1;
        rows.push(vec![
            format!("{index}"),
            format!("{}", cfg.seed),
            cfg.controller.label().to_string(),
            format!("{}", cfg.stations),
            format!("{}", cfg.horizon_ticks),
            format!("{}", u8::from(!cfg.plan.is_none())),
            format!("{}", u8::from(cfg.churn != tcw_mac::ChurnPlan::none())),
            format!("{}", cfg.segments.len()),
            format!("{}", u8::from(cfg.adv_burst > 0)),
            out.kind.clone(),
            out.class.clone(),
            format!("{}", out.checks),
            format!("{}", out.violations),
            format!("{}", out.divergences),
            format!("{}", out.offered),
            format!("{}", out.deliveries),
            format!("{}", out.loss),
        ]);
        if out.kind != "ok" {
            failures.push((index, cfg.clone(), out.clone()));
        }
    }

    let summary = format!(
        "configs={} ok={} violations={} divergences={} panics={}\n",
        configs, kind_counts[0], kind_counts[1], kind_counts[2], kind_counts[3]
    );
    println!("{summary}");
    report.push_str(&summary);
    let total_checks: u64 = outcomes.iter().map(|(_, o, _)| o.checks).sum();
    let total_deliveries: u64 = outcomes.iter().map(|(_, o, _)| o.deliveries).sum();
    let detail = format!(
        "monitor checks={total_checks} deliveries={total_deliveries} (base seed {BASE_SEED:#x})\n"
    );
    print!("{detail}");
    report.push_str(&detail);

    // Shrink failures serially in index order so artifacts and the
    // report are deterministic regardless of --jobs.
    for (index, cfg, out) in &failures {
        let (rec, log) = shrink_report(cfg, out);
        print!("{log}");
        report.push_str(&log);
        let path = failures_dir.join(format!("chaos_{index}_{}.json", out.kind));
        rec.save(&path).expect("write replay artifact");
        let line = format!(
            "  artifact: {}\n  reproduce: cargo run --release -p tcw-experiments --bin chaos -- --replay {}\n",
            path.display(),
            path.display()
        );
        print!("{line}");
        report.push_str(&line);
    }

    write_csv(
        &results.join("chaos.csv"),
        &[
            "config",
            "seed",
            "controller",
            "stations",
            "horizon_ticks",
            "faults",
            "churn",
            "segments",
            "adversary",
            "kind",
            "class",
            "checks",
            "violations",
            "divergences",
            "offered",
            "deliveries",
            "loss",
        ],
        &rows,
    )
    .expect("write csv");
    std::fs::write(results.join("chaos.txt"), &report).expect("write report");
    let cell_artifacts: Vec<CellArtifacts> = outcomes.into_iter().map(|(_, _, art)| art).collect();
    if let Err(e) = write_observability(
        &obs,
        &cell_artifacts,
        SweepMeta {
            cells: cell_artifacts.len(),
        },
    ) {
        diag::error("chaos", &e);
        std::process::exit(diag::EXIT_FAILURE);
    }
    println!("wrote results/chaos.csv and results/chaos.txt");
    if !failures.is_empty() {
        diag::error(
            "chaos",
            &format!("{} config(s) failed invariants", failures.len()),
        );
        std::process::exit(diag::EXIT_FAILURE);
    }
}
