//! Adaptive window control under non-stationary and adversarial load.
//!
//! Sweeps four workloads (10x load step, flash crowds, packetized
//! voice, bounded-burst adversarial injection) against four
//! element-(2) choices (stale static tuning, per-segment oracle, AIMD,
//! online rate estimator), reporting deadline loss and regret vs the
//! oracle per cell. Results land in `results/adaptive.csv` and
//! `results/adaptive.txt`.
//!
//! Every cell runs under a panic guard; a panic writes a replay
//! artifact under `results/failures/`. Modes:
//!
//! ```text
//! adaptive [--jobs N] [--trace-events P] [--metrics P] [--progress]
//! adaptive --episode                      # AIMD/estimator load-step walk-through
//! adaptive --record SCENARIO CONTROLLER REPLICATE PATH
//! adaptive --replay PATH                  # must reproduce the recorded outcome
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use tcw_experiments::adaptive::{
    episode, execute, replay, run_cell, AdaptiveRecord, CellOutcome, ControllerKind, Scenario,
    BASE_SEED, REPLICATES,
};
use tcw_experiments::diag;
use tcw_experiments::plot::{ascii_plot, write_csv, Series};
use tcw_experiments::replay::panic_message;
use tcw_experiments::supervise::{supervised_cells, SupervisorOptions};
use tcw_experiments::sweep::{jobs_from_args, run_parallel_with_progress};
use tcw_experiments::{
    observe_engine_cell, write_observability, Capture, CellArtifacts, ObsConfig, SweepMeta,
};
use tcw_sim::rng::stream_seed;

/// Load-step instants at which `--episode` samples the commanded window
/// (the step itself is at 150_000).
const EPISODE_CHECKPOINTS: [u64; 11] = [
    0, 50_000, 100_000, 149_999, 152_000, 155_000, 160_000, 170_000, 200_000, 250_000, 290_000,
];

fn episode_mode() -> i32 {
    println!(
        "load-step episode: rate 0.003 -> 0.03 msgs/tick at t=150000, stale window {} ticks\n",
        Scenario::Step.stale_window()
    );
    for kind in [ControllerKind::Aimd, ControllerKind::Estimator] {
        let (samples, shrinks, grows) = episode(kind, &EPISODE_CHECKPOINTS);
        println!("{} commanded window (ticks) by instant:", kind.label());
        println!("  {:>8}  {:>8}", "tick", "window");
        for s in &samples {
            println!("  {:>8}  {:>8}", s.tick, s.window);
        }
        println!("  shrinks={shrinks} grows={grows}\n");
    }
    0
}

fn record_mode(args: &[String]) -> i32 {
    let [scenario, controller, replicate, path] = &args[..4] else {
        unreachable!("caller checked arity");
    };
    let Some(scenario) = Scenario::parse(scenario) else {
        diag::error("adaptive", &format!("unknown scenario {scenario:?}"));
        return diag::EXIT_USAGE;
    };
    let Some(controller) = ControllerKind::parse(controller) else {
        diag::error("adaptive", &format!("unknown controller {controller:?}"));
        return diag::EXIT_USAGE;
    };
    let Ok(replicate) = replicate.parse::<u64>() else {
        diag::error("adaptive", &format!("bad replicate index {replicate:?}"));
        return diag::EXIT_USAGE;
    };
    let mut rec = AdaptiveRecord {
        scenario,
        controller,
        replicate,
        kind: String::new(),
        detail: String::new(),
    };
    let (kind, detail) = execute(&rec);
    rec.kind = kind;
    rec.detail = detail;
    if let Err(e) = rec.save(Path::new(path)) {
        diag::error("adaptive", &format!("cannot write {path}: {e}"));
        return diag::EXIT_FAILURE;
    }
    println!("recorded [{}] {} -> {}", rec.kind, rec.detail, path);
    0
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let (obs, args) = match ObsConfig::split_args(&raw) {
        Ok(v) => v,
        Err(e) => {
            diag::error("adaptive", &e);
            std::process::exit(diag::EXIT_USAGE);
        }
    };
    let (sup, args) = match SupervisorOptions::split_args(&args) {
        Ok(v) => v,
        Err(e) => {
            diag::error("adaptive", &e);
            std::process::exit(diag::EXIT_USAGE);
        }
    };
    if sup.is_some() && obs.wants_telemetry() {
        diag::error(
            "adaptive",
            "supervision flags are incompatible with --trace-events/--spans/--metrics",
        );
        std::process::exit(diag::EXIT_USAGE);
    }
    if args.first().is_some_and(|a| a == "--replay") {
        let Some(path) = args.get(1) else {
            diag::error("adaptive", "--replay needs an artifact path");
            std::process::exit(diag::EXIT_USAGE);
        };
        std::process::exit(replay(Path::new(path)));
    }
    if args.first().is_some_and(|a| a == "--record") {
        if args.len() < 5 {
            diag::error(
                "adaptive",
                "--record needs SCENARIO CONTROLLER REPLICATE PATH",
            );
            std::process::exit(diag::EXIT_USAGE);
        }
        std::process::exit(record_mode(&args[1..]));
    }
    if args.first().is_some_and(|a| a == "--episode") {
        std::process::exit(episode_mode());
    }
    let jobs = jobs_from_args(&args);

    let results = Path::new("results");
    let failures_dir = results.join("failures");
    let mut report = String::new();
    let mut rows: Vec<Vec<String>> = Vec::new();

    println!(
        "adaptive window sweep: {} scenarios x {} controllers x {} replicates, K={} ticks\n",
        Scenario::ALL.len(),
        ControllerKind::ALL.len(),
        REPLICATES,
        tcw_experiments::adaptive::K_TICKS,
    );

    let cells: Vec<(Scenario, ControllerKind, u64)> = Scenario::ALL
        .iter()
        .flat_map(|&s| {
            ControllerKind::ALL
                .iter()
                .flat_map(move |&c| (0..REPLICATES).map(move |r| (s, c, r)))
        })
        .collect();
    let (outcomes, cell_artifacts): (Vec<Result<CellOutcome, String>>, Vec<CellArtifacts>) =
        if let Some(sup) = &sup {
            // Base seed, replicate count, deadline and grid size define the
            // cells; any change invalidates a resume journal.
            let fingerprint = tcw_sim::snap::checksum(&[
                BASE_SEED,
                REPLICATES,
                tcw_experiments::adaptive::K_TICKS,
                cells.len() as u64,
            ]);
            let sup_cells = cells.clone();
            let points = supervised_cells(
                "adaptive",
                "adaptive",
                cells.len(),
                jobs,
                sup,
                obs.progress,
                fingerprint,
                |cell| {
                    let (s, c, r) = cells[cell];
                    format!(
                        "{} {} rep{r} seed {}",
                        s.label(),
                        c.label(),
                        stream_seed(BASE_SEED, r)
                    )
                },
                move |i| {
                    let (s, c, r) = sup_cells[i];
                    observe_engine_cell(Capture::OFF, i, "", &[], |obs, sink| {
                        run_cell(s, c, r, obs, sink)
                    })
                    .0
                },
            );
            let n = points.len();
            (
                points.into_iter().map(Ok).collect(),
                (0..n).map(|_| CellArtifacts::default()).collect(),
            )
        } else {
            let caps = obs.capture();
            let progress = obs
                .progress
                .then(|| tcw_obs::Progress::new(cells.len(), jobs));
            let outcomes: Vec<(Result<CellOutcome, String>, CellArtifacts)> =
                run_parallel_with_progress(&cells, jobs, progress.as_ref(), |i, &(s, c, r)| {
                    let label = format!("{} {} rep{r}", s.label(), c.label());
                    let s_l = s.label();
                    let c_l = c.label();
                    let r_s = format!("{r}");
                    let labels = [
                        ("scenario", s_l),
                        ("controller", c_l),
                        ("replicate", r_s.as_str()),
                    ];
                    catch_unwind(AssertUnwindSafe(|| {
                        observe_engine_cell(caps, i, &label, &labels, |obs, sink| {
                            run_cell(s, c, r, obs, sink)
                        })
                    }))
                    .map(|(out, art)| (Ok(out), art))
                    .unwrap_or_else(|e| (Err(panic_message(e)), CellArtifacts::default()))
                });
            if let Some(p) = &progress {
                p.finish();
            }
            outcomes.into_iter().unzip()
        };

    // Surface panics in deterministic cell order, writing the replay
    // artifact for the first one.
    let mut resolved: Vec<CellOutcome> = Vec::with_capacity(cells.len());
    for (&(s, c, r), outcome) in cells.iter().zip(outcomes) {
        match outcome {
            Ok(out) => resolved.push(out),
            Err(message) => {
                let rec = AdaptiveRecord {
                    scenario: s,
                    controller: c,
                    replicate: r,
                    kind: "panic".to_string(),
                    detail: message,
                };
                let path = failures_dir.join(format!(
                    "adaptive_panic_{}_{}_rep{r}.json",
                    s.label(),
                    c.label()
                ));
                rec.save(&path).expect("write replay artifact");
                diag::error(
                    "adaptive",
                    &format!(
                        "cell panicked; replay artifact written to {}\n  reproduce: cargo run --release -p tcw-experiments --bin adaptive -- --replay {}",
                        path.display(),
                        path.display()
                    ),
                );
                std::process::exit(diag::EXIT_FAILURE);
            }
        }
    }

    // Oracle loss per (scenario, replicate) — the regret baseline.
    let oracle_loss = |scenario: Scenario, replicate: u64| -> f64 {
        cells
            .iter()
            .zip(&resolved)
            .find(|(&(s, c, r), _)| s == scenario && c == ControllerKind::Oracle && r == replicate)
            .expect("oracle cell present")
            .1
            .loss
    };

    let glyphs = ['o', '+', 'x', '*'];
    let mut series: Vec<Series> = ControllerKind::ALL
        .iter()
        .enumerate()
        .map(|(i, c)| Series {
            label: c.label().to_string(),
            glyph: glyphs[i % glyphs.len()],
            points: Vec::new(),
        })
        .collect();

    for (si, &scenario) in Scenario::ALL.iter().enumerate() {
        println!(
            "{} (stale window {} ticks):",
            scenario.label(),
            scenario.stale_window()
        );
        for (ci, &kind) in ControllerKind::ALL.iter().enumerate() {
            let mut mean_loss = 0.0;
            for r in 0..REPLICATES {
                let idx = cells
                    .iter()
                    .position(|&cell| cell == (scenario, kind, r))
                    .expect("cell present");
                let out = resolved[idx];
                let oracle = oracle_loss(scenario, r);
                let regret = out.loss - oracle;
                mean_loss += out.loss / REPLICATES as f64;
                let line = format!(
                    "  {:<9} rep{r}: loss={:.4} oracle={:.4} regret={:+.4} offered={} window={} shrinks={} grows={}",
                    kind.label(),
                    out.loss,
                    oracle,
                    regret,
                    out.offered,
                    out.window_ticks,
                    out.shrinks,
                    out.grows,
                );
                println!("{line}");
                report.push_str(&line);
                report.push('\n');
                rows.push(vec![
                    scenario.label().to_string(),
                    kind.label().to_string(),
                    format!("{r}"),
                    format!("{}", stream_seed(BASE_SEED, r)),
                    format!("{}", out.offered),
                    format!("{}", out.loss),
                    format!("{oracle}"),
                    format!("{regret}"),
                    format!("{}", out.window_ticks),
                    format!("{}", out.shrinks),
                    format!("{}", out.grows),
                ]);
            }
            series[ci].points.push((si as f64, mean_loss));
        }
        println!();
    }

    let y_max = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.1))
        .fold(0.0f64, f64::max)
        .max(1e-3)
        * 1.2;
    let chart = ascii_plot(
        "deadline loss by scenario (0=step 1=flash 2=voice 3=adversarial)",
        &series,
        72,
        20,
        0.0,
        y_max,
    );
    println!("{chart}");
    report.push('\n');
    report.push_str(&chart);
    report.push('\n');

    write_csv(
        &results.join("adaptive.csv"),
        &[
            "scenario",
            "controller",
            "replicate",
            "seed",
            "offered",
            "loss",
            "oracle_loss",
            "regret",
            "window_ticks",
            "shrinks",
            "grows",
        ],
        &rows,
    )
    .expect("write csv");
    std::fs::write(results.join("adaptive.txt"), &report).expect("write report");
    if let Err(e) = write_observability(
        &obs,
        &cell_artifacts,
        SweepMeta {
            cells: cell_artifacts.len(),
        },
    ) {
        diag::error("adaptive", &e);
        std::process::exit(diag::EXIT_FAILURE);
    }
    println!("\nwrote results/adaptive.csv and results/adaptive.txt");
}
