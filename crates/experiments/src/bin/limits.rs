//! Checks the analytic boundary behaviour of eq. 4.7 reported in §4.1:
//!
//! * `K -> 0`   ⟹ `p(loss) -> rho/(1 + rho)` = P(server busy);
//! * `K -> ∞`  ⟹ `p(loss) -> 0` for `rho < 1`;
//! * flow conservation (eq. 4.6): `p(accept) * rho = 1 - P(0)`, checked
//!   against the independent centralized-queue simulation;
//! * figure 5: front-of-queue loss and balking give the same loss and
//!   utilization.
//!
//! Panels run in parallel (`--jobs N`) and support the shared
//! observability flags (`--trace-events`, `--metrics`, `--progress`);
//! exported artifacts are byte-identical for any worker count. Exits
//! with [`diag::EXIT_FAILURE`] if any check fails.

use tcw_experiments::diag;
use tcw_experiments::sweep::{jobs_from_args, run_parallel_with_progress};
use tcw_experiments::{
    observe_engine_cell, write_observability, CellArtifacts, ObsConfig, SweepMeta,
};
use tcw_numerics::grid::GridDist;
use tcw_queueing::impatient::{loss_probability, p_idle};
use tcw_queueing::simqueue::{simulate, LossMode};

/// One boundary check: name, pass/fail, human-readable detail.
struct Check {
    name: &'static str,
    ok: bool,
    detail: String,
}

fn panel_checks(
    lambda: f64,
    m: u64,
    sink: Option<&mut dyn tcw_sim::stats::MetricSink>,
) -> Vec<Check> {
    let service = GridDist::point(1.0, m as f64);
    let rho = lambda * m as f64;
    let mut checks = Vec::new();

    let p0 = loss_probability(lambda, &service, 0.0);
    let expect = rho / (1.0 + rho);
    checks.push(Check {
        name: "K -> 0 limit",
        ok: (p0 - expect).abs() < 1e-9,
        detail: format!("p(loss) = {p0:.6}, rho/(1+rho) = {expect:.6}"),
    });

    let pinf = loss_probability(lambda, &service, 200.0 * m as f64);
    checks.push(Check {
        name: "K -> inf limit",
        ok: pinf < 1e-4,
        detail: format!("p(loss at K = 200 M) = {pinf:.2e}"),
    });

    let k = 4.0 * m as f64;
    let p = loss_probability(lambda, &service, k);
    let idle = p_idle(lambda, &service, k);
    let flow = (1.0 - p) * rho - (1.0 - idle);
    checks.push(Check {
        name: "eq. 4.6 flow conservation (analytic)",
        ok: flow.abs() < 1e-9,
        detail: format!("p(accept)*rho - (1 - P(0)) = {flow:.2e}"),
    });

    let sim = simulate(lambda, &service, k, LossMode::Balking, 300_000, 7);
    checks.push(Check {
        name: "eq. 4.7 vs independent queue simulation",
        ok: (sim.loss - p).abs() < 0.01,
        detail: format!("analytic {p:.4}, simulated {:.4}", sim.loss),
    });
    checks.push(Check {
        name: "eq. 4.6 flow conservation (simulated)",
        ok: (sim.busy - (1.0 - sim.loss) * rho).abs() < 0.01,
        detail: format!(
            "busy {:.4} vs p(accept)*rho {:.4}",
            sim.busy,
            (1.0 - sim.loss) * rho
        ),
    });

    let front = simulate(lambda, &service, k, LossMode::FrontOfQueue, 300_000, 8);
    checks.push(Check {
        name: "figure 5 equivalence",
        ok: (front.loss - sim.loss).abs() < 0.01 && (front.busy - sim.busy).abs() < 0.01,
        detail: format!(
            "front: loss {:.4} busy {:.4}; balk: loss {:.4} busy {:.4}",
            front.loss, front.busy, sim.loss, sim.busy
        ),
    });

    if let Some(sink) = sink {
        sink.gauge(
            "tcw_limits_loss_analytic",
            "eq. 4.7 loss probability at K = 4M",
            p,
        );
        sink.gauge(
            "tcw_limits_loss_simulated",
            "independent queue simulation loss at K = 4M",
            sim.loss,
        );
        sink.gauge(
            "tcw_limits_failed_checks",
            "boundary checks failed in this panel",
            checks.iter().filter(|c| !c.ok).count() as f64,
        );
    }
    checks
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let (obs, args) = match ObsConfig::split_args(&raw) {
        Ok(v) => v,
        Err(e) => {
            diag::error("limits", &e);
            std::process::exit(diag::EXIT_USAGE);
        }
    };
    let jobs = jobs_from_args(&args);
    let mut failures = 0u32;
    println!("eq. 4.7 boundary checks\n");

    let cells: [(f64, u64); 4] = [(0.01, 25), (0.02, 25), (0.03, 25), (0.0075, 100)];
    let caps = obs.capture();
    let progress = obs
        .progress
        .then(|| tcw_obs::Progress::new(cells.len(), jobs));
    let outcomes: Vec<(Vec<Check>, CellArtifacts)> =
        run_parallel_with_progress(&cells, jobs, progress.as_ref(), |i, &(lambda, m)| {
            let label = format!("lambda={lambda} M={m}");
            let l_s = format!("{lambda}");
            let m_s = format!("{m}");
            let labels = [("lambda", l_s.as_str()), ("m", m_s.as_str())];
            observe_engine_cell(caps, i, &label, &labels, |_obs, sink| {
                panel_checks(lambda, m, sink)
            })
        });
    if let Some(p) = &progress {
        p.finish();
    }
    let (outcomes, cell_artifacts): (Vec<_>, Vec<_>) =
        outcomes.into_iter().unzip::<_, _, Vec<_>, Vec<_>>();

    for (&(lambda, m), checks) in cells.iter().zip(&outcomes) {
        let rho = lambda * m as f64;
        println!("lambda = {lambda}, M = {m} (rho = {rho:.3}):");
        for c in checks {
            if c.ok {
                println!("  [ok]   {}: {}", c.name, c.detail);
            } else {
                println!("  [FAIL] {}: {}", c.name, c.detail);
                failures += 1;
            }
        }
        println!();
    }

    // Overload behaviour: p(loss) -> 1 - 1/rho as K grows.
    let service = GridDist::point(1.0, 10.0);
    let lambda = 0.15; // rho = 1.5
    let p = loss_probability(lambda, &service, 5_000.0);
    let ok = (p - (1.0 - 1.0 / 1.5)).abs() < 1e-3;
    if ok {
        println!(
            "  [ok]   overload limit (rho = 1.5): p(loss) = {p:.4}, 1 - 1/rho = {:.4}",
            1.0 - 1.0 / 1.5
        );
    } else {
        println!(
            "  [FAIL] overload limit (rho = 1.5): p(loss) = {p:.4}, 1 - 1/rho = {:.4}",
            1.0 - 1.0 / 1.5
        );
        failures += 1;
    }

    if let Err(e) = write_observability(
        &obs,
        &cell_artifacts,
        SweepMeta {
            cells: cell_artifacts.len(),
        },
    ) {
        diag::error("limits", &e);
        std::process::exit(diag::EXIT_FAILURE);
    }

    if failures > 0 {
        diag::error("limits", &format!("{failures} check(s) FAILED"));
        std::process::exit(diag::EXIT_FAILURE);
    }
    println!("\nall checks passed");
}
