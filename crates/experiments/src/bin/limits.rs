//! Checks the analytic boundary behaviour of eq. 4.7 reported in §4.1:
//!
//! * `K -> 0`   ⟹ `p(loss) -> rho/(1 + rho)` = P(server busy);
//! * `K -> ∞`  ⟹ `p(loss) -> 0` for `rho < 1`;
//! * flow conservation (eq. 4.6): `p(accept) * rho = 1 - P(0)`, checked
//!   against the independent centralized-queue simulation;
//! * figure 5: front-of-queue loss and balking give the same loss and
//!   utilization.
//!
//! Exits non-zero if any check fails.

use tcw_numerics::grid::GridDist;
use tcw_queueing::impatient::{loss_probability, p_idle};
use tcw_queueing::simqueue::{simulate, LossMode};

fn check(name: &str, ok: bool, detail: String, failures: &mut u32) {
    if ok {
        println!("  [ok]   {name}: {detail}");
    } else {
        println!("  [FAIL] {name}: {detail}");
        *failures += 1;
    }
}

fn main() {
    let mut failures = 0u32;
    println!("eq. 4.7 boundary checks\n");

    for &(lambda, m) in &[(0.01f64, 25u64), (0.02, 25), (0.03, 25), (0.0075, 100)] {
        let service = GridDist::point(1.0, m as f64);
        let rho = lambda * m as f64;
        println!("lambda = {lambda}, M = {m} (rho = {rho:.3}):");

        let p0 = loss_probability(lambda, &service, 0.0);
        let expect = rho / (1.0 + rho);
        check(
            "K -> 0 limit",
            (p0 - expect).abs() < 1e-9,
            format!("p(loss) = {p0:.6}, rho/(1+rho) = {expect:.6}"),
            &mut failures,
        );

        let pinf = loss_probability(lambda, &service, 200.0 * m as f64);
        check(
            "K -> inf limit",
            pinf < 1e-4,
            format!("p(loss at K = 200 M) = {pinf:.2e}"),
            &mut failures,
        );

        let k = 4.0 * m as f64;
        let p = loss_probability(lambda, &service, k);
        let idle = p_idle(lambda, &service, k);
        let flow = (1.0 - p) * rho - (1.0 - idle);
        check(
            "eq. 4.6 flow conservation (analytic)",
            flow.abs() < 1e-9,
            format!("p(accept)*rho - (1 - P(0)) = {flow:.2e}"),
            &mut failures,
        );

        let sim = simulate(lambda, &service, k, LossMode::Balking, 300_000, 7);
        check(
            "eq. 4.7 vs independent queue simulation",
            (sim.loss - p).abs() < 0.01,
            format!("analytic {p:.4}, simulated {:.4}", sim.loss),
            &mut failures,
        );
        check(
            "eq. 4.6 flow conservation (simulated)",
            (sim.busy - (1.0 - sim.loss) * rho).abs() < 0.01,
            format!(
                "busy {:.4} vs p(accept)*rho {:.4}",
                sim.busy,
                (1.0 - sim.loss) * rho
            ),
            &mut failures,
        );

        let front = simulate(lambda, &service, k, LossMode::FrontOfQueue, 300_000, 8);
        check(
            "figure 5 equivalence",
            (front.loss - sim.loss).abs() < 0.01 && (front.busy - sim.busy).abs() < 0.01,
            format!(
                "front: loss {:.4} busy {:.4}; balk: loss {:.4} busy {:.4}",
                front.loss, front.busy, sim.loss, sim.busy
            ),
            &mut failures,
        );
        println!();
    }

    // Overload behaviour: p(loss) -> 1 - 1/rho as K grows.
    let service = GridDist::point(1.0, 10.0);
    let lambda = 0.15; // rho = 1.5
    let p = loss_probability(lambda, &service, 5_000.0);
    check(
        "overload limit (rho = 1.5)",
        (p - (1.0 - 1.0 / 1.5)).abs() < 1e-3,
        format!("p(loss) = {p:.4}, 1 - 1/rho = {:.4}", 1.0 - 1.0 / 1.5),
        &mut failures,
    );

    if failures > 0 {
        println!("\n{failures} check(s) FAILED");
        std::process::exit(1);
    }
    println!("\nall checks passed");
}
