//! Design-choice ablations for the controlled protocol (the knobs called
//! out in DESIGN.md). Each ablation holds the Figure-7 workload fixed
//! (`rho' = 0.75`, `M = 25`, a mid-range deadline) and varies exactly one
//! element:
//!
//! * **discard (element 4)** on/off — the paper credits most of the
//!   improvement to never spending channel time on already-dead messages;
//! * **split rule (element 3)** — older-first vs newer-first vs random;
//! * **window position (element 1)** — oldest vs newest vs random;
//! * **window length (element 2)** — heuristic `w*` scaled by 1/4 .. 4,
//!   plus the SMDP-optimal per-backlog table from `tcw-mdp`;
//! * **scheduling-time shape** (analytic model) — geometric vs exact
//!   splitting distribution;
//! * **guard slot** — one extra `tau` of quiet after each transmission.
//!
//! All simulated variants form one cell list executed on the parallel
//! sweep executor (`--jobs N`; `--jobs 1` reproduces the serial output
//! byte-for-byte) and are reported in the fixed cell order. The shared
//! observability flags are accepted: `--trace-events PATH` (NDJSON event
//! stream, one `cell` header per variant), `--metrics PATH[.prom]`
//! (metrics snapshot labeled by variant) and `--progress` (stderr
//! progress line).

use tcw_experiments::plot::write_csv;
use tcw_experiments::runner::{measure_window, run_to_horizon};
use tcw_experiments::sweep::{jobs_from_args, run_parallel_with_progress};
use tcw_experiments::{
    diag, observe_engine_cell, write_observability, Capture, CellArtifacts, ObsConfig, Panel,
    SimSettings, SweepMeta,
};
use tcw_mdp::howard::policy_iteration;
use tcw_mdp::smdp::{Smdp, SmdpConfig};
use tcw_queueing::marching::{controlled_curve, PanelConfig};
use tcw_queueing::service::SchedulingShape;
use tcw_sim::time::{Dur, Time};
use tcw_window::analysis::optimal_mu;
use tcw_window::engine::poisson_engine;
use tcw_window::policy::{ControlPolicy, SplitRule, WindowLength, WindowPosition};

const PANEL: Panel = Panel {
    rho_prime: 0.75,
    m: 25,
};
const K_TAU: u64 = 100;

/// One ablation variant, fully specified for the sweep executor. The
/// optional header/footer strings are printed around the variant's
/// result line so the report keeps its serial section structure.
struct Cell {
    header: Option<&'static str>,
    footer: Option<String>,
    name: String,
    policy: ControlPolicy,
    settings: SimSettings,
    seed: u64,
    /// `Some(n)`: run `n` single-buffer stations (finite-population
    /// ablation) and report the blocked fraction instead of utilization.
    single_buffer: Option<u32>,
}

struct Outcome {
    loss: f64,
    ci: f64,
    utilization: f64,
    blocked_frac: f64,
}

fn run_cell(cell: &Cell, index: usize, caps: Capture) -> (Outcome, CellArtifacts) {
    let seed_s = format!("{}", cell.seed);
    let labels = [("variant", cell.name.as_str()), ("seed", seed_s.as_str())];
    observe_engine_cell(caps, index, &cell.name, &labels, |obs, sink| {
        let settings = cell.settings;
        let tpt = settings.ticks_per_tau;
        let channel = tcw_mac::ChannelConfig {
            ticks_per_tau: tpt,
            message_slots: PANEL.m,
            guard: settings.guard,
        };
        let measure = measure_window(PANEL.lambda(), settings, Dur::from_ticks(K_TAU * tpt));
        let measure_end = measure.end.ticks();
        let stations = cell.single_buffer.unwrap_or(50);
        let mut eng = poisson_engine(
            channel,
            cell.policy.clone(),
            measure,
            PANEL.rho_prime,
            stations,
            cell.seed,
        );
        if cell.single_buffer.is_some() {
            eng.set_single_buffer_stations(true);
        }
        run_to_horizon(
            &mut eng,
            Time::from_ticks(measure_end + measure_end / 10),
            obs,
            sink,
        );
        let offered = eng.metrics.offered().max(1);
        Outcome {
            loss: eng.metrics.loss_fraction(),
            ci: eng.metrics.loss_ci95(),
            utilization: eng.channel_stats.utilization(),
            blocked_frac: eng.metrics.blocked() as f64 / offered as f64,
        }
    })
}

fn controlled_with(
    position: WindowPosition,
    split: SplitRule,
    length: WindowLength,
    discard: bool,
    tpt: u64,
) -> ControlPolicy {
    ControlPolicy {
        position,
        length,
        split,
        discard_after: discard.then(|| Dur::from_ticks(K_TAU * tpt)),
        split_fraction: 0.5,
    }
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let (obs, args) = match ObsConfig::split_args(&raw) {
        Ok(v) => v,
        Err(e) => {
            diag::error("ablate", &e);
            std::process::exit(diag::EXIT_USAGE);
        }
    };
    let jobs = jobs_from_args(&args);
    let settings = SimSettings {
        messages: 30_000,
        warmup: 3_000,
        ..Default::default()
    };
    let tpt = settings.ticks_per_tau;
    let w_star = Dur::from_ticks((optimal_mu() / PANEL.lambda() * tpt as f64) as u64);
    let mut cells: Vec<Cell> = Vec::new();
    let cell = |header: Option<&'static str>,
                name: String,
                policy: ControlPolicy,
                settings: SimSettings,
                seed: u64| Cell {
        header,
        footer: None,
        name,
        policy,
        settings,
        seed,
        single_buffer: None,
    };

    println!(
        "Ablations at rho' = {}, M = {}, K = {K_TAU} tau ({} messages each)\n",
        PANEL.rho_prime, PANEL.m, settings.messages
    );

    for (i, (name, discard)) in [
        ("controlled (discard on)", true),
        ("no discard (fcfs order)", false),
    ]
    .into_iter()
    .enumerate()
    {
        let p = controlled_with(
            WindowPosition::Oldest,
            SplitRule::OlderFirst,
            WindowLength::Fixed(w_star),
            discard,
            tpt,
        );
        let header = (i == 0).then_some("-- element (4): sender discard --");
        cells.push(cell(header, name.to_string(), p, settings, 11));
    }

    for (i, (name, split)) in [
        ("older-first (optimal)", SplitRule::OlderFirst),
        ("newer-first", SplitRule::NewerFirst),
        ("random half", SplitRule::Random),
    ]
    .into_iter()
    .enumerate()
    {
        let p = controlled_with(
            WindowPosition::Oldest,
            split,
            WindowLength::Fixed(w_star),
            true,
            tpt,
        );
        let header = (i == 0).then_some("\n-- element (3): split rule (discard on) --");
        cells.push(cell(header, name.to_string(), p, settings, 12));
    }

    for (i, (name, pos)) in [
        ("oldest (optimal)", WindowPosition::Oldest),
        ("newest", WindowPosition::Newest),
        ("random", WindowPosition::Random),
    ]
    .into_iter()
    .enumerate()
    {
        let p = controlled_with(
            pos,
            SplitRule::OlderFirst,
            WindowLength::Fixed(w_star),
            true,
            tpt,
        );
        let header = (i == 0).then_some("\n-- element (1): window position (discard on) --");
        cells.push(cell(header, name.to_string(), p, settings, 13));
    }

    for (i, scale) in [0.25, 0.5, 1.0, 2.0, 4.0].into_iter().enumerate() {
        let w = Dur::from_ticks(((w_star.ticks() as f64) * scale).max(1.0) as u64);
        let p = controlled_with(
            WindowPosition::Oldest,
            SplitRule::OlderFirst,
            WindowLength::Fixed(w),
            true,
            tpt,
        );
        let header = (i == 0).then_some("\n-- element (2): window length --");
        cells.push(cell(
            header,
            format!("fixed w = {scale} * w_heuristic"),
            p,
            settings,
            14,
        ));
    }
    // SMDP-optimal per-backlog table (Delta = tau), interpolated onto the
    // tick lattice.
    {
        let model = Smdp::new(SmdpConfig {
            k: K_TAU as usize,
            m: PANEL.m,
            lambda: PANEL.lambda(),
        });
        let w_heur = (optimal_mu() / PANEL.lambda()).round().max(1.0) as usize;
        let start: Vec<usize> = (0..=K_TAU as usize).map(|i| w_heur.min(i.max(1))).collect();
        let opt = policy_iteration(&model, &start);
        // table[backlog_in_ticks] = window in ticks
        let mut table = Vec::with_capacity((K_TAU as usize + 1) * tpt as usize);
        for i in 0..=(K_TAU as usize) {
            for _ in 0..tpt {
                table.push(Dur::from_ticks(opt.window[i.max(1)] as u64 * tpt));
            }
        }
        let p = controlled_with(
            WindowPosition::Oldest,
            SplitRule::OlderFirst,
            WindowLength::PerBacklog(table),
            true,
            tpt,
        );
        cells.push(cell(
            None,
            "SMDP-optimal w*(backlog)".to_string(),
            p,
            settings,
            15,
        ));
    }

    {
        use tcw_window::analysis::{expected_overhead_slots_biased, optimal_mu_and_fraction};
        let fracs = [0.3, 0.4, 0.5, 0.6, 0.7];
        for (i, frac) in fracs.into_iter().enumerate() {
            let p = ControlPolicy {
                split_fraction: frac,
                ..controlled_with(
                    WindowPosition::Oldest,
                    SplitRule::OlderFirst,
                    WindowLength::Fixed(w_star),
                    true,
                    tpt,
                )
            };
            let header =
                (i == 0).then_some("\n-- §5 extension: split fraction (older part share) --");
            let mut c = cell(header, format!("split fraction {frac}"), p, settings, 17);
            if i == fracs.len() - 1 {
                let (mu, frac, e) = optimal_mu_and_fraction();
                let mu_half = tcw_window::analysis::optimal_mu();
                c.footer = Some(format!(
                    "  analytic joint optimum: frac = {frac:.3}, mu = {mu:.3}, E[overhead] = {e:.4} \
                     (halving at its own optimum mu = {mu_half:.3}: {:.4})",
                    expected_overhead_slots_biased(mu_half, 0.5)
                ));
            }
            cells.push(c);
        }
    }

    for (i, (name, guard)) in [("no guard (paper's model)", false), ("one tau guard", true)]
        .into_iter()
        .enumerate()
    {
        let p = controlled_with(
            WindowPosition::Oldest,
            SplitRule::OlderFirst,
            WindowLength::Fixed(w_star),
            true,
            tpt,
        );
        let header = (i == 0).then_some("\n-- guard slot after transmissions --");
        cells.push(cell(
            header,
            name.to_string(),
            p,
            SimSettings { guard, ..settings },
            16,
        ));
    }

    // The analysis treats every message as an independent transmitter
    // (infinite population). With N single-buffer stations, arrivals
    // at a busy station are blocked; the blocked fraction measures how
    // fast the assumption becomes accurate as N grows.
    for (i, stations) in [5u32, 10, 25, 50, 200].into_iter().enumerate() {
        let p = controlled_with(
            WindowPosition::Oldest,
            SplitRule::OlderFirst,
            WindowLength::Fixed(w_star),
            true,
            tpt,
        );
        let header = (i == 0).then_some("\n-- finite population: single-buffer stations --");
        let mut c = cell(
            header,
            format!("{stations} single-buffer stations"),
            p,
            settings,
            18,
        );
        c.single_buffer = Some(stations);
        cells.push(c);
    }

    let caps = obs.capture();
    let progress = obs
        .progress
        .then(|| tcw_obs::Progress::new(cells.len(), jobs));
    let outcomes =
        run_parallel_with_progress(&cells, jobs, progress.as_ref(), |i, c| run_cell(c, i, caps));
    if let Some(p) = &progress {
        p.finish();
    }
    let (outcomes, cell_artifacts): (Vec<_>, Vec<_>) = outcomes.into_iter().unzip();

    let mut rows: Vec<Vec<String>> = Vec::new();
    for (c, r) in cells.iter().zip(&outcomes) {
        if let Some(h) = c.header {
            println!("{h}");
        }
        if c.single_buffer.is_some() {
            println!(
                "  {:<44} loss = {:.4} ± {:.4}   blocked = {:.4}",
                c.name, r.loss, r.ci, r.blocked_frac
            );
            rows.push(vec![
                c.name.clone(),
                format!("{:.6}", r.loss),
                format!("{:.6}", r.ci),
                format!("{:.6}", r.blocked_frac),
            ]);
        } else {
            println!(
                "  {:<44} loss = {:.4} ± {:.4}   utilization = {:.3}",
                c.name, r.loss, r.ci, r.utilization
            );
            rows.push(vec![
                c.name.clone(),
                format!("{:.6}", r.loss),
                format!("{:.6}", r.ci),
                format!("{:.6}", r.utilization),
            ]);
        }
        if let Some(f) = &c.footer {
            println!("{f}");
        }
    }

    println!("\n-- scheduling-time shape (analytic model, K sweep mean abs diff) --");
    {
        let grid: Vec<f64> = (1..=16).map(|i| i as f64 * 25.0).collect();
        let geo = controlled_curve(
            PanelConfig {
                m: PANEL.m,
                rho_prime: PANEL.rho_prime,
                shape: SchedulingShape::Geometric,
            },
            &grid,
        );
        let exact = controlled_curve(
            PanelConfig {
                m: PANEL.m,
                rho_prime: PANEL.rho_prime,
                shape: SchedulingShape::ExactSplitting,
            },
            &grid,
        );
        let mad: f64 = geo
            .iter()
            .zip(&exact)
            .map(|(g, e)| (g.loss - e.loss).abs())
            .sum::<f64>()
            / grid.len() as f64;
        println!("  geometric vs exact-splitting service shape: mean |Δ p(loss)| = {mad:.5}");
        rows.push(vec![
            "analytic shape delta".into(),
            format!("{mad:.6}"),
            String::new(),
            String::new(),
        ]);
    }

    let path = std::path::PathBuf::from("results/ablations.csv");
    write_csv(&path, &["variant", "loss", "ci95", "utilization"], &rows).expect("csv");
    if let Err(e) = write_observability(
        &obs,
        &cell_artifacts,
        SweepMeta {
            cells: cell_artifacts.len(),
        },
    ) {
        diag::error("ablate", &e);
        std::process::exit(diag::EXIT_FAILURE);
    }
    println!("\nresults: {}", path.display());
}
