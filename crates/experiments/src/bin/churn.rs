//! Station-churn resilience sweep and deterministic failure replay.
//!
//! Default mode sweeps crash rate × offered load for the controlled
//! protocol, comparing loss and recovery counters against the
//! churn-free baseline of the same seed, then exercises the
//! membership showcase: late joiners, scheduled leavers and a
//! listener outage tracked by the per-station divergence detector.
//! Results land in `results/churn.csv` and `results/churn.txt`.
//!
//! Every run executes under a panic guard: a panic, a tripped
//! invariant, or a detected divergence writes a replay artifact under
//! `results/failures/` containing the seed, the fault plan and the
//! churn plan. Re-running with
//!
//! ```text
//! cargo run --release -p tcw-experiments --bin churn -- --replay <artifact>
//! ```
//!
//! re-executes the identical timeline and must reproduce the identical
//! failure (the binary exits non-zero if it does not).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use tcw_experiments::diag;
use tcw_experiments::plot::{ascii_plot, write_csv, Series};
use tcw_experiments::replay::{execute, panic_message, replay, FailureRecord};
use tcw_experiments::runner::{ChurnSimPoint, PolicyKind, SimSettings};
use tcw_experiments::supervise::{supervised_cells, SupervisorOptions};
use tcw_experiments::sweep::{jobs_from_args, run_parallel_with_progress};
use tcw_experiments::{
    observed_cell, write_observability, CellArtifacts, ObsConfig, Panel, SweepMeta,
};
use tcw_mac::{ChurnPlan, FaultPlan};

const CRASH_RATES: [f64; 5] = [0.0, 0.0005, 0.001, 0.002, 0.005];
const LOADS: [f64; 3] = [0.25, 0.50, 0.75];
const M: u64 = 25;
const K_TAU: f64 = 100.0;
const SEED: u64 = 1983;
const DOWN_SLOTS: u64 = 40;
const CATCH_UP_SLOTS: u64 = 100;

fn settings() -> SimSettings {
    SimSettings {
        ticks_per_tau: 16,
        messages: 8_000,
        warmup: 800,
        ..Default::default()
    }
}

fn sweep_plan(crash: f64) -> ChurnPlan {
    if crash == 0.0 {
        ChurnPlan::none()
    } else {
        ChurnPlan {
            crash,
            down_slots: DOWN_SLOTS,
            catch_up_slots: CATCH_UP_SLOTS,
            ..ChurnPlan::none()
        }
    }
}

fn base_record(rho_prime: f64, churn: ChurnPlan) -> FailureRecord {
    FailureRecord {
        seed: SEED,
        plan: FaultPlan::none(),
        churn,
        panel: Panel { rho_prime, m: M },
        policy: PolicyKind::Controlled,
        k_tau: K_TAU,
        settings: settings(),
        kind: String::new(),
        detail: String::new(),
    }
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let (obs, args) = match ObsConfig::split_args(&raw) {
        Ok(v) => v,
        Err(e) => {
            diag::error("churn", &e);
            std::process::exit(diag::EXIT_USAGE);
        }
    };
    let (sup, args) = match SupervisorOptions::split_args(&args) {
        Ok(v) => v,
        Err(e) => {
            diag::error("churn", &e);
            std::process::exit(diag::EXIT_USAGE);
        }
    };
    if sup.is_some() && obs.wants_telemetry() {
        diag::error(
            "churn",
            "supervision flags are incompatible with --trace-events/--spans/--metrics",
        );
        std::process::exit(diag::EXIT_USAGE);
    }
    if args.first().is_some_and(|a| a == "--replay") {
        let Some(path) = args.get(1) else {
            diag::error("churn", "--replay needs an artifact path");
            std::process::exit(diag::EXIT_USAGE);
        };
        std::process::exit(replay(Path::new(path)));
    }
    let jobs = jobs_from_args(&args);

    let results = Path::new("results");
    let failures_dir = results.join("failures");
    let mut report = String::new();
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut series: Vec<Series> = Vec::new();
    let glyphs = ['o', '+', 'x'];

    println!("station-churn sweep: controlled protocol, M={M}, K={K_TAU} tau, down={DOWN_SLOTS} slots, catch-up={CATCH_UP_SLOTS} slots\n");

    // One parallel sweep over the whole load × crash-rate grid; panics
    // are caught per cell so failure reporting (and the replay artifact)
    // still happens in deterministic cell order below.
    let cells: Vec<(f64, f64)> = LOADS
        .iter()
        .flat_map(|&rho| CRASH_RATES.iter().map(move |&c| (rho, c)))
        .collect();
    let (outcomes, cell_artifacts): (Vec<Result<ChurnSimPoint, String>>, Vec<CellArtifacts>) =
        if let Some(sup) = &sup {
            // The seed, panel shape and grid size define the cells; any
            // change to them invalidates a resume journal.
            let fingerprint = tcw_sim::snap::checksum(&[
                SEED,
                M,
                K_TAU.to_bits(),
                DOWN_SLOTS,
                CATCH_UP_SLOTS,
                cells.len() as u64,
            ]);
            let points = supervised_cells(
                "churn",
                "churn",
                cells.len(),
                jobs,
                sup,
                obs.progress,
                fingerprint,
                |cell| {
                    let rho = LOADS[cell / CRASH_RATES.len()];
                    let c = CRASH_RATES[cell % CRASH_RATES.len()];
                    format!("rho'={rho:.2} crash={c:.4} seed {SEED}")
                },
                |i| {
                    let rho = LOADS[i / CRASH_RATES.len()];
                    let c = CRASH_RATES[i % CRASH_RATES.len()];
                    let rec = base_record(rho, sweep_plan(c));
                    tcw_experiments::runner::simulate_churn(
                        rec.panel,
                        rec.policy,
                        rec.k_tau,
                        rec.settings,
                        rec.seed,
                        rec.plan,
                        rec.churn,
                    )
                },
            );
            let n = points.len();
            (
                points.into_iter().map(Ok).collect(),
                (0..n).map(|_| CellArtifacts::default()).collect(),
            )
        } else {
            let caps = obs.capture();
            let progress = obs
                .progress
                .then(|| tcw_obs::Progress::new(cells.len(), jobs));
            let outcomes: Vec<(Result<ChurnSimPoint, String>, CellArtifacts)> =
                run_parallel_with_progress(&cells, jobs, progress.as_ref(), |i, &(rho, c)| {
                    let rec = base_record(rho, sweep_plan(c));
                    let label = format!("rho={rho:.2} crash={c:.4}");
                    let rho_s = format!("{rho}");
                    let c_s = format!("{c}");
                    let labels = [("rho", rho_s.as_str()), ("crash_rate", c_s.as_str())];
                    catch_unwind(AssertUnwindSafe(|| {
                        observed_cell(
                            caps,
                            i,
                            &label,
                            &labels,
                            rec.panel,
                            rec.policy,
                            rec.k_tau,
                            rec.settings,
                            rec.seed,
                            rec.plan,
                            rec.churn,
                        )
                    }))
                    .map(|(csp, art)| {
                        if let Some(p) = &progress {
                            let h = csp.horizon;
                            p.note_horizon(
                                h.jumps,
                                h.slots_skipped,
                                h.batched_runs,
                                h.batched_slots,
                            );
                        }
                        (Ok(csp), art)
                    })
                    .unwrap_or_else(|e| (Err(panic_message(e)), CellArtifacts::default()))
                });
            if let Some(p) = &progress {
                p.finish();
            }
            outcomes.into_iter().unzip()
        };

    let mut outcome_iter = outcomes.into_iter();
    for (li, &rho) in LOADS.iter().enumerate() {
        let mut points = Vec::new();
        let mut baseline_loss = 0.0;
        for &c in &CRASH_RATES {
            let rec = base_record(rho, sweep_plan(c));
            let csp: ChurnSimPoint = match outcome_iter.next().expect("one outcome per cell") {
                Ok(csp) => csp,
                Err(message) => {
                    let mut failed = rec.clone();
                    failed.kind = "panic".to_string();
                    failed.detail = message;
                    let path = failures_dir.join(format!(
                        "failure_panic_seed{}_rho{:02}_c{:04}.json",
                        rec.seed,
                        (rho * 100.0) as u32,
                        (c * 10_000.0).round() as u32
                    ));
                    failed.save(&path).expect("write replay artifact");
                    diag::error(
                        "churn",
                        &format!(
                            "run panicked; replay artifact written to {}\n  reproduce: cargo run --release -p tcw-experiments --bin churn -- --replay {}",
                            path.display(),
                            path.display()
                        ),
                    );
                    std::process::exit(diag::EXIT_FAILURE);
                }
            };
            if c == 0.0 {
                baseline_loss = csp.point.loss;
            }
            let line = format!(
                "rho'={rho:.2} crash={c:.4}: loss={:.4} (baseline {:.4}) util={:.3} crashes={} restarts={} blocked={} churn_losses={} reopened={} rejoin_mean={:.1} rejoin_max={:.0}",
                csp.point.loss,
                baseline_loss,
                csp.point.utilization,
                csp.churn.crashes,
                csp.churn.restarts,
                csp.churn.blocked,
                csp.churn.losses,
                csp.churn.reopened,
                if csp.churn.rejoin_mean_slots.is_nan() { 0.0 } else { csp.churn.rejoin_mean_slots },
                csp.churn.rejoin_max_slots,
            );
            println!("  {line}");
            report.push_str(&line);
            report.push('\n');
            rows.push(vec![
                format!("{rho}"),
                format!("{c}"),
                format!("{}", csp.point.loss),
                format!("{baseline_loss}"),
                format!("{}", csp.point.utilization),
                format!("{}", csp.churn.crashes),
                format!("{}", csp.churn.restarts),
                format!("{}", csp.churn.blocked),
                format!("{}", csp.churn.losses),
                format!("{}", csp.churn.reopened),
                format!(
                    "{}",
                    if csp.churn.rejoin_mean_slots.is_nan() {
                        0.0
                    } else {
                        csp.churn.rejoin_mean_slots
                    }
                ),
                format!("{}", csp.churn.rejoin_max_slots),
            ]);
            points.push((c, csp.point.loss));
        }
        series.push(Series {
            label: format!("rho'={rho:.2}"),
            glyph: glyphs[li % glyphs.len()],
            points,
        });
        println!();
    }

    let y_max = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.1))
        .fold(0.0f64, f64::max)
        .max(1e-3)
        * 1.2;
    let chart = ascii_plot(
        "loss vs crash rate (controlled, M=25, K=100 tau)",
        &series,
        72,
        20,
        0.0,
        y_max,
    );
    println!("{chart}");
    report.push('\n');
    report.push_str(&chart);

    // Membership showcase: a fifth of the stations join late, a tenth
    // leave for good, and listening station 0 suffers a hard outage —
    // the detector must catch the missed span as exactly one divergence,
    // repair it at the next beacon, and the whole episode must be
    // replayable from the artifact.
    println!("\nmembership showcase (late join + leave + listener outage):\n");
    let showcase = ChurnPlan {
        late_join_frac: 0.2,
        join_slot: 2_000,
        leave_frac: 0.1,
        leave_slot: 20_000,
        catch_up_slots: CATCH_UP_SLOTS,
        outage_start_slot: 5_000,
        outage_slots: 64,
        ..ChurnPlan::none()
    };
    let rec = base_record(0.50, showcase);
    let (kind, detail) = execute(&rec);
    if kind == "ok" {
        let line = format!("  station 0 never diverged ({detail})");
        println!("{line}");
        report.push_str(&line);
    } else {
        let mut failed = rec.clone();
        failed.kind = kind.clone();
        failed.detail = detail;
        let path = failures_dir.join(format!("failure_churn_{}_seed{}.json", kind, rec.seed));
        failed.save(&path).expect("write replay artifact");
        let line = format!(
            "  [{}] {}\n  replay artifact: {}\n  reproduce: cargo run --release -p tcw-experiments --bin churn -- --replay {}",
            failed.kind,
            failed.detail,
            path.display(),
            path.display()
        );
        println!("{line}");
        report.push_str(&line);
    }
    report.push('\n');

    write_csv(
        &results.join("churn.csv"),
        &[
            "rho_prime",
            "crash_rate",
            "loss",
            "baseline_loss",
            "utilization",
            "crashes",
            "restarts",
            "blocked",
            "churn_losses",
            "reopened",
            "rejoin_mean_slots",
            "rejoin_max_slots",
        ],
        &rows,
    )
    .expect("write csv");
    std::fs::write(results.join("churn.txt"), &report).expect("write report");
    if let Err(e) = write_observability(
        &obs,
        &cell_artifacts,
        SweepMeta {
            cells: cell_artifacts.len(),
        },
    ) {
        diag::error("churn", &e);
        std::process::exit(diag::EXIT_FAILURE);
    }
    println!("\nwrote results/churn.csv and results/churn.txt");
}
