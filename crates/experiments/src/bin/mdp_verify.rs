//! Verifies the decision-theoretic results of §3 / Appendix A and computes
//! the piece the paper left open: the optimal window length per state.
//!
//! 1. **Lemma 3 / Theorem 1** — Monte Carlo one-step pseudo loss of the
//!    minimum-slack discipline vs. the newer-half-first and
//!    newest-position alternatives, across a grid of states: minimum
//!    slack never does worse.
//! 2. **Theorem 1, end to end** — full protocol simulations with element
//!    (4) active, differing only in elements (1)/(3): the Theorem-1
//!    policy achieves the lowest actual loss.
//! 3. **Appendix A / Howard policy iteration** — value determination
//!    (eq. A1) + improvement (eq. A2) over the window-length element
//!    converge; the optimal `w*(i)` table is printed and compared with
//!    the §4.1 heuristic `w* = mu*/lambda`; the SMDP gain is compared
//!    with the eq. 4.7 loss.

use tcw_experiments::plot::write_csv;
use tcw_mdp::howard::{evaluate_policy, policy_iteration};
use tcw_mdp::smdp::{Smdp, SmdpConfig};
use tcw_mdp::verify::{one_step_pseudo_loss, Discipline};
use tcw_sim::time::{Dur, Time};
use tcw_window::analysis::optimal_mu;
use tcw_window::engine::poisson_engine;
use tcw_window::metrics::MeasureConfig;
use tcw_window::policy::{ControlPolicy, SplitRule, WindowLength, WindowPosition};
use tcw_window::trace::NoopObserver;

fn main() {
    let mut failures = 0u32;

    println!("== 1. Lemma 3: one-step pseudo loss, min-slack vs alternatives ==\n");
    let (k, m, lambda) = (60.0, 25u64, 0.03);
    println!("   K = {k} tau, M = {m}, lambda = {lambda}/tau, 200k trials per cell");
    println!(
        "   {:>6} {:>6} {:>12} {:>12} {:>12}",
        "i", "w", "min-slack", "newer-split", "newest-pos"
    );
    for &(i, w) in &[
        (60.0, 60.0),
        (60.0, 40.0),
        (60.0, 20.0),
        (50.0, 42.0),
        (40.0, 40.0),
    ] {
        let trials = 200_000;
        let ms = one_step_pseudo_loss(Discipline::MinSlack, i, w, k, m, lambda, trials, 1);
        let ns = one_step_pseudo_loss(Discipline::OldestNewerSplit, i, w, k, m, lambda, trials, 1);
        let np = one_step_pseudo_loss(Discipline::NewestPos, i, w, k, m, lambda, trials, 1);
        let ok = ms.mean <= ns.mean + 4.0 * (ms.std_err + ns.std_err)
            && ms.mean <= np.mean + 4.0 * (ms.std_err + np.std_err);
        if !ok {
            failures += 1;
        }
        println!(
            "   {:>6} {:>6} {:>12.5} {:>12.5} {:>12.5}  {}",
            i,
            w,
            ms.mean,
            ns.mean,
            np.mean,
            if ok { "[ok]" } else { "[FAIL]" }
        );
    }

    println!("\n== 2. Theorem 1 end-to-end: actual loss under element-(1)/(3) variants ==\n");
    let channel = tcw_mac::ChannelConfig {
        ticks_per_tau: 32,
        message_slots: 25,
        guard: false,
    };
    let rho_prime = 0.75;
    let k_tau = 100u64;
    let k_ticks = Dur::from_ticks(k_tau * channel.ticks_per_tau);
    let w_ticks =
        Dur::from_ticks((optimal_mu() / (rho_prime / 25.0) * channel.ticks_per_tau as f64) as u64);
    let variants: [(&str, WindowPosition, SplitRule); 3] = [
        (
            "theorem-1 (oldest + older-first)",
            WindowPosition::Oldest,
            SplitRule::OlderFirst,
        ),
        (
            "oldest + newer-first",
            WindowPosition::Oldest,
            SplitRule::NewerFirst,
        ),
        (
            "newest + newer-first",
            WindowPosition::Newest,
            SplitRule::NewerFirst,
        ),
    ];
    let mut losses = Vec::new();
    for (name, pos, split) in variants {
        let policy = ControlPolicy {
            position: pos,
            length: WindowLength::Fixed(w_ticks),
            split,
            discard_after: Some(k_ticks),
            split_fraction: 0.5,
        };
        let measure = MeasureConfig {
            start: Time::from_ticks(100_000),
            end: Time::from_ticks(40_000_000),
            deadline: k_ticks,
        };
        let mut eng = poisson_engine(channel, policy, measure, rho_prime, 50, 99);
        eng.run_until(Time::from_ticks(42_000_000), &mut NoopObserver);
        eng.drain(&mut NoopObserver);
        println!(
            "   {name:<36} loss = {:.4} ± {:.4}  ({} messages)",
            eng.metrics.loss_fraction(),
            eng.metrics.loss_ci95(),
            eng.metrics.offered()
        );
        losses.push(eng.metrics.loss_fraction());
    }
    let ok = losses[0] <= losses[1] + 0.01 && losses[0] <= losses[2] + 0.01;
    if !ok {
        failures += 1;
    }
    println!(
        "   [{}] Theorem-1 policy achieves the lowest actual loss",
        if ok { "ok" } else { "FAIL" }
    );

    println!("\n== 3. Appendix A: Howard policy iteration over the window length ==\n");
    for &(k_state, m_slots, lam) in &[(50usize, 10u64, 0.10f64), (100, 25, 0.03)] {
        let model = Smdp::new(SmdpConfig {
            k: k_state,
            m: m_slots,
            lambda: lam,
        });
        // Start from the §4.1 heuristic (fixed w*, clamped to the state).
        let w_heuristic = (optimal_mu() / lam).round().max(1.0) as usize;
        let heuristic: Vec<usize> = (0..=k_state).map(|i| w_heuristic.min(i.max(1))).collect();
        let (g_heur, _) = evaluate_policy(&model, &heuristic);
        let opt = policy_iteration(&model, &heuristic);
        let improvement = (g_heur - opt.gain) / g_heur.max(1e-300);
        println!(
            "   K = {k_state}, M = {m_slots}, lambda = {lam}: heuristic gain {:.6e}, optimal gain {:.6e} ({} sweeps, {:.2}% better)",
            g_heur,
            opt.gain,
            opt.iterations,
            improvement * 100.0
        );
        let ok = opt.gain <= g_heur + 1e-12;
        if !ok {
            failures += 1;
        }
        // Optimal window table: print a few states and persist all.
        let heur_clamped: Vec<usize> = heuristic.clone();
        let rows: Vec<Vec<String>> = (1..=k_state)
            .map(|i| {
                vec![
                    i.to_string(),
                    opt.window[i].to_string(),
                    heur_clamped[i].to_string(),
                ]
            })
            .collect();
        let path =
            std::path::PathBuf::from(format!("results/mdp_window_k{k_state}_m{m_slots}.csv"));
        write_csv(&path, &["state_i", "w_optimal", "w_heuristic"], &rows).expect("csv");
        print!("   w*(i) at i = K/4, K/2, 3K/4, K: ");
        for i in [k_state / 4, k_state / 2, 3 * k_state / 4, k_state] {
            print!("{} ", opt.window[i.max(1)]);
        }
        println!(
            "  (heuristic w* = {w_heuristic}); table: {}",
            path.display()
        );
        println!(
            "   SMDP loss fraction = {:.4} (gain/lambda)",
            opt.loss_fraction(lam)
        );
        println!();
    }

    if failures > 0 {
        println!("{failures} check(s) FAILED");
        std::process::exit(1);
    }
    println!("all decision-model checks passed");
}
