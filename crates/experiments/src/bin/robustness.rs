//! Fault-injection robustness sweep and deterministic failure replay.
//!
//! Default mode sweeps fault probability × offered load for the controlled
//! protocol, comparing loss against the fault-free baseline of the same
//! seed, then exercises the per-station divergence detector under receive
//! deafness. Results land in `results/robustness.csv` and
//! `results/robustness.txt`.
//!
//! Every run executes under a panic guard: a panic, a tripped invariant,
//! or a detected divergence writes a replay artifact under
//! `results/failures/` containing the seed, the fault plan and the
//! workload. Re-running with
//!
//! ```text
//! cargo run --release -p tcw-experiments --bin robustness -- --replay <artifact>
//! ```
//!
//! re-executes the identical timeline and must reproduce the identical
//! failure (the binary exits non-zero if it does not).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use tcw_experiments::diag;
use tcw_experiments::plot::{ascii_plot, write_csv, Series};
use tcw_experiments::replay::{execute, panic_message, replay, FailureRecord};
use tcw_experiments::runner::{FaultSimPoint, PolicyKind, SimSettings};
use tcw_experiments::supervise::{supervised_cells, SupervisorOptions};
use tcw_experiments::sweep::{jobs_from_args, run_parallel_with_progress};
use tcw_experiments::{
    observed_cell, write_observability, CellArtifacts, ObsConfig, Panel, SweepMeta,
};
use tcw_mac::{ChurnPlan, FaultPlan};

const FAULT_PROBS: [f64; 5] = [0.0, 0.01, 0.02, 0.05, 0.10];
const LOADS: [f64; 3] = [0.25, 0.50, 0.75];
const M: u64 = 25;
const K_TAU: f64 = 100.0;
const SEED: u64 = 1983;

fn settings() -> SimSettings {
    SimSettings {
        ticks_per_tau: 16,
        messages: 8_000,
        warmup: 800,
        ..Default::default()
    }
}

/// Runs a configuration; on failure writes a replay artifact and returns
/// its path.
fn guarded(rec: &FailureRecord, out_dir: &Path) -> Result<String, PathBuf> {
    let (kind, detail) = execute(rec);
    if kind == "ok" {
        return Ok(detail);
    }
    let mut failed = rec.clone();
    failed.kind = kind.clone();
    failed.detail = detail;
    let path = out_dir.join(format!(
        "failure_{}_seed{}_p{:02}.json",
        kind,
        rec.seed,
        (rec.plan.erasure * 100.0).round() as u32
    ));
    failed.save(&path).expect("write replay artifact");
    Err(path)
}

fn base_record(rho_prime: f64, plan: FaultPlan) -> FailureRecord {
    FailureRecord {
        seed: SEED,
        plan,
        churn: ChurnPlan::none(),
        panel: Panel { rho_prime, m: M },
        policy: PolicyKind::Controlled,
        k_tau: K_TAU,
        settings: settings(),
        kind: String::new(),
        detail: String::new(),
    }
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let (obs, args) = match ObsConfig::split_args(&raw) {
        Ok(v) => v,
        Err(e) => {
            diag::error("robustness", &e);
            std::process::exit(diag::EXIT_USAGE);
        }
    };
    let (sup, args) = match SupervisorOptions::split_args(&args) {
        Ok(v) => v,
        Err(e) => {
            diag::error("robustness", &e);
            std::process::exit(diag::EXIT_USAGE);
        }
    };
    if sup.is_some() && obs.wants_telemetry() {
        diag::error(
            "robustness",
            "supervision flags are incompatible with --trace-events/--spans/--metrics",
        );
        std::process::exit(diag::EXIT_USAGE);
    }
    if args.first().is_some_and(|a| a == "--replay") {
        let Some(path) = args.get(1) else {
            diag::error("robustness", "--replay needs an artifact path");
            std::process::exit(diag::EXIT_USAGE);
        };
        std::process::exit(replay(Path::new(path)));
    }
    let jobs = jobs_from_args(&args);

    let results = Path::new("results");
    let failures_dir = results.join("failures");
    let mut report = String::new();
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut series: Vec<Series> = Vec::new();
    let glyphs = ['o', '+', 'x'];

    println!("fault-injection sweep: controlled protocol, M={M}, K={K_TAU} tau\n");

    // The full load × fault-probability grid runs as one parallel sweep;
    // each worker catches its cell's panic so a failing cell is reported
    // (and its replay artifact written) in deterministic cell order below,
    // exactly as the serial sweep did.
    let cells: Vec<(f64, f64)> = LOADS
        .iter()
        .flat_map(|&rho| FAULT_PROBS.iter().map(move |&p| (rho, p)))
        .collect();
    let (outcomes, cell_artifacts): (Vec<Result<FaultSimPoint, String>>, Vec<CellArtifacts>) =
        if let Some(sup) = &sup {
            // The seed, panel shape and grid size define the cells; any
            // change to them invalidates a resume journal.
            let fingerprint =
                tcw_sim::snap::checksum(&[SEED, M, K_TAU.to_bits(), cells.len() as u64]);
            let points = supervised_cells(
                "robustness",
                "robustness",
                cells.len(),
                jobs,
                sup,
                obs.progress,
                fingerprint,
                |cell| {
                    let rho = LOADS[cell / FAULT_PROBS.len()];
                    let p = FAULT_PROBS[cell % FAULT_PROBS.len()];
                    format!("rho'={rho:.2} p={p:.2} seed {SEED}")
                },
                |i| {
                    let rho = LOADS[i / FAULT_PROBS.len()];
                    let p = FAULT_PROBS[i % FAULT_PROBS.len()];
                    let rec = base_record(rho, FaultPlan::uniform(p));
                    let point = tcw_experiments::runner::simulate_churn(
                        rec.panel,
                        rec.policy,
                        rec.k_tau,
                        rec.settings,
                        rec.seed,
                        rec.plan,
                        ChurnPlan::none(),
                    );
                    FaultSimPoint {
                        point: point.point,
                        faults: point.faults,
                    }
                },
            );
            let n = points.len();
            (
                points.into_iter().map(Ok).collect(),
                (0..n).map(|_| CellArtifacts::default()).collect(),
            )
        } else {
            let caps = obs.capture();
            let progress = obs
                .progress
                .then(|| tcw_obs::Progress::new(cells.len(), jobs));
            let outcomes: Vec<(Result<FaultSimPoint, String>, CellArtifacts)> =
                run_parallel_with_progress(&cells, jobs, progress.as_ref(), |i, &(rho, p)| {
                    let rec = base_record(rho, FaultPlan::uniform(p));
                    let label = format!("rho={rho:.2} p={p:.2}");
                    let rho_s = format!("{rho}");
                    let p_s = format!("{p}");
                    let labels = [("rho", rho_s.as_str()), ("fault_prob", p_s.as_str())];
                    catch_unwind(AssertUnwindSafe(|| {
                        let (point, art) = observed_cell(
                            caps,
                            i,
                            &label,
                            &labels,
                            rec.panel,
                            rec.policy,
                            rec.k_tau,
                            rec.settings,
                            rec.seed,
                            rec.plan,
                            ChurnPlan::none(),
                        );
                        if let Some(pr) = &progress {
                            let h = point.horizon;
                            pr.note_horizon(
                                h.jumps,
                                h.slots_skipped,
                                h.batched_runs,
                                h.batched_slots,
                            );
                        }
                        (
                            FaultSimPoint {
                                point: point.point,
                                faults: point.faults,
                            },
                            art,
                        )
                    }))
                    .map(|(fsp, art)| (Ok(fsp), art))
                    .unwrap_or_else(|e| (Err(panic_message(e)), CellArtifacts::default()))
                });
            if let Some(p) = &progress {
                p.finish();
            }
            outcomes.into_iter().unzip()
        };

    let mut outcome_iter = outcomes.into_iter();
    for (li, &rho) in LOADS.iter().enumerate() {
        let mut points = Vec::new();
        for &p in &FAULT_PROBS {
            let rec = base_record(rho, FaultPlan::uniform(p));
            let fsp: FaultSimPoint = match outcome_iter.next().expect("one outcome per cell") {
                Ok(fsp) => fsp,
                Err(message) => {
                    let mut failed = rec.clone();
                    failed.kind = "panic".to_string();
                    failed.detail = message;
                    let path = failures_dir.join(format!(
                        "failure_panic_seed{}_rho{:02}_p{:02}.json",
                        rec.seed,
                        (rho * 100.0) as u32,
                        (p * 100.0).round() as u32
                    ));
                    failed.save(&path).expect("write replay artifact");
                    diag::error(
                        "robustness",
                        &format!(
                            "run panicked; replay artifact written to {}\n  reproduce: cargo run --release -p tcw-experiments --bin robustness -- --replay {}",
                            path.display(),
                            path.display()
                        ),
                    );
                    std::process::exit(diag::EXIT_FAILURE);
                }
            };
            let line = format!(
                "rho'={rho:.2} p={p:.2}: loss={:.4} util={:.3} corrupted={} erased={} resyncs={} abandoned={} reopened={} fault_losses={}",
                fsp.point.loss,
                fsp.point.utilization,
                fsp.faults.corrupted_slots,
                fsp.faults.erased_slots,
                fsp.faults.resyncs,
                fsp.faults.rounds_abandoned,
                fsp.faults.reopened,
                fsp.faults.fault_losses,
            );
            println!("  {line}");
            report.push_str(&line);
            report.push('\n');
            rows.push(vec![
                format!("{rho}"),
                format!("{p}"),
                format!("{}", fsp.point.loss),
                format!("{}", fsp.point.utilization),
                format!("{}", fsp.faults.corrupted_slots),
                format!("{}", fsp.faults.erased_slots),
                format!("{}", fsp.faults.resyncs),
                format!("{}", fsp.faults.rounds_abandoned),
                format!("{}", fsp.faults.reopened),
                format!("{}", fsp.faults.fault_losses),
            ]);
            points.push((p, fsp.point.loss));
        }
        series.push(Series {
            label: format!("rho'={rho:.2}"),
            glyph: glyphs[li % glyphs.len()],
            points,
        });
        println!();
    }

    let y_max = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.1))
        .fold(0.0f64, f64::max)
        .max(1e-3)
        * 1.2;
    let chart = ascii_plot(
        "loss vs fault probability (controlled, M=25, K=100 tau)",
        &series,
        72,
        20,
        0.0,
        y_max,
    );
    println!("{chart}");
    report.push('\n');
    report.push_str(&chart);

    // Divergence detector under receive deafness: the one fault class that
    // breaks the shared-view invariant. The detector must both catch it
    // and recover via beacon resync, and the failure must be replayable.
    println!("\ndivergence detector (deafness faults):\n");
    let mut deaf_plan = FaultPlan::uniform(0.02);
    deaf_plan.deafness = 0.002;
    deaf_plan.deaf_slots = 4;
    let rec = base_record(0.50, deaf_plan);
    match guarded(&rec, &failures_dir) {
        Ok(detail) => {
            let line = format!("  station 0 never diverged ({detail})");
            println!("{line}");
            report.push_str(&line);
        }
        Err(path) => {
            let loaded = FailureRecord::load(&path).expect("reload artifact");
            let line = format!(
                "  [{}] {}\n  replay artifact: {}\n  reproduce: cargo run --release -p tcw-experiments --bin robustness -- --replay {}",
                loaded.kind,
                loaded.detail,
                path.display(),
                path.display()
            );
            println!("{line}");
            report.push_str(&line);
        }
    }
    report.push('\n');

    write_csv(
        &results.join("robustness.csv"),
        &[
            "rho_prime",
            "fault_prob",
            "loss",
            "utilization",
            "corrupted_slots",
            "erased_slots",
            "resyncs",
            "rounds_abandoned",
            "reopened",
            "fault_losses",
        ],
        &rows,
    )
    .expect("write csv");
    std::fs::write(results.join("robustness.txt"), &report).expect("write report");
    if let Err(e) = write_observability(
        &obs,
        &cell_artifacts,
        SweepMeta {
            cells: cell_artifacts.len(),
        },
    ) {
        diag::error("robustness", &e);
        std::process::exit(diag::EXIT_FAILURE);
    }
    println!("\nwrote results/robustness.csv and results/robustness.txt");
}
