//! Age-of-Information sweep: freshness of the protocol under deadline
//! control.
//!
//! Sweeps deadline K × offered load for the controlled and FCFS window
//! orders at M = 25, measuring the per-station age process next to the
//! conventional loss/utilization figures: time-averaged age, mean peak
//! age, and the fraction of observed time the age exceeded the deadline
//! K (all in units of `tau`, exact integer sawtooth underneath — see
//! `tcw_window::metrics::AgeTracker`). Results land in
//! `results/aoi.csv` and `results/aoi.txt`.
//!
//! The sweep is fully deterministic (fixed seed, no wall-clock values),
//! so both artifacts are committed and CI regenerates them under
//! `git diff --exit-code`. Telemetry flags (`--spans PATH`,
//! `--metrics PATH`, `--trace-events PATH`) attach passive observers
//! whose output is byte-identical for any `--jobs N`; `--obs-cell` runs
//! a single tiny sample cell whose span stream and metrics registry are
//! committed under `results/obs/` for forensics walkthroughs
//! (see EXPERIMENTS.md) and CI lint.

use std::fmt::Write as _;
use std::path::Path;
use tcw_experiments::diag;
use tcw_experiments::plot::{ascii_plot, write_csv, Series};
use tcw_experiments::runner::{simulate_aoi, AoiRun, PolicyKind, SimSettings};
use tcw_experiments::sweep::{jobs_from_args, run_parallel_with_progress};
use tcw_experiments::{
    observe_engine_cell, write_observability, CellArtifacts, ObsConfig, Panel, SweepMeta,
};

const K_TAUS: [f64; 3] = [25.0, 50.0, 100.0];
const LOADS: [f64; 3] = [0.25, 0.50, 0.75];
const KINDS: [PolicyKind; 2] = [PolicyKind::Controlled, PolicyKind::Fcfs];
const M: u64 = 25;
const SEED: u64 = 1983;

fn settings() -> SimSettings {
    SimSettings {
        ticks_per_tau: 16,
        messages: 8_000,
        warmup: 800,
        ..Default::default()
    }
}

/// One grid cell: (deadline, load, policy).
#[derive(Clone, Copy)]
struct Cell {
    k: f64,
    rho_prime: f64,
    kind: PolicyKind,
}

fn grid() -> Vec<Cell> {
    let mut cells = Vec::new();
    for &k in &K_TAUS {
        for &rho_prime in &LOADS {
            for &kind in &KINDS {
                cells.push(Cell { k, rho_prime, kind });
            }
        }
    }
    cells
}

/// Runs the single tiny sample cell behind `--obs-cell`: busy panel,
/// controlled protocol, tight deadline — small enough that the full span
/// stream is a readable, committable artifact, busy enough to exhibit
/// collisions and a deadline discard for the EXPERIMENTS.md forensics
/// walkthrough. Fully deterministic, so CI diff-checks the outputs.
fn run_obs_cell(obs: &ObsConfig) -> i32 {
    if obs.spans.is_none() || obs.metrics.is_none() {
        diag::error(
            "aoi",
            "--obs-cell needs both --spans PATH and --metrics PATH",
        );
        return diag::EXIT_USAGE;
    }
    let panel = Panel {
        rho_prime: 0.75,
        m: M,
    };
    let kind = PolicyKind::Controlled;
    let k = 25.0;
    let cell_settings = SimSettings {
        ticks_per_tau: 8,
        messages: 12,
        warmup: 2,
        stations: 20,
        guard: false,
    };
    let id = panel.id();
    let label = format!("{id} {} K={k}", kind.label());
    let labels = [
        ("panel", id.as_str()),
        ("policy", kind.label()),
        ("k", "25"),
        ("seed", "1983"),
    ];
    let (run, art) = observe_engine_cell(obs.capture(), 0, &label, &labels, |o, sink| {
        tcw_experiments::runner::simulate_aoi_observed(panel, kind, k, cell_settings, SEED, o, sink)
    });
    if let Err(e) = write_observability(obs, &[art], SweepMeta { cells: 1 }) {
        diag::error("aoi", &e);
        return diag::EXIT_FAILURE;
    }
    println!(
        "obs-cell: {label} (seed {SEED}) loss={:.6} offered={} mean_age={:.3} tau -> {} + {}",
        run.point.loss,
        run.point.offered,
        run.aoi.mean_age_tau,
        obs.spans.as_ref().unwrap().display(),
        obs.metrics.as_ref().unwrap().display(),
    );
    0
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let (obs, args) = match ObsConfig::split_args(&raw) {
        Ok(v) => v,
        Err(e) => {
            diag::error("aoi", &e);
            std::process::exit(diag::EXIT_USAGE);
        }
    };
    if args.iter().any(|a| a == "--obs-cell") {
        std::process::exit(run_obs_cell(&obs));
    }
    let jobs = jobs_from_args(&args);
    let results = Path::new("results");
    std::fs::create_dir_all(results).expect("create results dir");

    println!("Age-of-Information sweep (M={M}, seed {SEED})\n");

    let cells = grid();
    let caps = obs.capture();
    let progress = obs
        .progress
        .then(|| tcw_obs::Progress::new(cells.len(), jobs));
    let outcomes: Vec<(AoiRun, CellArtifacts)> =
        run_parallel_with_progress(&cells, jobs, progress.as_ref(), |i, c| {
            let label = format!("rho'={:.2} {} K={}", c.rho_prime, c.kind.label(), c.k);
            let k_s = format!("{}", c.k);
            let rho_s = format!("{}", c.rho_prime);
            let labels = [
                ("rho", rho_s.as_str()),
                ("policy", c.kind.label()),
                ("k", k_s.as_str()),
            ];
            let panel = Panel {
                rho_prime: c.rho_prime,
                m: M,
            };
            let (run, art) = if caps.any() {
                observe_engine_cell(caps, i, &label, &labels, |o, sink| {
                    tcw_experiments::runner::simulate_aoi_observed(
                        panel,
                        c.kind,
                        c.k,
                        settings(),
                        SEED,
                        o,
                        sink,
                    )
                })
            } else {
                (
                    simulate_aoi(panel, c.kind, c.k, settings(), SEED),
                    CellArtifacts::default(),
                )
            };
            if let Some(p) = &progress {
                let h = run.horizon;
                p.note_horizon(h.jumps, h.slots_skipped, h.batched_runs, h.batched_slots);
            }
            (run, art)
        });
    if let Some(p) = &progress {
        p.finish();
    }
    let (runs, cell_artifacts): (Vec<AoiRun>, Vec<CellArtifacts>) = outcomes.into_iter().unzip();

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut report = String::from(
        "Age-of-Information sweep (M=25, controlled vs FCFS)\n\
         Ages in units of tau; the sawtooth integral is exact integer\n\
         arithmetic over ticks (tcw_window::metrics::AgeTracker).\n\n",
    );
    let mut series: Vec<Series> = Vec::new();
    let glyphs = ['o', '+', 'x'];
    for (ri, &rho_prime) in LOADS.iter().enumerate() {
        series.push(Series {
            label: format!("rho'={rho_prime:.2} ctrl"),
            glyph: glyphs[ri % glyphs.len()],
            points: Vec::new(),
        });
    }
    for (cell, run) in cells.iter().zip(&runs) {
        let line = format!(
            "K={:<5} rho'={:.2} {:<10} loss={:.4} util={:.3} mean_age={:.2} peak_age={:.2} violation={:.4} deliveries={} stations={}",
            cell.k,
            cell.rho_prime,
            cell.kind.label(),
            run.point.loss,
            run.point.utilization,
            run.aoi.mean_age_tau,
            run.aoi.peak_age_tau,
            run.aoi.violation,
            run.aoi.deliveries,
            run.aoi.stations_observed,
        );
        println!("  {line}");
        let _ = writeln!(report, "{line}");
        rows.push(vec![
            format!("{}", cell.k),
            format!("{}", cell.rho_prime),
            cell.kind.label().to_string(),
            format!("{}", run.point.loss),
            format!("{}", run.point.utilization),
            format!("{}", run.aoi.mean_age_tau),
            format!("{}", run.aoi.peak_age_tau),
            format!("{}", run.aoi.violation),
            format!("{}", run.aoi.deliveries),
            format!("{}", run.aoi.stations_observed),
        ]);
        if cell.kind == PolicyKind::Controlled {
            let ri = LOADS
                .iter()
                .position(|&r| r == cell.rho_prime)
                .expect("load in grid");
            series[ri].points.push((cell.k, run.aoi.mean_age_tau));
        }
    }

    let y_max = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.1))
        .fold(0.0f64, f64::max)
        .max(1e-3)
        * 1.2;
    let chart = ascii_plot(
        "mean age vs deadline K (controlled, M=25)",
        &series,
        72,
        20,
        0.0,
        y_max,
    );
    println!("\n{chart}");
    report.push('\n');
    report.push_str(&chart);

    write_csv(
        &results.join("aoi.csv"),
        &[
            "k",
            "rho_prime",
            "policy",
            "loss",
            "utilization",
            "mean_age_tau",
            "peak_age_tau",
            "violation",
            "deliveries",
            "stations_observed",
        ],
        &rows,
    )
    .expect("write csv");
    std::fs::write(results.join("aoi.txt"), &report).expect("write report");
    if let Err(e) = write_observability(
        &obs,
        &cell_artifacts,
        SweepMeta {
            cells: cell_artifacts.len(),
        },
    ) {
        diag::error("aoi", &e);
        std::process::exit(diag::EXIT_FAILURE);
    }
    println!("\nwrote results/aoi.csv and results/aoi.txt");
}
