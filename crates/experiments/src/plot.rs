//! CSV output and ASCII plotting for the experiment binaries.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Writes a CSV file with a header row.
pub fn write_csv(path: &Path, header: &[&str], rows: &[Vec<String>]) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    fs::write(path, out)
}

/// One series for the ASCII plot.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Plot glyph.
    pub glyph: char,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
}

/// Renders series into a fixed-size ASCII chart (y is clamped to
/// `[y_min, y_max]`).
pub fn ascii_plot(
    title: &str,
    series: &[Series],
    width: usize,
    height: usize,
    y_min: f64,
    y_max: f64,
) -> String {
    assert!(width >= 16 && height >= 4);
    assert!(y_max > y_min);
    let x_min = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.0))
        .fold(f64::INFINITY, f64::min);
    let x_max = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.0))
        .fold(f64::NEG_INFINITY, f64::max);
    let mut grid = vec![vec![' '; width]; height];
    if x_max > x_min {
        for s in series {
            for &(x, y) in &s.points {
                let xi = ((x - x_min) / (x_max - x_min) * (width - 1) as f64).round() as usize;
                let yn = ((y - y_min) / (y_max - y_min)).clamp(0.0, 1.0);
                let yi = height - 1 - (yn * (height - 1) as f64).round() as usize;
                let cell = &mut grid[yi][xi.min(width - 1)];
                *cell = if *cell == ' ' || *cell == s.glyph {
                    s.glyph
                } else {
                    '*' // overlapping series
                };
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    for (i, row) in grid.iter().enumerate() {
        let y = y_max - (y_max - y_min) * i as f64 / (height - 1) as f64;
        let _ = writeln!(out, "{y:6.2} |{}|", row.iter().collect::<String>());
    }
    let _ = writeln!(out, "       {}", "-".repeat(width + 2));
    let _ = writeln!(out, "       x: {x_min:.0} .. {x_max:.0}");
    for s in series {
        let _ = writeln!(out, "       {} = {}", s.glyph, s.label);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("tcw_plot_test");
        let path = dir.join("x.csv");
        write_csv(
            &path,
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        )
        .unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert_eq!(text, "a,b\n1,2\n3,4\n");
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn plot_contains_series_glyphs_and_labels() {
        let s = vec![
            Series {
                label: "one".into(),
                glyph: 'o',
                points: vec![(0.0, 0.1), (10.0, 0.9)],
            },
            Series {
                label: "two".into(),
                glyph: 'x',
                points: vec![(0.0, 0.5), (10.0, 0.5)],
            },
        ];
        let p = ascii_plot("demo", &s, 40, 10, 0.0, 1.0);
        assert!(p.contains('o'));
        assert!(p.contains('x'));
        assert!(p.contains("one"));
        assert!(p.contains("x: 0 .. 10"));
    }

    #[test]
    fn overlapping_points_are_starred() {
        let s = vec![
            Series {
                label: "a".into(),
                glyph: 'a',
                points: vec![(5.0, 0.5), (0.0, 0.0)],
            },
            Series {
                label: "b".into(),
                glyph: 'b',
                points: vec![(5.0, 0.5), (10.0, 1.0)],
            },
        ];
        let p = ascii_plot("t", &s, 20, 5, 0.0, 1.0);
        assert!(p.contains('*'));
    }
}
