//! # tcw-experiments — the reproduction harness
//!
//! Shared machinery for the binaries that regenerate every figure of the
//! paper:
//!
//! * `fig7` — the six Figure-7 panels (`rho' ∈ {0.25, 0.50, 0.75} ×
//!   M ∈ {25, 100}`): analytic controlled curve, simulated controlled /
//!   FCFS / LCFS points, analytic FCFS check; CSV + ASCII plots;
//! * `limits` — the eq. 4.7 boundary checks reported in §4.1;
//! * `mdp_verify` — the Theorem-1 / semi-Markov decision model
//!   verification of §3 and Appendix A;
//! * `ablate` — design-choice ablations (discard on/off, split rule,
//!   window length, scheduling-time shape, guard slot);
//! * `trace_window` — the figure 1 / figure 4 operation walk-through;
//! * `robustness` — fault-injection sweeps (imperfect channel feedback)
//!   against the fault-free baseline, plus the deterministic
//!   failure-replay harness (`--replay <artifact>`);
//! * `adaptive` — adaptive window control under non-stationary and
//!   adversarial load: stale static tuning vs per-segment oracle vs the
//!   AIMD and rate-estimating controllers, with per-cell regret and the
//!   `--episode` load-step walk-through;
//! * `chaos` — composed stress sweeps (faults × churn × load ×
//!   controllers) run under the `tcw-window` invariant monitor, with
//!   delta-debugging shrinking of failures to minimal replay artifacts.
//!
//! The library part hosts the simulation runners (so the `tcw-bench`
//! criterion benches reuse exactly the code that produced EXPERIMENTS.md)
//! and small CSV/ASCII-plot helpers.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adaptive;
pub mod chaos;
pub mod diag;
pub mod obs;
pub mod panels;
pub mod plot;
pub mod replay;
pub mod runner;
pub mod supervise;
pub mod sweep;

pub use chaos::{
    execute as chaos_execute, shrink, ChaosConfig, ChaosController, ChaosOutcome, ChaosRecord,
    Mutation, ShrinkResult, ShrinkStep,
};
pub use obs::{
    observe_engine_cell, observed_cell, write_observability, Capture, CellArtifacts, ObsConfig,
    SweepMeta,
};
pub use panels::{Panel, PANELS};
pub use replay::FailureRecord;
pub use runner::{
    simulate_panel, simulate_panel_faulty, simulate_with_detector, DetectorReport, FaultCounters,
    FaultSimPoint, PolicyKind, SimPoint, SimSettings,
};
pub use supervise::{
    load_engine_snapshot, run_supervised, save_engine_snapshot, snapshot_from_artifact,
    snapshot_to_artifact, supervised_cells, Journal, JournalItem, Quarantined, SupervisorOptions,
    SweepOutcome,
};
pub use sweep::{jobs_from_args, run_parallel, run_parallel_with_progress, Cell};
