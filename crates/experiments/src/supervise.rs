//! Crash-safe sweep supervision: retries, a wall-clock watchdog,
//! quarantine, and a crash-consistent resume journal.
//!
//! The plain executor in [`crate::sweep`] assumes every cell finishes;
//! a panic aborts the whole sweep (with its cell index surfaced) and a
//! wedged cell stalls it forever. This module adds the fault-tolerant
//! mode behind the `--resume PATH`, `--cell-timeout SECS` and
//! `--retries N` flags of the experiment binaries:
//!
//! * **Supervision** — [`run_supervised`] executes each cell under
//!   [`std::panic::catch_unwind`] and, when a timeout is configured, on a
//!   watchdogged thread cut off by `recv_timeout`. Failed attempts are
//!   retried with exponential backoff; a cell that exhausts its budget is
//!   **quarantined** (reported with its index so the caller can name the
//!   replay seed) while the rest of the sweep completes.
//! * **Journal** — completed cells are appended to a per-line-checksummed
//!   NDJSON journal, rewritten through a temp file and `rename` so the
//!   file on disk is always a consistent prefix of the sweep. Reopening
//!   the journal (`--resume`) validates the header (format, binary
//!   version, experiment tag, grid fingerprint) and every line checksum,
//!   then skips the journaled cells; corruption or staleness is rejected
//!   up front and the binaries exit with [`crate::diag::EXIT_FAILURE`].
//! * **Observability** — retry/timeout/quarantine/resume-skip events feed
//!   the [`tcw_obs::Progress`] supervisor counters (rendered in the
//!   `--progress` line) and are totalled in [`SweepOutcome`].
//!
//! Because every cell is a pure function of its index, a resumed sweep
//! reassembles results in cell order exactly as an uninterrupted one
//! does: the final CSV/TXT outputs are byte-identical. Journal *entries*
//! are appended in completion order, which may vary across `--jobs`
//! settings — the journal is an execution log, not a result artifact.
//!
//! A timed-out attempt's thread cannot be killed in safe Rust; it is
//! abandoned (detached) and its eventual result is discarded. Abandoned
//! threads hold no locks — cells share no state — so they can only waste
//! a core until the cell returns or the process exits.
//!
//! This module also provides the version-stamped artifact envelope for
//! **engine checkpoints** ([`snapshot_to_artifact`] /
//! [`snapshot_from_artifact`]): the word stream of
//! `tcw_window::Engine::snapshot` wrapped in the same flat-JSON envelope
//! as every replay artifact, with an explicit whole-stream checksum.

use crate::replay::{
    load_artifact, panic_message, parse_flat, ArtifactReader, ArtifactWriter, ARTIFACT_VERSION,
};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Duration;
use tcw_obs::Progress;
use tcw_sim::snap::{self, SnapError, SnapReader, SnapWriter};

/// Journal file format version; bumped on any layout change.
pub const JOURNAL_FORMAT: u64 = 2;

/// `experiment` tag of the engine-checkpoint artifact envelope.
pub const SNAPSHOT_EXPERIMENT: &str = "engine-snapshot";

// ---------------------------------------------------------------------------
// Options

/// Supervision knobs parsed from the command line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SupervisorOptions {
    /// Journal path (`--resume PATH`): created when absent, validated and
    /// skipped-from when present.
    pub resume: Option<PathBuf>,
    /// Wall-clock budget per attempt (`--cell-timeout SECS`).
    pub cell_timeout: Option<Duration>,
    /// Retries after the first failed attempt (`--retries N`).
    pub retries: u32,
    /// Base backoff slept before retry `k` (doubling each attempt,
    /// capped at 32x). Not exposed as a flag; tests shrink it.
    pub backoff: Duration,
}

impl Default for SupervisorOptions {
    fn default() -> Self {
        SupervisorOptions {
            resume: None,
            cell_timeout: None,
            retries: 2,
            backoff: Duration::from_millis(100),
        }
    }
}

impl SupervisorOptions {
    /// Splits the supervision flags out of a raw argument list. Returns
    /// `None` (and the arguments untouched) when no supervision flag is
    /// present — the binaries then take their historical, zero-overhead
    /// path.
    pub fn split_args(args: &[String]) -> Result<(Option<Self>, Vec<String>), String> {
        let mut opts = SupervisorOptions::default();
        let mut seen = false;
        let mut rest = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let value = |name: &str, inline: Option<&str>, it: &mut std::slice::Iter<String>| {
                match inline {
                    Some(v) => Ok(v.to_string()),
                    None => it
                        .next()
                        .cloned()
                        .ok_or_else(|| format!("{name} needs a value")),
                }
            };
            if a == "--resume" || a.starts_with("--resume=") {
                let v = value("--resume", a.strip_prefix("--resume="), &mut it)?;
                opts.resume = Some(PathBuf::from(v));
                seen = true;
            } else if a == "--cell-timeout" || a.starts_with("--cell-timeout=") {
                let v = value("--cell-timeout", a.strip_prefix("--cell-timeout="), &mut it)?;
                let secs: f64 = v
                    .parse()
                    .map_err(|_| format!("--cell-timeout expects seconds, got {v:?}"))?;
                if !(secs > 0.0 && secs.is_finite()) {
                    return Err(format!("--cell-timeout must be positive, got {v:?}"));
                }
                opts.cell_timeout = Some(Duration::from_secs_f64(secs));
                seen = true;
            } else if a == "--retries" || a.starts_with("--retries=") {
                let v = value("--retries", a.strip_prefix("--retries="), &mut it)?;
                opts.retries = v
                    .parse()
                    .map_err(|_| format!("--retries expects a non-negative integer, got {v:?}"))?;
                seen = true;
            } else {
                rest.push(a.clone());
            }
        }
        Ok((seen.then_some(opts), rest))
    }
}

// ---------------------------------------------------------------------------
// Journaled result encoding

/// A sweep result type that can be journaled as a word stream.
///
/// Encoders and decoders must be exact inverses; `f64`s travel as raw
/// bits through [`SnapWriter::push_f64`], so journaled results restore
/// bit-identically and a resumed sweep's outputs match an uninterrupted
/// run byte for byte.
pub trait JournalItem: Sized {
    /// Appends this result's words to the stream.
    fn encode(&self, w: &mut SnapWriter);
    /// Reads one result back from the stream.
    fn decode(r: &mut SnapReader) -> Result<Self, SnapError>;
}

impl JournalItem for crate::runner::SimPoint {
    fn encode(&self, w: &mut SnapWriter) {
        w.push_f64(self.k);
        w.push_f64(self.loss);
        w.push_f64(self.ci95);
        w.push_f64(self.sender_loss);
        w.push_f64(self.sched_time_mean);
        w.push_f64(self.round_overhead_mean);
        w.push_f64(self.utilization);
        w.push(self.offered);
    }
    fn decode(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(crate::runner::SimPoint {
            k: r.take_f64()?,
            loss: r.take_f64()?,
            ci95: r.take_f64()?,
            sender_loss: r.take_f64()?,
            sched_time_mean: r.take_f64()?,
            round_overhead_mean: r.take_f64()?,
            utilization: r.take_f64()?,
            offered: r.take()?,
        })
    }
}

impl JournalItem for crate::runner::FaultCounters {
    fn encode(&self, w: &mut SnapWriter) {
        w.push(self.corrupted_slots);
        w.push(self.erased_slots);
        w.push(self.resyncs);
        w.push(self.rounds_abandoned);
        w.push(self.reopened);
        w.push(self.fault_losses);
    }
    fn decode(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(crate::runner::FaultCounters {
            corrupted_slots: r.take()?,
            erased_slots: r.take()?,
            resyncs: r.take()?,
            rounds_abandoned: r.take()?,
            reopened: r.take()?,
            fault_losses: r.take()?,
        })
    }
}

impl JournalItem for crate::runner::ChurnCounters {
    fn encode(&self, w: &mut SnapWriter) {
        w.push(self.crashes);
        w.push(self.restarts);
        w.push(self.joins);
        w.push(self.leaves);
        w.push(self.blocked);
        w.push(self.losses);
        w.push(self.reopened);
        w.push_f64(self.rejoin_mean_slots);
        w.push_f64(self.rejoin_max_slots);
    }
    fn decode(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(crate::runner::ChurnCounters {
            crashes: r.take()?,
            restarts: r.take()?,
            joins: r.take()?,
            leaves: r.take()?,
            blocked: r.take()?,
            losses: r.take()?,
            reopened: r.take()?,
            rejoin_mean_slots: r.take_f64()?,
            rejoin_max_slots: r.take_f64()?,
        })
    }
}

impl JournalItem for crate::runner::FaultSimPoint {
    fn encode(&self, w: &mut SnapWriter) {
        self.point.encode(w);
        self.faults.encode(w);
    }
    fn decode(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(crate::runner::FaultSimPoint {
            point: JournalItem::decode(r)?,
            faults: JournalItem::decode(r)?,
        })
    }
}

impl JournalItem for tcw_window::engine::HorizonStats {
    fn encode(&self, w: &mut SnapWriter) {
        w.push(self.jumps);
        w.push(self.slots_skipped);
        w.push(self.batched_runs);
        w.push(self.batched_slots);
    }
    fn decode(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(tcw_window::engine::HorizonStats {
            jumps: r.take()?,
            slots_skipped: r.take()?,
            batched_runs: r.take()?,
            batched_slots: r.take()?,
        })
    }
}

impl JournalItem for crate::runner::ChurnSimPoint {
    fn encode(&self, w: &mut SnapWriter) {
        self.point.encode(w);
        self.faults.encode(w);
        self.churn.encode(w);
        self.horizon.encode(w);
    }
    fn decode(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(crate::runner::ChurnSimPoint {
            point: JournalItem::decode(r)?,
            faults: JournalItem::decode(r)?,
            churn: JournalItem::decode(r)?,
            horizon: JournalItem::decode(r)?,
        })
    }
}

impl JournalItem for crate::adaptive::CellOutcome {
    fn encode(&self, w: &mut SnapWriter) {
        w.push(self.offered);
        w.push_f64(self.loss);
        w.push(self.window_ticks);
        w.push(self.shrinks);
        w.push(self.grows);
    }
    fn decode(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(crate::adaptive::CellOutcome {
            offered: r.take()?,
            loss: r.take_f64()?,
            window_ticks: r.take()?,
            shrinks: r.take()?,
            grows: r.take()?,
        })
    }
}

impl JournalItem for crate::chaos::ChaosOutcome {
    fn encode(&self, w: &mut SnapWriter) {
        w.push_str(&self.kind);
        w.push_str(&self.class);
        w.push_str(&self.detail);
        w.push(self.violations);
        w.push(self.divergences);
        w.push(self.checks);
        w.push(self.deliveries);
        w.push(self.offered);
        w.push_f64(self.loss);
    }
    fn decode(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(crate::chaos::ChaosOutcome {
            kind: r.take_str()?,
            class: r.take_str()?,
            detail: r.take_str()?,
            violations: r.take()?,
            divergences: r.take()?,
            checks: r.take()?,
            deliveries: r.take()?,
            offered: r.take()?,
            loss: r.take_f64()?,
        })
    }
}

// ---------------------------------------------------------------------------
// Hex word streams

fn words_to_hex(words: &[u64]) -> String {
    let mut s = String::with_capacity(words.len() * 16);
    for w in words {
        s.push_str(&format!("{w:016x}"));
    }
    s
}

fn hex_to_words(s: &str) -> Result<Vec<u64>, String> {
    if s.len() % 16 != 0 {
        return Err(format!(
            "hex word stream has {} chars (not a multiple of 16)",
            s.len()
        ));
    }
    s.as_bytes()
        .chunks(16)
        .map(|c| {
            let t =
                std::str::from_utf8(c).map_err(|_| "non-ASCII byte in hex stream".to_string())?;
            u64::from_str_radix(t, 16).map_err(|e| format!("bad hex word {t:?}: {e}"))
        })
        .collect()
}

fn fnv_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Journal

/// Crash-consistent sweep journal: a header line naming the format,
/// binary version, experiment and grid fingerprint, then one checksummed
/// NDJSON line per completed cell. Every update rewrites the whole file
/// through `PATH.tmp` + atomic `rename`, so a crash at any instant leaves
/// either the previous or the new journal — never a torn one.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    lines: Vec<String>,
    completed: BTreeMap<usize, Vec<u64>>,
}

impl Journal {
    /// Opens (validating) or creates (writing the header immediately) the
    /// journal at `path` for the given experiment and grid fingerprint.
    pub fn open(path: &Path, experiment: &str, fingerprint: u64) -> Result<Self, String> {
        if path.exists() {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read journal {}: {e}", path.display()))?;
            Self::parse(path.to_path_buf(), &text, experiment, fingerprint)
                .map_err(|e| format!("journal {}: {e}", path.display()))
        } else {
            let j = Journal {
                path: path.to_path_buf(),
                lines: vec![Self::header(experiment, fingerprint)],
                completed: BTreeMap::new(),
            };
            j.write_all()?;
            Ok(j)
        }
    }

    fn header(experiment: &str, fingerprint: u64) -> String {
        let crc = fnv_bytes(
            format!("{JOURNAL_FORMAT}|{ARTIFACT_VERSION}|{experiment}|{fingerprint}").as_bytes(),
        );
        format!(
            "{{\"journal_format\": {JOURNAL_FORMAT}, \"version\": \"{ARTIFACT_VERSION}\", \
             \"experiment\": \"{experiment}\", \"fingerprint\": \"{fingerprint:016x}\", \
             \"crc\": \"{crc:016x}\"}}"
        )
    }

    fn parse(
        path: PathBuf,
        text: &str,
        experiment: &str,
        fingerprint: u64,
    ) -> Result<Self, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty journal file")?;
        let fields = parse_flat(header).map_err(|e| format!("bad header: {e}"))?;
        let field = |k: &str| -> Result<&String, String> {
            fields.get(k).ok_or(format!("header missing {k:?}"))
        };
        if field("journal_format")? != &JOURNAL_FORMAT.to_string() {
            return Err(format!(
                "unsupported journal format {} (this binary writes {JOURNAL_FORMAT})",
                field("journal_format")?
            ));
        }
        if field("version")? != ARTIFACT_VERSION {
            return Err(format!(
                "stale journal: written by version {}, this binary is {ARTIFACT_VERSION}",
                field("version")?
            ));
        }
        if field("experiment")? != experiment {
            return Err(format!(
                "journal belongs to experiment {:?}, not {experiment:?}",
                field("experiment")?
            ));
        }
        let parse_hex = |k: &str| -> Result<u64, String> {
            u64::from_str_radix(field(k)?, 16).map_err(|e| format!("bad {k} field: {e}"))
        };
        if parse_hex("fingerprint")? != fingerprint {
            return Err(
                "stale journal: grid fingerprint mismatch (the sweep configuration changed); \
                 delete the journal to start over"
                    .to_string(),
            );
        }
        let expect = fnv_bytes(
            format!("{JOURNAL_FORMAT}|{ARTIFACT_VERSION}|{experiment}|{fingerprint}").as_bytes(),
        );
        if parse_hex("crc")? != expect {
            return Err("header failed its checksum (corrupted journal)".to_string());
        }

        let mut kept = vec![header.to_string()];
        let mut completed = BTreeMap::new();
        for (n, line) in lines.enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let entry =
                Self::parse_entry(line).map_err(|e| format!("line {} corrupted: {e}", n + 2))?;
            let (cell, words) = entry;
            if completed.insert(cell, words).is_some() {
                return Err(format!("line {}: duplicate entry for cell {cell}", n + 2));
            }
            kept.push(line.to_string());
        }
        Ok(Journal {
            path,
            lines: kept,
            completed,
        })
    }

    fn parse_entry(line: &str) -> Result<(usize, Vec<u64>), String> {
        let fields = parse_flat(line)?;
        let field =
            |k: &str| -> Result<&String, String> { fields.get(k).ok_or(format!("missing {k:?}")) };
        let cell: usize = field("cell")?
            .parse()
            .map_err(|e| format!("bad cell index: {e}"))?;
        let words = hex_to_words(field("data")?)?;
        let crc = u64::from_str_radix(field("crc")?, 16).map_err(|e| format!("bad crc: {e}"))?;
        let mut checked = Vec::with_capacity(words.len() + 1);
        checked.push(cell as u64);
        checked.extend_from_slice(&words);
        if crc != snap::checksum(&checked) {
            return Err("entry failed its checksum".to_string());
        }
        Ok((cell, words))
    }

    /// The journaled word stream for `cell`, when present.
    pub fn completed(&self, cell: usize) -> Option<&[u64]> {
        self.completed.get(&cell).map(Vec::as_slice)
    }

    /// Number of journaled cells.
    pub fn len(&self) -> usize {
        self.completed.len()
    }

    /// Whether no cell has been journaled yet.
    pub fn is_empty(&self) -> bool {
        self.completed.is_empty()
    }

    /// Appends one completed cell and atomically persists the journal.
    pub fn record(&mut self, cell: usize, words: &[u64]) -> Result<(), String> {
        let mut checked = Vec::with_capacity(words.len() + 1);
        checked.push(cell as u64);
        checked.extend_from_slice(words);
        let crc = snap::checksum(&checked);
        self.lines.push(format!(
            "{{\"cell\": {cell}, \"data\": \"{}\", \"crc\": \"{crc:016x}\"}}",
            words_to_hex(words)
        ));
        self.completed.insert(cell, words.to_vec());
        self.write_all()
    }

    fn write_all(&self) -> Result<(), String> {
        if let Some(dir) = self.path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
            }
        }
        let mut content = self.lines.join("\n");
        content.push('\n');
        let tmp = self.path.with_extension("journal.tmp");
        std::fs::write(&tmp, &content)
            .map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &self.path)
            .map_err(|e| format!("cannot rename {} into place: {e}", tmp.display()))
    }
}

// ---------------------------------------------------------------------------
// Supervised execution

/// One cell that exhausted its retry budget.
#[derive(Debug, Clone)]
pub struct Quarantined {
    /// Grid index of the cell.
    pub cell: usize,
    /// Attempts consumed (1 + retries).
    pub attempts: u32,
    /// Last failure: the panic message, or the timeout description.
    pub reason: String,
}

/// The result of a supervised sweep.
pub struct SweepOutcome<T> {
    /// Per-cell results in grid order; `None` exactly for quarantined
    /// cells.
    pub results: Vec<Option<T>>,
    /// Cells that exhausted their retry budget, in grid order.
    pub quarantined: Vec<Quarantined>,
    /// Cells satisfied straight from the resume journal.
    pub resumed: usize,
    /// Total attempts retried after a failure.
    pub retries: u64,
    /// Total attempts cut off by the watchdog.
    pub timeouts: u64,
}

impl<T> SweepOutcome<T> {
    /// One-line supervisor summary for reports and stderr.
    pub fn summary(&self) -> String {
        format!(
            "supervisor: {} resumed, {} retries, {} timeouts, {} quarantined",
            self.resumed,
            self.retries,
            self.timeouts,
            self.quarantined.len()
        )
    }

    /// Unwraps a quarantine-free sweep into plain results.
    ///
    /// # Panics
    /// Panics when any cell was quarantined; callers check
    /// [`SweepOutcome::quarantined`] first.
    pub fn into_results(self) -> Vec<T> {
        assert!(
            self.quarantined.is_empty(),
            "into_results on a sweep with quarantined cells"
        );
        self.results
            .into_iter()
            .map(|r| r.expect("non-quarantined cell has a result"))
            .collect()
    }
}

enum AttemptFailure {
    Panic(String),
    Timeout,
}

/// Runs one attempt, watchdogged when a timeout is configured. The
/// watchdog thread is abandoned on timeout — safe Rust cannot cancel it —
/// and its late result (sent to a dropped receiver) is discarded.
fn attempt_cell<T, F>(f: F, cell: usize, timeout: Option<Duration>) -> Result<T, AttemptFailure>
where
    T: Send + 'static,
    F: FnOnce(usize) -> T + Send + 'static,
{
    match timeout {
        None => catch_unwind(AssertUnwindSafe(|| f(cell)))
            .map_err(|e| AttemptFailure::Panic(panic_message(e))),
        Some(limit) => {
            let (tx, rx) = mpsc::channel();
            let spawned = std::thread::Builder::new()
                .name(format!("tcw-cell-{cell}"))
                .spawn(move || {
                    let r = catch_unwind(AssertUnwindSafe(|| f(cell))).map_err(panic_message);
                    let _ = tx.send(r);
                });
            let handle = match spawned {
                Ok(h) => h,
                Err(e) => {
                    return Err(AttemptFailure::Panic(format!(
                        "could not spawn watchdogged cell thread: {e}"
                    )))
                }
            };
            match rx.recv_timeout(limit) {
                Ok(Ok(v)) => {
                    let _ = handle.join();
                    Ok(v)
                }
                Ok(Err(msg)) => {
                    let _ = handle.join();
                    Err(AttemptFailure::Panic(msg))
                }
                Err(_) => {
                    drop(handle); // abandoned; see module docs
                    Err(AttemptFailure::Timeout)
                }
            }
        }
    }
}

enum CellReport<T> {
    Done {
        cell: usize,
        value: T,
        words: Vec<u64>,
    },
    Quarantined(Quarantined),
}

/// Executes cells `0..n` under supervision and returns results in grid
/// order, with journaled cells skipped, failed attempts retried with
/// exponential backoff, and hopeless cells quarantined instead of
/// aborting the sweep.
///
/// `f` must be a pure function of the cell index (every binary's cells
/// already are — the seed is part of the cell), cloneable into watchdog
/// threads. Errors are I/O or validation failures (journal writes,
/// undecodable journal entries), which the binaries map to
/// [`crate::diag::EXIT_FAILURE`].
pub fn run_supervised<T, F>(
    n: usize,
    jobs: usize,
    opts: &SupervisorOptions,
    mut journal: Option<&mut Journal>,
    progress: Option<&Progress>,
    f: F,
) -> Result<SweepOutcome<T>, String>
where
    T: JournalItem + Send + 'static,
    F: Fn(usize) -> T + Send + Sync + Clone + 'static,
{
    let mut results: Vec<Option<T>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    let mut resumed = 0usize;
    if let Some(j) = journal.as_deref() {
        for (i, slot) in results.iter_mut().enumerate() {
            if let Some(words) = j.completed(i) {
                let mut r = SnapReader::new(words);
                let value = T::decode(&mut r)
                    .and_then(|v| r.finish().map(|()| v))
                    .map_err(|e| format!("journal entry for cell {i} does not decode: {e}"))?;
                *slot = Some(value);
                resumed += 1;
            }
        }
        if resumed > 0 {
            if let Some(p) = progress {
                p.note_resume_skipped(resumed as u64);
            }
        }
    }
    let todo: Vec<usize> = (0..n).filter(|&i| results[i].is_none()).collect();

    let retries_total = AtomicU64::new(0);
    let timeouts_total = AtomicU64::new(0);
    let mut quarantined: Vec<Quarantined> = Vec::new();
    if !todo.is_empty() {
        let workers = jobs.max(1).min(todo.len());
        let next = AtomicUsize::new(0);
        let alive = AtomicUsize::new(workers);
        struct Leaving<'a>(&'a AtomicUsize);
        impl Drop for Leaving<'_> {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::Relaxed);
            }
        }
        let (tx, rx) = mpsc::channel::<CellReport<T>>();
        std::thread::scope(|s| -> Result<(), String> {
            for w in 0..workers {
                let tx = tx.clone();
                let todo = &todo;
                let next = &next;
                let alive = &alive;
                let retries_total = &retries_total;
                let timeouts_total = &timeouts_total;
                let f = f.clone();
                s.spawn(move || {
                    let _leaving = Leaving(alive);
                    loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&cell) = todo.get(k) else { break };
                        let mut attempt = 0u32;
                        let report = loop {
                            if let Some(p) = progress {
                                p.cell_started(w, cell);
                            }
                            match attempt_cell(f.clone(), cell, opts.cell_timeout) {
                                Ok(value) => {
                                    let mut sw = SnapWriter::new();
                                    value.encode(&mut sw);
                                    break CellReport::Done {
                                        cell,
                                        value,
                                        words: sw.into_words(),
                                    };
                                }
                                Err(failure) => {
                                    let reason = match failure {
                                        AttemptFailure::Timeout => {
                                            timeouts_total.fetch_add(1, Ordering::Relaxed);
                                            if let Some(p) = progress {
                                                p.note_timeout();
                                            }
                                            format!(
                                                "timed out after {:.3}s",
                                                opts.cell_timeout.unwrap_or_default().as_secs_f64()
                                            )
                                        }
                                        AttemptFailure::Panic(msg) => {
                                            format!("panicked: {msg}")
                                        }
                                    };
                                    if attempt >= opts.retries {
                                        break CellReport::Quarantined(Quarantined {
                                            cell,
                                            attempts: attempt + 1,
                                            reason,
                                        });
                                    }
                                    retries_total.fetch_add(1, Ordering::Relaxed);
                                    if let Some(p) = progress {
                                        p.note_retry();
                                    }
                                    std::thread::sleep(opts.backoff * (1u32 << attempt.min(5)));
                                    attempt += 1;
                                }
                            }
                        };
                        if let Some(p) = progress {
                            p.cell_done(w);
                        }
                        if tx.send(report).is_err() {
                            break;
                        }
                    }
                });
            }
            if let Some(p) = progress {
                let alive = &alive;
                s.spawn(move || {
                    while alive.load(Ordering::Relaxed) > 0 {
                        p.tick();
                        std::thread::sleep(Duration::from_millis(100));
                    }
                });
            }
            drop(tx);
            for report in rx {
                match report {
                    CellReport::Done { cell, value, words } => {
                        if let Some(j) = journal.as_deref_mut() {
                            j.record(cell, &words)?;
                        }
                        results[cell] = Some(value);
                    }
                    CellReport::Quarantined(q) => {
                        if let Some(p) = progress {
                            p.note_quarantine();
                        }
                        quarantined.push(q);
                    }
                }
            }
            Ok(())
        })?;
    }
    quarantined.sort_by_key(|q| q.cell);
    Ok(SweepOutcome {
        results,
        quarantined,
        resumed,
        retries: retries_total.into_inner(),
        timeouts: timeouts_total.into_inner(),
    })
}

/// Binary-side wrapper around [`run_supervised`]: opens the resume
/// journal when `--resume` was given, runs the sweep, prints the
/// supervisor summary, and on any quarantined cell reports each one via
/// `describe(cell)` (parameters + replay seed) and **exits** with
/// [`crate::diag::EXIT_FAILURE`] — final outputs are never written from a
/// partial sweep; the journal keeps every completed cell for the next
/// `--resume`. Journal staleness/corruption and I/O failures exit the
/// same way.
#[allow(clippy::too_many_arguments)]
pub fn supervised_cells<T, F, S>(
    tool: &str,
    experiment: &str,
    n: usize,
    jobs: usize,
    sup: &SupervisorOptions,
    show_progress: bool,
    fingerprint: u64,
    describe: S,
    f: F,
) -> Vec<T>
where
    T: JournalItem + Send + 'static,
    F: Fn(usize) -> T + Send + Sync + Clone + 'static,
    S: Fn(usize) -> String,
{
    let mut journal = match &sup.resume {
        Some(path) => match Journal::open(path, experiment, fingerprint) {
            Ok(j) => Some(j),
            Err(e) => {
                crate::diag::error(tool, &e);
                std::process::exit(crate::diag::EXIT_FAILURE);
            }
        },
        None => None,
    };
    let progress = show_progress.then(|| Progress::new(n, jobs));
    let outcome = match run_supervised(n, jobs, sup, journal.as_mut(), progress.as_ref(), f) {
        Ok(o) => o,
        Err(e) => {
            crate::diag::error(tool, &e);
            std::process::exit(crate::diag::EXIT_FAILURE);
        }
    };
    if let Some(p) = &progress {
        p.finish();
    }
    println!("{}", outcome.summary());
    if !outcome.quarantined.is_empty() {
        for q in &outcome.quarantined {
            eprintln!(
                "quarantined cell {} ({}) after {} attempt(s): {}",
                q.cell,
                describe(q.cell),
                q.attempts,
                q.reason
            );
        }
        let hint = if sup.resume.is_some() {
            "; completed cells are journaled, rerun with the same --resume to finish"
        } else {
            ""
        };
        crate::diag::error(
            tool,
            &format!("{} cell(s) quarantined{hint}", outcome.quarantined.len()),
        );
        std::process::exit(crate::diag::EXIT_FAILURE);
    }
    outcome.into_results()
}

// ---------------------------------------------------------------------------
// Engine-checkpoint artifact envelope

/// Wraps an engine snapshot word stream in the shared flat-JSON artifact
/// envelope: version stamp, `engine-snapshot` experiment tag, declared
/// word count, hex payload and a whole-stream checksum.
pub fn snapshot_to_artifact(words: &[u64]) -> String {
    let mut w = ArtifactWriter::new(Some(SNAPSHOT_EXPERIMENT));
    w.u64("words", words.len() as u64);
    w.str("data", &words_to_hex(words));
    w.str("crc", &format!("{:016x}", snap::checksum(words)));
    w.finish()
}

/// Recovers an engine snapshot word stream from its artifact envelope,
/// rejecting stale versions, foreign experiment tags, corrupted payloads
/// and checksum mismatches (the binaries exit with
/// [`crate::diag::EXIT_FAILURE`] on `Err`).
pub fn snapshot_from_artifact(text: &str) -> Result<Vec<u64>, String> {
    let r = ArtifactReader::parse(text, Some(SNAPSHOT_EXPERIMENT))?;
    let declared = r.u64("words")?;
    let words = hex_to_words(&r.str("data")?)?;
    if words.len() as u64 != declared {
        return Err(format!(
            "snapshot declares {declared} words but its payload holds {}",
            words.len()
        ));
    }
    let crc = u64::from_str_radix(&r.str("crc")?, 16).map_err(|e| format!("bad crc field: {e}"))?;
    if crc != snap::checksum(&words) {
        return Err("snapshot artifact failed its checksum (corrupted or tampered)".to_string());
    }
    Ok(words)
}

/// Writes an engine snapshot artifact atomically (temp file + rename).
pub fn save_engine_snapshot(path: &Path, words: &[u64]) -> Result<(), String> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        }
    }
    let tmp = path.with_extension("snap.tmp");
    std::fs::write(&tmp, snapshot_to_artifact(words))
        .map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| format!("cannot rename {} into place: {e}", tmp.display()))
}

/// Reads and validates an engine snapshot artifact.
pub fn load_engine_snapshot(path: &Path) -> Result<Vec<u64>, String> {
    snapshot_from_artifact(&load_artifact(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::sync::Arc;

    /// Minimal journaled type for supervisor tests.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct V(u64);
    impl JournalItem for V {
        fn encode(&self, w: &mut SnapWriter) {
            w.push(self.0);
        }
        fn decode(r: &mut SnapReader) -> Result<Self, SnapError> {
            Ok(V(r.take()?))
        }
    }

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    fn fast() -> SupervisorOptions {
        SupervisorOptions {
            backoff: Duration::from_millis(1),
            ..SupervisorOptions::default()
        }
    }

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("tcw_supervise_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn split_args_extracts_supervision_flags() {
        let (opts, rest) = SupervisorOptions::split_args(&strs(&[
            "--jobs",
            "4",
            "--resume",
            "j.ndjson",
            "--cell-timeout=1.5",
            "--retries",
            "0",
            "--quick",
        ]))
        .unwrap();
        let opts = opts.unwrap();
        assert_eq!(opts.resume.as_deref(), Some(Path::new("j.ndjson")));
        assert_eq!(opts.cell_timeout, Some(Duration::from_secs_f64(1.5)));
        assert_eq!(opts.retries, 0);
        assert_eq!(rest, strs(&["--jobs", "4", "--quick"]));

        let (none, rest) = SupervisorOptions::split_args(&strs(&["--jobs", "2"])).unwrap();
        assert!(none.is_none());
        assert_eq!(rest, strs(&["--jobs", "2"]));

        assert!(SupervisorOptions::split_args(&strs(&["--resume"])).is_err());
        assert!(SupervisorOptions::split_args(&strs(&["--cell-timeout", "0"])).is_err());
        assert!(SupervisorOptions::split_args(&strs(&["--cell-timeout", "x"])).is_err());
        assert!(SupervisorOptions::split_args(&strs(&["--retries", "-1"])).is_err());
    }

    #[test]
    fn journal_round_trips_and_resumes() {
        let path = tmp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::open(&path, "test", 99).unwrap();
        assert!(j.is_empty());
        j.record(0, &[1, 2, 3]).unwrap();
        j.record(2, &[u64::MAX]).unwrap();
        assert_eq!(j.len(), 2);

        let reopened = Journal::open(&path, "test", 99).unwrap();
        assert_eq!(reopened.completed(0), Some(&[1u64, 2, 3][..]));
        assert_eq!(reopened.completed(1), None);
        assert_eq!(reopened.completed(2), Some(&[u64::MAX][..]));
        assert!(!path.with_extension("journal.tmp").exists());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn journal_rejects_staleness_and_corruption() {
        let path = tmp_path("reject");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::open(&path, "test", 7).unwrap();
        j.record(1, &[0xabcd, 42]).unwrap();

        // Wrong fingerprint and wrong experiment are both stale.
        let e = Journal::open(&path, "test", 8).unwrap_err();
        assert!(e.contains("fingerprint"), "{e}");
        let e = Journal::open(&path, "other", 7).unwrap_err();
        assert!(e.contains("experiment"), "{e}");

        let good = std::fs::read_to_string(&path).unwrap();

        // A flipped hex digit in the payload fails the line checksum.
        let bad = good.replacen("abcd", "abce", 1);
        std::fs::write(&path, &bad).unwrap();
        let e = Journal::open(&path, "test", 7).unwrap_err();
        assert!(e.contains("checksum"), "{e}");

        // A truncated final line is rejected, not silently dropped.
        let truncated = &good[..good.len() - 10];
        std::fs::write(&path, truncated).unwrap();
        let e = Journal::open(&path, "test", 7).unwrap_err();
        assert!(e.contains("corrupted"), "{e}");

        // A stale version stamp is rejected before any entry is read.
        let stale = good.replace(ARTIFACT_VERSION, "0.0.0-stale");
        std::fs::write(&path, &stale).unwrap();
        let e = Journal::open(&path, "test", 7).unwrap_err();
        assert!(e.contains("version"), "{e}");

        // Garbage is rejected.
        std::fs::write(&path, "not a journal\n").unwrap();
        assert!(Journal::open(&path, "test", 7).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn supervised_sweep_matches_direct_execution() {
        let opts = fast();
        let out = run_supervised(8, 3, &opts, None, None, |i| V(i as u64 * 10)).unwrap();
        assert!(out.quarantined.is_empty());
        assert_eq!(out.resumed, 0);
        assert_eq!(out.retries + out.timeouts, 0);
        let vals = out.into_results();
        assert_eq!(vals, (0..8).map(|i| V(i * 10)).collect::<Vec<_>>());
    }

    #[test]
    fn panicking_cell_is_quarantined_with_reason() {
        let opts = SupervisorOptions {
            retries: 1,
            ..fast()
        };
        let out = run_supervised(4, 2, &opts, None, None, |i| {
            if i == 2 {
                panic!("cell two always dies");
            }
            V(i as u64)
        })
        .unwrap();
        assert_eq!(out.quarantined.len(), 1);
        let q = &out.quarantined[0];
        assert_eq!(q.cell, 2);
        assert_eq!(q.attempts, 2);
        assert!(q.reason.contains("cell two always dies"), "{}", q.reason);
        assert_eq!(out.retries, 1);
        assert!(out.results[2].is_none());
        assert_eq!(out.results[3], Some(V(3)));
    }

    #[test]
    fn flaky_cell_succeeds_after_retry() {
        let attempts = Arc::new(AtomicU32::new(0));
        let seen = attempts.clone();
        let opts = SupervisorOptions {
            retries: 3,
            ..fast()
        };
        let out = run_supervised(1, 1, &opts, None, None, move |i| {
            if seen.fetch_add(1, Ordering::Relaxed) < 2 {
                panic!("flaky");
            }
            V(i as u64 + 100)
        })
        .unwrap();
        assert!(out.quarantined.is_empty());
        assert_eq!(out.retries, 2);
        assert_eq!(out.into_results(), vec![V(100)]);
        assert_eq!(attempts.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn wedged_cell_is_timed_out_and_quarantined() {
        let opts = SupervisorOptions {
            retries: 1,
            cell_timeout: Some(Duration::from_millis(40)),
            ..fast()
        };
        let out = run_supervised(3, 2, &opts, None, None, |i| {
            if i == 1 {
                std::thread::sleep(Duration::from_secs(5));
            }
            V(i as u64)
        })
        .unwrap();
        assert_eq!(out.quarantined.len(), 1);
        assert_eq!(out.quarantined[0].cell, 1);
        assert!(out.quarantined[0].reason.contains("timed out"));
        assert_eq!(out.timeouts, 2); // both attempts hit the watchdog
        assert_eq!(out.results[0], Some(V(0)));
        assert_eq!(out.results[2], Some(V(2)));
    }

    #[test]
    fn resume_skips_journaled_cells_and_completes_the_rest() {
        let path = tmp_path("resume");
        let _ = std::fs::remove_file(&path);
        let opts = SupervisorOptions {
            retries: 0,
            ..fast()
        };
        // First run: cell 1 fails, the rest are journaled.
        let mut j = Journal::open(&path, "test", 5).unwrap();
        let out = run_supervised(3, 1, &opts, Some(&mut j), None, |i| {
            if i == 1 {
                panic!("first pass fails cell 1");
            }
            V(i as u64 * 7)
        })
        .unwrap();
        assert_eq!(out.quarantined.len(), 1);
        drop(j);

        // Second run: only cell 1 may execute.
        let ran = Arc::new(AtomicU32::new(0));
        let seen = ran.clone();
        let mut j = Journal::open(&path, "test", 5).unwrap();
        let out = run_supervised(3, 1, &opts, Some(&mut j), None, move |i| {
            seen.fetch_add(1, Ordering::Relaxed);
            assert_eq!(i, 1, "journaled cells must not re-run");
            V(i as u64 * 7)
        })
        .unwrap();
        assert_eq!(out.resumed, 2);
        assert!(out.quarantined.is_empty());
        assert_eq!(ran.load(Ordering::Relaxed), 1);
        assert_eq!(out.into_results(), vec![V(0), V(7), V(14)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn snapshot_artifact_round_trips_and_rejects_tampering() {
        let words: Vec<u64> = vec![0x7463_775f_736e_6170, 1, 42, u64::MAX, 0];
        let text = snapshot_to_artifact(&words);
        assert_eq!(snapshot_from_artifact(&text).unwrap(), words);

        // A flipped payload digit fails the checksum.
        let pos = text.find("\"data\"").unwrap() + 10;
        let mut bad = text.clone();
        let orig = bad.as_bytes()[pos] as char;
        let flip = if orig == '0' { '1' } else { '0' };
        bad.replace_range(pos..pos + 1, &flip.to_string());
        let e = snapshot_from_artifact(&bad).unwrap_err();
        assert!(e.contains("checksum") || e.contains("hex"), "{e}");

        // A stale version stamp is rejected before the payload is read.
        let stale = text.replace(ARTIFACT_VERSION, "0.0.0-stale");
        let e = snapshot_from_artifact(&stale).unwrap_err();
        assert!(e.contains("version"), "{e}");

        // A foreign experiment tag is rejected.
        let foreign = text.replace(SNAPSHOT_EXPERIMENT, "robustness");
        assert!(snapshot_from_artifact(&foreign).is_err());
    }

    #[test]
    fn result_codecs_round_trip_bit_exactly() {
        let point = crate::runner::SimPoint {
            k: 100.0,
            loss: 0.0625,
            ci95: f64::NAN,
            sender_loss: 0.25,
            sched_time_mean: 3.5,
            round_overhead_mean: 1.25,
            utilization: 0.75,
            offered: 8_000,
        };
        let csp = crate::runner::ChurnSimPoint {
            point,
            faults: crate::runner::FaultCounters {
                corrupted_slots: 1,
                erased_slots: 2,
                resyncs: 3,
                rounds_abandoned: 4,
                reopened: 5,
                fault_losses: 6,
            },
            churn: crate::runner::ChurnCounters {
                crashes: 7,
                restarts: 8,
                joins: 9,
                leaves: 10,
                blocked: 11,
                losses: 12,
                reopened: 13,
                rejoin_mean_slots: f64::NAN,
                rejoin_max_slots: 64.0,
            },
            horizon: tcw_window::engine::HorizonStats {
                jumps: 14,
                slots_skipped: 15,
                batched_runs: 16,
                batched_slots: 17,
            },
        };
        let mut w = SnapWriter::new();
        csp.encode(&mut w);
        let words = w.into_words();
        let mut r = SnapReader::new(&words);
        let back = crate::runner::ChurnSimPoint::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.point.loss.to_bits(), csp.point.loss.to_bits());
        assert_eq!(back.point.ci95.to_bits(), csp.point.ci95.to_bits());
        assert_eq!(back.faults.fault_losses, 6);
        assert_eq!(
            back.churn.rejoin_mean_slots.to_bits(),
            csp.churn.rejoin_mean_slots.to_bits()
        );
        assert_eq!(back.horizon, csp.horizon);

        let chaos = crate::chaos::ChaosOutcome {
            kind: "violation".into(),
            class: "conservation".into(),
            detail: "msg 17 neither delivered nor discarded".into(),
            violations: 1,
            divergences: 0,
            checks: 5_000,
            deliveries: 4_999,
            offered: 5_000,
            loss: 0.125,
        };
        let mut w = SnapWriter::new();
        chaos.encode(&mut w);
        let words = w.into_words();
        let mut r = SnapReader::new(&words);
        let back = crate::chaos::ChaosOutcome::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.kind, chaos.kind);
        assert_eq!(back.class, chaos.class);
        assert_eq!(back.detail, chaos.detail);
        assert_eq!(back.loss.to_bits(), chaos.loss.to_bits());
    }
}
