//! Protocol-simulation runners for the Figure-7 panels.

use crate::panels::Panel;
use tcw_mac::ChannelConfig;
use tcw_sim::time::{Dur, Time};
use tcw_window::analysis::optimal_mu;
use tcw_window::engine::poisson_engine;
use tcw_window::metrics::MeasureConfig;
use tcw_window::policy::ControlPolicy;
use tcw_window::trace::NoopObserver;

/// Which protocol variant to simulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyKind {
    /// The paper's controlled protocol (Theorem 1 + discard + heuristic
    /// window).
    Controlled,
    /// Uncontrolled FCFS ([Kurose 83]); receiver losses only.
    Fcfs,
    /// Uncontrolled LCFS ([Kurose 83]); receiver losses only.
    Lcfs,
    /// Uncontrolled RANDOM order ([Kurose 83]); receiver losses only.
    Random,
}

impl PolicyKind {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            PolicyKind::Controlled => "controlled",
            PolicyKind::Fcfs => "fcfs",
            PolicyKind::Lcfs => "lcfs",
            PolicyKind::Random => "random",
        }
    }
}

/// Simulation-size knobs.
#[derive(Clone, Copy, Debug)]
pub struct SimSettings {
    /// Ticks per propagation delay.
    pub ticks_per_tau: u64,
    /// Measured messages (after warm-up).
    pub messages: u64,
    /// Warm-up messages.
    pub warmup: u64,
    /// Number of stations.
    pub stations: u32,
    /// Guard slot after transmissions.
    pub guard: bool,
}

impl Default for SimSettings {
    fn default() -> Self {
        SimSettings {
            ticks_per_tau: 64,
            messages: 40_000,
            warmup: 4_000,
            stations: 50,
            guard: false,
        }
    }
}

/// One simulated point.
#[derive(Clone, Copy, Debug)]
pub struct SimPoint {
    /// Deadline in `tau`.
    pub k: f64,
    /// Total loss fraction (sender + receiver).
    pub loss: f64,
    /// 95% CI half-width (binomial).
    pub ci95: f64,
    /// Sender-discard fraction of offered messages.
    pub sender_loss: f64,
    /// Mean scheduling time of transmitted messages (in `tau`).
    pub sched_time_mean: f64,
    /// Mean overhead slots of rounds ending in a transmission.
    pub round_overhead_mean: f64,
    /// Channel utilization (fraction of time carrying successes).
    pub utilization: f64,
    /// Offered (counted) messages.
    pub offered: u64,
}

/// Runs one protocol simulation at deadline `k_tau` (units of `tau`) and
/// returns the measured point.
///
/// The window length follows the §4.1 heuristic at the offered rate:
/// `w* = mu* / lambda` (same value the analytic marching uses).
pub fn simulate_panel(
    panel: Panel,
    kind: PolicyKind,
    k_tau: f64,
    settings: SimSettings,
    seed: u64,
) -> SimPoint {
    let channel = ChannelConfig {
        ticks_per_tau: settings.ticks_per_tau,
        message_slots: panel.m,
        guard: settings.guard,
    };
    let lambda = panel.lambda(); // per tau
    let w_star_tau = optimal_mu() / lambda;
    let w = Dur::from_ticks((w_star_tau * settings.ticks_per_tau as f64).round().max(1.0) as u64);
    let k = Dur::from_ticks((k_tau * settings.ticks_per_tau as f64).round() as u64);

    let policy = match kind {
        PolicyKind::Controlled => ControlPolicy::controlled(k, w),
        PolicyKind::Fcfs => ControlPolicy::fcfs(w),
        PolicyKind::Lcfs => ControlPolicy::lcfs(w),
        PolicyKind::Random => ControlPolicy::random(w),
    };

    // Convert message counts to a time horizon.
    let ticks_per_msg = settings.ticks_per_tau as f64 / (lambda / 1.0);
    let warmup_end = (settings.warmup as f64 * ticks_per_msg) as u64;
    let measure_end = warmup_end + (settings.messages as f64 * ticks_per_msg) as u64;
    // Let the run continue past the measurement window so late messages
    // resolve under realistic load, then drain.
    let horizon = measure_end + (measure_end - warmup_end) / 10 + 64 * settings.ticks_per_tau;

    let measure = MeasureConfig {
        start: Time::from_ticks(warmup_end),
        end: Time::from_ticks(measure_end),
        deadline: k,
    };
    let mut eng = poisson_engine(channel, policy, measure, panel.rho_prime, settings.stations, seed);
    eng.run_until(Time::from_ticks(horizon), &mut NoopObserver);
    eng.drain(&mut NoopObserver);
    assert_eq!(
        eng.metrics.outstanding(),
        0,
        "unresolved messages after drain"
    );

    let offered = eng.metrics.offered();
    SimPoint {
        k: k_tau,
        loss: eng.metrics.loss_fraction(),
        ci95: eng.metrics.loss_ci95(),
        sender_loss: if offered == 0 {
            0.0
        } else {
            eng.metrics.sender_lost() as f64 / offered as f64
        },
        sched_time_mean: eng.metrics.sched_time().mean() / settings.ticks_per_tau as f64,
        round_overhead_mean: eng.metrics.sched_slots().mean(),
        utilization: eng.channel_stats.utilization(),
        offered,
    }
}

/// A replicated estimate: independent seeds, Student-t confidence
/// interval across replications. This is the rigorous interval for
/// autocorrelated protocol output (the per-run binomial CI in
/// [`SimPoint::ci95`] treats messages as independent and is only
/// indicative).
#[derive(Clone, Copy, Debug)]
pub struct Replicated {
    /// Mean loss across replications.
    pub loss: f64,
    /// 95% half-width across replications (t-distribution).
    pub ci95: f64,
    /// Number of replications.
    pub replications: u32,
}

/// Runs `replications` independent seeds of the same panel point and
/// aggregates with a t-interval.
///
/// # Panics
/// Panics if `replications < 2`.
pub fn replicate_panel(
    panel: Panel,
    kind: PolicyKind,
    k_tau: f64,
    settings: SimSettings,
    base_seed: u64,
    replications: u32,
) -> Replicated {
    assert!(replications >= 2);
    // BatchMeans with batch size 1: each replication is one independent
    // batch, so the collector's t-interval is exactly the replication CI.
    let mut bm = tcw_sim::stats::BatchMeans::new(1);
    for r in 0..replications {
        let p = simulate_panel(panel, kind, k_tau, settings, base_seed ^ (0x9E37 + r as u64));
        bm.record(p.loss);
    }
    Replicated {
        loss: bm.mean(),
        ci95: bm.ci95_half_width().unwrap_or(f64::INFINITY),
        replications,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::panels::PANELS;

    fn quick() -> SimSettings {
        SimSettings {
            messages: 4_000,
            warmup: 400,
            ticks_per_tau: 16,
            ..Default::default()
        }
    }

    #[test]
    fn controlled_loss_decreases_with_k() {
        let panel = PANELS[4]; // rho' = 0.75, M = 25
        let p_small = simulate_panel(panel, PolicyKind::Controlled, 25.0, quick(), 1);
        let p_large = simulate_panel(panel, PolicyKind::Controlled, 400.0, quick(), 1);
        assert!(
            p_large.loss < p_small.loss,
            "loss did not decrease: {} -> {}",
            p_small.loss,
            p_large.loss
        );
        assert!(p_small.offered > 3_000);
    }

    #[test]
    fn controlled_beats_fcfs_at_tight_k() {
        let panel = PANELS[4];
        let k = 100.0;
        let c = simulate_panel(panel, PolicyKind::Controlled, k, quick(), 2);
        let f = simulate_panel(panel, PolicyKind::Fcfs, k, quick(), 2);
        assert!(
            c.loss < f.loss,
            "controlled {} !< fcfs {}",
            c.loss,
            f.loss
        );
    }

    #[test]
    fn replication_interval_contains_analytic_value() {
        let panel = PANELS[2]; // rho' = 0.50, M = 25
        let k = 100.0;
        let rep = crate::runner::replicate_panel(
            panel,
            PolicyKind::Controlled,
            k,
            quick(),
            9,
            4,
        );
        assert_eq!(rep.replications, 4);
        assert!(rep.ci95.is_finite());
        // The analytic value (~0.0046) lies inside the replication CI.
        let analytic = 0.0046;
        assert!(
            (rep.loss - analytic).abs() <= rep.ci95 + 0.01,
            "analytic {analytic} outside {:.4} ± {:.4}",
            rep.loss,
            rep.ci95
        );
    }

    #[test]
    fn light_load_large_k_loss_is_negligible() {
        let panel = PANELS[0]; // rho' = 0.25, M = 25
        let p = simulate_panel(panel, PolicyKind::Controlled, 400.0, quick(), 3);
        assert!(p.loss < 0.01, "loss = {}", p.loss);
        assert!(p.utilization > 0.15 && p.utilization < 0.35);
    }
}
