//! Protocol-simulation runners for the Figure-7 panels.

use crate::panels::Panel;
use tcw_mac::{ChannelConfig, ChurnPlan, FaultPlan, PoissonArrivals};
use tcw_sim::time::{Dur, Time};
use tcw_window::analysis::optimal_mu;
use tcw_window::engine::{poisson_engine, Engine};
use tcw_window::metrics::MeasureConfig;
use tcw_window::mirror::DivergenceDetector;
use tcw_window::policy::ControlPolicy;
use tcw_window::trace::NoopObserver;

/// Which protocol variant to simulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyKind {
    /// The paper's controlled protocol (Theorem 1 + discard + heuristic
    /// window).
    Controlled,
    /// Uncontrolled FCFS ([Kurose 83]); receiver losses only.
    Fcfs,
    /// Uncontrolled LCFS ([Kurose 83]); receiver losses only.
    Lcfs,
    /// Uncontrolled RANDOM order ([Kurose 83]); receiver losses only.
    Random,
}

impl PolicyKind {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            PolicyKind::Controlled => "controlled",
            PolicyKind::Fcfs => "fcfs",
            PolicyKind::Lcfs => "lcfs",
            PolicyKind::Random => "random",
        }
    }
}

/// Simulation-size knobs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimSettings {
    /// Ticks per propagation delay.
    pub ticks_per_tau: u64,
    /// Measured messages (after warm-up).
    pub messages: u64,
    /// Warm-up messages.
    pub warmup: u64,
    /// Number of stations.
    pub stations: u32,
    /// Guard slot after transmissions.
    pub guard: bool,
}

impl Default for SimSettings {
    fn default() -> Self {
        SimSettings {
            ticks_per_tau: 64,
            messages: 40_000,
            warmup: 4_000,
            stations: 50,
            guard: false,
        }
    }
}

/// One simulated point.
#[derive(Clone, Copy, Debug)]
pub struct SimPoint {
    /// Deadline in `tau`.
    pub k: f64,
    /// Total loss fraction (sender + receiver).
    pub loss: f64,
    /// 95% CI half-width (binomial).
    pub ci95: f64,
    /// Sender-discard fraction of offered messages.
    pub sender_loss: f64,
    /// Mean scheduling time of transmitted messages (in `tau`).
    pub sched_time_mean: f64,
    /// Mean overhead slots of rounds ending in a transmission.
    pub round_overhead_mean: f64,
    /// Channel utilization (fraction of time carrying successes).
    pub utilization: f64,
    /// Offered (counted) messages.
    pub offered: u64,
}

/// Degradation counters of one fault-injected run.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultCounters {
    /// Slots whose feedback an injected fault corrupted (misdetections).
    pub corrupted_slots: u64,
    /// Slots whose feedback was erased.
    pub erased_slots: u64,
    /// Backoff/re-probe resynchronizations after detectable corruption.
    pub resyncs: u64,
    /// Windowing rounds abandoned after exhausting the retry budget.
    pub rounds_abandoned: u64,
    /// Examined intervals reopened for fault-stranded messages.
    pub reopened: u64,
    /// Losses attributable to a fault on the message's trajectory.
    pub fault_losses: u64,
}

/// A [`SimPoint`] together with the degradation counters of the run.
#[derive(Clone, Copy, Debug)]
pub struct FaultSimPoint {
    /// The conventional measurements.
    pub point: SimPoint,
    /// Fault/degradation counters.
    pub faults: FaultCounters,
}

/// Membership and recovery counters of one churn-enabled run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChurnCounters {
    /// Station crashes.
    pub crashes: u64,
    /// Station restarts (every crash eventually restarts).
    pub restarts: u64,
    /// Late joins.
    pub joins: u64,
    /// Permanent leaves.
    pub leaves: u64,
    /// Arrivals refused because the station was down.
    pub blocked: u64,
    /// Counted messages lost to a crash or leave (as opposed to the K
    /// deadline).
    pub losses: u64,
    /// Examined intervals reopened to recover a rejoining station's
    /// backlog.
    pub reopened: u64,
    /// Mean rejoin latency (probe slots from restart to the recovery
    /// beacon); `NaN` when no station rejoined.
    pub rejoin_mean_slots: f64,
    /// Worst rejoin latency in probe slots (0 when no station rejoined).
    pub rejoin_max_slots: f64,
}

/// A [`FaultSimPoint`] together with the churn counters of the run.
#[derive(Clone, Copy, Debug)]
pub struct ChurnSimPoint {
    /// The conventional measurements.
    pub point: SimPoint,
    /// Fault/degradation counters.
    pub faults: FaultCounters,
    /// Membership/recovery counters.
    pub churn: ChurnCounters,
    /// Event-horizon fast-path counters (telemetry only — excluded from
    /// equivalence fingerprints; sweeps feed them into the live progress
    /// line's `[hzn: ...]` segment).
    pub horizon: tcw_window::engine::HorizonStats,
}

/// Converts the message-count knobs into the measurement window at
/// offered rate `lambda` (messages per `tau`): warm up for
/// `settings.warmup` expected messages, then measure for
/// `settings.messages` expected messages.
///
/// Every run that measures loss goes through this helper — the panel
/// runners and the failure-replay path via [`build_engine`], and the
/// ablation binary directly — so "the window where metrics count" is
/// defined exactly once.
pub fn measure_window(lambda: f64, settings: SimSettings, deadline: Dur) -> MeasureConfig {
    let ticks_per_msg = settings.ticks_per_tau as f64 / lambda;
    let warmup_end = (settings.warmup as f64 * ticks_per_msg) as u64;
    let measure_end = warmup_end + (settings.messages as f64 * ticks_per_msg) as u64;
    MeasureConfig {
        start: Time::from_ticks(warmup_end),
        end: Time::from_ticks(measure_end),
        deadline,
    }
}

/// The run horizon for a measurement window: continue 10% of the window
/// past its end so late messages resolve under realistic load, plus a
/// 64-`tau` tail, before the final drain.
pub fn run_horizon(measure: MeasureConfig, ticks_per_tau: u64) -> Time {
    let start = measure.start.ticks();
    let end = measure.end.ticks();
    Time::from_ticks(end + (end - start) / 10 + 64 * ticks_per_tau)
}

/// Drives an engine to its horizon and through the final drain, then —
/// when a sink is attached — registers the engine's own accounting with
/// it: metrics, channel stats, churn counters, and the event-horizon
/// fast-path counters (`tcw_horizon_*`). Every sweep binary that runs
/// an engine to completion shares this sequence; telemetry specific to
/// a call site (controller, invariant monitor, divergence detector)
/// stays with the caller.
pub fn run_to_horizon<S: tcw_mac::ArrivalSource>(
    eng: &mut Engine<S>,
    horizon: Time,
    obs: &mut dyn tcw_window::trace::EngineObserver,
    sink: Option<&mut dyn tcw_sim::stats::MetricSink>,
) {
    eng.run_until(horizon, obs);
    eng.drain(obs);
    if let Some(sink) = sink {
        eng.metrics.emit(sink);
        eng.channel_stats.emit(sink);
        eng.churn().emit(sink);
        eng.horizon_stats.emit(sink);
    }
}

/// Builds the engine for one panel point; returns it with the run horizon
/// and the policy (so observers needing the shared policy/seed can be
/// constructed alongside).
fn build_engine(
    panel: Panel,
    kind: PolicyKind,
    k_tau: f64,
    settings: SimSettings,
    seed: u64,
) -> (Engine<PoissonArrivals>, Time, ControlPolicy) {
    let channel = ChannelConfig {
        ticks_per_tau: settings.ticks_per_tau,
        message_slots: panel.m,
        guard: settings.guard,
    };
    let lambda = panel.lambda(); // per tau
    let w_star_tau = optimal_mu() / lambda;
    let w = Dur::from_ticks(
        (w_star_tau * settings.ticks_per_tau as f64)
            .round()
            .max(1.0) as u64,
    );
    let k = Dur::from_ticks((k_tau * settings.ticks_per_tau as f64).round() as u64);

    let policy = match kind {
        PolicyKind::Controlled => ControlPolicy::controlled(k, w),
        PolicyKind::Fcfs => ControlPolicy::fcfs(w),
        PolicyKind::Lcfs => ControlPolicy::lcfs(w),
        PolicyKind::Random => ControlPolicy::random(w),
    };

    let measure = measure_window(lambda, settings, k);
    let horizon = run_horizon(measure, settings.ticks_per_tau);
    let eng = poisson_engine(
        channel,
        policy.clone(),
        measure,
        panel.rho_prime,
        settings.stations,
        seed,
    );
    (eng, horizon, policy)
}

/// Collects the measured point from a finished engine, asserting the
/// run-level invariants (full drain, conservation of channel time).
fn collect_point(eng: &Engine<PoissonArrivals>, k_tau: f64, settings: SimSettings) -> SimPoint {
    assert_eq!(
        eng.metrics.outstanding(),
        0,
        "unresolved messages after drain"
    );
    assert_eq!(
        eng.channel_stats.total().ticks(),
        eng.now().ticks(),
        "channel time not conserved"
    );
    let offered = eng.metrics.offered();
    SimPoint {
        k: k_tau,
        loss: eng.metrics.loss_fraction(),
        ci95: eng.metrics.loss_ci95(),
        sender_loss: if offered == 0 {
            0.0
        } else {
            eng.metrics.sender_lost() as f64 / offered as f64
        },
        sched_time_mean: eng.metrics.sched_time().mean() / settings.ticks_per_tau as f64,
        round_overhead_mean: eng.metrics.sched_slots().mean(),
        utilization: eng.channel_stats.utilization(),
        offered,
    }
}

fn collect_faults(eng: &Engine<PoissonArrivals>) -> FaultCounters {
    FaultCounters {
        corrupted_slots: eng.metrics.corrupted_slots(),
        erased_slots: eng.metrics.erased_slots(),
        resyncs: eng.metrics.resyncs(),
        rounds_abandoned: eng.metrics.rounds_abandoned(),
        reopened: eng.metrics.reopened(),
        fault_losses: eng.metrics.fault_losses(),
    }
}

fn collect_churn(eng: &Engine<PoissonArrivals>) -> ChurnCounters {
    let process = eng.churn();
    let rejoin = eng.metrics.rejoin_latency();
    ChurnCounters {
        crashes: process.crashes(),
        restarts: process.restarts(),
        joins: process.joins(),
        leaves: process.leaves(),
        blocked: eng.metrics.churn_blocked(),
        losses: eng.metrics.churn_losses(),
        reopened: eng.metrics.churn_reopened(),
        rejoin_mean_slots: rejoin.mean(),
        rejoin_max_slots: if rejoin.count() == 0 {
            0.0
        } else {
            rejoin.max()
        },
    }
}

/// Runs one protocol simulation at deadline `k_tau` (units of `tau`) and
/// returns the measured point.
///
/// The window length follows the §4.1 heuristic at the offered rate:
/// `w* = mu* / lambda` (same value the analytic marching uses).
pub fn simulate_panel(
    panel: Panel,
    kind: PolicyKind,
    k_tau: f64,
    settings: SimSettings,
    seed: u64,
) -> SimPoint {
    // With FaultPlan::none() this is bit-identical to a fault-free build.
    simulate_panel_faulty(panel, kind, k_tau, settings, seed, FaultPlan::none()).point
}

/// Runs one panel point with an injected [`FaultPlan`] (the deafness
/// fields are ignored here — deafness is a per-station receive fault, see
/// [`simulate_with_detector`]).
pub fn simulate_panel_faulty(
    panel: Panel,
    kind: PolicyKind,
    k_tau: f64,
    settings: SimSettings,
    seed: u64,
    plan: FaultPlan,
) -> FaultSimPoint {
    // With ChurnPlan::none() this is bit-identical to a churn-free build.
    let p = simulate_churn(panel, kind, k_tau, settings, seed, plan, ChurnPlan::none());
    FaultSimPoint {
        point: p.point,
        faults: p.faults,
    }
}

/// Runs one panel point with both a [`FaultPlan`] and a [`ChurnPlan`]
/// (stations crash, restart, join late and leave while the protocol
/// runs).
pub fn simulate_churn(
    panel: Panel,
    kind: PolicyKind,
    k_tau: f64,
    settings: SimSettings,
    seed: u64,
    plan: FaultPlan,
    churn: ChurnPlan,
) -> ChurnSimPoint {
    simulate_churn_observed(
        panel,
        kind,
        k_tau,
        settings,
        seed,
        plan,
        churn,
        &mut NoopObserver,
        None,
    )
}

/// [`simulate_churn`] with telemetry attached: protocol events stream to
/// `obs` during the run, and after the final drain the engine's metrics,
/// channel accounting and churn process register themselves with `sink`
/// (when one is given).
///
/// Observers and sinks are strictly passive — they receive data but never
/// draw from an RNG stream — so the simulated result is bit-identical to
/// [`simulate_churn`] regardless of what is attached.
#[allow(clippy::too_many_arguments)]
pub fn simulate_churn_observed(
    panel: Panel,
    kind: PolicyKind,
    k_tau: f64,
    settings: SimSettings,
    seed: u64,
    plan: FaultPlan,
    churn: ChurnPlan,
    obs: &mut dyn tcw_window::trace::EngineObserver,
    sink: Option<&mut dyn tcw_sim::stats::MetricSink>,
) -> ChurnSimPoint {
    let (mut eng, horizon, _policy) = build_engine(panel, kind, k_tau, settings, seed);
    eng.set_fault_plan(plan);
    eng.set_churn_plan(churn, settings.stations);
    run_to_horizon(&mut eng, horizon, obs, sink);
    ChurnSimPoint {
        point: collect_point(&eng, k_tau, settings),
        faults: collect_faults(&eng),
        churn: collect_churn(&eng),
        horizon: eng.horizon_stats,
    }
}

/// Runs one clean panel point and reports the measured point together
/// with the event-horizon fast-path counters — how many idle-run jumps
/// and batched resolutions the engine took while producing it. The
/// counters are telemetry only (the result is bit-identical with the
/// fast path off); sweeps that make performance claims commit them so
/// CI can prove the fast path actually engaged.
pub fn simulate_with_horizon(
    panel: Panel,
    kind: PolicyKind,
    k_tau: f64,
    settings: SimSettings,
    seed: u64,
) -> (SimPoint, tcw_window::engine::HorizonStats) {
    let (mut eng, horizon, _policy) = build_engine(panel, kind, k_tau, settings, seed);
    run_to_horizon(&mut eng, horizon, &mut NoopObserver, None);
    (collect_point(&eng, k_tau, settings), eng.horizon_stats)
}

/// Age-of-Information summary of one run, in units of `tau`.
///
/// The underlying sawtooth integral is exact integer arithmetic over
/// ticks (see `tcw_window::metrics::AgeTracker`); the conversion to
/// `tau` happens only here, at the reporting boundary.
#[derive(Clone, Copy, Debug)]
pub struct AoiPoint {
    /// Deadline `K` in units of `tau` (grid coordinate).
    pub k: f64,
    /// Time-averaged age across observed stations, in `tau`.
    pub mean_age_tau: f64,
    /// Mean of the per-station peak ages, in `tau`.
    pub peak_age_tau: f64,
    /// Fraction of observed time the age exceeded the deadline `K`.
    pub violation: f64,
    /// Source-to-monitor deliveries the tracker observed.
    pub deliveries: u64,
    /// Stations that delivered at least once (age is undefined for the
    /// rest — they never produced a sample to monitor).
    pub stations_observed: u64,
}

/// Collects the AoI summary from a finished engine.
fn collect_aoi(eng: &Engine<PoissonArrivals>, k_tau: f64, settings: SimSettings) -> AoiPoint {
    let aoi = eng.metrics.aoi();
    let tpt = settings.ticks_per_tau as f64;
    AoiPoint {
        k: k_tau,
        mean_age_tau: aoi.mean_age().unwrap_or(0.0) / tpt,
        peak_age_tau: aoi.peak_age().mean() / tpt,
        violation: aoi.violation_fraction().unwrap_or(0.0),
        deliveries: aoi.deliveries(),
        stations_observed: aoi.stations_observed(),
    }
}

/// One AoI run: conventional measurements, the AoI summary and the
/// event-horizon counters of the run that produced them.
#[derive(Clone, Copy, Debug)]
pub struct AoiRun {
    /// The conventional measurements.
    pub point: SimPoint,
    /// The Age-of-Information summary.
    pub aoi: AoiPoint,
    /// Event-horizon fast-path counters (telemetry only).
    pub horizon: tcw_window::engine::HorizonStats,
}

/// Runs one clean panel point and returns the conventional measurements
/// together with the Age-of-Information summary.
pub fn simulate_aoi(
    panel: Panel,
    kind: PolicyKind,
    k_tau: f64,
    settings: SimSettings,
    seed: u64,
) -> AoiRun {
    simulate_aoi_observed(panel, kind, k_tau, settings, seed, &mut NoopObserver, None)
}

/// [`simulate_aoi`] with telemetry attached; the observer and sink are
/// strictly passive, so the measured result is bit-identical to the
/// unobserved run.
pub fn simulate_aoi_observed(
    panel: Panel,
    kind: PolicyKind,
    k_tau: f64,
    settings: SimSettings,
    seed: u64,
    obs: &mut dyn tcw_window::trace::EngineObserver,
    sink: Option<&mut dyn tcw_sim::stats::MetricSink>,
) -> AoiRun {
    let (mut eng, horizon, _policy) = build_engine(panel, kind, k_tau, settings, seed);
    run_to_horizon(&mut eng, horizon, obs, sink);
    AoiRun {
        point: collect_point(&eng, k_tau, settings),
        aoi: collect_aoi(&eng, k_tau, settings),
        horizon: eng.horizon_stats,
    }
}

/// Outcome of a run observed through the per-station
/// [`DivergenceDetector`].
#[derive(Clone, Debug)]
pub struct DetectorReport {
    /// Divergences the detector caught at decision-point beacons.
    pub divergences: u64,
    /// Resynchronizations performed.
    pub resyncs: u64,
    /// Channel slots the deaf (or down) station missed.
    pub dropped_slots: u64,
    /// Resyncs attributable to a churn outage (cold rejoins).
    pub churn_repairs: u64,
    /// Description of the first divergence, if any.
    pub first_divergence: Option<String>,
}

/// Runs one panel point with a fault plan while a deaf listening station
/// (index 0, deafness parameters taken from `plan`) tracks the run through
/// a [`DivergenceDetector`].
pub fn simulate_with_detector(
    panel: Panel,
    kind: PolicyKind,
    k_tau: f64,
    settings: SimSettings,
    seed: u64,
    plan: FaultPlan,
) -> (FaultSimPoint, DetectorReport) {
    let (p, report) =
        simulate_churn_with_detector(panel, kind, k_tau, settings, seed, plan, ChurnPlan::none());
    (
        FaultSimPoint {
            point: p.point,
            faults: p.faults,
        },
        report,
    )
}

/// Runs one panel point with fault and churn plans while listening
/// station 0 tracks the run through a [`DivergenceDetector`] configured
/// with the plan's deafness parameters and the churn plan's listener
/// outage span.
pub fn simulate_churn_with_detector(
    panel: Panel,
    kind: PolicyKind,
    k_tau: f64,
    settings: SimSettings,
    seed: u64,
    plan: FaultPlan,
    churn: ChurnPlan,
) -> (ChurnSimPoint, DetectorReport) {
    let (mut eng, horizon, policy) = build_engine(panel, kind, k_tau, settings, seed);
    eng.set_fault_plan(plan);
    eng.set_churn_plan(churn, settings.stations);
    let mut det = DivergenceDetector::new(policy, seed, 0, plan.deafness, plan.deaf_slots)
        .with_outage(churn.outage_start_slot, churn.outage_slots);
    run_to_horizon(&mut eng, horizon, &mut det, None);
    let report = DetectorReport {
        divergences: det.divergences(),
        resyncs: det.resyncs(),
        dropped_slots: det.dropped_slots(),
        churn_repairs: det.churn_repairs(),
        first_divergence: det.first_divergence().map(|s| s.to_string()),
    };
    (
        ChurnSimPoint {
            point: collect_point(&eng, k_tau, settings),
            faults: collect_faults(&eng),
            churn: collect_churn(&eng),
            horizon: eng.horizon_stats,
        },
        report,
    )
}

/// A replicated estimate: independent seeds, Student-t confidence
/// interval across replications. This is the rigorous interval for
/// autocorrelated protocol output (the per-run binomial CI in
/// [`SimPoint::ci95`] treats messages as independent and is only
/// indicative).
#[derive(Clone, Copy, Debug)]
pub struct Replicated {
    /// Mean loss across replications.
    pub loss: f64,
    /// 95% half-width across replications (t-distribution).
    pub ci95: f64,
    /// Number of replications.
    pub replications: u32,
}

/// Runs `replications` independent seeds of the same panel point and
/// aggregates with a t-interval.
///
/// Replication `r` runs under master seed
/// [`tcw_sim::rng::stream_seed`]`(base_seed, r)` — the `r`-th output of
/// the SplitMix64 sequence rooted at `base_seed` — and the engine forks
/// its per-component substreams from that master seed, so replications
/// never share a stream. Replications execute on the parallel sweep
/// executor; each is seeded independently and aggregation happens in
/// replication order, so the result is identical at any worker count.
///
/// # Panics
/// Panics if `replications < 2`.
pub fn replicate_panel(
    panel: Panel,
    kind: PolicyKind,
    k_tau: f64,
    settings: SimSettings,
    base_seed: u64,
    replications: u32,
) -> Replicated {
    assert!(replications >= 2);
    let seeds: Vec<u64> = (0..u64::from(replications))
        .map(|r| tcw_sim::rng::stream_seed(base_seed, r))
        .collect();
    let losses = crate::sweep::run_parallel(&seeds, crate::sweep::default_jobs(), |_, &seed| {
        simulate_panel(panel, kind, k_tau, settings, seed).loss
    });
    // BatchMeans with batch size 1: each replication is one independent
    // batch, so the collector's t-interval is exactly the replication CI.
    let mut bm = tcw_sim::stats::BatchMeans::new(1);
    for loss in losses {
        bm.record(loss);
    }
    Replicated {
        loss: bm.mean(),
        ci95: bm.ci95_half_width().unwrap_or(f64::INFINITY),
        replications,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::panels::PANELS;

    fn quick() -> SimSettings {
        SimSettings {
            messages: 4_000,
            warmup: 400,
            ticks_per_tau: 16,
            ..Default::default()
        }
    }

    #[test]
    fn controlled_loss_decreases_with_k() {
        let panel = PANELS[4]; // rho' = 0.75, M = 25
        let p_small = simulate_panel(panel, PolicyKind::Controlled, 25.0, quick(), 1);
        let p_large = simulate_panel(panel, PolicyKind::Controlled, 400.0, quick(), 1);
        assert!(
            p_large.loss < p_small.loss,
            "loss did not decrease: {} -> {}",
            p_small.loss,
            p_large.loss
        );
        assert!(p_small.offered > 3_000);
    }

    #[test]
    fn controlled_beats_fcfs_at_tight_k() {
        let panel = PANELS[4];
        let k = 100.0;
        let c = simulate_panel(panel, PolicyKind::Controlled, k, quick(), 2);
        let f = simulate_panel(panel, PolicyKind::Fcfs, k, quick(), 2);
        assert!(c.loss < f.loss, "controlled {} !< fcfs {}", c.loss, f.loss);
    }

    #[test]
    fn replication_interval_contains_analytic_value() {
        let panel = PANELS[2]; // rho' = 0.50, M = 25
        let k = 100.0;
        let rep = crate::runner::replicate_panel(panel, PolicyKind::Controlled, k, quick(), 9, 4);
        assert_eq!(rep.replications, 4);
        assert!(rep.ci95.is_finite());
        // The analytic value (~0.0046) lies inside the replication CI.
        let analytic = 0.0046;
        assert!(
            (rep.loss - analytic).abs() <= rep.ci95 + 0.01,
            "analytic {analytic} outside {:.4} ± {:.4}",
            rep.loss,
            rep.ci95
        );
    }

    #[test]
    fn light_load_large_k_loss_is_negligible() {
        let panel = PANELS[0]; // rho' = 0.25, M = 25
        let p = simulate_panel(panel, PolicyKind::Controlled, 400.0, quick(), 3);
        assert!(p.loss < 0.01, "loss = {}", p.loss);
        assert!(p.utilization > 0.15 && p.utilization < 0.35);
    }
}
