//! The six Figure-7 panels.

/// One `(rho', M)` panel of the paper's Figure 7.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Panel {
    /// Normalized offered load `rho' = lambda * M * tau`.
    pub rho_prime: f64,
    /// Message length in propagation delays.
    pub m: u64,
}

impl Panel {
    /// Aggregate arrival rate per `tau`.
    pub fn lambda(&self) -> f64 {
        self.rho_prime / self.m as f64
    }

    /// A short identifier used in file names, e.g. `rho25_m100`.
    pub fn id(&self) -> String {
        format!(
            "rho{:02}_m{}",
            (self.rho_prime * 100.0).round() as u32,
            self.m
        )
    }

    /// The deadline grid (in `tau`) this panel is evaluated on: up to
    /// `16 * M`, which comfortably spans the knee of every curve.
    pub fn k_grid(&self) -> Vec<f64> {
        let max = 16 * self.m;
        let step = self.m as f64 / 2.0;
        let mut out = Vec::new();
        let mut k = step;
        while k <= max as f64 + 1e-9 {
            out.push(k);
            k += step;
        }
        out
    }

    /// The sparser grid used for simulation points.
    pub fn k_grid_sim(&self) -> Vec<f64> {
        (1..=8).map(|i| (2 * i * self.m) as f64).collect()
    }
}

/// All six panels of Figure 7, in the paper's order.
pub const PANELS: [Panel; 6] = [
    Panel {
        rho_prime: 0.25,
        m: 25,
    },
    Panel {
        rho_prime: 0.25,
        m: 100,
    },
    Panel {
        rho_prime: 0.50,
        m: 25,
    },
    Panel {
        rho_prime: 0.50,
        m: 100,
    },
    Panel {
        rho_prime: 0.75,
        m: 25,
    },
    Panel {
        rho_prime: 0.75,
        m: 100,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique() {
        let ids: Vec<String> = PANELS.iter().map(|p| p.id()).collect();
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
        assert_eq!(PANELS[0].id(), "rho25_m25");
    }

    #[test]
    fn grids_are_sane() {
        for p in PANELS {
            let g = p.k_grid();
            assert!(g.len() > 8);
            assert!(g.windows(2).all(|w| w[1] > w[0]));
            assert!(p.k_grid_sim().iter().all(|&k| k <= *g.last().unwrap()));
            assert!((p.lambda() * p.m as f64 - p.rho_prime).abs() < 1e-12);
        }
    }
}
