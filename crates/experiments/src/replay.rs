//! Deterministic failure-replay artifacts.
//!
//! When a fault- or churn-injected run panics, trips an invariant, or a
//! divergence detector fires, the robustness harness serializes everything
//! needed to reproduce the failure — master seed, [`FaultPlan`],
//! [`ChurnPlan`], workload and policy parameters, and the observed failure
//! — into a small flat JSON file under `results/failures/`. Because every
//! random choice in a run derives from the master seed, replaying the
//! record re-executes the identical timeline and must reproduce the
//! identical failure.
//!
//! The format is deliberately flat (one JSON object, scalar values only)
//! so it can be written and parsed without a serialization dependency.
//! Each artifact is stamped with the workspace version that wrote it;
//! loading a stale or corrupted artifact returns an error (the replay
//! binaries exit with code 2) instead of silently replaying a different
//! timeline.

use crate::panels::Panel;
use crate::runner::{simulate_churn, simulate_churn_with_detector, PolicyKind, SimSettings};
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use tcw_mac::{ChurnPlan, FaultPlan};

/// The workspace version stamped into every artifact.
pub const ARTIFACT_VERSION: &str = env!("CARGO_PKG_VERSION");

/// Everything needed to reproduce one failed run.
#[derive(Clone, Debug, PartialEq)]
pub struct FailureRecord {
    /// Master seed of the failing run.
    pub seed: u64,
    /// The injected fault plan.
    pub plan: FaultPlan,
    /// The injected churn plan (membership dynamics).
    pub churn: ChurnPlan,
    /// Workload panel.
    pub panel: Panel,
    /// Protocol variant.
    pub policy: PolicyKind,
    /// Deadline in units of `tau`.
    pub k_tau: f64,
    /// Simulation-size knobs.
    pub settings: SimSettings,
    /// Failure class: `"panic"` or `"divergence"`.
    pub kind: String,
    /// The failure itself (panic payload or first divergence).
    pub detail: String,
}

pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

pub(crate) fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                if let Some(c) = u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32) {
                    out.push(c);
                }
            }
            Some(c) => out.push(c),
            None => {}
        }
    }
    out
}

/// Incremental writer for the flat-JSON artifact envelope shared by every
/// record/replay binary (`robustness`, `churn`, `adaptive`, `chaos`).
///
/// Opens the object and stamps [`ARTIFACT_VERSION`] (plus an optional
/// `experiment` tag distinguishing artifact families); [`ArtifactWriter::finish`]
/// closes it. Byte layout matches the historical hand-rolled writers, so
/// previously committed artifacts stay byte-identical on regeneration.
pub struct ArtifactWriter {
    out: String,
}

impl ArtifactWriter {
    /// Starts an envelope; `experiment` tags the artifact family
    /// (`None` for the original robustness/churn format).
    pub fn new(experiment: Option<&str>) -> Self {
        let mut w = ArtifactWriter {
            out: String::from("{\n"),
        };
        w.raw("version", &format!("\"{ARTIFACT_VERSION}\""));
        if let Some(tag) = experiment {
            w.str("experiment", tag);
        }
        w
    }

    /// Appends a field with an already-JSON-formatted value.
    pub fn raw(&mut self, key: &str, value: &str) {
        self.out.push_str(&format!("  \"{key}\": {value},\n"));
    }

    /// Appends an unsigned integer field.
    pub fn u64(&mut self, key: &str, value: u64) {
        self.raw(key, &value.to_string());
    }

    /// Appends a float field (round-trip exact, always distinguishable
    /// from integers).
    pub fn f64(&mut self, key: &str, value: f64) {
        self.raw(key, &fmt_f64(value));
    }

    /// Appends a boolean field.
    pub fn bool(&mut self, key: &str, value: bool) {
        self.raw(key, if value { "true" } else { "false" });
    }

    /// Appends an escaped, quoted string field.
    pub fn str(&mut self, key: &str, value: &str) {
        self.raw(key, &format!("\"{}\"", escape(value)));
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        // Trailing comma is invalid JSON; replace with a closing brace.
        self.out.truncate(self.out.len() - 2);
        self.out.push_str("\n}\n");
        self.out
    }
}

/// Typed reader over a parsed artifact envelope.
///
/// [`ArtifactReader::parse`] enforces the version stamp (and the
/// `experiment` family tag when one is expected) *before* any field is
/// read — a stale or corrupted artifact would replay a different
/// timeline, so every loader rejects it up front (the binaries then exit
/// with [`crate::diag::EXIT_FAILURE`]).
pub struct ArtifactReader {
    fields: BTreeMap<String, String>,
}

impl ArtifactReader {
    /// Parses the envelope and verifies version + family tag.
    pub fn parse(text: &str, experiment: Option<&str>) -> Result<Self, String> {
        let fields = parse_flat(text)?;
        match fields.get("version").map(String::as_str) {
            None => {
                return Err(format!(
                    "artifact has no version stamp (predates {ARTIFACT_VERSION}); \
                     regenerate it with the current binaries"
                ))
            }
            Some(v) if v != ARTIFACT_VERSION => {
                return Err(format!(
                    "artifact was written by version {v}, this binary is \
                     {ARTIFACT_VERSION}; regenerate it with the current binaries"
                ))
            }
            Some(_) => {}
        }
        if let Some(tag) = experiment {
            match fields.get("experiment").map(String::as_str) {
                Some(t) if t == tag => {}
                other => return Err(format!("not a {tag} artifact: {other:?}")),
            }
        }
        Ok(ArtifactReader { fields })
    }

    /// A float field.
    pub fn f64(&self, key: &str) -> Result<f64, String> {
        self.fields
            .get(key)
            .ok_or_else(|| format!("missing field {key:?}"))?
            .parse::<f64>()
            .map_err(|e| format!("field {key:?}: {e}"))
    }

    /// An unsigned integer field (accepts the float spelling too, as the
    /// historical readers did).
    pub fn u64(&self, key: &str) -> Result<u64, String> {
        // Parse the raw token directly when possible: the f64 path loses
        // precision above 2^53 (e.g. stream seeds).
        if let Some(raw) = self.fields.get(key) {
            if let Ok(v) = raw.parse::<u64>() {
                return Ok(v);
            }
        }
        Ok(self.f64(key)? as u64)
    }

    /// An unescaped string field.
    pub fn str(&self, key: &str) -> Result<String, String> {
        Ok(unescape(
            self.fields
                .get(key)
                .ok_or_else(|| format!("missing field {key:?}"))?,
        ))
    }

    /// A boolean field, defaulting when absent.
    pub fn bool_or(&self, key: &str, default: bool) -> bool {
        self.fields.get(key).map(|v| v == "true").unwrap_or(default)
    }
}

/// Writes artifact text to `path`, creating parent directories.
pub fn save_artifact(path: &Path, text: &str) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    fs::write(path, text)
}

/// Reads artifact text from `path`.
pub fn load_artifact(path: &Path) -> Result<String, String> {
    fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))
}

impl FailureRecord {
    /// Serializes the record as one flat JSON object.
    pub fn to_json(&self) -> String {
        let mut w = ArtifactWriter::new(None);
        let out = &mut w;
        let mut field = |key: &str, value: String| {
            out.raw(key, &value);
        };
        field("seed", self.seed.to_string());
        field(
            "success_to_collision",
            fmt_f64(self.plan.success_to_collision),
        );
        field(
            "collision_to_success",
            fmt_f64(self.plan.collision_to_success),
        );
        field("collision_to_idle", fmt_f64(self.plan.collision_to_idle));
        field("idle_to_collision", fmt_f64(self.plan.idle_to_collision));
        field("erasure", fmt_f64(self.plan.erasure));
        field("deafness", fmt_f64(self.plan.deafness));
        field("deaf_slots", self.plan.deaf_slots.to_string());
        field("crash", fmt_f64(self.churn.crash));
        field("down_slots", self.churn.down_slots.to_string());
        field("late_join_frac", fmt_f64(self.churn.late_join_frac));
        field("join_slot", self.churn.join_slot.to_string());
        field("leave_frac", fmt_f64(self.churn.leave_frac));
        field("leave_slot", self.churn.leave_slot.to_string());
        field("catch_up_slots", self.churn.catch_up_slots.to_string());
        field(
            "outage_start_slot",
            self.churn.outage_start_slot.to_string(),
        );
        field("outage_slots", self.churn.outage_slots.to_string());
        field("rho_prime", fmt_f64(self.panel.rho_prime));
        field("m", self.panel.m.to_string());
        field("policy", format!("\"{}\"", self.policy.label()));
        field("k_tau", fmt_f64(self.k_tau));
        field("ticks_per_tau", self.settings.ticks_per_tau.to_string());
        field("messages", self.settings.messages.to_string());
        field("warmup", self.settings.warmup.to_string());
        field("stations", self.settings.stations.to_string());
        field("guard", self.settings.guard.to_string());
        field("kind", format!("\"{}\"", escape(&self.kind)));
        field("detail", format!("\"{}\"", escape(&self.detail)));
        w.finish()
    }

    /// Parses a record previously written by [`FailureRecord::to_json`].
    ///
    /// Rejects artifacts missing a version stamp, stamped by a different
    /// workspace version, or carrying out-of-range plan parameters — a
    /// stale or corrupted artifact would replay a *different* timeline and
    /// report a spurious divergence.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let r = ArtifactReader::parse(text, None)?;
        let num = |key: &str| -> Result<f64, String> { r.f64(key) };
        let int = |key: &str| -> Result<u64, String> { r.u64(key) };
        let string = |key: &str| -> Result<String, String> { r.str(key) };
        let policy = match string("policy")?.as_str() {
            "controlled" => PolicyKind::Controlled,
            "fcfs" => PolicyKind::Fcfs,
            "lcfs" => PolicyKind::Lcfs,
            "random" => PolicyKind::Random,
            other => return Err(format!("unknown policy {other:?}")),
        };
        let plan = FaultPlan {
            success_to_collision: num("success_to_collision")?,
            collision_to_success: num("collision_to_success")?,
            collision_to_idle: num("collision_to_idle")?,
            idle_to_collision: num("idle_to_collision")?,
            erasure: num("erasure")?,
            deafness: num("deafness")?,
            deaf_slots: int("deaf_slots")?,
        };
        plan.check()
            .map_err(|e| format!("corrupted fault plan: {e}"))?;
        let churn = ChurnPlan {
            crash: num("crash")?,
            down_slots: int("down_slots")?,
            late_join_frac: num("late_join_frac")?,
            join_slot: int("join_slot")?,
            leave_frac: num("leave_frac")?,
            leave_slot: int("leave_slot")?,
            catch_up_slots: int("catch_up_slots")?,
            outage_start_slot: int("outage_start_slot")?,
            outage_slots: int("outage_slots")?,
        };
        churn
            .check()
            .map_err(|e| format!("corrupted churn plan: {e}"))?;
        Ok(FailureRecord {
            seed: int("seed")?,
            plan,
            churn,
            panel: Panel {
                rho_prime: num("rho_prime")?,
                m: int("m")?,
            },
            policy,
            k_tau: num("k_tau")?,
            settings: SimSettings {
                ticks_per_tau: int("ticks_per_tau")?,
                messages: int("messages")?,
                warmup: int("warmup")?,
                stations: int("stations")? as u32,
                guard: r.bool_or("guard", false),
            },
            kind: string("kind")?,
            detail: string("detail")?,
        })
    }

    /// Writes the record to `path`, creating parent directories.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        save_artifact(path, &self.to_json())
    }

    /// Loads a record from `path`.
    pub fn load(path: &Path) -> Result<Self, String> {
        Self::from_json(&load_artifact(path)?)
    }
}

/// Extracts a human-readable message from a caught panic payload.
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Executes the run a record describes and returns the observed
/// `(kind, detail)` outcome — `("ok", summary)` when nothing failed.
/// Deterministic: the same record always returns the same pair.
///
/// A per-station divergence detector rides along whenever the record
/// injects receive deafness or a churn listener outage; a detected
/// divergence is itself a reportable failure.
pub fn execute(rec: &FailureRecord) -> (String, String) {
    let run = || -> (String, String) {
        if rec.plan.deafness > 0.0 || rec.churn.outage_slots > 0 {
            let (point, det) = simulate_churn_with_detector(
                rec.panel,
                rec.policy,
                rec.k_tau,
                rec.settings,
                rec.seed,
                rec.plan,
                rec.churn,
            );
            match det.first_divergence {
                Some(first) => (
                    "divergence".to_string(),
                    format!(
                        "station 0 diverged {} time(s) ({} slots missed, {} resyncs, {} churn repair(s)); first: {first}",
                        det.divergences, det.dropped_slots, det.resyncs, det.churn_repairs
                    ),
                ),
                None => ("ok".to_string(), format!("loss={:.6}", point.point.loss)),
            }
        } else {
            let p = simulate_churn(
                rec.panel,
                rec.policy,
                rec.k_tau,
                rec.settings,
                rec.seed,
                rec.plan,
                rec.churn,
            );
            ("ok".to_string(), format!("loss={:.6}", p.point.loss))
        }
    };
    match catch_unwind(AssertUnwindSafe(run)) {
        Ok(outcome) => outcome,
        Err(payload) => ("panic".to_string(), panic_message(payload)),
    }
}

/// Replays an artifact and returns the process exit code, following the
/// convention in [`crate::diag`]: [`crate::diag::EXIT_FAILURE`] when the
/// artifact cannot be loaded (missing, stale version, or corrupted) or
/// when the replay did not reproduce the recorded failure, `0` when it
/// did.
pub fn replay(path: &Path) -> i32 {
    let rec = match FailureRecord::load(path) {
        Ok(r) => r,
        Err(e) => {
            crate::diag::error("replay", &format!("cannot load artifact: {e}"));
            return crate::diag::EXIT_FAILURE;
        }
    };
    println!(
        "replaying {} (kind={:?}, seed={}, plan={:?}, churn={:?})",
        path.display(),
        rec.kind,
        rec.seed,
        rec.plan,
        rec.churn
    );
    let (kind, detail) = execute(&rec);
    println!("recorded: [{}] {}", rec.kind, rec.detail);
    println!("replayed: [{kind}] {detail}");
    if kind == rec.kind && detail == rec.detail {
        println!("replay reproduced the identical failure");
        0
    } else {
        crate::diag::error("replay", "REPLAY DIVERGED from the recorded failure");
        crate::diag::EXIT_FAILURE
    }
}

/// Formats an `f64` so it round-trips exactly and always contains a `.`
/// or exponent (so integers and floats stay distinguishable to readers).
pub(crate) fn fmt_f64(x: f64) -> String {
    let s = format!("{x}");
    if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
        s
    } else {
        format!("{s}.0")
    }
}

/// Parses one flat JSON object into raw (still-escaped) value strings.
pub(crate) fn parse_flat(text: &str) -> Result<BTreeMap<String, String>, String> {
    let mut out = BTreeMap::new();
    let body = text
        .trim()
        .strip_prefix('{')
        .and_then(|t| t.trim_end().strip_suffix('}'))
        .ok_or("not a JSON object")?;
    let bytes = body.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        // Skip whitespace and separators up to the next key.
        while i < bytes.len() && (bytes[i].is_ascii_whitespace() || bytes[i] == b',') {
            i += 1;
        }
        if i >= bytes.len() {
            break;
        }
        if bytes[i] != b'"' {
            return Err(format!("expected key at byte {i}"));
        }
        i += 1;
        let key_start = i;
        while i < bytes.len() && bytes[i] != b'"' {
            i += 1;
        }
        let key = body[key_start..i].to_string();
        i += 1; // closing quote
        while i < bytes.len() && (bytes[i].is_ascii_whitespace() || bytes[i] == b':') {
            i += 1;
        }
        if i < bytes.len() && bytes[i] == b'"' {
            // String value: scan to the first unescaped quote.
            i += 1;
            let val_start = i;
            while i < bytes.len() {
                if bytes[i] == b'\\' {
                    i += 2;
                    continue;
                }
                if bytes[i] == b'"' {
                    break;
                }
                i += 1;
            }
            out.insert(key, body[val_start..i.min(bytes.len())].to_string());
            i += 1;
        } else {
            // Bare scalar: up to the next comma or end.
            let val_start = i;
            while i < bytes.len() && bytes[i] != b',' {
                i += 1;
            }
            out.insert(key, body[val_start..i].trim().to_string());
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> FailureRecord {
        FailureRecord {
            seed: 42,
            plan: FaultPlan {
                success_to_collision: 0.05,
                collision_to_success: 0.05,
                collision_to_idle: 0.05,
                idle_to_collision: 0.05,
                erasure: 0.05,
                deafness: 0.01,
                deaf_slots: 3,
            },
            churn: ChurnPlan {
                crash: 0.001,
                down_slots: 40,
                catch_up_slots: 100,
                ..ChurnPlan::none()
            },
            panel: Panel {
                rho_prime: 0.5,
                m: 25,
            },
            policy: PolicyKind::Controlled,
            k_tau: 100.0,
            settings: SimSettings::default(),
            kind: "panic".to_string(),
            detail: "assertion \"failed\"\nwith a newline and a \\ backslash".to_string(),
        }
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let r = record();
        let parsed = FailureRecord::from_json(&r.to_json()).expect("parse");
        assert_eq!(parsed, r);
    }

    #[test]
    fn parse_rejects_missing_version() {
        let json = record().to_json().replace("\"version\"", "\"vversion\"");
        let err = FailureRecord::from_json(&json).unwrap_err();
        assert!(err.contains("no version stamp"), "{err}");
    }

    #[test]
    fn parse_rejects_stale_version() {
        let stamp = format!("\"version\": \"{ARTIFACT_VERSION}\"");
        let json = record()
            .to_json()
            .replace(&stamp, "\"version\": \"0.0.0-stale\"");
        let err = FailureRecord::from_json(&json).unwrap_err();
        assert!(
            err.contains("0.0.0-stale") && err.contains(ARTIFACT_VERSION),
            "{err}"
        );
    }

    #[test]
    fn parse_rejects_corrupted_plans() {
        let json = record()
            .to_json()
            .replace("\"erasure\": 0.05", "\"erasure\": 7.0");
        let err = FailureRecord::from_json(&json).unwrap_err();
        assert!(err.contains("corrupted fault plan"), "{err}");
        let json = record()
            .to_json()
            .replace("\"crash\": 0.001", "\"crash\": -1.0");
        let err = FailureRecord::from_json(&json).unwrap_err();
        assert!(err.contains("corrupted churn plan"), "{err}");
    }

    #[test]
    fn roundtrip_survives_save_and_load() {
        let dir = std::env::temp_dir().join("tcw_replay_test");
        let path = dir.join("failure.json");
        let r = record();
        r.save(&path).expect("save");
        let loaded = FailureRecord::load(&path).expect("load");
        assert_eq!(loaded, r);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FailureRecord::from_json("not json").is_err());
        assert!(FailureRecord::from_json("{}").is_err());
    }

    #[test]
    fn float_formatting_distinguishes_kinds() {
        assert_eq!(fmt_f64(0.5), "0.5");
        assert_eq!(fmt_f64(100.0), "100.0");
    }
}
