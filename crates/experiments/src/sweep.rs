//! Parallel sweep execution.
//!
//! Every experiment binary sweeps a grid of *cells* — fully specified,
//! mutually independent simulation points (panel × policy × deadline ×
//! seed × fault/churn plan). Cells share no state: each engine derives
//! every random draw from its own master seed, so the grid is
//! embarrassingly parallel and the paper's Section-5 panels can use all
//! available cores.
//!
//! [`run_parallel`] executes a slice of cells on a small work-stealing
//! pool built on `std::thread::scope` (the workspace stays
//! dependency-free): workers pull the next unclaimed index from a shared
//! atomic counter and send `(index, result)` back over a channel, and
//! results are reassembled **in cell order** before returning.
//! Determinism therefore does not depend on scheduling:
//!
//! * with `jobs == 1` the cells run inline on the calling thread, in
//!   order — byte-identical to the historical serial loops;
//! * with `jobs > 1` each cell still computes exactly the same value
//!   (its seed is part of the cell), and reassembly restores cell order,
//!   so CSV/TXT outputs are byte-identical to the serial run. The
//!   `sweep_determinism` integration test pins this property.
//!
//! Binaries expose the pool width as `--jobs N` (parsed by
//! [`jobs_from_args`]; default: available parallelism).

use crate::replay::panic_message;
use crate::runner::{simulate_churn, ChurnSimPoint, PolicyKind, SimSettings};
use crate::Panel;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// One fully specified simulation point of a sweep grid.
///
/// A `Cell` carries everything a worker needs — including the master
/// seed — so running it is a pure function of the cell. Plans default to
/// [`tcw_mac::FaultPlan::none`] / [`tcw_mac::ChurnPlan::none`], which
/// are bit-identical to fault- and churn-free builds.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Workload panel (offered load and message length).
    pub panel: Panel,
    /// Protocol variant.
    pub policy: PolicyKind,
    /// Deadline in units of `tau`.
    pub k_tau: f64,
    /// Simulation-size knobs.
    pub settings: SimSettings,
    /// Master seed of the run.
    pub seed: u64,
    /// Injected fault plan.
    pub plan: tcw_mac::FaultPlan,
    /// Injected churn plan.
    pub churn: tcw_mac::ChurnPlan,
}

impl Cell {
    /// A clean (fault- and churn-free) cell.
    pub fn clean(
        panel: Panel,
        policy: PolicyKind,
        k_tau: f64,
        settings: SimSettings,
        seed: u64,
    ) -> Self {
        Cell {
            panel,
            policy,
            k_tau,
            settings,
            seed,
            plan: tcw_mac::FaultPlan::none(),
            churn: tcw_mac::ChurnPlan::none(),
        }
    }

    /// Runs the cell to completion.
    pub fn run(&self) -> ChurnSimPoint {
        simulate_churn(
            self.panel,
            self.policy,
            self.k_tau,
            self.settings,
            self.seed,
            self.plan,
            self.churn,
        )
    }
}

/// Runs every cell and reassembles the results in cell order.
///
/// A panicking cell aborts the sweep with a message naming both the
/// cell index and its master seed, so the failure can be replayed
/// without guessing which grid point died.
pub fn run_cells(cells: &[Cell], jobs: usize) -> Vec<ChurnSimPoint> {
    run_parallel(cells, jobs, |_, c| {
        catch_unwind(AssertUnwindSafe(|| c.run()))
            .unwrap_or_else(|e| panic!("cell with seed {} panicked: {}", c.seed, panic_message(e)))
    })
}

/// Executes `f` over `items` on `jobs` worker threads (work-stealing via
/// a shared index counter) and returns the results **in item order**.
///
/// `f` receives `(index, &item)`. With `jobs <= 1` the items run inline
/// on the calling thread in order, with no thread machinery at all.
///
/// A panic inside `f` is contained by the executor in both modes: the
/// worker that hit it keeps draining the remaining cells, and once the
/// sweep ends the caller's thread panics with the **lowest failing cell
/// index** and the original panic message. A panicking cell can
/// therefore never wedge or silently kill the pool (callers that must
/// survive cell panics still wrap `f`'s body in `catch_unwind`).
pub fn run_parallel<I, T, F>(items: &[I], jobs: usize, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    run_parallel_with_progress(items, jobs, None, f)
}

/// [`run_parallel`] with optional live progress: when `progress` is given,
/// workers report per-cell start/done transitions into it and a monitor
/// thread re-renders the stderr progress line (with ETA and stall
/// detection) while the sweep runs.
///
/// Progress is pure observation on the side of the computation — results
/// and their order are exactly those of [`run_parallel`], and nothing
/// derived from the wall clock can reach `f` or its results.
pub fn run_parallel_with_progress<I, T, F>(
    items: &[I],
    jobs: usize,
    progress: Option<&tcw_obs::Progress>,
    f: F,
) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs == 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, it)| {
                if let Some(p) = progress {
                    p.cell_started(0, i);
                }
                let r = catch_unwind(AssertUnwindSafe(|| f(i, it)))
                    .unwrap_or_else(|e| panic!("sweep cell {i} panicked: {}", panic_message(e)));
                if let Some(p) = progress {
                    p.cell_done(0);
                    p.tick();
                }
                r
            })
            .collect();
    }
    let next = AtomicUsize::new(0);
    // Live worker count, decremented on worker exit even through a panic,
    // so the monitor thread can never outlive its workers.
    let alive = AtomicUsize::new(jobs);
    struct Leaving<'a>(&'a AtomicUsize);
    impl Drop for Leaving<'_> {
        fn drop(&mut self) {
            self.0.fetch_sub(1, Ordering::Relaxed);
        }
    }
    let (tx, rx) = mpsc::channel::<(usize, std::thread::Result<T>)>();
    std::thread::scope(|s| {
        for w in 0..jobs {
            let tx = tx.clone();
            let next = &next;
            let alive = &alive;
            let f = &f;
            s.spawn(move || {
                let _leaving = Leaving(alive);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    if let Some(p) = progress {
                        p.cell_started(w, i);
                    }
                    // Contain a cell panic inside the worker: the pool
                    // keeps draining the grid and the failure is re-raised
                    // with its cell index after reassembly.
                    let r = catch_unwind(AssertUnwindSafe(|| f(i, &items[i])));
                    if let Some(p) = progress {
                        p.cell_done(w);
                    }
                    if tx.send((i, r)).is_err() {
                        break;
                    }
                }
            });
        }
        if let Some(p) = progress {
            // Monitor thread: re-render until every cell has completed
            // (or every worker has exited, should one panic mid-cell).
            let alive = &alive;
            s.spawn(move || {
                while p.completed() < items.len() && alive.load(Ordering::Relaxed) > 0 {
                    p.tick();
                    std::thread::sleep(std::time::Duration::from_millis(100));
                }
            });
        }
        drop(tx);
    });
    let mut out: Vec<Option<std::thread::Result<T>>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    for (i, r) in rx {
        out[i] = Some(r);
    }
    out.into_iter()
        .enumerate()
        .map(|(i, o)| {
            o.expect("every cell index was claimed by exactly one worker")
                .unwrap_or_else(|e| panic!("sweep cell {i} panicked: {}", panic_message(e)))
        })
        .collect()
}

/// The default worker count: the host's available parallelism.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Parses `--jobs N` (or `--jobs=N`) out of a raw argument list,
/// defaulting to [`default_jobs`]. `--jobs 1` forces the serial path.
///
/// # Panics
/// Panics with a usage message when the flag is present but malformed.
pub fn jobs_from_args(args: &[String]) -> usize {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--jobs" {
            let v = it.next().unwrap_or_else(|| panic!("--jobs needs a value"));
            return v
                .parse()
                .unwrap_or_else(|_| panic!("--jobs expects a positive integer, got {v:?}"));
        }
        if let Some(v) = a.strip_prefix("--jobs=") {
            return v
                .parse()
                .unwrap_or_else(|_| panic!("--jobs expects a positive integer, got {v:?}"));
        }
    }
    default_jobs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::panels::PANELS;

    #[test]
    fn parallel_matches_serial_order_and_values() {
        let items: Vec<u64> = (0..100).collect();
        let serial = run_parallel(&items, 1, |i, x| (i as u64) * 1_000 + x * x);
        let parallel = run_parallel(&items, 4, |i, x| (i as u64) * 1_000 + x * x);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn more_jobs_than_items_is_fine() {
        let items = [1u64, 2, 3];
        assert_eq!(run_parallel(&items, 64, |_, x| x * 2), vec![2, 4, 6]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: [u64; 0] = [];
        assert!(run_parallel(&items, 8, |_, x| *x).is_empty());
    }

    #[test]
    fn jobs_flag_parsing() {
        let args = |v: &[&str]| -> Vec<String> { v.iter().map(|s| s.to_string()).collect() };
        assert_eq!(jobs_from_args(&args(&["--quick", "--jobs", "3"])), 3);
        assert_eq!(jobs_from_args(&args(&["--jobs=7"])), 7);
        assert_eq!(jobs_from_args(&args(&["--quick"])), default_jobs());
    }

    #[test]
    fn panicking_cell_surfaces_its_index_in_both_modes() {
        for jobs in [1usize, 4] {
            let items: Vec<u64> = (0..16).collect();
            let err = catch_unwind(AssertUnwindSafe(|| {
                run_parallel(&items, jobs, |i, x| {
                    if i == 7 {
                        panic!("boom at {x}");
                    }
                    *x
                })
            }))
            .expect_err("cell 7 must abort the sweep");
            let msg = panic_message(err);
            assert!(msg.contains("sweep cell 7"), "jobs={jobs}: {msg}");
            assert!(msg.contains("boom at 7"), "jobs={jobs}: {msg}");
        }
    }

    #[test]
    fn panicking_cell_does_not_kill_the_worker_pool() {
        // With one worker and an early panicking cell, the same worker
        // must still drain every later cell before the failure surfaces.
        let items: Vec<u64> = (0..8).collect();
        let seen = AtomicUsize::new(0);
        let err = catch_unwind(AssertUnwindSafe(|| {
            run_parallel(&items, 2, |i, x| {
                seen.fetch_add(1, Ordering::Relaxed);
                if i == 0 {
                    panic!("first cell dies");
                }
                *x
            })
        }))
        .expect_err("sweep re-raises the contained panic");
        assert!(panic_message(err).contains("sweep cell 0"));
        assert_eq!(seen.load(Ordering::Relaxed), items.len());
    }

    #[test]
    fn panicking_run_cells_names_the_seed() {
        let settings = SimSettings {
            messages: 10,
            warmup: 0,
            ticks_per_tau: 8,
            ..Default::default()
        };
        // A negative rho' yields a non-positive Poisson rate, which the
        // arrival source asserts on — a deterministic in-cell panic.
        let bad = Panel {
            rho_prime: -1.0,
            m: 25,
        };
        let cells = vec![Cell::clean(
            bad,
            PolicyKind::Controlled,
            100.0,
            settings,
            4242,
        )];
        let err = catch_unwind(AssertUnwindSafe(|| run_cells(&cells, 1)))
            .expect_err("invalid panel must panic");
        let msg = panic_message(err);
        assert!(msg.contains("seed 4242"), "{msg}");
    }

    #[test]
    fn cell_results_are_independent_of_jobs() {
        let settings = SimSettings {
            messages: 300,
            warmup: 50,
            ticks_per_tau: 8,
            ..Default::default()
        };
        let cells: Vec<Cell> = (0..4)
            .map(|i| Cell::clean(PANELS[0], PolicyKind::Controlled, 100.0, settings, 100 + i))
            .collect();
        let serial = run_cells(&cells, 1);
        let parallel = run_cells(&cells, 4);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.point.loss.to_bits(), p.point.loss.to_bits());
            assert_eq!(s.point.offered, p.point.offered);
            assert_eq!(s.point.utilization.to_bits(), p.point.utilization.to_bits());
        }
    }
}
