//! The chaos harness: composed stress configs, invariant monitoring and
//! automatic failure shrinking for the `chaos` binary.
//!
//! Each of PR 1/2/5's stressors — [`FaultPlan`] feedback corruption,
//! [`ChurnPlan`] membership dynamics, piecewise/adversarial load and the
//! adaptive [`tcw_window::WindowController`]s — has its own invariant
//! tests in isolation. This module exercises them *together*: thousands
//! of seeded [`ChaosConfig`]s are sampled from one base seed, each run
//! under the [`InvariantMonitor`] (message conservation, FCFS order,
//! age bounds, clock consistency) with a [`DivergenceDetector`] mirror
//! riding along as a differential oracle wherever it is sound (static
//! controller; see [`ChaosConfig::strict_differential`]).
//!
//! When a run fails — monitor violation, unexpected mirror divergence,
//! or panic — [`shrink`] delta-debugs the config down to a 1-minimal
//! reproduction and the result is serialized as a version-stamped
//! [`ChaosRecord`] replayable with `chaos --replay` (same envelope and
//! exit-code conventions as the other record/replay binaries; a
//! reproduced *violation* still exits 2 because violations are failures
//! under the [`crate::diag`] convention).
//!
//! Because a monitor that can never fire is worthless, [`Mutation`]
//! deliberately corrupts the event stream *between engine and monitor*
//! (dropped delivery, reordered FCFS pair, stale probe clock). The
//! mutation is part of the config — and of the artifact — so seeded
//! violations replay and shrink exactly like organic ones.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;

use crate::replay::{load_artifact, panic_message, save_artifact, ArtifactReader, ArtifactWriter};
use crate::runner::run_to_horizon;
use tcw_mac::{
    AdversarialInjector, AdversaryPlan, ArrivalSource, ChannelConfig, ChurnPlan, FaultPlan,
    MergedSource, PiecewiseArrivals, RateStep,
};
use tcw_sim::rng::{stream_seed, Rng};
use tcw_sim::stats::MetricSink;
use tcw_sim::time::{Dur, Time};
use tcw_window::analysis::optimal_mu;
use tcw_window::invariant::{InvariantMonitor, MonitorConfig};
use tcw_window::metrics::MeasureConfig;
use tcw_window::trace::{EngineObserver, NoopObserver, Tee};
use tcw_window::{
    AimdConfig, ControlPolicy, ControllerConfig, DivergenceDetector, Engine, EngineConfig,
    EstimatorConfig, Interval, ResyncPolicy,
};

/// Base seed: config `i` runs under `stream_seed(BASE_SEED, i)`.
pub const BASE_SEED: u64 = 0xC4A05;
/// Default number of composed configs in a sweep.
pub const DEFAULT_CONFIGS: usize = 1000;
/// Trial budget for the shrinker (far above any observed fixpoint).
pub const SHRINK_BUDGET: u64 = 500;

/// Element-(2) controller choice for a chaos config.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosController {
    /// Static window tuned for the config's mean rate.
    Static,
    /// [`tcw_window::AimdController`] seeded at the static window.
    Aimd,
    /// [`tcw_window::EstimatorController`] seeded at the static window.
    Estimator,
}

impl ChaosController {
    /// Every controller, in sampling order.
    pub const ALL: [ChaosController; 3] = [
        ChaosController::Static,
        ChaosController::Aimd,
        ChaosController::Estimator,
    ];

    /// Stable short name.
    pub fn label(self) -> &'static str {
        match self {
            ChaosController::Static => "static",
            ChaosController::Aimd => "aimd",
            ChaosController::Estimator => "estimator",
        }
    }

    /// Inverse of [`ChaosController::label`].
    pub fn parse(s: &str) -> Option<Self> {
        ChaosController::ALL.into_iter().find(|c| c.label() == s)
    }
}

/// A deliberate corruption of the engine→monitor event stream, used to
/// mutation-test the monitor (and to seed shrinkable violations).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Faithful event stream.
    None,
    /// Swallow one `on_transmit` (caught by conservation at finish).
    DropDelivery,
    /// Swap one strictly-increasing pair of deliveries (caught by FCFS).
    ReorderPair,
    /// Report one probe a tick early (caught by the clock check).
    StaleClock,
}

impl Mutation {
    /// The three corrupting mutations.
    pub const CORRUPTING: [Mutation; 3] = [
        Mutation::DropDelivery,
        Mutation::ReorderPair,
        Mutation::StaleClock,
    ];

    /// Stable short name.
    pub fn label(self) -> &'static str {
        match self {
            Mutation::None => "none",
            Mutation::DropDelivery => "drop_delivery",
            Mutation::ReorderPair => "reorder_pair",
            Mutation::StaleClock => "stale_clock",
        }
    }

    /// Inverse of [`Mutation::label`].
    pub fn parse(s: &str) -> Option<Self> {
        [Mutation::None]
            .into_iter()
            .chain(Mutation::CORRUPTING)
            .find(|m| m.label() == s)
    }

    /// The invariant class this mutation must trip.
    pub fn expected_class(self) -> Option<&'static str> {
        match self {
            Mutation::None => None,
            Mutation::DropDelivery => Some("conservation"),
            Mutation::ReorderPair => Some("fcfs"),
            Mutation::StaleClock => Some("clock"),
        }
    }
}

/// One composed stress configuration — everything a run needs, and
/// everything a [`ChaosRecord`] serializes.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosConfig {
    /// Master seed of the run.
    pub seed: u64,
    /// Arrival horizon in ticks (the engine then drains).
    pub horizon_ticks: u64,
    /// Station population.
    pub stations: u32,
    /// Channel tick resolution.
    pub ticks_per_tau: u64,
    /// Message length in units of `tau`.
    pub message_slots: u64,
    /// Delivery deadline `K` in ticks.
    pub k_ticks: u64,
    /// Element-(2) controller.
    pub controller: ChaosController,
    /// Injected feedback faults.
    pub plan: FaultPlan,
    /// Injected membership churn.
    pub churn: ChurnPlan,
    /// Piecewise-constant legitimate load: `(start_tick, rate_per_tick)`
    /// segments, first at tick 0, strictly increasing.
    pub segments: Vec<(u64, f64)>,
    /// Adversarial injection rate (messages per tick; 0 = no adversary).
    pub adv_rate: f64,
    /// Adversarial burst size (`sigma`; 0 = no adversary).
    pub adv_burst: u32,
    /// First adversarial burst instant (ticks).
    pub adv_start: u64,
    /// Event-stream corruption applied between engine and monitor.
    pub mutation: Mutation,
}

impl ChaosConfig {
    /// Samples config `index` of the sweep keyed by `base_seed`.
    ///
    /// Dimensions are drawn independently so the sweep composes faults ×
    /// churn × load shape × adversary × controller, with ~1/3 of each
    /// stressor left disabled to keep clean and partially-stressed runs
    /// in the population.
    pub fn sample(base_seed: u64, index: u64) -> Self {
        let mut rng = Rng::new(stream_seed(base_seed, index));
        let ticks_per_tau = [4u64, 8][rng.below(2) as usize];
        let message_slots = rng.range_inclusive(3, 8);
        let horizon_ticks = rng.range_inclusive(20, 80) * 1_000;
        let horizon_slots = horizon_ticks / ticks_per_tau;
        let stations = rng.range_inclusive(4, 48) as u32;
        let k_ticks = rng.range_inclusive(30, 150) * ticks_per_tau;
        let controller = ChaosController::ALL[rng.below(3) as usize];

        let mut plan = FaultPlan::none();
        if !rng.chance(0.35) {
            plan.success_to_collision = rng.f64() * 0.06;
            plan.collision_to_success = rng.f64() * 0.06;
            plan.collision_to_idle = rng.f64() * 0.06;
            plan.idle_to_collision = rng.f64() * 0.06;
            plan.erasure = rng.f64() * 0.06;
            if rng.chance(0.25) {
                plan.deafness = rng.f64() * 0.02;
                plan.deaf_slots = rng.range_inclusive(1, 5);
            }
        }

        let mut churn = ChurnPlan::none();
        if !rng.chance(0.35) {
            if rng.chance(0.6) {
                churn.crash = rng.f64() * 3e-4;
                churn.down_slots = rng.range_inclusive(10, 80);
                churn.catch_up_slots = rng.range_inclusive(20, 200);
            }
            if rng.chance(0.4) {
                churn.late_join_frac = rng.f64() * 0.3;
                churn.join_slot = rng.below(horizon_slots / 2 + 1);
            }
            if rng.chance(0.3) {
                churn.leave_frac = rng.f64() * 0.2;
                churn.leave_slot = horizon_slots / 2 + rng.below(horizon_slots / 4 + 1);
            }
            if rng.chance(0.3) {
                churn.outage_start_slot = rng.below(horizon_slots / 2 + 1);
                churn.outage_slots = rng.range_inclusive(20, 120);
            }
        }

        // Rates are sampled as offered load rho (fraction of the
        // channel's one-message-at-a-time capacity), then converted to
        // messages per tick. Overload (rho > 1) is deliberately in
        // range: deadline loss is legal behavior, not a violation.
        let msg_ticks = (message_slots * ticks_per_tau) as f64;
        let nseg = 1 + rng.below(3);
        let mut segments = Vec::with_capacity(nseg as usize);
        segments.push((0u64, (0.05 + rng.f64() * 1.15) / msg_ticks));
        for i in 1..nseg {
            let base = horizon_ticks * i / nseg;
            let jitter = rng.below(horizon_ticks / (4 * nseg) + 1);
            segments.push((base + jitter, (0.05 + rng.f64() * 1.45) / msg_ticks));
        }

        let (mut adv_rate, mut adv_burst, mut adv_start) = (0.0, 0u32, 0u64);
        if !rng.chance(0.65) {
            adv_rate = (0.05 + rng.f64() * 0.35) / msg_ticks;
            adv_burst = rng.range_inclusive(2, 10) as u32;
            adv_start = rng.below(horizon_ticks / 2 + 1);
        }

        let cfg = ChaosConfig {
            seed: stream_seed(base_seed, index),
            horizon_ticks,
            stations,
            ticks_per_tau,
            message_slots,
            k_ticks,
            controller,
            plan,
            churn,
            segments,
            adv_rate,
            adv_burst,
            adv_start,
            mutation: Mutation::None,
        };
        debug_assert!(cfg.check().is_ok(), "sampled invalid config");
        cfg
    }

    /// Validates every parameter (used when loading artifacts, so a
    /// corrupted file degrades to an error instead of a panic).
    pub fn check(&self) -> Result<(), String> {
        if self.stations < 2 {
            return Err("stations < 2".to_string());
        }
        if self.ticks_per_tau == 0 || self.message_slots == 0 {
            return Err("zero channel dimensions".to_string());
        }
        if self.horizon_ticks == 0 || self.k_ticks == 0 {
            return Err("zero horizon or deadline".to_string());
        }
        self.plan
            .check()
            .map_err(|e| format!("corrupted fault plan: {e}"))?;
        self.churn
            .check()
            .map_err(|e| format!("corrupted churn plan: {e}"))?;
        if self.segments.is_empty() {
            return Err("no load segments".to_string());
        }
        if self.segments[0].0 != 0 {
            return Err("first load segment must start at 0".to_string());
        }
        for w in self.segments.windows(2) {
            if w[0].0 >= w[1].0 {
                return Err("load segment starts must increase".to_string());
            }
        }
        for &(_, rate) in &self.segments {
            if !(rate > 0.0 && rate.is_finite()) {
                return Err("load rates must be positive-finite".to_string());
            }
        }
        if !(self.adv_rate >= 0.0 && self.adv_rate.is_finite()) {
            return Err("adversary rate must be non-negative finite".to_string());
        }
        if self.adv_burst > 0 && self.adv_rate == 0.0 {
            return Err("adversary burst without a rate".to_string());
        }
        Ok(())
    }

    /// Mean legitimate + adversarial arrival rate over the horizon
    /// (messages per tick) — what the static window is tuned for.
    pub fn mean_rate(&self) -> f64 {
        let h = self.horizon_ticks as f64;
        let mut acc = 0.0;
        for (i, &(start, rate)) in self.segments.iter().enumerate() {
            let end = self
                .segments
                .get(i + 1)
                .map(|&(s, _)| s)
                .unwrap_or(self.horizon_ticks)
                .min(self.horizon_ticks);
            acc += rate * (end.saturating_sub(start)) as f64;
        }
        let mut mean = acc / h;
        if self.adv_burst > 0 {
            mean += self.adv_rate
                * (self.horizon_ticks - self.adv_start.min(self.horizon_ticks)) as f64
                / h;
        }
        mean
    }

    /// The §4.1-heuristic static window (ticks) for [`Self::mean_rate`].
    pub fn static_window_ticks(&self) -> u64 {
        ((optimal_mu() / self.mean_rate()).round() as u64).max(1)
    }

    fn channel(&self) -> ChannelConfig {
        ChannelConfig {
            ticks_per_tau: self.ticks_per_tau,
            message_slots: self.message_slots,
            guard: false,
        }
    }

    fn policy(&self) -> ControlPolicy {
        ControlPolicy::controlled(
            Dur::from_ticks(self.k_ticks),
            Dur::from_ticks(self.static_window_ticks()),
        )
    }

    fn source(&self) -> MergedSource {
        let steps = self
            .segments
            .iter()
            .map(|&(start, rate)| RateStep {
                start: Time::from_ticks(start),
                rate_per_tick: rate,
            })
            .collect();
        let mut sources: Vec<Box<dyn ArrivalSource>> =
            vec![Box::new(PiecewiseArrivals::new(steps, self.stations))];
        if self.adv_burst > 0 {
            sources.push(Box::new(AdversarialInjector::new(AdversaryPlan {
                rate: self.adv_rate,
                burst: self.adv_burst,
                start: Time::from_ticks(self.adv_start),
                stations: self.stations,
            })));
        }
        MergedSource::new(sources)
    }

    fn build_controller(&self) -> Box<dyn tcw_window::WindowController> {
        let w = self.static_window_ticks();
        match self.controller {
            ChaosController::Static => ControllerConfig::Static.build(),
            ChaosController::Aimd => ControllerConfig::Aimd(AimdConfig::around(w)).build(),
            ChaosController::Estimator => {
                ControllerConfig::Estimator(EstimatorConfig::around(w)).build()
            }
        }
    }

    /// Whether the mirror differential check is *strict* for this
    /// config: the [`StationMirror`](tcw_window::StationMirror) replays
    /// decisions from the shared policy, so it is only sound under the
    /// static controller; the [`DivergenceDetector`] additionally models
    /// deafness/outage slot loss, after which divergences are expected
    /// behavior rather than failures.
    pub fn strict_differential(&self) -> bool {
        self.controller == ChaosController::Static
            && self.plan.deafness == 0.0
            && self.churn.outage_slots == 0
    }
}

/// What one chaos run produced.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosOutcome {
    /// `"ok"`, `"violation"`, `"divergence"` or `"panic"`.
    pub kind: String,
    /// Invariant class of the first violation (empty otherwise).
    pub class: String,
    /// Deterministic description of the outcome.
    pub detail: String,
    /// Total monitor violations.
    pub violations: u64,
    /// Detector divergences (0 when no detector was attached).
    pub divergences: u64,
    /// Monitor checks evaluated.
    pub checks: u64,
    /// Deliveries observed by the monitor.
    pub deliveries: u64,
    /// Offered messages (full-coverage measurement window).
    pub offered: u64,
    /// Deadline-loss fraction.
    pub loss: f64,
}

/// Corrupts the engine→monitor event stream per [`Mutation`]. All other
/// events pass through untouched; [`MutatingObserver::flush`] forwards a
/// still-held delivery so conservation is not tripped by the wrapper
/// itself when the stream ends before a reorder partner appears.
pub struct MutatingObserver<'a> {
    inner: &'a mut InvariantMonitor,
    mutation: Mutation,
    transmits: u64,
    probes: u64,
    held: Option<(tcw_mac::Message, Time, Dur, Dur)>,
    applied: bool,
}

/// Which delivery a [`Mutation::DropDelivery`] swallows (1-based).
const DROP_TARGET: u64 = 3;
/// Which probe a [`Mutation::StaleClock`] back-dates (1-based).
const STALE_TARGET: u64 = 5;

impl<'a> MutatingObserver<'a> {
    /// Wraps the monitor.
    pub fn new(mutation: Mutation, inner: &'a mut InvariantMonitor) -> Self {
        MutatingObserver {
            inner,
            mutation,
            transmits: 0,
            probes: 0,
            held: None,
            applied: false,
        }
    }

    /// Whether the corruption actually fired during the run.
    pub fn applied(&self) -> bool {
        self.applied
    }

    /// Forwards a held delivery (call after the run, before `finish`).
    pub fn flush(&mut self) {
        if let Some((msg, start, paper, truth)) = self.held.take() {
            self.inner.on_transmit(&msg, start, paper, truth);
        }
    }
}

impl EngineObserver for MutatingObserver<'_> {
    fn slow_path(&self) -> bool {
        self.inner.slow_path()
    }

    fn on_decision(&mut self, now: Time, segments: Option<&[Interval]>) {
        self.inner.on_decision(now, segments);
    }

    fn on_probe(
        &mut self,
        start: Time,
        segments: &[Interval],
        outcome: &tcw_mac::SlotOutcome,
        dur: Dur,
    ) {
        self.probes += 1;
        if self.mutation == Mutation::StaleClock
            && !self.applied
            && self.probes >= STALE_TARGET
            && start.ticks() > 0
        {
            self.applied = true;
            let early = start.saturating_sub(Dur::from_ticks(1));
            self.inner.on_probe(early, segments, outcome, dur);
            return;
        }
        self.inner.on_probe(start, segments, outcome, dur);
    }

    fn on_immediate_split(&mut self, now: Time, segments: &[Interval]) {
        self.inner.on_immediate_split(now, segments);
    }

    fn on_transmit(&mut self, msg: &tcw_mac::Message, start: Time, paper: Dur, truth: Dur) {
        self.transmits += 1;
        match self.mutation {
            Mutation::DropDelivery if !self.applied && self.transmits >= DROP_TARGET => {
                self.applied = true;
            }
            Mutation::ReorderPair if !self.applied => match self.held.take() {
                None => self.held = Some((*msg, start, paper, truth)),
                Some((hmsg, hstart, hpaper, htruth)) => {
                    if hmsg.arrival < msg.arrival {
                        // Deliver the younger message first: an FCFS
                        // inversion the monitor must flag.
                        self.applied = true;
                        self.inner.on_transmit(msg, start, paper, truth);
                        self.inner.on_transmit(&hmsg, hstart, hpaper, htruth);
                    } else {
                        // Equal arrivals cannot invert; release the held
                        // delivery and wait for a strictly younger pair.
                        self.inner.on_transmit(&hmsg, hstart, hpaper, htruth);
                        self.held = Some((*msg, start, paper, truth));
                    }
                }
            },
            _ => self.inner.on_transmit(msg, start, paper, truth),
        }
    }

    fn on_sender_discard(&mut self, msg: &tcw_mac::Message, now: Time) {
        self.inner.on_sender_discard(msg, now);
    }

    fn on_corrupted_slot(&mut self, now: Time, dur: Dur) {
        self.inner.on_corrupted_slot(now, dur);
    }

    fn on_backoff(&mut self, now: Time, dur: Dur) {
        self.inner.on_backoff(now, dur);
    }

    fn on_round_abandoned(&mut self, now: Time) {
        self.inner.on_round_abandoned(now);
    }

    fn on_reopen(&mut self, iv: Interval) {
        self.inner.on_reopen(iv);
    }

    fn on_beacon(&mut self, now: Time, timeline: &tcw_window::Timeline, rng: &Rng) {
        self.inner.on_beacon(now, timeline, rng);
    }

    fn on_churn_event(&mut self, now: Time, ev: &tcw_mac::ChurnEvent) {
        self.inner.on_churn_event(now, ev);
    }
}

/// Runs one config under the monitor (and, for static-controller
/// configs, the divergence detector), forwarding events to `extra`
/// (tracer) and emitting telemetry into `sink` when given.
///
/// # Panics
/// Propagates engine panics; [`execute`] wraps this in a catch.
pub fn run_observed(
    cfg: &ChaosConfig,
    extra: &mut dyn EngineObserver,
    sink: Option<&mut dyn MetricSink>,
) -> ChaosOutcome {
    let channel = cfg.channel();
    let policy = cfg.policy();
    let ecfg = EngineConfig {
        channel,
        policy: policy.clone(),
        measure: MeasureConfig {
            start: Time::ZERO,
            end: Time::MAX,
            deadline: Dur::from_ticks(cfg.k_ticks),
        },
        seed: cfg.seed,
    };
    let mut eng = Engine::new(ecfg, cfg.source());
    eng.set_fault_plan(cfg.plan);
    eng.set_churn_plan(cfg.churn, cfg.stations);
    eng.set_controller(cfg.build_controller());

    let mcfg = MonitorConfig::for_engine(
        &channel,
        &ResyncPolicy::default(),
        Some(Dur::from_ticks(cfg.k_ticks)),
    );
    let mut monitor = InvariantMonitor::new(mcfg);
    if cfg.controller == ChaosController::Static {
        monitor = monitor.with_mirror(policy.clone(), cfg.seed);
    }
    let mut detector = (cfg.controller == ChaosController::Static).then(|| {
        let det = DivergenceDetector::new(
            policy.clone(),
            cfg.seed,
            0,
            cfg.plan.deafness,
            cfg.plan.deaf_slots,
        );
        if cfg.churn.outage_slots > 0 {
            det.with_outage(cfg.churn.outage_start_slot, cfg.churn.outage_slots)
        } else {
            det
        }
    });

    {
        let mut mutator = MutatingObserver::new(cfg.mutation, &mut monitor);
        let horizon = Time::from_ticks(cfg.horizon_ticks);
        match detector.as_mut() {
            Some(det) => {
                let mut inner = Tee {
                    a: det,
                    b: &mut mutator,
                };
                let mut obs = Tee {
                    a: extra,
                    b: &mut inner,
                };
                run_to_horizon(&mut eng, horizon, &mut obs, None);
            }
            None => {
                let mut obs = Tee {
                    a: extra,
                    b: &mut mutator,
                };
                run_to_horizon(&mut eng, horizon, &mut obs, None);
            }
        }
        mutator.flush();
    }
    monitor.finish(
        eng.now(),
        eng.pending_count(),
        &eng.metrics,
        &eng.channel_stats,
    );

    if let Some(sink) = sink {
        eng.metrics.emit(sink);
        eng.channel_stats.emit(sink);
        eng.controller().emit(sink);
        monitor.emit(sink);
        if let Some(det) = &detector {
            det.emit(sink);
        }
    }

    let divergences = detector.as_ref().map(|d| d.divergences()).unwrap_or(0);
    let loss = eng.metrics.loss_fraction();
    let (kind, class, detail) = if let Some(v) = monitor.first() {
        (
            "violation".to_string(),
            v.class.label().to_string(),
            format!("t={} {}", v.at.ticks(), v.detail),
        )
    } else if cfg.strict_differential() && divergences > 0 {
        let first = detector
            .as_ref()
            .and_then(|d| d.first_divergence())
            .unwrap_or("mirror diverged")
            .to_string();
        ("divergence".to_string(), String::new(), first)
    } else {
        (
            "ok".to_string(),
            String::new(),
            format!(
                "loss_bits={:016x} offered={} deliveries={}",
                loss.to_bits(),
                eng.metrics.offered(),
                monitor.deliveries()
            ),
        )
    };
    ChaosOutcome {
        kind,
        class,
        detail,
        violations: monitor.total_violations(),
        divergences,
        checks: monitor.checks(),
        deliveries: monitor.deliveries(),
        offered: eng.metrics.offered(),
        loss,
    }
}

/// Runs a config with no extra observer or sink, catching panics.
/// Deterministic: the same config always returns the same outcome.
pub fn execute(cfg: &ChaosConfig) -> ChaosOutcome {
    match catch_unwind(AssertUnwindSafe(|| {
        run_observed(cfg, &mut NoopObserver, None)
    })) {
        Ok(out) => out,
        Err(payload) => ChaosOutcome {
            kind: "panic".to_string(),
            class: String::new(),
            detail: panic_message(payload),
            violations: 0,
            divergences: 0,
            checks: 0,
            deliveries: 0,
            offered: 0,
            loss: 0.0,
        },
    }
}

/// One shrinker trial.
#[derive(Clone, Debug)]
pub struct ShrinkStep {
    /// The candidate transformation tried.
    pub action: String,
    /// Whether the shrunk config still reproduced the failure.
    pub kept: bool,
}

/// Result of shrinking a failing config.
#[derive(Debug)]
pub struct ShrinkResult {
    /// The 1-minimal config.
    pub config: ChaosConfig,
    /// Every trial, in order (capped at 200 entries).
    pub steps: Vec<ShrinkStep>,
    /// Total re-executions spent.
    pub trials: u64,
}

fn candidates(c: &ChaosConfig) -> Vec<(String, ChaosConfig)> {
    let mut out = Vec::new();
    let mut push = |action: String, cfg: ChaosConfig| out.push((action, cfg));
    if c.horizon_ticks > 4_000 {
        let mut n = c.clone();
        n.horizon_ticks /= 2;
        push(format!("halve horizon to {}", n.horizon_ticks), n);
    }
    if c.stations > 2 {
        let mut n = c.clone();
        n.stations = (n.stations / 2).max(2);
        push(format!("halve stations to {}", n.stations), n);
    }
    for i in (1..c.segments.len()).rev() {
        let mut n = c.clone();
        n.segments.remove(i);
        push(format!("drop load segment {i}"), n);
    }
    if c.adv_burst > 0 {
        let mut n = c.clone();
        n.adv_rate = 0.0;
        n.adv_burst = 0;
        n.adv_start = 0;
        push("remove adversary".to_string(), n);
    }
    type FaultZero = fn(&mut FaultPlan);
    let fault_fields: [(&str, FaultZero); 6] = [
        ("success_to_collision", |p| p.success_to_collision = 0.0),
        ("collision_to_success", |p| p.collision_to_success = 0.0),
        ("collision_to_idle", |p| p.collision_to_idle = 0.0),
        ("idle_to_collision", |p| p.idle_to_collision = 0.0),
        ("erasure", |p| p.erasure = 0.0),
        ("deafness", |p| {
            p.deafness = 0.0;
            p.deaf_slots = 0;
        }),
    ];
    let active = |p: &FaultPlan, name: &str| match name {
        "success_to_collision" => p.success_to_collision > 0.0,
        "collision_to_success" => p.collision_to_success > 0.0,
        "collision_to_idle" => p.collision_to_idle > 0.0,
        "idle_to_collision" => p.idle_to_collision > 0.0,
        "erasure" => p.erasure > 0.0,
        _ => p.deafness > 0.0,
    };
    for (name, zero) in fault_fields {
        if active(&c.plan, name) {
            let mut n = c.clone();
            zero(&mut n.plan);
            push(format!("zero fault {name}"), n);
        }
    }
    if c.churn.crash > 0.0 {
        let mut n = c.clone();
        n.churn.crash = 0.0;
        n.churn.down_slots = 0;
        push("zero churn crash".to_string(), n);
    }
    if c.churn.late_join_frac > 0.0 {
        let mut n = c.clone();
        n.churn.late_join_frac = 0.0;
        n.churn.join_slot = 0;
        push("zero churn late-join".to_string(), n);
    }
    if c.churn.leave_frac > 0.0 {
        let mut n = c.clone();
        n.churn.leave_frac = 0.0;
        n.churn.leave_slot = 0;
        push("zero churn leave".to_string(), n);
    }
    if c.churn.outage_slots > 0 {
        let mut n = c.clone();
        n.churn.outage_start_slot = 0;
        n.churn.outage_slots = 0;
        push("zero churn outage".to_string(), n);
    }
    if c.churn.catch_up_slots > 0 && c.churn.crash == 0.0 && c.churn.late_join_frac == 0.0 {
        let mut n = c.clone();
        n.churn.catch_up_slots = 0;
        push("zero churn catch-up".to_string(), n);
    }
    if c.controller != ChaosController::Static {
        let mut n = c.clone();
        n.controller = ChaosController::Static;
        push("use static controller".to_string(), n);
    }
    out
}

/// Greedy delta-debugging: repeatedly applies the first candidate
/// transformation (halve horizon/stations, drop a load segment, remove
/// the adversary, zero one fault/churn dimension, fall back to the
/// static controller) that still reproduces `(kind, class)`, until a
/// full pass accepts nothing.
///
/// The result is **1-minimal with respect to the candidate family**: at
/// the fixpoint every candidate was re-tried against the final config
/// and failed to reproduce, so no single remaining transformation can
/// be applied without losing the failure. Termination is guaranteed —
/// every accepted step strictly decreases a positive integer measure —
/// and the whole search re-executes deterministically, capped at
/// [`SHRINK_BUDGET`] trials.
pub fn shrink(orig: &ChaosConfig, kind: &str, class: &str) -> ShrinkResult {
    let mut current = orig.clone();
    let mut steps = Vec::new();
    let mut trials = 0u64;
    'outer: loop {
        for (action, cand) in candidates(&current) {
            if trials >= SHRINK_BUDGET {
                break 'outer;
            }
            trials += 1;
            let out = execute(&cand);
            let kept = out.kind == kind && out.class == class;
            if steps.len() < 200 {
                steps.push(ShrinkStep {
                    action: action.clone(),
                    kept,
                });
            }
            if kept {
                current = cand;
                continue 'outer;
            }
        }
        break;
    }
    ShrinkResult {
        config: current,
        steps,
        trials,
    }
}

/// A version-stamped chaos replay artifact: the (possibly shrunk)
/// config plus the outcome it must reproduce.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosRecord {
    /// The failing (or recorded) config.
    pub config: ChaosConfig,
    /// Outcome class: `"ok"`, `"violation"`, `"divergence"`, `"panic"`.
    pub kind: String,
    /// Invariant class of the violation (empty otherwise).
    pub class: String,
    /// The outcome detail that must replay bit-for-bit.
    pub detail: String,
}

impl ChaosRecord {
    /// Serializes the record as one flat JSON object.
    pub fn to_json(&self) -> String {
        let c = &self.config;
        let mut w = ArtifactWriter::new(Some("chaos"));
        w.u64("seed", c.seed);
        w.u64("horizon_ticks", c.horizon_ticks);
        w.u64("stations", u64::from(c.stations));
        w.u64("ticks_per_tau", c.ticks_per_tau);
        w.u64("message_slots", c.message_slots);
        w.u64("k_ticks", c.k_ticks);
        w.str("controller", c.controller.label());
        w.str("mutation", c.mutation.label());
        w.f64("success_to_collision", c.plan.success_to_collision);
        w.f64("collision_to_success", c.plan.collision_to_success);
        w.f64("collision_to_idle", c.plan.collision_to_idle);
        w.f64("idle_to_collision", c.plan.idle_to_collision);
        w.f64("erasure", c.plan.erasure);
        w.f64("deafness", c.plan.deafness);
        w.u64("deaf_slots", c.plan.deaf_slots);
        w.f64("crash", c.churn.crash);
        w.u64("down_slots", c.churn.down_slots);
        w.f64("late_join_frac", c.churn.late_join_frac);
        w.u64("join_slot", c.churn.join_slot);
        w.f64("leave_frac", c.churn.leave_frac);
        w.u64("leave_slot", c.churn.leave_slot);
        w.u64("catch_up_slots", c.churn.catch_up_slots);
        w.u64("outage_start_slot", c.churn.outage_start_slot);
        w.u64("outage_slots", c.churn.outage_slots);
        let segments = c
            .segments
            .iter()
            .map(|&(start, rate)| format!("{start}:{rate}"))
            .collect::<Vec<_>>()
            .join(";");
        w.str("segments", &segments);
        w.f64("adv_rate", c.adv_rate);
        w.u64("adv_burst", u64::from(c.adv_burst));
        w.u64("adv_start", c.adv_start);
        w.str("kind", &self.kind);
        w.str("class", &self.class);
        w.str("detail", &self.detail);
        w.finish()
    }

    /// Parses a record previously written by [`ChaosRecord::to_json`],
    /// rejecting stale versions and out-of-range parameters.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let r = ArtifactReader::parse(text, Some("chaos"))?;
        let controller_label = r.str("controller")?;
        let controller = ChaosController::parse(&controller_label)
            .ok_or_else(|| format!("unknown controller {controller_label:?}"))?;
        let mutation_label = r.str("mutation")?;
        let mutation = Mutation::parse(&mutation_label)
            .ok_or_else(|| format!("unknown mutation {mutation_label:?}"))?;
        let mut segments = Vec::new();
        for part in r.str("segments")?.split(';') {
            let (start, rate) = part
                .split_once(':')
                .ok_or_else(|| format!("malformed load segment {part:?}"))?;
            segments.push((
                start
                    .parse::<u64>()
                    .map_err(|e| format!("segment start {start:?}: {e}"))?,
                rate.parse::<f64>()
                    .map_err(|e| format!("segment rate {rate:?}: {e}"))?,
            ));
        }
        let config = ChaosConfig {
            seed: r.u64("seed")?,
            horizon_ticks: r.u64("horizon_ticks")?,
            stations: r.u64("stations")? as u32,
            ticks_per_tau: r.u64("ticks_per_tau")?,
            message_slots: r.u64("message_slots")?,
            k_ticks: r.u64("k_ticks")?,
            controller,
            plan: FaultPlan {
                success_to_collision: r.f64("success_to_collision")?,
                collision_to_success: r.f64("collision_to_success")?,
                collision_to_idle: r.f64("collision_to_idle")?,
                idle_to_collision: r.f64("idle_to_collision")?,
                erasure: r.f64("erasure")?,
                deafness: r.f64("deafness")?,
                deaf_slots: r.u64("deaf_slots")?,
            },
            churn: ChurnPlan {
                crash: r.f64("crash")?,
                down_slots: r.u64("down_slots")?,
                late_join_frac: r.f64("late_join_frac")?,
                join_slot: r.u64("join_slot")?,
                leave_frac: r.f64("leave_frac")?,
                leave_slot: r.u64("leave_slot")?,
                catch_up_slots: r.u64("catch_up_slots")?,
                outage_start_slot: r.u64("outage_start_slot")?,
                outage_slots: r.u64("outage_slots")?,
            },
            segments,
            adv_rate: r.f64("adv_rate")?,
            adv_burst: r.u64("adv_burst")? as u32,
            adv_start: r.u64("adv_start")?,
            mutation,
        };
        config.check()?;
        Ok(ChaosRecord {
            config,
            kind: r.str("kind")?,
            class: r.str("class")?,
            detail: r.str("detail")?,
        })
    }

    /// Writes the record to `path`, creating parent directories.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        save_artifact(path, &self.to_json())
    }

    /// Loads a record from `path`.
    pub fn load(path: &Path) -> Result<Self, String> {
        Self::from_json(&load_artifact(path)?)
    }
}

/// Replays an artifact and returns the process exit code.
///
/// A replay that does not reproduce the recorded `(kind, class, detail)`
/// — or an unloadable/stale artifact — exits
/// [`crate::diag::EXIT_FAILURE`]. A faithful replay exits `0` only when
/// the recorded outcome is `"ok"`; a reproduced violation/divergence/
/// panic also exits [`crate::diag::EXIT_FAILURE`], because under the
/// shared diag convention an invariant violation is a failure no matter
/// how it was produced (stdout distinguishes the two: a reproduced
/// failure prints `replay reproduced the recorded failure`).
pub fn replay(path: &Path) -> i32 {
    let rec = match ChaosRecord::load(path) {
        Ok(r) => r,
        Err(e) => {
            crate::diag::error("chaos", &format!("cannot load artifact: {e}"));
            return crate::diag::EXIT_FAILURE;
        }
    };
    println!(
        "replaying {} (kind={:?} class={:?} seed={} controller={} mutation={})",
        path.display(),
        rec.kind,
        rec.class,
        rec.config.seed,
        rec.config.controller.label(),
        rec.config.mutation.label(),
    );
    let out = execute(&rec.config);
    println!("recorded: [{}/{}] {}", rec.kind, rec.class, rec.detail);
    println!("replayed: [{}/{}] {}", out.kind, out.class, out.detail);
    if out.kind == rec.kind && out.class == rec.class && out.detail == rec.detail {
        if rec.kind == "ok" {
            println!("replay reproduced the recorded outcome");
            0
        } else {
            println!("replay reproduced the recorded failure");
            crate::diag::EXIT_FAILURE
        }
    } else {
        crate::diag::error("chaos", "REPLAY DIVERGED from the recorded outcome");
        crate::diag::EXIT_FAILURE
    }
}

/// Builds the deterministic seeded-violation config for `--inject`: a
/// clean static-controller run whose event stream is corrupted by
/// `mutation` — guaranteed to trip exactly the monitor class the
/// mutation targets, and a fixed starting point for the shrinker demo.
pub fn inject_config(mutation: Mutation) -> ChaosConfig {
    let msg_ticks = (5 * 4) as f64;
    ChaosConfig {
        seed: stream_seed(BASE_SEED, 0x1A7EC7),
        horizon_ticks: 60_000,
        stations: 16,
        ticks_per_tau: 4,
        message_slots: 5,
        k_ticks: 400,
        controller: ChaosController::Static,
        plan: FaultPlan::none(),
        churn: ChurnPlan::none(),
        segments: vec![(0, 0.5 / msg_ticks), (30_000, 0.8 / msg_ticks)],
        adv_rate: 0.1 / msg_ticks,
        adv_burst: 4,
        adv_start: 10_000,
        mutation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrip_is_exact() {
        let mut cfg = ChaosConfig::sample(BASE_SEED, 7);
        cfg.mutation = Mutation::ReorderPair;
        let rec = ChaosRecord {
            config: cfg,
            kind: "violation".to_string(),
            class: "fcfs".to_string(),
            detail: "t=123 example".to_string(),
        };
        let parsed = ChaosRecord::from_json(&rec.to_json()).expect("parse");
        assert_eq!(parsed, rec);
    }

    #[test]
    fn record_rejects_stale_and_corrupt() {
        let rec = ChaosRecord {
            config: ChaosConfig::sample(BASE_SEED, 3),
            kind: "ok".to_string(),
            class: String::new(),
            detail: "x".to_string(),
        };
        let stale = rec.to_json().replace(
            &format!("\"version\": \"{}\"", crate::replay::ARTIFACT_VERSION),
            "\"version\": \"0.0.0-stale\"",
        );
        assert!(ChaosRecord::from_json(&stale).is_err());
        let wrong_family = rec.to_json().replace("\"chaos\"", "\"adaptive\"");
        assert!(ChaosRecord::from_json(&wrong_family).is_err());
        let bad_plan = rec.to_json().replace("\"erasure\": 0", "\"erasure\": 9.0");
        assert!(ChaosRecord::from_json(&bad_plan).is_err());
    }

    #[test]
    fn sampled_configs_are_valid_and_deterministic() {
        for i in 0..64 {
            let a = ChaosConfig::sample(BASE_SEED, i);
            let b = ChaosConfig::sample(BASE_SEED, i);
            assert_eq!(a, b);
            a.check().expect("valid sample");
            assert!(a.static_window_ticks() >= 1);
        }
    }
}
