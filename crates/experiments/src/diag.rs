//! Shared CLI diagnostics and the workspace exit-code convention.
//!
//! Every experiment binary reports errors through [`error`] so messages
//! are uniformly prefixed with the tool name (`tool: message`), and exits
//! through the shared codes:
//!
//! * [`EXIT_USAGE`] (1) — the command line itself was wrong (unknown
//!   flag, missing value, missing argument);
//! * [`EXIT_FAILURE`] (2) — the tool ran but failed: a stale or corrupted
//!   artifact, a replay that did not reproduce, a regression/lint gate
//!   that tripped, or an unwritable output path.
//!
//! Success is `0`, as usual. CI distinguishes the two failure classes:
//! usage errors indicate a broken invocation (fix the workflow), code 2
//! indicates a genuine regression or artifact problem (fix the code or
//! regenerate the artifact).

/// Exit code for malformed command lines.
pub const EXIT_USAGE: i32 = 1;

/// Exit code for runtime failures: stale/corrupt artifacts, replay
/// divergence, gate or lint failures.
pub const EXIT_FAILURE: i32 = 2;

/// Prints `tool: message` to stderr.
pub fn error(tool: &str, msg: &str) {
    eprintln!("{tool}: {msg}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_distinct_and_nonzero() {
        assert_ne!(EXIT_USAGE, 0);
        assert_ne!(EXIT_FAILURE, 0);
        assert_ne!(EXIT_USAGE, EXIT_FAILURE);
    }
}
