//! Observability glue for the experiment binaries: the shared
//! `--trace-events` / `--spans` / `--metrics` / `--progress` flags,
//! per-cell telemetry capture, and deterministic artifact assembly.
//!
//! Each sweep cell produces its telemetry into cell-local buffers (an
//! NDJSON fragment from an [`EventTracer`], a lifecycle-span fragment
//! from a [`SpanTracer`], a labeled [`Registry`]);
//! [`write_observability`] then concatenates/merges them **in cell
//! order**, so exported artifacts are byte-identical for any `--jobs N`.
//! Only the stderr progress line (enabled by `--progress`) is wall-clock
//! dependent, and it never reaches an artifact.

use std::path::{Path, PathBuf};

use crate::panels::Panel;
use crate::runner::{
    simulate_churn, simulate_churn_observed, ChurnSimPoint, PolicyKind, SimSettings,
};
use tcw_mac::{ChurnPlan, FaultPlan};
use tcw_obs::{EventTracer, Registry, SpanTracer};
use tcw_window::trace::{NoopObserver, Tee};

/// Parsed observability flags, shared by all experiment binaries.
#[derive(Clone, Debug, Default)]
pub struct ObsConfig {
    /// `--trace-events PATH`: write the NDJSON event stream here.
    pub trace_events: Option<PathBuf>,
    /// `--spans PATH`: write the NDJSON lifecycle-span stream here
    /// (conventionally `*.spans.ndjson`, which `obs_lint` dispatches on).
    pub spans: Option<PathBuf>,
    /// `--metrics PATH`: write the metrics snapshot here (`.prom` selects
    /// the Prometheus text exposition format, anything else JSON).
    pub metrics: Option<PathBuf>,
    /// `--progress`: render a live progress line on stderr.
    pub progress: bool,
}

/// Which telemetry streams to capture while running one cell. Derived
/// from [`ObsConfig::capture`]; [`Capture::OFF`] disables everything.
#[derive(Clone, Copy, Debug, Default)]
pub struct Capture {
    /// Record the protocol event stream (forces the slot-stepped path).
    pub tracing: bool,
    /// Register run metrics (including the `tcw_aoi_*` families).
    pub metrics: bool,
    /// Record the message-lifecycle span stream (fast-path compatible).
    pub spans: bool,
}

impl Capture {
    /// Capture nothing.
    pub const OFF: Capture = Capture {
        tracing: false,
        metrics: false,
        spans: false,
    };

    /// Whether any stream is being captured.
    pub fn any(&self) -> bool {
        self.tracing || self.metrics || self.spans
    }
}

impl ObsConfig {
    /// Extracts the observability flags from a raw argument list,
    /// returning the parsed config and the remaining arguments (so each
    /// binary's own argument handling never sees them).
    pub fn split_args(args: &[String]) -> Result<(ObsConfig, Vec<String>), String> {
        let mut cfg = ObsConfig::default();
        let mut rest = Vec::with_capacity(args.len());
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if a == "--trace-events" {
                let v = it.next().ok_or("--trace-events needs a path")?;
                cfg.trace_events = Some(PathBuf::from(v));
            } else if let Some(v) = a.strip_prefix("--trace-events=") {
                cfg.trace_events = Some(PathBuf::from(v));
            } else if a == "--spans" {
                let v = it.next().ok_or("--spans needs a path")?;
                cfg.spans = Some(PathBuf::from(v));
            } else if let Some(v) = a.strip_prefix("--spans=") {
                cfg.spans = Some(PathBuf::from(v));
            } else if a == "--metrics" {
                let v = it.next().ok_or("--metrics needs a path")?;
                cfg.metrics = Some(PathBuf::from(v));
            } else if let Some(v) = a.strip_prefix("--metrics=") {
                cfg.metrics = Some(PathBuf::from(v));
            } else if a == "--progress" {
                cfg.progress = true;
            } else {
                rest.push(a.clone());
            }
        }
        Ok((cfg, rest))
    }

    /// Whether any per-cell telemetry (tracing, spans or metrics) is
    /// requested.
    pub fn wants_telemetry(&self) -> bool {
        self.trace_events.is_some() || self.spans.is_some() || self.metrics.is_some()
    }

    /// The per-cell capture selection these flags imply.
    pub fn capture(&self) -> Capture {
        Capture {
            tracing: self.trace_events.is_some(),
            metrics: self.metrics.is_some(),
            spans: self.spans.is_some(),
        }
    }
}

/// Telemetry captured while running one sweep cell.
#[derive(Debug, Default)]
pub struct CellArtifacts {
    /// NDJSON event fragment (starts with the cell header line).
    pub trace: Option<String>,
    /// NDJSON lifecycle-span fragment (starts with the cell header line).
    pub spans: Option<String>,
    /// Cell-labeled metrics registry.
    pub registry: Option<Registry>,
}

/// Runs one simulation cell with telemetry capture: when `caps.tracing`
/// or `caps.spans`, the protocol event stream / message-lifecycle span
/// stream is recorded under a `cell` header carrying `cell_index` and
/// `label`; when `caps.metrics`, the run's metrics register into a fresh
/// [`Registry`] under `labels`.
///
/// The simulated result is bit-identical to
/// [`simulate_churn`] — observers are passive
/// and never touch an RNG stream. Span capture alone keeps the
/// event-horizon fast path on; event tracing forces slot stepping.
#[allow(clippy::too_many_arguments)]
pub fn observed_cell(
    caps: Capture,
    cell_index: usize,
    label: &str,
    labels: &[(&str, &str)],
    panel: Panel,
    kind: PolicyKind,
    k_tau: f64,
    settings: SimSettings,
    seed: u64,
    plan: FaultPlan,
    churn: ChurnPlan,
) -> (ChurnSimPoint, CellArtifacts) {
    if !caps.any() {
        let p = simulate_churn(panel, kind, k_tau, settings, seed, plan, churn);
        return (p, CellArtifacts::default());
    }
    observe_engine_cell(caps, cell_index, label, labels, |obs, sink| {
        simulate_churn_observed(panel, kind, k_tau, settings, seed, plan, churn, obs, sink)
    })
}

/// Runs an arbitrary engine-driving closure with the same per-cell
/// telemetry capture as [`observed_cell`], for binaries that build their
/// engines directly instead of going through the shared runner. The
/// closure receives the observer to thread through
/// `Engine::run_until`/`drain` and, when metrics are on, the sink to
/// `emit` counters into after the run.
pub fn observe_engine_cell<T>(
    caps: Capture,
    cell_index: usize,
    label: &str,
    labels: &[(&str, &str)],
    run: impl FnOnce(
        &mut dyn tcw_window::trace::EngineObserver,
        Option<&mut dyn tcw_sim::stats::MetricSink>,
    ) -> T,
) -> (T, CellArtifacts) {
    let mut tracer = EventTracer::new();
    let mut span_tracer = SpanTracer::new();
    let mut registry = Registry::new();
    if caps.tracing {
        tracer.begin_cell(cell_index, label);
    }
    if caps.spans {
        span_tracer.begin_cell(cell_index, label);
    }
    if caps.metrics {
        registry.set_labels(labels);
    }
    let mut noop = NoopObserver;
    let value = {
        let sink: Option<&mut dyn tcw_sim::stats::MetricSink> = if caps.metrics {
            Some(&mut registry)
        } else {
            None
        };
        match (caps.tracing, caps.spans) {
            (true, true) => {
                let mut tee = Tee {
                    a: &mut tracer,
                    b: &mut span_tracer,
                };
                run(&mut tee, sink)
            }
            (true, false) => run(&mut tracer, sink),
            (false, true) => run(&mut span_tracer, sink),
            (false, false) => run(&mut noop, sink),
        }
    };
    (
        value,
        CellArtifacts {
            trace: caps.tracing.then(|| tracer.finish()),
            spans: caps.spans.then(|| span_tracer.finish()),
            registry: caps.metrics.then_some(registry),
        },
    )
}

/// Sweep-level facts recorded alongside the merged metrics.
#[derive(Clone, Copy, Debug)]
pub struct SweepMeta {
    /// Number of cells in the sweep grid.
    pub cells: usize,
}

/// Assembles per-cell telemetry into the files `cfg` requests: traces are
/// concatenated and registries merged **in cell order**, making both
/// artifacts byte-identical for any worker count. The merged registry
/// additionally carries the executor's own `tcw_sweep_cells` gauge.
///
/// Metrics format is chosen by extension: `.prom` writes the Prometheus
/// text exposition format, anything else the JSON export.
pub fn write_observability(
    cfg: &ObsConfig,
    artifacts: &[CellArtifacts],
    meta: SweepMeta,
) -> Result<(), String> {
    if let Some(path) = &cfg.trace_events {
        let mut text = String::new();
        for a in artifacts {
            if let Some(t) = &a.trace {
                text.push_str(t);
            }
        }
        write_creating_dirs(path, &text)?;
    }
    if let Some(path) = &cfg.spans {
        let mut text = String::new();
        for a in artifacts {
            if let Some(t) = &a.spans {
                text.push_str(t);
            }
        }
        write_creating_dirs(path, &text)?;
    }
    if let Some(path) = &cfg.metrics {
        let mut merged = Registry::new();
        for a in artifacts {
            if let Some(r) = &a.registry {
                merged.absorb(r);
            }
        }
        use tcw_sim::stats::MetricSink as _;
        merged.set_labels(&[]);
        merged.gauge(
            "tcw_sweep_cells",
            "cells in the sweep grid",
            meta.cells as f64,
        );
        let text = if path.extension().is_some_and(|e| e == "prom") {
            merged.to_prometheus()
        } else {
            merged.to_json()
        };
        write_creating_dirs(path, &text)?;
    }
    Ok(())
}

fn write_creating_dirs(path: &Path, text: &str) -> Result<(), String> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        }
    }
    std::fs::write(path, text).map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn split_args_extracts_obs_flags() {
        let (cfg, rest) = ObsConfig::split_args(&strs(&[
            "--quick",
            "--trace-events",
            "out.ndjson",
            "--spans=out.spans.ndjson",
            "--metrics=m.prom",
            "--progress",
            "--jobs",
            "2",
        ]))
        .unwrap();
        assert_eq!(cfg.trace_events.as_deref(), Some(Path::new("out.ndjson")));
        assert_eq!(cfg.spans.as_deref(), Some(Path::new("out.spans.ndjson")));
        assert_eq!(cfg.metrics.as_deref(), Some(Path::new("m.prom")));
        assert!(cfg.progress);
        assert!(cfg.wants_telemetry());
        let caps = cfg.capture();
        assert!(caps.tracing && caps.metrics && caps.spans && caps.any());
        assert_eq!(rest, strs(&["--quick", "--jobs", "2"]));
    }

    #[test]
    fn spans_alone_count_as_telemetry() {
        let (cfg, _) = ObsConfig::split_args(&strs(&["--spans", "s.spans.ndjson"])).unwrap();
        assert!(cfg.wants_telemetry());
        let caps = cfg.capture();
        assert!(caps.spans && !caps.tracing && !caps.metrics);
        assert!(!Capture::OFF.any());
    }

    #[test]
    fn split_args_rejects_missing_values() {
        assert!(ObsConfig::split_args(&strs(&["--trace-events"])).is_err());
        assert!(ObsConfig::split_args(&strs(&["--spans"])).is_err());
        assert!(ObsConfig::split_args(&strs(&["--metrics"])).is_err());
    }

    #[test]
    fn no_flags_is_disabled() {
        let (cfg, rest) = ObsConfig::split_args(&strs(&["--quick"])).unwrap();
        assert!(!cfg.wants_telemetry());
        assert!(!cfg.progress);
        assert_eq!(rest, strs(&["--quick"]));
    }

    #[test]
    fn observed_cell_matches_plain_run_and_captures_artifacts() {
        let panel = crate::panels::PANELS[0];
        let settings = SimSettings {
            messages: 500,
            warmup: 50,
            ticks_per_tau: 8,
            stations: 20,
            guard: false,
        };
        let plain = simulate_churn(
            panel,
            PolicyKind::Controlled,
            100.0,
            settings,
            7,
            FaultPlan::none(),
            ChurnPlan::none(),
        );
        let (observed, art) = observed_cell(
            Capture {
                tracing: true,
                metrics: true,
                spans: true,
            },
            0,
            "test cell",
            &[("seed", "7")],
            panel,
            PolicyKind::Controlled,
            100.0,
            settings,
            7,
            FaultPlan::none(),
            ChurnPlan::none(),
        );
        assert_eq!(plain.point.loss.to_bits(), observed.point.loss.to_bits());
        assert_eq!(plain.point.offered, observed.point.offered);
        let trace = art.trace.expect("trace captured");
        assert!(trace.starts_with("{\"schema_version\":1,\"ev\":\"cell\""));
        assert!(tcw_obs::lint::lint_events(&trace).is_ok());
        let spans = art.spans.expect("spans captured");
        assert!(spans.starts_with("{\"schema_version\":1,\"ev\":\"cell\""));
        assert!(tcw_obs::lint::lint_spans(&spans).is_ok());
        let reg = art.registry.expect("registry captured");
        let prom = reg.to_prometheus();
        assert!(tcw_obs::lint::lint_prom(&prom).is_ok());
        assert!(prom.contains("tcw_aoi_deliveries_total"), "{prom}");
    }

    #[test]
    fn spans_only_capture_matches_plain_run() {
        let panel = crate::panels::PANELS[0];
        let settings = SimSettings {
            messages: 500,
            warmup: 50,
            ticks_per_tau: 8,
            stations: 20,
            guard: false,
        };
        let plain = simulate_churn(
            panel,
            PolicyKind::Controlled,
            100.0,
            settings,
            11,
            FaultPlan::none(),
            ChurnPlan::none(),
        );
        let (observed, art) = observed_cell(
            Capture {
                spans: true,
                ..Capture::OFF
            },
            3,
            "spans only",
            &[],
            panel,
            PolicyKind::Controlled,
            100.0,
            settings,
            11,
            FaultPlan::none(),
            ChurnPlan::none(),
        );
        assert_eq!(plain.point.loss.to_bits(), observed.point.loss.to_bits());
        assert_eq!(plain.point.offered, observed.point.offered);
        assert!(art.trace.is_none());
        assert!(art.registry.is_none());
        let spans = art.spans.expect("spans captured");
        let stats = tcw_obs::lint::lint_spans(&spans).unwrap();
        assert!(stats.spans > 0);
        assert!(tcw_obs::report::parse_spans(&spans).is_ok());
    }
}
