//! The adaptive-window experiment: scenarios, oracle schedules, cell
//! runner and replay artifacts for the `adaptive` binary.
//!
//! The paper tunes the window length offline for a *known, stationary*
//! Poisson rate. This experiment measures what that tuning costs when
//! the assumption breaks: each scenario runs the same channel under a
//! non-stationary or adversarial workload with four element-(2)
//! choices —
//!
//! * `stale`  — the static window tuned for the *pre-change* rate (what
//!   an operator who tuned once and walked away would run);
//! * `oracle` — a per-segment clairvoyant that switches to the §4.1
//!   optimum of each load segment the instant the segment starts
//!   (unrealizable; defines zero regret);
//! * `aimd`   — additive-increase / multiplicative-decrease feedback
//!   control ([`tcw_window::AimdController`]);
//! * `estimator` — online rate estimation re-solving the §4.1 window
//!   rule ([`tcw_window::EstimatorController`]).
//!
//! Regret is `loss - oracle_loss` for the same scenario and seed.
//! Everything is deterministic: cells are keyed by
//! [`tcw_sim::rng::stream_seed`]`(BASE_SEED, replicate)`, controllers
//! draw no RNG, and the per-cell panic guard serializes an
//! [`AdaptiveRecord`] so any failure (or any cell, via `--record`)
//! replays bit-for-bit.

use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;

use crate::replay::{load_artifact, panic_message, save_artifact, ArtifactReader, ArtifactWriter};
use crate::runner::run_to_horizon;
use tcw_mac::traffic::{VoiceConfig, VoiceSource};
use tcw_mac::{
    AdversarialInjector, AdversaryPlan, ArrivalSource, ChannelConfig, MergedSource,
    PiecewiseArrivals, PoissonArrivals,
};
use tcw_sim::rng::stream_seed;
use tcw_sim::stats::MetricSink;
use tcw_sim::time::{Dur, Time};
use tcw_window::analysis::optimal_mu;
use tcw_window::metrics::MeasureConfig;
use tcw_window::trace::{EngineObserver, NoopObserver};
use tcw_window::{
    AimdConfig, ControlPolicy, ControllerConfig, Engine, EngineConfig, EstimatorConfig,
    WindowController,
};

/// Base seed; replicate `r` runs under `stream_seed(BASE_SEED, r)`.
pub const BASE_SEED: u64 = 1983;
/// Replicates per (scenario, controller) cell.
pub const REPLICATES: u64 = 2;
/// Arrival horizon in ticks (the engine then drains).
pub const HORIZON_TICKS: u64 = 300_000;
/// Delivery deadline `K` in ticks (75 tau).
pub const K_TICKS: u64 = 300;
/// Station population (shared by every workload).
pub const STATIONS: u32 = 50;

const TICKS_PER_TAU: u64 = 4;
const MESSAGE_SLOTS: u64 = 5;
const MEASURE_START: u64 = 10_000;
const MEASURE_END: u64 = 290_000;

/// Load step: the tuned-for rate, the 10x post-step rate, the instant.
const STEP_BEFORE: f64 = 0.003;
const STEP_AFTER: f64 = 0.03;
const STEP_AT: u64 = 150_000;

/// Flash crowd: base rate, surge multiplier, five 5k-tick bursts.
const FLASH_BASE: f64 = 0.0075;
const FLASH_SURGE: f64 = 8.0;
const FLASH_BURSTS: [(u64, u64); 5] = [
    (50_000, 5_000),
    (100_000, 5_000),
    (150_000, 5_000),
    (200_000, 5_000),
    (250_000, 5_000),
];

/// Adversary: legitimate base rate plus a `(rho, sigma)` injector.
const ADV_BASE: f64 = 0.0075;
const ADV_RATE: f64 = 0.01;
const ADV_BURST: u32 = 10;
const ADV_START: u64 = 20_000;

fn voice_config() -> VoiceConfig {
    VoiceConfig {
        stations: STATIONS,
        mean_talkspurt: Dur::from_ticks(4_000),
        mean_silence: Dur::from_ticks(12_000),
        packet_interval: Dur::from_ticks(400),
    }
}

/// The §4.1 heuristic window (ticks) for an aggregate rate in messages
/// per tick: `w* = mu* / lambda`, rounded, at least 1.
pub fn tuned_window(rate_per_tick: f64) -> u64 {
    ((optimal_mu() / rate_per_tick).round() as u64).max(1)
}

/// One non-stationary or adversarial workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scenario {
    /// 10x Poisson rate step at `t = 150_000`.
    Step,
    /// Flash crowd: five 8x surges of 5k ticks each.
    Flash,
    /// Packetized voice (on/off talkspurts) — stationary in the long run
    /// but bursty, so the oracle equals the stale tuning.
    Voice,
    /// Poisson base traffic plus a greedy `(rho, sigma)` bounded-burst
    /// injector from `t = 20_000`.
    Adversarial,
}

impl Scenario {
    /// Every scenario, in sweep order.
    pub const ALL: [Scenario; 4] = [
        Scenario::Step,
        Scenario::Flash,
        Scenario::Voice,
        Scenario::Adversarial,
    ];

    /// Stable short name.
    pub fn label(self) -> &'static str {
        match self {
            Scenario::Step => "step",
            Scenario::Flash => "flash",
            Scenario::Voice => "voice",
            Scenario::Adversarial => "adversarial",
        }
    }

    /// Inverse of [`Scenario::label`].
    pub fn parse(s: &str) -> Option<Self> {
        Scenario::ALL.into_iter().find(|sc| sc.label() == s)
    }

    /// The rate (messages per tick) the stale static window was tuned
    /// for — the scenario's initial/legitimate load.
    pub fn tuned_rate(self) -> f64 {
        match self {
            Scenario::Step => STEP_BEFORE,
            Scenario::Flash => FLASH_BASE,
            Scenario::Voice => voice_config().aggregate_rate(),
            Scenario::Adversarial => ADV_BASE,
        }
    }

    /// The stale static window: §4.1-optimal for [`Self::tuned_rate`],
    /// never revised.
    pub fn stale_window(self) -> u64 {
        tuned_window(self.tuned_rate())
    }

    /// The clairvoyant per-segment schedule: `(segment start, window)`
    /// pairs, each window §4.1-optimal for that segment's true rate.
    pub fn oracle_schedule(self) -> Vec<(Time, u64)> {
        let at = |t: u64| Time::from_ticks(t);
        match self {
            Scenario::Step => vec![
                (Time::ZERO, tuned_window(STEP_BEFORE)),
                (at(STEP_AT), tuned_window(STEP_AFTER)),
            ],
            Scenario::Flash => {
                let base = tuned_window(FLASH_BASE);
                let surge = tuned_window(FLASH_BASE * FLASH_SURGE);
                let mut sched = vec![(Time::ZERO, base)];
                for (start, dur) in FLASH_BURSTS {
                    sched.push((at(start), surge));
                    sched.push((at(start + dur), base));
                }
                sched
            }
            Scenario::Voice => vec![(Time::ZERO, self.stale_window())],
            Scenario::Adversarial => vec![
                (Time::ZERO, tuned_window(ADV_BASE)),
                (at(ADV_START), tuned_window(ADV_BASE + ADV_RATE)),
            ],
        }
    }

    /// Builds the workload. Wrapped in a [`MergedSource`] so every
    /// scenario (including the two-stream adversarial one) is the same
    /// concrete engine type.
    pub fn source(self) -> MergedSource {
        let sources: Vec<Box<dyn ArrivalSource>> = match self {
            Scenario::Step => vec![Box::new(PiecewiseArrivals::load_step(
                STEP_BEFORE,
                STEP_AFTER,
                Time::from_ticks(STEP_AT),
                STATIONS,
            ))],
            Scenario::Flash => {
                let bursts: Vec<(Time, Dur)> = FLASH_BURSTS
                    .iter()
                    .map(|&(s, d)| (Time::from_ticks(s), Dur::from_ticks(d)))
                    .collect();
                vec![Box::new(PiecewiseArrivals::flash_crowd(
                    FLASH_BASE,
                    FLASH_SURGE,
                    &bursts,
                    STATIONS,
                ))]
            }
            Scenario::Voice => vec![Box::new(VoiceSource::new(voice_config()))],
            Scenario::Adversarial => vec![
                Box::new(PoissonArrivals::new(ADV_BASE, STATIONS)),
                Box::new(AdversarialInjector::new(AdversaryPlan {
                    rate: ADV_RATE,
                    burst: ADV_BURST,
                    start: Time::from_ticks(ADV_START),
                    stations: STATIONS,
                })),
            ],
        };
        MergedSource::new(sources)
    }
}

/// The per-segment clairvoyant: commands the §4.1-optimal window of
/// whichever load segment contains the current instant. Unrealizable —
/// it knows the workload schedule — and therefore the regret baseline.
/// Ignores feedback entirely, draws no RNG.
#[derive(Clone, Debug)]
pub struct OracleController {
    schedule: Vec<(Time, u64)>,
    last: u64,
}

impl OracleController {
    /// Creates the controller from `(segment start, window)` pairs.
    ///
    /// # Panics
    /// Panics unless the schedule starts at time zero, is strictly
    /// increasing in time, and every window is at least 1 tick.
    pub fn new(schedule: Vec<(Time, u64)>) -> Self {
        assert!(!schedule.is_empty(), "empty oracle schedule");
        assert_eq!(schedule[0].0, Time::ZERO, "schedule must start at 0");
        for pair in schedule.windows(2) {
            assert!(pair[0].0 < pair[1].0, "schedule times must increase");
        }
        assert!(schedule.iter().all(|&(_, w)| w >= 1), "window >= 1");
        let last = schedule[0].1;
        OracleController { schedule, last }
    }
}

impl WindowController for OracleController {
    fn next_length(&mut self, now: Time, _backlog: Dur, _policy: &ControlPolicy) -> u64 {
        self.last = self
            .schedule
            .iter()
            .rev()
            .find(|&&(start, _)| start <= now)
            .expect("schedule starts at 0")
            .1;
        self.last
    }

    fn on_slot(&mut self, _ctx: tcw_window::SlotContext, _outcome: &tcw_mac::SlotOutcome) {}

    fn window_ticks(&self) -> u64 {
        self.last
    }

    fn save_state(&self, w: &mut tcw_sim::snap::SnapWriter) {
        w.push(self.last);
    }

    fn load_state(
        &mut self,
        r: &mut tcw_sim::snap::SnapReader<'_>,
    ) -> Result<(), tcw_sim::snap::SnapError> {
        self.last = r.take()?;
        Ok(())
    }
}

/// The element-(2) choice a cell runs under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ControllerKind {
    /// Static window tuned for the pre-change rate.
    Stale,
    /// Per-segment clairvoyant ([`OracleController`]).
    Oracle,
    /// [`tcw_window::AimdController`] seeded at the stale window.
    Aimd,
    /// [`tcw_window::EstimatorController`] seeded at the stale window.
    Estimator,
}

impl ControllerKind {
    /// Every controller, in sweep order.
    pub const ALL: [ControllerKind; 4] = [
        ControllerKind::Stale,
        ControllerKind::Oracle,
        ControllerKind::Aimd,
        ControllerKind::Estimator,
    ];

    /// Stable short name.
    pub fn label(self) -> &'static str {
        match self {
            ControllerKind::Stale => "stale",
            ControllerKind::Oracle => "oracle",
            ControllerKind::Aimd => "aimd",
            ControllerKind::Estimator => "estimator",
        }
    }

    /// Inverse of [`ControllerKind::label`].
    pub fn parse(s: &str) -> Option<Self> {
        ControllerKind::ALL.into_iter().find(|c| c.label() == s)
    }

    /// Builds the controller for `scenario` (adaptive controllers start
    /// from the same stale window the static baseline runs, so any
    /// improvement is pure adaptation).
    pub fn build(self, scenario: Scenario) -> Box<dyn WindowController> {
        let w = scenario.stale_window();
        match self {
            ControllerKind::Stale => ControllerConfig::Static.build(),
            ControllerKind::Oracle => Box::new(OracleController::new(scenario.oracle_schedule())),
            ControllerKind::Aimd => ControllerConfig::Aimd(AimdConfig::around(w)).build(),
            ControllerKind::Estimator => {
                ControllerConfig::Estimator(EstimatorConfig::around(w)).build()
            }
        }
    }
}

/// What one cell measured.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CellOutcome {
    /// Counted messages in the measurement window.
    pub offered: u64,
    /// Deadline-loss fraction.
    pub loss: f64,
    /// Final commanded window length (ticks).
    pub window_ticks: u64,
    /// Controller shrink events.
    pub shrinks: u64,
    /// Controller grow events.
    pub grows: u64,
}

fn build_engine(scenario: Scenario, kind: ControllerKind, replicate: u64) -> Engine<MergedSource> {
    let stale = scenario.stale_window();
    let cfg = EngineConfig {
        channel: ChannelConfig {
            ticks_per_tau: TICKS_PER_TAU,
            message_slots: MESSAGE_SLOTS,
            guard: false,
        },
        policy: ControlPolicy::controlled(Dur::from_ticks(K_TICKS), Dur::from_ticks(stale)),
        measure: MeasureConfig {
            start: Time::from_ticks(MEASURE_START),
            end: Time::from_ticks(MEASURE_END),
            deadline: Dur::from_ticks(K_TICKS),
        },
        seed: stream_seed(BASE_SEED, replicate),
    };
    let mut eng = Engine::new(cfg, scenario.source());
    eng.set_controller(kind.build(scenario));
    eng
}

/// Runs one cell to completion (horizon + drain) and reports the
/// outcome; when `sink` is given, the engine's full accounting (via
/// [`run_to_horizon`]) plus controller telemetry is emitted into it
/// after the run.
pub fn run_cell(
    scenario: Scenario,
    kind: ControllerKind,
    replicate: u64,
    obs: &mut dyn EngineObserver,
    sink: Option<&mut dyn MetricSink>,
) -> CellOutcome {
    let mut eng = build_engine(scenario, kind, replicate);
    let horizon = Time::from_ticks(HORIZON_TICKS);
    match sink {
        Some(sink) => {
            run_to_horizon(&mut eng, horizon, obs, Some(&mut *sink));
            eng.controller().emit(sink);
        }
        None => run_to_horizon(&mut eng, horizon, obs, None),
    }
    CellOutcome {
        offered: eng.metrics.offered(),
        loss: eng.metrics.loss_fraction(),
        window_ticks: eng.controller().window_ticks(),
        shrinks: eng.controller().shrinks(),
        grows: eng.controller().grows(),
    }
}

/// One sampled point of a controller's window trajectory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EpisodeSample {
    /// Simulation instant (ticks).
    pub tick: u64,
    /// Commanded window at that instant (ticks).
    pub window: u64,
}

/// Steps the load-step scenario under the given controller, sampling the
/// commanded window at each checkpoint (the latest decision at or before
/// it). Returns the samples plus total shrink/grow counts — the worked
/// episode quoted in EXPERIMENTS.md.
pub fn episode(kind: ControllerKind, checkpoints: &[u64]) -> (Vec<EpisodeSample>, u64, u64) {
    let mut eng = build_engine(Scenario::Step, kind, 0);
    let mut obs = NoopObserver;
    let horizon = Time::from_ticks(HORIZON_TICKS);
    let mut samples: Vec<EpisodeSample> = Vec::with_capacity(checkpoints.len());
    let mut idx = 0usize;
    let mut window = eng.controller().window_ticks();
    while eng.now() < horizon {
        while idx < checkpoints.len() && eng.now().ticks() > checkpoints[idx] {
            samples.push(EpisodeSample {
                tick: checkpoints[idx],
                window,
            });
            idx += 1;
        }
        eng.step(&mut obs);
        window = eng.controller().window_ticks();
    }
    for &tick in &checkpoints[idx..] {
        samples.push(EpisodeSample { tick, window });
    }
    (
        samples,
        eng.controller().shrinks(),
        eng.controller().grows(),
    )
}

/// Everything needed to reproduce one adaptive cell bit-for-bit.
///
/// Same flat-JSON conventions as [`crate::replay::FailureRecord`]:
/// version-stamped, scalar fields only, stale or corrupted artifacts are
/// rejected rather than silently replaying a different timeline.
#[derive(Clone, Debug, PartialEq)]
pub struct AdaptiveRecord {
    /// Workload.
    pub scenario: Scenario,
    /// Element-(2) choice.
    pub controller: ControllerKind,
    /// Replicate index (the run's seed is `stream_seed(BASE_SEED, r)`).
    pub replicate: u64,
    /// Outcome class: `"ok"` or `"panic"`.
    pub kind: String,
    /// The outcome itself: the exact loss bits and offered count, or the
    /// panic payload.
    pub detail: String,
}

impl AdaptiveRecord {
    /// Serializes the record as one flat JSON object.
    pub fn to_json(&self) -> String {
        let mut w = ArtifactWriter::new(Some("adaptive"));
        w.str("scenario", self.scenario.label());
        w.str("controller", self.controller.label());
        w.u64("replicate", self.replicate);
        w.str("kind", &self.kind);
        w.str("detail", &self.detail);
        w.finish()
    }

    /// Parses a record previously written by [`AdaptiveRecord::to_json`].
    pub fn from_json(text: &str) -> Result<Self, String> {
        let r = ArtifactReader::parse(text, Some("adaptive"))?;
        let scenario_label = r.str("scenario")?;
        let scenario = Scenario::parse(&scenario_label)
            .ok_or_else(|| format!("unknown scenario {scenario_label:?}"))?;
        let controller_label = r.str("controller")?;
        let controller = ControllerKind::parse(&controller_label)
            .ok_or_else(|| format!("unknown controller {controller_label:?}"))?;
        Ok(AdaptiveRecord {
            scenario,
            controller,
            replicate: r.u64("replicate")?,
            kind: r.str("kind")?,
            detail: r.str("detail")?,
        })
    }

    /// Writes the record to `path`, creating parent directories.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        save_artifact(path, &self.to_json())
    }

    /// Loads a record from `path`.
    pub fn load(path: &Path) -> Result<Self, String> {
        Self::from_json(&load_artifact(path)?)
    }
}

/// Executes the cell a record describes and returns the observed
/// `(kind, detail)` — `("ok", ...)` carrying the exact loss bits and
/// offered count. Deterministic: the same record always returns the
/// same pair.
pub fn execute(rec: &AdaptiveRecord) -> (String, String) {
    let run = || {
        let out = run_cell(
            rec.scenario,
            rec.controller,
            rec.replicate,
            &mut NoopObserver,
            None,
        );
        (
            "ok".to_string(),
            format!(
                "loss_bits={:016x} loss={:.6} offered={}",
                out.loss.to_bits(),
                out.loss,
                out.offered
            ),
        )
    };
    match catch_unwind(AssertUnwindSafe(run)) {
        Ok(outcome) => outcome,
        Err(payload) => ("panic".to_string(), panic_message(payload)),
    }
}

/// Replays an artifact; returns the process exit code (`0` when the
/// replay reproduced the recorded outcome, [`crate::diag::EXIT_FAILURE`]
/// otherwise).
pub fn replay(path: &Path) -> i32 {
    let rec = match AdaptiveRecord::load(path) {
        Ok(r) => r,
        Err(e) => {
            crate::diag::error("adaptive", &format!("cannot load artifact: {e}"));
            return crate::diag::EXIT_FAILURE;
        }
    };
    println!(
        "replaying {} (scenario={}, controller={}, replicate={})",
        path.display(),
        rec.scenario.label(),
        rec.controller.label(),
        rec.replicate
    );
    let (kind, detail) = execute(&rec);
    println!("recorded: [{}] {}", rec.kind, rec.detail);
    println!("replayed: [{kind}] {detail}");
    if kind == rec.kind && detail == rec.detail {
        println!("replay reproduced the identical outcome");
        0
    } else {
        crate::diag::error("adaptive", "REPLAY DIVERGED from the recorded outcome");
        crate::diag::EXIT_FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_follows_its_schedule() {
        let mut c = OracleController::new(vec![(Time::ZERO, 400), (Time::from_ticks(1_000), 40)]);
        let p = ControlPolicy::controlled(Dur::from_ticks(300), Dur::from_ticks(400));
        assert_eq!(c.next_length(Time::ZERO, Dur::from_ticks(10), &p), 400);
        assert_eq!(
            c.next_length(Time::from_ticks(999), Dur::from_ticks(10), &p),
            400
        );
        assert_eq!(
            c.next_length(Time::from_ticks(1_000), Dur::from_ticks(10), &p),
            40
        );
        assert_eq!(c.window_ticks(), 40);
        assert_eq!(c.shrinks() + c.grows(), 0);
    }

    #[test]
    fn oracle_rejects_bad_schedules() {
        assert!(catch_unwind(|| OracleController::new(vec![])).is_err());
        assert!(catch_unwind(|| OracleController::new(vec![(Time::from_ticks(5), 10)])).is_err());
        assert!(
            catch_unwind(|| OracleController::new(vec![(Time::ZERO, 10), (Time::ZERO, 20),]))
                .is_err()
        );
    }

    #[test]
    fn labels_round_trip() {
        for s in Scenario::ALL {
            assert_eq!(Scenario::parse(s.label()), Some(s));
        }
        for c in ControllerKind::ALL {
            assert_eq!(ControllerKind::parse(c.label()), Some(c));
        }
        assert_eq!(Scenario::parse("nope"), None);
        assert_eq!(ControllerKind::parse("nope"), None);
    }

    #[test]
    fn record_round_trips_and_rejects_stale_versions() {
        let rec = AdaptiveRecord {
            scenario: Scenario::Adversarial,
            controller: ControllerKind::Aimd,
            replicate: 1,
            kind: "ok".to_string(),
            detail: "loss_bits=0000000000000000 loss=0.000000 offered=7".to_string(),
        };
        let parsed = AdaptiveRecord::from_json(&rec.to_json()).expect("parse");
        assert_eq!(parsed, rec);
        let stamp = format!("\"version\": \"{}\"", crate::replay::ARTIFACT_VERSION);
        let stale = rec
            .to_json()
            .replace(&stamp, "\"version\": \"0.0.0-stale\"");
        assert!(AdaptiveRecord::from_json(&stale).is_err());
        let wrong = rec
            .to_json()
            .replace("\"experiment\": \"adaptive\"", "\"experiment\": \"churn\"");
        assert!(AdaptiveRecord::from_json(&wrong).is_err());
    }

    #[test]
    fn execute_is_deterministic() {
        let rec = AdaptiveRecord {
            scenario: Scenario::Step,
            controller: ControllerKind::Aimd,
            replicate: 0,
            kind: String::new(),
            detail: String::new(),
        };
        let a = execute(&rec);
        let b = execute(&rec);
        assert_eq!(a, b);
        assert_eq!(a.0, "ok");
    }

    #[test]
    fn oracle_windows_match_the_analysis() {
        // Stale = pre-change optimum; the step oracle switches to the
        // post-step optimum, 10x smaller.
        let stale = Scenario::Step.stale_window();
        let sched = Scenario::Step.oracle_schedule();
        assert_eq!(sched[0].1, stale);
        assert!(sched[1].1 < stale / 5, "{sched:?}");
    }
}
