//! Determinism contract of the parallel sweep executor: a sweep run with
//! `--jobs 4` must produce **byte-identical** CSV output to the serial
//! `--jobs 1` run. The executor reassembles results in cell order, and
//! every cell carries its own seed, so worker count and scheduling must
//! be unobservable in the output.
//!
//! The same contract extends to the observability layer: turning on
//! event tracing and metrics capture must not perturb the simulated
//! results (observers are passive — they never touch an RNG stream),
//! and the exported artifacts themselves must be byte-identical for any
//! `--jobs N` (per-cell telemetry is reassembled in cell order).

use std::path::PathBuf;
use tcw_experiments::plot::write_csv;
use tcw_experiments::runner::{ChurnSimPoint, PolicyKind, SimSettings};
use tcw_experiments::sweep::{run_cells, run_parallel, Cell};
use tcw_experiments::{observed_cell, Capture, CellArtifacts, PANELS};
use tcw_mac::{ChurnPlan, FaultPlan};
use tcw_obs::Registry;

fn small() -> SimSettings {
    SimSettings {
        ticks_per_tau: 8,
        messages: 600,
        warmup: 60,
        ..Default::default()
    }
}

/// The miniature robustness-style grid used by the test: two loads ×
/// three fault probabilities, seeds mixed per cell like the binaries do.
fn grid() -> Vec<Cell> {
    let mut cells = Vec::new();
    for (li, &panel) in [PANELS[0], PANELS[4]].iter().enumerate() {
        for (pi, &p) in [0.0, 0.02, 0.05].iter().enumerate() {
            let mut c = Cell::clean(
                panel,
                PolicyKind::Controlled,
                100.0,
                small(),
                1983 ^ ((li as u64) << 8) ^ pi as u64,
            );
            c.plan = FaultPlan::uniform(p);
            if pi == 2 {
                c.churn = ChurnPlan::crash_restart(0.002, 40, 100);
            }
            cells.push(c);
        }
    }
    cells
}

/// Renders the sweep exactly like the experiment binaries render their
/// CSVs: full-precision `{}` formatting of every float, one row per cell.
fn render_rows(points: &[tcw_experiments::runner::ChurnSimPoint]) -> Vec<Vec<String>> {
    points
        .iter()
        .map(|csp| {
            vec![
                format!("{}", csp.point.loss),
                format!("{}", csp.point.utilization),
                format!("{}", csp.point.sched_time_mean),
                format!("{}", csp.faults.corrupted_slots),
                format!("{}", csp.faults.resyncs),
                format!("{}", csp.churn.losses),
                format!("{}", csp.churn.reopened),
            ]
        })
        .collect()
}

fn csv_bytes(jobs: usize, tag: &str) -> Vec<u8> {
    let points = run_cells(&grid(), jobs);
    let path: PathBuf = std::env::temp_dir().join(format!("tcw_sweep_determinism_{tag}.csv"));
    write_csv(
        &path,
        &[
            "loss",
            "utilization",
            "sched_time_mean",
            "corrupted_slots",
            "resyncs",
            "churn_losses",
            "churn_reopened",
        ],
        &render_rows(&points),
    )
    .expect("write csv");
    let bytes = std::fs::read(&path).expect("read csv back");
    let _ = std::fs::remove_file(&path);
    bytes
}

#[test]
fn parallel_sweep_csv_is_byte_identical_to_serial() {
    let serial = csv_bytes(1, "jobs1");
    let parallel = csv_bytes(4, "jobs4");
    assert!(!serial.is_empty());
    assert_eq!(serial, parallel, "--jobs 4 CSV differs from --jobs 1 CSV");
}

/// Runs the grid with full telemetry capture on `jobs` workers,
/// returning the simulated points plus the assembled artifacts exactly
/// as `write_observability` would build them: traces concatenated and
/// registries merged in cell order.
fn instrumented_run(jobs: usize) -> (Vec<ChurnSimPoint>, String, String, String, String) {
    let cells = grid();
    let caps = Capture {
        tracing: true,
        metrics: true,
        spans: true,
    };
    let out: Vec<(ChurnSimPoint, CellArtifacts)> = run_parallel(&cells, jobs, |i, c| {
        let label = format!("cell {i}");
        let seed_s = format!("{}", c.seed);
        let labels = [("cell", label.as_str()), ("seed", seed_s.as_str())];
        observed_cell(
            caps, i, &label, &labels, c.panel, c.policy, c.k_tau, c.settings, c.seed, c.plan,
            c.churn,
        )
    });
    let (points, artifacts): (Vec<_>, Vec<_>) = out.into_iter().unzip();
    let mut trace = String::new();
    let mut spans = String::new();
    let mut merged = Registry::new();
    for a in &artifacts {
        trace.push_str(a.trace.as_deref().expect("tracing was on"));
        spans.push_str(a.spans.as_deref().expect("spans were on"));
        merged.absorb(a.registry.as_ref().expect("metrics were on"));
    }
    (
        points,
        trace,
        spans,
        merged.to_prometheus(),
        merged.to_json(),
    )
}

#[test]
fn instrumented_sweep_is_byte_identical_to_plain_for_any_jobs() {
    let plain_csv = csv_bytes(1, "plain");
    let (points1, trace1, spans1, prom1, json1) = instrumented_run(1);
    let (points4, trace4, spans4, prom4, json4) = instrumented_run(4);

    // Telemetry capture never perturbs the simulation: the instrumented
    // points render to the same CSV bytes as the instrumentation-free run.
    for (tag, points) in [("jobs1", &points1), ("jobs4", &points4)] {
        let path: PathBuf =
            std::env::temp_dir().join(format!("tcw_sweep_determinism_obs_{tag}.csv"));
        write_csv(
            &path,
            &[
                "loss",
                "utilization",
                "sched_time_mean",
                "corrupted_slots",
                "resyncs",
                "churn_losses",
                "churn_reopened",
            ],
            &render_rows(points),
        )
        .expect("write csv");
        let bytes = std::fs::read(&path).expect("read csv back");
        let _ = std::fs::remove_file(&path);
        assert_eq!(
            plain_csv, bytes,
            "instrumented {tag} CSV differs from the instrumentation-free run"
        );
    }

    // The artifacts themselves are byte-identical for any worker count.
    assert!(!trace1.is_empty());
    assert!(!spans1.is_empty());
    assert_eq!(trace1, trace4, "NDJSON trace depends on --jobs");
    assert_eq!(spans1, spans4, "span stream depends on --jobs");
    assert_eq!(prom1, prom4, "Prometheus exposition depends on --jobs");
    assert_eq!(json1, json4, "metrics JSON depends on --jobs");

    // And they are well-formed per the shipped linters.
    tcw_obs::lint::lint_events(&trace1).expect("trace lints clean");
    tcw_obs::lint::lint_spans(&spans1).expect("spans lint clean");
    tcw_obs::lint::lint_prom(&prom1).expect("exposition lints clean");
}

#[test]
fn parallel_sweep_points_are_bitwise_identical_to_serial() {
    let cells = grid();
    let serial = run_cells(&cells, 1);
    let parallel = run_cells(&cells, 4);
    assert_eq!(serial.len(), parallel.len());
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(s.point.loss.to_bits(), p.point.loss.to_bits(), "cell {i}");
        assert_eq!(s.point.ci95.to_bits(), p.point.ci95.to_bits(), "cell {i}");
        assert_eq!(
            s.point.utilization.to_bits(),
            p.point.utilization.to_bits(),
            "cell {i}"
        );
        assert_eq!(s.point.offered, p.point.offered, "cell {i}");
        assert_eq!(
            s.faults.corrupted_slots, p.faults.corrupted_slots,
            "cell {i}"
        );
        assert_eq!(s.faults.resyncs, p.faults.resyncs, "cell {i}");
        assert_eq!(s.churn.losses, p.churn.losses, "cell {i}");
        assert_eq!(s.churn.crashes, p.churn.crashes, "cell {i}");
    }
}
