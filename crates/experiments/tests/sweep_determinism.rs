//! Determinism contract of the parallel sweep executor: a sweep run with
//! `--jobs 4` must produce **byte-identical** CSV output to the serial
//! `--jobs 1` run. The executor reassembles results in cell order, and
//! every cell carries its own seed, so worker count and scheduling must
//! be unobservable in the output.

use std::path::PathBuf;
use tcw_experiments::plot::write_csv;
use tcw_experiments::runner::{PolicyKind, SimSettings};
use tcw_experiments::sweep::{run_cells, Cell};
use tcw_experiments::PANELS;
use tcw_mac::{ChurnPlan, FaultPlan};

fn small() -> SimSettings {
    SimSettings {
        ticks_per_tau: 8,
        messages: 600,
        warmup: 60,
        ..Default::default()
    }
}

/// The miniature robustness-style grid used by the test: two loads ×
/// three fault probabilities, seeds mixed per cell like the binaries do.
fn grid() -> Vec<Cell> {
    let mut cells = Vec::new();
    for (li, &panel) in [PANELS[0], PANELS[4]].iter().enumerate() {
        for (pi, &p) in [0.0, 0.02, 0.05].iter().enumerate() {
            let mut c = Cell::clean(
                panel,
                PolicyKind::Controlled,
                100.0,
                small(),
                1983 ^ ((li as u64) << 8) ^ pi as u64,
            );
            c.plan = FaultPlan::uniform(p);
            if pi == 2 {
                c.churn = ChurnPlan::crash_restart(0.002, 40, 100);
            }
            cells.push(c);
        }
    }
    cells
}

/// Renders the sweep exactly like the experiment binaries render their
/// CSVs: full-precision `{}` formatting of every float, one row per cell.
fn render_rows(points: &[tcw_experiments::runner::ChurnSimPoint]) -> Vec<Vec<String>> {
    points
        .iter()
        .map(|csp| {
            vec![
                format!("{}", csp.point.loss),
                format!("{}", csp.point.utilization),
                format!("{}", csp.point.sched_time_mean),
                format!("{}", csp.faults.corrupted_slots),
                format!("{}", csp.faults.resyncs),
                format!("{}", csp.churn.losses),
                format!("{}", csp.churn.reopened),
            ]
        })
        .collect()
}

fn csv_bytes(jobs: usize, tag: &str) -> Vec<u8> {
    let points = run_cells(&grid(), jobs);
    let path: PathBuf = std::env::temp_dir().join(format!("tcw_sweep_determinism_{tag}.csv"));
    write_csv(
        &path,
        &[
            "loss",
            "utilization",
            "sched_time_mean",
            "corrupted_slots",
            "resyncs",
            "churn_losses",
            "churn_reopened",
        ],
        &render_rows(&points),
    )
    .expect("write csv");
    let bytes = std::fs::read(&path).expect("read csv back");
    let _ = std::fs::remove_file(&path);
    bytes
}

#[test]
fn parallel_sweep_csv_is_byte_identical_to_serial() {
    let serial = csv_bytes(1, "jobs1");
    let parallel = csv_bytes(4, "jobs4");
    assert!(!serial.is_empty());
    assert_eq!(serial, parallel, "--jobs 4 CSV differs from --jobs 1 CSV");
}

#[test]
fn parallel_sweep_points_are_bitwise_identical_to_serial() {
    let cells = grid();
    let serial = run_cells(&cells, 1);
    let parallel = run_cells(&cells, 4);
    assert_eq!(serial.len(), parallel.len());
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(s.point.loss.to_bits(), p.point.loss.to_bits(), "cell {i}");
        assert_eq!(s.point.ci95.to_bits(), p.point.ci95.to_bits(), "cell {i}");
        assert_eq!(
            s.point.utilization.to_bits(),
            p.point.utilization.to_bits(),
            "cell {i}"
        );
        assert_eq!(s.point.offered, p.point.offered, "cell {i}");
        assert_eq!(
            s.faults.corrupted_slots, p.faults.corrupted_slots,
            "cell {i}"
        );
        assert_eq!(s.faults.resyncs, p.faults.resyncs, "cell {i}");
        assert_eq!(s.churn.losses, p.churn.losses, "cell {i}");
        assert_eq!(s.churn.crashes, p.churn.crashes, "cell {i}");
    }
}
