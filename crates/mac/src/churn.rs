//! Deterministic station churn: dynamic membership for the station
//! population.
//!
//! The paper assumes a fixed population of stations that hear every slot
//! forever. [`ChurnPlan`] breaks that assumption in controlled,
//! reproducible ways:
//!
//! * **crash/restart** — a live station crashes with a per-probe-slot
//!   probability and is silent for a fixed outage length, then restarts
//!   cold (it must re-acquire protocol state from the next decision-point
//!   beacon);
//! * **late join** — a fraction of the population does not exist until a
//!   scheduled slot;
//! * **scheduled leave** — a fraction of the population departs
//!   permanently at a scheduled slot, abandoning its backlog;
//! * **listener outage** — a scheduled deaf window for one *monitored*
//!   station; this field is consumed by the divergence detector in
//!   `tcw-window`, not by the shared membership process, because an outage
//!   is private to the listening station.
//!
//! All randomness comes from a dedicated tagged RNG stream passed in by
//! the caller, so churn sequences are reproducible from the run seed and
//! independent of every other random stream. With [`ChurnPlan::none`] the
//! process draws **nothing** from that stream and every station is
//! permanently up — bit-identical to a static-population build.
//!
//! The process is clocked in *probe slots*: the engine steps it once per
//! channel probe, the only unit of time every surviving station can count
//! by listening.

use crate::message::{Message, StationId};
use tcw_sim::rng::Rng;

/// Per-station membership dynamics. All values are flat scalars so a plan
/// embeds directly in the flat-JSON failure-replay artifacts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChurnPlan {
    /// P(per probe slot) that a live station crashes.
    pub crash: f64,
    /// How many probe slots a crashed station stays down before
    /// restarting.
    pub down_slots: u64,
    /// Fraction of the population (highest station indices) absent until
    /// [`ChurnPlan::join_slot`].
    pub late_join_frac: f64,
    /// Probe slot at which late joiners come up.
    pub join_slot: u64,
    /// Fraction of the population (lowest station indices) that leaves
    /// permanently at [`ChurnPlan::leave_slot`].
    pub leave_frac: f64,
    /// Probe slot at which leavers depart.
    pub leave_slot: u64,
    /// Rejoin catch-up bound, in units of `tau`: at its first decision
    /// point back, a restarted station recovers only backlog younger than
    /// this; older stranded messages are dropped (counted as churn loss).
    pub catch_up_slots: u64,
    /// First slot of the monitored listener's scheduled outage (consumed
    /// by the divergence detector, not the shared membership process).
    pub outage_start_slot: u64,
    /// Length of the monitored listener's outage in heard slots; zero
    /// disables the outage.
    pub outage_slots: u64,
}

impl ChurnPlan {
    /// The churn-free plan: every station is permanently up and the
    /// process draws nothing from its RNG stream.
    pub fn none() -> Self {
        ChurnPlan {
            crash: 0.0,
            down_slots: 0,
            late_join_frac: 0.0,
            join_slot: 0,
            leave_frac: 0.0,
            leave_slot: 0,
            catch_up_slots: 0,
            outage_start_slot: 0,
            outage_slots: 0,
        }
    }

    /// A crash/restart-only plan: stations crash at `crash` per probe
    /// slot, stay down `down_slots`, and recover backlog younger than
    /// `catch_up_slots` tau when they rejoin.
    pub fn crash_restart(crash: f64, down_slots: u64, catch_up_slots: u64) -> Self {
        ChurnPlan {
            crash,
            down_slots,
            catch_up_slots,
            ..ChurnPlan::none()
        }
    }

    /// Whether this plan changes the shared membership process at all
    /// (the listener outage is private to the monitored station and does
    /// not count).
    pub fn is_none(&self) -> bool {
        self.crash == 0.0 && self.late_join_frac == 0.0 && self.leave_frac == 0.0
    }

    /// Non-panicking validation, used when parsing replay artifacts so a
    /// corrupted file degrades to an error instead of aborting.
    pub fn check(&self) -> Result<(), String> {
        for (name, p) in [
            ("crash", self.crash),
            ("late_join_frac", self.late_join_frac),
            ("leave_frac", self.leave_frac),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} = {p} outside [0, 1]"));
            }
        }
        if self.crash > 0.0 && self.down_slots == 0 {
            return Err("crash > 0 requires down_slots >= 1".to_string());
        }
        Ok(())
    }

    /// Checks plan sanity.
    ///
    /// # Panics
    /// Panics with a description of the offending field on violation.
    pub fn validate(&self) {
        if let Err(e) = self.check() {
            panic!("invalid churn plan: {e}");
        }
    }
}

impl Default for ChurnPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// A membership transition of one station.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChurnEvent {
    /// The station crashed: it stops hearing the channel and its backlog
    /// is stranded until it restarts (or ages out).
    Crash(StationId),
    /// The station restarted cold; it re-acquires protocol state from the
    /// next decision-point beacon.
    Restart(StationId),
    /// A late joiner came up for the first time.
    Join(StationId),
    /// The station left permanently, abandoning its backlog.
    Leave(StationId),
}

impl ChurnEvent {
    /// The station the event concerns.
    pub fn station(&self) -> StationId {
        match self {
            ChurnEvent::Crash(s)
            | ChurnEvent::Restart(s)
            | ChurnEvent::Join(s)
            | ChurnEvent::Leave(s) => *s,
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MemberState {
    Up,
    Down { remaining: u64 },
    Absent,
    Left,
}

/// The membership state machine, stepped once per channel probe slot.
#[derive(Clone, Debug)]
pub struct ChurnProcess {
    plan: ChurnPlan,
    rng: Rng,
    state: Vec<MemberState>,
    /// Slot at which each station leaves permanently (`u64::MAX` = never).
    leave_at: Vec<u64>,
    slot: u64,
    crashes: u64,
    restarts: u64,
    joins: u64,
    leaves: u64,
}

impl ChurnProcess {
    /// Creates a membership process over `stations` stations. `rng` must
    /// be a dedicated substream (the engine forks it as `"churn"` from the
    /// master seed). With a [`ChurnPlan::none`] plan the stream is never
    /// touched.
    pub fn new(plan: ChurnPlan, stations: u32, rng: Rng) -> Self {
        plan.validate();
        let n = stations as usize;
        let joiners = if plan.late_join_frac > 0.0 {
            ((plan.late_join_frac * n as f64).ceil() as usize).min(n)
        } else {
            0
        };
        let leavers = if plan.leave_frac > 0.0 {
            ((plan.leave_frac * n as f64).ceil() as usize).min(n)
        } else {
            0
        };
        let mut state = vec![MemberState::Up; n];
        // Late joiners occupy the highest indices, leavers the lowest, so
        // the two sets only overlap when the fractions sum past 1.
        for s in state.iter_mut().skip(n - joiners) {
            *s = MemberState::Absent;
        }
        let mut leave_at = vec![u64::MAX; n];
        for l in leave_at.iter_mut().take(leavers) {
            *l = plan.leave_slot;
        }
        ChurnProcess {
            plan,
            rng,
            state,
            leave_at,
            slot: 0,
            crashes: 0,
            restarts: 0,
            joins: 0,
            leaves: 0,
        }
    }

    /// A process with no stations and no plan (the engine default before
    /// [`ChurnProcess::new`] replaces it).
    pub fn disabled(rng: Rng) -> Self {
        Self::new(ChurnPlan::none(), 0, rng)
    }

    /// The active plan.
    pub fn plan(&self) -> &ChurnPlan {
        &self.plan
    }

    /// A clone of the current RNG stream position. The engine uses this
    /// to rebuild the process when a plan is installed before a run
    /// starts (the stream is untouched until the first crash draw, so the
    /// clone is exactly the original `"churn"` fork).
    pub fn stream(&self) -> Rng {
        self.rng.clone()
    }

    /// Probe slots stepped so far.
    pub fn slot(&self) -> u64 {
        self.slot
    }

    /// Crashes so far.
    pub fn crashes(&self) -> u64 {
        self.crashes
    }

    /// Restarts so far.
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// Late joins so far.
    pub fn joins(&self) -> u64 {
        self.joins
    }

    /// Permanent leaves so far.
    pub fn leaves(&self) -> u64 {
        self.leaves
    }

    /// Pushes the membership counters into `sink` under stable
    /// `tcw_churn_*` names.
    pub fn emit(&self, sink: &mut dyn tcw_sim::stats::MetricSink) {
        sink.counter(
            "tcw_churn_slots_total",
            "probe slots stepped by the membership process",
            self.slot,
        );
        sink.counter("tcw_churn_crashes_total", "station crashes", self.crashes);
        sink.counter(
            "tcw_churn_restarts_total",
            "station restarts",
            self.restarts,
        );
        sink.counter("tcw_churn_joins_total", "late joins", self.joins);
        sink.counter("tcw_churn_leaves_total", "permanent leaves", self.leaves);
    }

    /// Whether the station currently hears the channel and may transmit.
    /// Stations beyond the modelled population are always up.
    pub fn is_up(&self, station: StationId) -> bool {
        match self.state.get(station.0 as usize) {
            Some(s) => matches!(s, MemberState::Up),
            None => true,
        }
    }

    /// Whether the station still exists (it may be down, but has not left
    /// permanently). Messages of present stations stay resolvable;
    /// messages of departed stations never will be.
    pub fn is_present(&self, station: StationId) -> bool {
        match self.state.get(station.0 as usize) {
            Some(s) => !matches!(s, MemberState::Left),
            None => true,
        }
    }

    /// Drops messages whose sender cannot currently transmit.
    pub fn retain_up(&self, msgs: &mut Vec<Message>) {
        msgs.retain(|m| self.is_up(m.station));
    }

    /// The earliest future probe slot (strictly after the current one) at
    /// which [`step`](Self::step) could emit an event or mutate any
    /// member's state, or `None` if no transition will ever occur. With a
    /// positive crash probability (or any station mid-outage) every slot
    /// can transition, so the answer is the very next slot. The engine's
    /// event-horizon fast path uses this to bound how many slots it may
    /// [`skip_slots`](Self::skip_slots) past.
    pub fn next_scheduled_transition(&self) -> Option<u64> {
        if self.plan.is_none() {
            return None;
        }
        if self.plan.crash > 0.0 {
            return Some(self.slot + 1);
        }
        let mut next: Option<u64> = None;
        let consider = |candidate: u64, next: &mut Option<u64>| {
            let c = candidate.max(self.slot + 1);
            *next = Some(next.map_or(c, |n: u64| n.min(c)));
        };
        for (i, m) in self.state.iter().enumerate() {
            match m {
                MemberState::Absent => consider(self.plan.join_slot, &mut next),
                // A down station mutates (counts down) on every step.
                MemberState::Down { .. } => consider(self.slot + 1, &mut next),
                MemberState::Up | MemberState::Left => {}
            }
            if self.leave_at[i] != u64::MAX && !matches!(m, MemberState::Left) {
                consider(self.leave_at[i], &mut next);
            }
        }
        next
    }

    /// Advances the slot clock by `n` without stepping the state machine,
    /// for runs of slots proven transition-free via
    /// [`next_scheduled_transition`](Self::next_scheduled_transition).
    /// Draws nothing and emits nothing, so it is bit-identical to `n`
    /// transition-free [`step`](Self::step) calls.
    pub fn skip_slots(&mut self, n: u64) {
        debug_assert!(
            match self.next_scheduled_transition() {
                None => true,
                Some(s) => s > self.slot + n,
            },
            "skip_slots({n}) would jump over a membership transition"
        );
        self.slot += n;
    }

    /// Advances the membership process one probe slot, appending any
    /// transitions to `events`. With [`ChurnPlan::none`] this only
    /// advances the slot counter and draws nothing from the RNG.
    pub fn step(&mut self, events: &mut Vec<ChurnEvent>) {
        self.slot += 1;
        if self.plan.is_none() {
            return;
        }
        let slot = self.slot;
        // Scheduled membership first: joins and permanent leaves happen at
        // exact slots, independent of the crash process.
        for i in 0..self.state.len() {
            let id = StationId(i as u32);
            if self.state[i] == MemberState::Absent && slot >= self.plan.join_slot {
                self.state[i] = MemberState::Up;
                self.joins += 1;
                events.push(ChurnEvent::Join(id));
            }
            if self.leave_at[i] <= slot && self.state[i] != MemberState::Left {
                self.state[i] = MemberState::Left;
                self.leaves += 1;
                events.push(ChurnEvent::Leave(id));
            }
        }
        // Crash/restart dynamics: exactly one RNG draw per live station
        // per slot (when crash > 0), in station order, so the stream is
        // reproducible regardless of what the protocol is doing.
        for i in 0..self.state.len() {
            match self.state[i] {
                MemberState::Up => {
                    if self.plan.crash > 0.0 && self.rng.chance(self.plan.crash) {
                        self.state[i] = MemberState::Down {
                            remaining: self.plan.down_slots,
                        };
                        self.crashes += 1;
                        events.push(ChurnEvent::Crash(StationId(i as u32)));
                    }
                }
                MemberState::Down { remaining } => {
                    if remaining <= 1 {
                        self.state[i] = MemberState::Up;
                        self.restarts += 1;
                        events.push(ChurnEvent::Restart(StationId(i as u32)));
                    } else {
                        self.state[i] = MemberState::Down {
                            remaining: remaining - 1,
                        };
                    }
                }
                MemberState::Absent | MemberState::Left => {}
            }
        }
    }
}

impl ChurnProcess {
    /// Serializes the full membership state (plan, RNG position, per-station
    /// states, leave schedule, slot clock, event counters) for an engine
    /// checkpoint.
    pub fn save_state(&self, w: &mut tcw_sim::snap::SnapWriter) {
        w.push_f64(self.plan.crash);
        w.push(self.plan.down_slots);
        w.push_f64(self.plan.late_join_frac);
        w.push(self.plan.join_slot);
        w.push_f64(self.plan.leave_frac);
        w.push(self.plan.leave_slot);
        w.push(self.plan.catch_up_slots);
        w.push(self.plan.outage_start_slot);
        w.push(self.plan.outage_slots);
        for s in self.rng.state() {
            w.push(s);
        }
        w.push_usize(self.state.len());
        for m in &self.state {
            // Fixed two words per member: discriminant + payload.
            let (tag, payload) = match m {
                MemberState::Up => (0u64, 0u64),
                MemberState::Down { remaining } => (1, *remaining),
                MemberState::Absent => (2, 0),
                MemberState::Left => (3, 0),
            };
            w.push(tag);
            w.push(payload);
        }
        for &l in &self.leave_at {
            w.push(l);
        }
        w.push(self.slot);
        w.push(self.crashes);
        w.push(self.restarts);
        w.push(self.joins);
        w.push(self.leaves);
    }

    /// Rebuilds a process from checkpoint state written by
    /// [`ChurnProcess::save_state`].
    pub fn load_state(
        r: &mut tcw_sim::snap::SnapReader<'_>,
    ) -> Result<Self, tcw_sim::snap::SnapError> {
        let plan = ChurnPlan {
            crash: r.take_f64()?,
            down_slots: r.take()?,
            late_join_frac: r.take_f64()?,
            join_slot: r.take()?,
            leave_frac: r.take_f64()?,
            leave_slot: r.take()?,
            catch_up_slots: r.take()?,
            outage_start_slot: r.take()?,
            outage_slots: r.take()?,
        };
        plan.check().map_err(tcw_sim::snap::SnapError::new)?;
        let mut s = [0u64; 4];
        for x in s.iter_mut() {
            *x = r.take()?;
        }
        let rng = Rng::from_state(s);
        let n = r.take_len()?;
        let mut state = Vec::with_capacity(n);
        for _ in 0..n {
            let tag = r.take()?;
            let payload = r.take()?;
            state.push(match tag {
                0 => MemberState::Up,
                1 => MemberState::Down { remaining: payload },
                2 => MemberState::Absent,
                3 => MemberState::Left,
                t => {
                    return Err(tcw_sim::snap::SnapError::new(format!(
                        "invalid member-state tag {t}"
                    )))
                }
            });
        }
        let mut leave_at = Vec::with_capacity(n);
        for _ in 0..n {
            leave_at.push(r.take()?);
        }
        Ok(ChurnProcess {
            plan,
            rng,
            state,
            leave_at,
            slot: r.take()?,
            crashes: r.take()?,
            restarts: r.take()?,
            joins: r.take()?,
            leaves: r.take()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_draws_nothing_and_everyone_is_up() {
        let mut p = ChurnProcess::new(ChurnPlan::none(), 10, Rng::new(7));
        let mut witness = Rng::new(7);
        let mut events = Vec::new();
        for _ in 0..1_000 {
            p.step(&mut events);
        }
        assert!(events.is_empty());
        assert_eq!(p.slot(), 1_000);
        for i in 0..10 {
            assert!(p.is_up(StationId(i)));
            assert!(p.is_present(StationId(i)));
        }
        assert_eq!(p.rng.next_u64(), witness.next_u64());
    }

    #[test]
    fn crash_and_restart_cycle_is_deterministic() {
        let mk = || ChurnProcess::new(ChurnPlan::crash_restart(0.01, 5, 100), 20, Rng::new(3));
        let mut a = mk();
        let mut b = mk();
        let mut ea = Vec::new();
        let mut eb = Vec::new();
        for _ in 0..5_000 {
            a.step(&mut ea);
            b.step(&mut eb);
        }
        assert_eq!(ea, eb);
        assert!(a.crashes() > 0, "no crashes at p=0.01 over 5000 slots");
        // Every crash either restarted or is still inside its outage.
        assert!(a.restarts() <= a.crashes());
        assert!(a.crashes() - a.restarts() <= 20);
    }

    #[test]
    fn down_station_restarts_after_exact_outage() {
        // Force a crash on the first slot, then count slots until restart.
        let plan = ChurnPlan::crash_restart(1.0, 4, 100);
        let mut p = ChurnProcess::new(plan, 1, Rng::new(1));
        let mut events = Vec::new();
        p.step(&mut events);
        assert_eq!(events, vec![ChurnEvent::Crash(StationId(0))]);
        assert!(!p.is_up(StationId(0)));
        assert!(p.is_present(StationId(0)));
        events.clear();
        // down_slots = 4: the station is down for slots 2..=4 and restarts
        // on the 4th step after the crash.
        for _ in 0..3 {
            p.step(&mut events);
            assert!(!p.is_up(StationId(0)));
        }
        p.step(&mut events);
        assert!(events.contains(&ChurnEvent::Restart(StationId(0))));
        assert!(p.is_up(StationId(0)));
    }

    #[test]
    fn late_join_and_leave_fire_at_scheduled_slots() {
        let plan = ChurnPlan {
            late_join_frac: 0.2,
            join_slot: 10,
            leave_frac: 0.1,
            leave_slot: 20,
            ..ChurnPlan::none()
        };
        let mut p = ChurnProcess::new(plan, 10, Rng::new(2));
        // Two joiners (highest indices), one leaver (lowest index).
        assert!(!p.is_up(StationId(8)));
        assert!(!p.is_up(StationId(9)));
        assert!(p.is_up(StationId(0)));
        let mut events = Vec::new();
        for _ in 0..9 {
            p.step(&mut events);
        }
        assert!(events.is_empty());
        p.step(&mut events);
        assert_eq!(
            events,
            vec![
                ChurnEvent::Join(StationId(8)),
                ChurnEvent::Join(StationId(9))
            ]
        );
        assert!(p.is_up(StationId(9)));
        events.clear();
        for _ in 0..10 {
            p.step(&mut events);
        }
        assert_eq!(events, vec![ChurnEvent::Leave(StationId(0))]);
        assert!(!p.is_up(StationId(0)));
        assert!(!p.is_present(StationId(0)));
        assert_eq!(p.joins(), 2);
        assert_eq!(p.leaves(), 1);
    }

    #[test]
    fn out_of_range_stations_are_always_up() {
        let p = ChurnProcess::new(ChurnPlan::crash_restart(1.0, 2, 10), 2, Rng::new(5));
        assert!(p.is_up(StationId(99)));
        assert!(p.is_present(StationId(99)));
    }

    #[test]
    fn invalid_plans_are_rejected() {
        assert!(ChurnPlan {
            crash: 1.5,
            ..ChurnPlan::none()
        }
        .check()
        .is_err());
        assert!(ChurnPlan {
            crash: 0.1,
            down_slots: 0,
            ..ChurnPlan::none()
        }
        .check()
        .is_err());
        assert!(ChurnPlan::none().check().is_ok());
    }
}
