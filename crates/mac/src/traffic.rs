//! Time-constrained application workloads.
//!
//! The paper motivates the protocol with packetized voice [Cohen 77,
//! Gitman 81] and distributed sensor networks [DSN 82]. These models supply
//! realistic arrival streams for the example applications and for stressing
//! the protocol beyond the Poisson assumption of the analysis (an explicit
//! robustness check — Assumption 1 holds exactly only for Poisson traffic).

use crate::arrivals::{Arrival, ArrivalSource};
use crate::message::StationId;
use tcw_sim::events::EventQueue;
use tcw_sim::rng::Rng;
use tcw_sim::time::{Dur, Time};
use tcw_sim::variates::{Exponential, Geometric};

/// Parameters for the packetized-voice workload.
#[derive(Clone, Copy, Debug)]
pub struct VoiceConfig {
    /// Number of voice stations.
    pub stations: u32,
    /// Mean talkspurt (ON period) length in ticks.
    pub mean_talkspurt: Dur,
    /// Mean silence (OFF period) length in ticks.
    pub mean_silence: Dur,
    /// Fixed packetization interval during a talkspurt, in ticks.
    pub packet_interval: Dur,
}

impl VoiceConfig {
    /// Long-run fraction of time a station is talking.
    pub fn activity(&self) -> f64 {
        let on = self.mean_talkspurt.as_f64();
        let off = self.mean_silence.as_f64();
        on / (on + off)
    }

    /// Long-run aggregate packet rate (packets per tick).
    pub fn aggregate_rate(&self) -> f64 {
        self.activity() * self.stations as f64 / self.packet_interval.as_f64()
    }
}

#[derive(Clone, Copy, Debug)]
enum VoiceEvent {
    /// Station starts a talkspurt.
    SpurtStart(StationId),
    /// Station emits a packet; the attached instant is the end of the
    /// current talkspurt, after which the station falls silent.
    Packet(StationId, Time),
}

/// On/off talkspurt voice source: each station alternates exponential ON
/// and OFF periods and emits one packet every `packet_interval` while ON.
///
/// Voice is the canonical time-constrained workload — a packet older than
/// the playout deadline is useless, which is exactly the loss model the
/// controlled window protocol optimizes.
pub struct VoiceSource {
    cfg: VoiceConfig,
    on: Exponential,
    off: Exponential,
    events: EventQueue<VoiceEvent>,
    primed: bool,
}

impl VoiceSource {
    /// Creates a voice source.
    ///
    /// # Panics
    /// Panics if any period is zero or there are no stations.
    pub fn new(cfg: VoiceConfig) -> Self {
        assert!(cfg.stations > 0);
        assert!(!cfg.mean_talkspurt.is_zero());
        assert!(!cfg.mean_silence.is_zero());
        assert!(!cfg.packet_interval.is_zero());
        VoiceSource {
            cfg,
            on: Exponential::with_mean(cfg.mean_talkspurt.as_f64()),
            off: Exponential::with_mean(cfg.mean_silence.as_f64()),
            events: EventQueue::new(),
            primed: false,
        }
    }

    fn prime(&mut self, rng: &mut Rng) {
        for s in 0..self.cfg.stations {
            // Start each station in a random phase of an OFF period.
            let delay = self.off.sample(rng);
            self.events.schedule(
                Time::from_ticks(delay as u64),
                VoiceEvent::SpurtStart(StationId(s)),
            );
        }
        self.primed = true;
    }
}

impl ArrivalSource for VoiceSource {
    fn next_arrival(&mut self, rng: &mut Rng) -> Option<Arrival> {
        if !self.primed {
            self.prime(rng);
        }
        loop {
            let (now, ev) = self.events.pop()?;
            match ev {
                VoiceEvent::SpurtStart(s) => {
                    let spurt = Dur::from_ticks(self.on.sample(rng).max(1.0) as u64);
                    let end = now + spurt;
                    // First packet at spurt start.
                    self.events.schedule(now, VoiceEvent::Packet(s, end));
                }
                VoiceEvent::Packet(s, end) => {
                    let next = now + self.cfg.packet_interval;
                    if next < end {
                        self.events.schedule(next, VoiceEvent::Packet(s, end));
                    } else {
                        let silence = Dur::from_ticks(self.off.sample(rng).max(1.0) as u64);
                        self.events
                            .schedule(end + silence, VoiceEvent::SpurtStart(s));
                    }
                    return Some(Arrival {
                        time: now,
                        station: s,
                    });
                }
            }
        }
    }
}

/// Parameters for the distributed-sensor workload.
#[derive(Clone, Copy, Debug)]
pub struct SensorConfig {
    /// Number of sensor stations.
    pub stations: u32,
    /// Mean time between physical events, in ticks.
    pub mean_event_gap: Dur,
    /// Mean number of sensors that detect each event (geometric, >= 1).
    pub mean_reports: f64,
    /// Detection jitter: each report is delayed uniformly in
    /// `[0, jitter]` ticks after the event.
    pub jitter: Dur,
}

/// Sensor-network source: physical events occur as a Poisson process; each
/// event triggers a geometric number of near-simultaneous reports from
/// distinct random stations.
///
/// The resulting arrival stream is *bursty* (clustered arrivals), the worst
/// case for a window protocol since clustered arrivals collide repeatedly.
pub struct SensorSource {
    cfg: SensorConfig,
    gap: Exponential,
    reports: Geometric,
    pending: EventQueue<StationId>,
    next_event: f64,
}

impl SensorSource {
    /// Creates a sensor source.
    ///
    /// # Panics
    /// Panics if there are no stations, the gap is zero, or
    /// `mean_reports < 1`.
    pub fn new(cfg: SensorConfig) -> Self {
        assert!(cfg.stations > 0);
        assert!(!cfg.mean_event_gap.is_zero());
        assert!(cfg.mean_reports >= 1.0);
        SensorSource {
            cfg,
            gap: Exponential::with_mean(cfg.mean_event_gap.as_f64()),
            reports: Geometric::with_mean(cfg.mean_reports),
            pending: EventQueue::new(),
            next_event: 0.0,
        }
    }

    fn generate_event(&mut self, rng: &mut Rng) {
        self.next_event += self.gap.sample(rng);
        let base = Time::from_ticks(self.next_event as u64);
        let n = self.reports.sample(rng).min(u64::from(self.cfg.stations)) as u32;
        // Choose n distinct stations by partial Fisher-Yates over indices.
        let mut chosen: Vec<u32> = Vec::with_capacity(n as usize);
        while chosen.len() < n as usize {
            let s = rng.below(u64::from(self.cfg.stations)) as u32;
            if !chosen.contains(&s) {
                chosen.push(s);
            }
        }
        for s in chosen {
            let jitter = if self.cfg.jitter.is_zero() {
                Dur::ZERO
            } else {
                Dur::from_ticks(rng.below(self.cfg.jitter.ticks() + 1))
            };
            self.pending.schedule(base + jitter, StationId(s));
        }
    }
}

impl ArrivalSource for SensorSource {
    fn next_arrival(&mut self, rng: &mut Rng) -> Option<Arrival> {
        // Generate events until a report is pending *and* no future event
        // could precede it (events are generated in time order, and reports
        // are jittered only forward, so one look-ahead event suffices).
        loop {
            match self.pending.peek_time() {
                Some(t) if t.ticks() as f64 <= self.next_event => break,
                _ => self.generate_event(rng),
            }
        }
        let (time, station) = self.pending.pop()?;
        Some(Arrival { time, station })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::collect_until;

    fn voice_cfg() -> VoiceConfig {
        VoiceConfig {
            stations: 10,
            mean_talkspurt: Dur::from_ticks(10_000),
            mean_silence: Dur::from_ticks(20_000),
            packet_interval: Dur::from_ticks(500),
        }
    }

    #[test]
    fn voice_activity_and_rate() {
        let cfg = voice_cfg();
        assert!((cfg.activity() - 1.0 / 3.0).abs() < 1e-12);
        let expect = (1.0 / 3.0) * 10.0 / 500.0;
        assert!((cfg.aggregate_rate() - expect).abs() < 1e-12);
    }

    #[test]
    fn voice_emits_near_nominal_rate() {
        let mut src = VoiceSource::new(voice_cfg());
        let mut rng = Rng::new(7);
        let horizon = Time::from_ticks(3_000_000);
        let arrivals = collect_until(&mut src, &mut rng, horizon, usize::MAX);
        let expect = voice_cfg().aggregate_rate() * 3_000_000.0;
        let n = arrivals.len() as f64;
        assert!(
            (n - expect).abs() / expect < 0.15,
            "n = {n}, expected ≈ {expect}"
        );
    }

    #[test]
    fn voice_times_monotone() {
        let mut src = VoiceSource::new(voice_cfg());
        let mut rng = Rng::new(8);
        let mut prev = Time::ZERO;
        for _ in 0..5_000 {
            let a = src.next_arrival(&mut rng).unwrap();
            assert!(a.time >= prev, "time went backwards");
            prev = a.time;
        }
    }

    #[test]
    fn voice_packets_spaced_by_interval_within_spurt() {
        let cfg = VoiceConfig {
            stations: 1,
            mean_talkspurt: Dur::from_ticks(100_000),
            mean_silence: Dur::from_ticks(1_000),
            packet_interval: Dur::from_ticks(250),
        };
        let mut src = VoiceSource::new(cfg);
        let mut rng = Rng::new(9);
        let mut prev: Option<Time> = None;
        let mut spaced = 0;
        let mut total = 0;
        for _ in 0..2_000 {
            let a = src.next_arrival(&mut rng).unwrap();
            if let Some(p) = prev {
                total += 1;
                if (a.time - p) == Dur::from_ticks(250) {
                    spaced += 1;
                }
            }
            prev = Some(a.time);
        }
        // Most consecutive gaps are exactly one packet interval (spurts are
        // long relative to silences here).
        assert!(spaced as f64 / total as f64 > 0.9);
    }

    fn sensor_cfg() -> SensorConfig {
        SensorConfig {
            stations: 20,
            mean_event_gap: Dur::from_ticks(5_000),
            mean_reports: 3.0,
            jitter: Dur::from_ticks(100),
        }
    }

    #[test]
    fn sensor_times_monotone() {
        let mut src = SensorSource::new(sensor_cfg());
        let mut rng = Rng::new(10);
        let mut prev = Time::ZERO;
        for _ in 0..5_000 {
            let a = src.next_arrival(&mut rng).unwrap();
            assert!(a.time >= prev);
            prev = a.time;
        }
    }

    #[test]
    fn sensor_rate_matches_event_rate_times_burst() {
        let mut src = SensorSource::new(sensor_cfg());
        let mut rng = Rng::new(11);
        let horizon = Time::from_ticks(10_000_000);
        let arrivals = collect_until(&mut src, &mut rng, horizon, usize::MAX);
        // events: 1e7/5e3 = 2000; reports/event ≈ 3 (slightly lower due to
        // the min(stations) clamp) => ≈ 6000
        let n = arrivals.len() as f64;
        assert!((5_000.0..7_000.0).contains(&n), "n = {n}");
    }

    #[test]
    fn sensor_bursts_are_clustered() {
        // With jitter 100 and event gap 5000, consecutive same-burst
        // arrivals are close together much more often than Poisson traffic
        // of the same rate would allow.
        let mut src = SensorSource::new(sensor_cfg());
        let mut rng = Rng::new(12);
        let mut close_gaps = 0;
        let mut total = 0;
        let mut prev: Option<Time> = None;
        for _ in 0..3_000 {
            let a = src.next_arrival(&mut rng).unwrap();
            if let Some(p) = prev {
                total += 1;
                if (a.time - p).ticks() <= 100 {
                    close_gaps += 1;
                }
            }
            prev = Some(a.time);
        }
        let frac = close_gaps as f64 / total as f64;
        assert!(frac > 0.4, "clustered fraction = {frac}");
    }
}
