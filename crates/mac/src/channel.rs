//! The slotted broadcast channel: configuration, slot outcomes and costs.

use crate::message::MessageId;
use tcw_sim::time::Dur;

/// Static parameters of the multiple-access channel.
///
/// Time is measured in kernel ticks; `ticks_per_tau` fixes the resolution
/// at which message arrival instants are distinguished. The paper's
/// evaluation uses fixed-length messages of `M` propagation delays
/// (`M ∈ {25, 100}` in Figure 7).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChannelConfig {
    /// Ticks in one end-to-end propagation delay `tau`.
    pub ticks_per_tau: u64,
    /// Fixed message transmission time in units of `tau` (the paper's `M`).
    pub message_slots: u64,
    /// Whether a successful transmission is followed by one extra `tau` of
    /// quiet time before the next protocol step (conservative detection of
    /// the transmission's end). The paper's analytic model omits it; the
    /// ablation harness exercises both settings.
    pub guard: bool,
}

impl ChannelConfig {
    /// A configuration with the given `M`, 64 ticks per `tau`, no guard.
    pub fn with_message_slots(m: u64) -> Self {
        ChannelConfig {
            ticks_per_tau: 64,
            message_slots: m,
            guard: false,
        }
    }

    /// One propagation delay as a duration.
    pub fn tau(&self) -> Dur {
        Dur::from_ticks(self.ticks_per_tau)
    }

    /// Duration of one message transmission (`M * tau`).
    pub fn message_duration(&self) -> Dur {
        Dur::from_ticks(self.ticks_per_tau * self.message_slots)
    }

    /// Converts a count of `tau` units into ticks.
    pub fn taus(&self, n: u64) -> Dur {
        Dur::from_ticks(self.ticks_per_tau * n)
    }

    /// Converts a duration into (fractional) units of `tau`.
    pub fn dur_in_taus(&self, d: Dur) -> f64 {
        d.as_f64() / self.ticks_per_tau as f64
    }
}

/// What all stations observe, `tau` after a protocol step began.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlotOutcome {
    /// No station transmitted.
    Idle,
    /// Exactly one station transmitted; its message is received intact.
    Success(MessageId),
    /// Two or more stations transmitted; all transmissions are destroyed.
    /// Carries the number of colliding transmissions (observable in
    /// simulation, not by real stations — stations only learn "collision").
    Collision(u32),
}

impl SlotOutcome {
    /// Whether this outcome is a successful transmission.
    pub fn is_success(&self) -> bool {
        matches!(self, SlotOutcome::Success(_))
    }
}

/// The physical medium: maps a set of simultaneous transmissions to an
/// outcome and the channel time it consumes.
#[derive(Clone, Copy, Debug)]
pub struct Medium {
    cfg: ChannelConfig,
}

impl Medium {
    /// Creates a medium with the given configuration.
    pub fn new(cfg: ChannelConfig) -> Self {
        Medium { cfg }
    }

    /// The channel configuration.
    pub fn config(&self) -> &ChannelConfig {
        &self.cfg
    }

    /// Resolves one protocol step in which `transmitters` stations begin
    /// transmitting (identified by the message each would send).
    ///
    /// Returns the outcome and the channel time consumed by the step:
    ///
    /// * idle probe — `tau` (silence is recognized after one propagation
    ///   delay);
    /// * collision — `tau` (all stations abort on detecting the collision);
    /// * success — `M * tau`, plus one guard `tau` if configured.
    pub fn probe(&self, transmitters: &[MessageId]) -> (SlotOutcome, Dur) {
        match transmitters.len() {
            0 => (SlotOutcome::Idle, self.cfg.tau()),
            1 => {
                let d = if self.cfg.guard {
                    self.cfg.message_duration() + self.cfg.tau()
                } else {
                    self.cfg.message_duration()
                };
                (SlotOutcome::Success(transmitters[0]), d)
            }
            n => (SlotOutcome::Collision(n as u32), self.cfg.tau()),
        }
    }
}

/// Aggregate channel-time accounting, split by how the time was spent.
///
/// `utilization()` is the fraction of channel time carrying successful
/// transmissions — the "useful work" the paper's Section 4.2 credits the
/// controlled protocol with maximizing.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChannelStats {
    /// Channel time spent idle (empty probes).
    pub idle: Dur,
    /// Channel time destroyed by collisions.
    pub collision: Dur,
    /// Channel time carrying successful transmissions.
    pub success: Dur,
    /// Channel time whose feedback was erased by an injected fault.
    pub erased: Dur,
    /// Channel time spent in quiet resynchronization backoff after a
    /// detected feedback fault.
    pub quiet: Dur,
    /// Count of idle probes.
    pub idle_slots: u64,
    /// Count of collision slots.
    pub collision_slots: u64,
    /// Count of successful transmissions.
    pub successes: u64,
    /// Count of erased slots.
    pub erased_slots: u64,
    /// Count of quiet backoff periods.
    pub quiet_periods: u64,
}

impl ChannelStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one resolved step.
    pub fn record(&mut self, outcome: &SlotOutcome, dur: Dur) {
        match outcome {
            SlotOutcome::Idle => {
                self.idle += dur;
                self.idle_slots += 1;
            }
            SlotOutcome::Collision(_) => {
                self.collision += dur;
                self.collision_slots += 1;
            }
            SlotOutcome::Success(_) => {
                self.success += dur;
                self.successes += 1;
            }
        }
    }

    /// Records a slot whose feedback was erased by an injected fault.
    pub fn record_erased(&mut self, dur: Dur) {
        self.erased += dur;
        self.erased_slots += 1;
    }

    /// Records quiet channel time spent backing off after a detected
    /// feedback fault.
    pub fn record_quiet(&mut self, dur: Dur) {
        self.quiet += dur;
        self.quiet_periods += 1;
    }

    /// Total accounted channel time.
    pub fn total(&self) -> Dur {
        self.idle + self.collision + self.success + self.erased + self.quiet
    }

    /// Fraction of channel time carrying successful transmissions.
    pub fn utilization(&self) -> f64 {
        let total = self.total().as_f64();
        if total == 0.0 {
            0.0
        } else {
            self.success.as_f64() / total
        }
    }

    /// Pushes the accumulated channel-time accounting into `sink` under
    /// stable `tcw_channel_*` names (counts, ticks per category, and the
    /// derived utilization gauge).
    pub fn emit(&self, sink: &mut dyn tcw_sim::stats::MetricSink) {
        sink.counter(
            "tcw_channel_idle_slots_total",
            "idle probe slots",
            self.idle_slots,
        );
        sink.counter(
            "tcw_channel_collision_slots_total",
            "collision slots",
            self.collision_slots,
        );
        sink.counter(
            "tcw_channel_successes_total",
            "successful transmissions",
            self.successes,
        );
        sink.counter(
            "tcw_channel_erased_slots_total",
            "slots with fault-erased feedback",
            self.erased_slots,
        );
        sink.counter(
            "tcw_channel_quiet_periods_total",
            "quiet resynchronization backoff periods",
            self.quiet_periods,
        );
        sink.counter(
            "tcw_channel_idle_ticks_total",
            "channel time spent idle (ticks)",
            self.idle.ticks(),
        );
        sink.counter(
            "tcw_channel_collision_ticks_total",
            "channel time destroyed by collisions (ticks)",
            self.collision.ticks(),
        );
        sink.counter(
            "tcw_channel_success_ticks_total",
            "channel time carrying successful transmissions (ticks)",
            self.success.ticks(),
        );
        sink.gauge(
            "tcw_channel_utilization",
            "fraction of channel time carrying successes",
            self.utilization(),
        );
    }

    /// Mean number of overhead (idle + collision) slots per success.
    pub fn overhead_slots_per_success(&self) -> f64 {
        if self.successes == 0 {
            0.0
        } else {
            (self.idle_slots + self.collision_slots) as f64 / self.successes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessageId;

    fn cfg() -> ChannelConfig {
        ChannelConfig {
            ticks_per_tau: 10,
            message_slots: 25,
            guard: false,
        }
    }

    #[test]
    fn durations_derive_from_config() {
        let c = cfg();
        assert_eq!(c.tau(), Dur::from_ticks(10));
        assert_eq!(c.message_duration(), Dur::from_ticks(250));
        assert_eq!(c.taus(3), Dur::from_ticks(30));
        assert_eq!(c.dur_in_taus(Dur::from_ticks(25)), 2.5);
    }

    #[test]
    fn probe_outcomes() {
        let m = Medium::new(cfg());
        let (o, d) = m.probe(&[]);
        assert_eq!(o, SlotOutcome::Idle);
        assert_eq!(d, Dur::from_ticks(10));

        let (o, d) = m.probe(&[MessageId(1)]);
        assert_eq!(o, SlotOutcome::Success(MessageId(1)));
        assert_eq!(d, Dur::from_ticks(250));

        let (o, d) = m.probe(&[MessageId(1), MessageId(2), MessageId(3)]);
        assert_eq!(o, SlotOutcome::Collision(3));
        assert_eq!(d, Dur::from_ticks(10));
    }

    #[test]
    fn guard_extends_success() {
        let mut c = cfg();
        c.guard = true;
        let m = Medium::new(c);
        let (_, d) = m.probe(&[MessageId(1)]);
        assert_eq!(d, Dur::from_ticks(260));
        // guard does not affect probes
        let (_, d) = m.probe(&[]);
        assert_eq!(d, Dur::from_ticks(10));
    }

    #[test]
    fn stats_accumulate_and_utilization() {
        let m = Medium::new(cfg());
        let mut s = ChannelStats::new();
        for step in [
            m.probe(&[]),
            m.probe(&[MessageId(1), MessageId(2)]),
            m.probe(&[MessageId(1)]),
        ] {
            s.record(&step.0, step.1);
        }
        assert_eq!(s.idle_slots, 1);
        assert_eq!(s.collision_slots, 1);
        assert_eq!(s.successes, 1);
        assert_eq!(s.total(), Dur::from_ticks(270));
        assert!((s.utilization() - 250.0 / 270.0).abs() < 1e-12);
        assert_eq!(s.overhead_slots_per_success(), 2.0);
    }

    #[test]
    fn erased_and_quiet_time_counts_toward_total() {
        let mut s = ChannelStats::new();
        s.record(&SlotOutcome::Success(MessageId(1)), Dur::from_ticks(250));
        s.record_erased(Dur::from_ticks(10));
        s.record_quiet(Dur::from_ticks(40));
        assert_eq!(s.erased_slots, 1);
        assert_eq!(s.quiet_periods, 1);
        assert_eq!(s.total(), Dur::from_ticks(300));
        assert!((s.utilization() - 250.0 / 300.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = ChannelStats::new();
        assert_eq!(s.utilization(), 0.0);
        assert_eq!(s.overhead_slots_per_success(), 0.0);
    }
}
