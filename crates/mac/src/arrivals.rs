//! Arrival processes: streams of message arrivals at stations.

use crate::message::StationId;
use tcw_sim::rng::Rng;
use tcw_sim::snap::SnapError;
use tcw_sim::time::{Dur, Time};

/// One message arrival: when, and at which station.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Arrival {
    /// Arrival instant.
    pub time: Time,
    /// The receiving (sending-side) station.
    pub station: StationId,
}

/// A stream of arrivals with non-decreasing times.
///
/// Implementations must return times that never decrease across calls;
/// `None` means the source is exhausted (infinite sources never return it).
pub trait ArrivalSource {
    /// Produces the next arrival, or `None` when the source is exhausted.
    fn next_arrival(&mut self, rng: &mut Rng) -> Option<Arrival>;

    /// Captures the source's mutable cursor for an engine checkpoint, or
    /// `None` when the source kind does not support checkpointing (the
    /// engine then refuses to snapshot rather than silently skewing the
    /// arrival stream on restore). Configuration — rates, schedules, trace
    /// contents — is *not* captured: a restore target must be built from
    /// the same configuration.
    fn save_cursor(&self) -> Option<Vec<u64>> {
        None
    }

    /// Restores a cursor captured by [`ArrivalSource::save_cursor`] on a
    /// source built from the same configuration.
    fn load_cursor(&mut self, _words: &[u64]) -> Result<(), SnapError> {
        Err(SnapError::new(
            "arrival source does not support checkpointing",
        ))
    }
}

/// Aggregate Poisson arrivals at rate `lambda` (messages per tick),
/// assigned to one of `stations` uniformly at random — the paper's traffic
/// model ("the probability of more than one message arrival anywhere in the
/// network in `Delta` is zero" holds in the limit of fine ticks).
#[derive(Clone, Debug)]
pub struct PoissonArrivals {
    rate_per_tick: f64,
    stations: u32,
    /// Continuous-time position, kept in f64 ticks to avoid accumulating
    /// rounding bias when quantizing to the tick lattice.
    clock: f64,
}

impl PoissonArrivals {
    /// Creates a source with `rate_per_tick` expected arrivals per tick
    /// spread over `stations` stations.
    ///
    /// # Panics
    /// Panics if the rate is not positive-finite or `stations == 0`.
    pub fn new(rate_per_tick: f64, stations: u32) -> Self {
        assert!(rate_per_tick > 0.0 && rate_per_tick.is_finite());
        assert!(stations > 0);
        PoissonArrivals {
            rate_per_tick,
            stations,
            clock: 0.0,
        }
    }

    /// Creates a source with `rate_per_tau` expected arrivals per
    /// propagation delay, given the channel tick resolution.
    pub fn per_tau(rate_per_tau: f64, ticks_per_tau: u64, stations: u32) -> Self {
        Self::new(rate_per_tau / ticks_per_tau as f64, stations)
    }

    /// The aggregate arrival rate in messages per tick.
    pub fn rate_per_tick(&self) -> f64 {
        self.rate_per_tick
    }
}

impl ArrivalSource for PoissonArrivals {
    fn next_arrival(&mut self, rng: &mut Rng) -> Option<Arrival> {
        let gap = -rng.f64_open_left().ln() / self.rate_per_tick;
        self.clock += gap;
        let station = StationId(rng.below(u64::from(self.stations)) as u32);
        Some(Arrival {
            time: Time::from_ticks(self.clock as u64),
            station,
        })
    }

    fn save_cursor(&self) -> Option<Vec<u64>> {
        Some(vec![self.clock.to_bits()])
    }

    fn load_cursor(&mut self, words: &[u64]) -> Result<(), SnapError> {
        match words {
            [clock] => {
                self.clock = f64::from_bits(*clock);
                Ok(())
            }
            _ => Err(SnapError::new("malformed Poisson cursor")),
        }
    }
}

/// A rate change of a piecewise-constant arrival schedule: from `start`
/// onward, arrivals occur at `rate_per_tick`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RateStep {
    /// Instant the rate takes effect.
    pub start: Time,
    /// Aggregate arrival rate from `start` (messages per tick).
    pub rate_per_tick: f64,
}

/// Non-stationary Poisson arrivals with a piecewise-constant rate —
/// load steps and flash crowds, the workloads an offline-tuned window
/// length cannot anticipate.
///
/// Sampling uses time rescaling: one unit-exponential draw is spent
/// across segments at each segment's rate, then one uniform draw picks
/// the station. That is **exactly the draw pattern of
/// [`PoissonArrivals`]** (one `f64` + one `below` per arrival), so a
/// single-segment schedule is bit-identical to the stationary source on
/// the same RNG stream — `none()`-style plans stay bit-identical.
#[derive(Clone, Debug)]
pub struct PiecewiseArrivals {
    steps: Vec<RateStep>,
    stations: u32,
    /// Continuous-time position in f64 ticks (see [`PoissonArrivals`]).
    clock: f64,
    /// Index of the segment containing `clock`.
    seg: usize,
}

impl PiecewiseArrivals {
    /// Creates a source from a rate schedule.
    ///
    /// # Panics
    /// Panics if the schedule is empty, does not start at time zero, has
    /// non-increasing step instants, or any rate is not positive-finite;
    /// or if `stations == 0`.
    pub fn new(steps: Vec<RateStep>, stations: u32) -> Self {
        assert!(!steps.is_empty(), "empty rate schedule");
        assert_eq!(steps[0].start, Time::ZERO, "schedule must start at 0");
        assert!(stations > 0);
        for w in steps.windows(2) {
            assert!(w[0].start < w[1].start, "step instants must increase");
        }
        for s in &steps {
            assert!(
                s.rate_per_tick > 0.0 && s.rate_per_tick.is_finite(),
                "rates must be positive-finite"
            );
        }
        PiecewiseArrivals {
            steps,
            stations,
            clock: 0.0,
            seg: 0,
        }
    }

    /// A single-rate schedule — bit-identical to
    /// [`PoissonArrivals::new`] on the same stream.
    pub fn constant(rate_per_tick: f64, stations: u32) -> Self {
        Self::new(
            vec![RateStep {
                start: Time::ZERO,
                rate_per_tick,
            }],
            stations,
        )
    }

    /// A one-shot load step: rate `before` until `at`, then `after`.
    pub fn load_step(before: f64, after: f64, at: Time, stations: u32) -> Self {
        Self::new(
            vec![
                RateStep {
                    start: Time::ZERO,
                    rate_per_tick: before,
                },
                RateStep {
                    start: at,
                    rate_per_tick: after,
                },
            ],
            stations,
        )
    }

    /// Flash crowds: `base` rate, multiplied by `surge` for each
    /// `(start, duration)` burst (bursts must be disjoint and in order).
    pub fn flash_crowd(base: f64, surge: f64, bursts: &[(Time, Dur)], stations: u32) -> Self {
        assert!(surge > 0.0 && surge.is_finite());
        let mut steps = vec![RateStep {
            start: Time::ZERO,
            rate_per_tick: base,
        }];
        for &(start, dur) in bursts {
            assert!(!dur.is_zero(), "zero-length burst");
            if start == Time::ZERO {
                steps[0].rate_per_tick = base * surge;
            } else {
                steps.push(RateStep {
                    start,
                    rate_per_tick: base * surge,
                });
            }
            steps.push(RateStep {
                start: start + dur,
                rate_per_tick: base,
            });
        }
        Self::new(steps, stations)
    }

    /// The configured rate at `time` (messages per tick).
    pub fn rate_at(&self, time: Time) -> f64 {
        self.steps
            .iter()
            .rev()
            .find(|s| s.start <= time)
            .expect("schedule starts at 0")
            .rate_per_tick
    }

    /// The rate schedule.
    pub fn steps(&self) -> &[RateStep] {
        &self.steps
    }

    /// Long-run mean rate up to `horizon` (messages per tick).
    pub fn mean_rate_until(&self, horizon: Time) -> f64 {
        let h = horizon.ticks() as f64;
        let mut mass = 0.0;
        for (i, s) in self.steps.iter().enumerate() {
            let lo = (s.start.ticks() as f64).min(h);
            let hi = self
                .steps
                .get(i + 1)
                .map(|n| (n.start.ticks() as f64).min(h))
                .unwrap_or(h);
            mass += (hi - lo) * s.rate_per_tick;
        }
        mass / h
    }
}

impl ArrivalSource for PiecewiseArrivals {
    fn next_arrival(&mut self, rng: &mut Rng) -> Option<Arrival> {
        // One unit-exponential draw, rescaled through the schedule.
        let mut e = -rng.f64_open_left().ln();
        loop {
            let rate = self.steps[self.seg].rate_per_tick;
            match self.steps.get(self.seg + 1) {
                Some(next) => {
                    let boundary = next.start.ticks() as f64;
                    let capacity = (boundary - self.clock) * rate;
                    if e < capacity {
                        self.clock += e / rate;
                        break;
                    }
                    e -= capacity;
                    self.clock = boundary;
                    self.seg += 1;
                }
                None => {
                    self.clock += e / rate;
                    break;
                }
            }
        }
        let station = StationId(rng.below(u64::from(self.stations)) as u32);
        Some(Arrival {
            time: Time::from_ticks(self.clock as u64),
            station,
        })
    }

    fn save_cursor(&self) -> Option<Vec<u64>> {
        Some(vec![self.clock.to_bits(), self.seg as u64])
    }

    fn load_cursor(&mut self, words: &[u64]) -> Result<(), SnapError> {
        match words {
            [clock, seg] => {
                let seg = usize::try_from(*seg)
                    .ok()
                    .filter(|&s| s < self.steps.len())
                    .ok_or_else(|| SnapError::new("piecewise cursor segment out of range"))?;
                self.clock = f64::from_bits(*clock);
                self.seg = seg;
                Ok(())
            }
            _ => Err(SnapError::new("malformed piecewise cursor")),
        }
    }
}

/// A deterministic, finite arrival trace — used for unit tests and for the
/// Figure 1 walk-through example where arrival instants are hand-placed.
#[derive(Clone, Debug)]
pub struct TraceArrivals {
    arrivals: Vec<Arrival>,
    next: usize,
}

impl TraceArrivals {
    /// Creates a trace from `(time, station)` pairs; they are sorted by
    /// time (stable).
    pub fn new(mut arrivals: Vec<Arrival>) -> Self {
        arrivals.sort_by_key(|a| a.time);
        TraceArrivals { arrivals, next: 0 }
    }

    /// Convenience constructor from `(ticks, station_index)` pairs.
    pub fn from_ticks(pairs: &[(u64, u32)]) -> Self {
        Self::new(
            pairs
                .iter()
                .map(|&(t, s)| Arrival {
                    time: Time::from_ticks(t),
                    station: StationId(s),
                })
                .collect(),
        )
    }

    /// Number of arrivals remaining.
    pub fn remaining(&self) -> usize {
        self.arrivals.len() - self.next
    }
}

impl ArrivalSource for TraceArrivals {
    fn next_arrival(&mut self, _rng: &mut Rng) -> Option<Arrival> {
        let a = self.arrivals.get(self.next).copied();
        if a.is_some() {
            self.next += 1;
        }
        a
    }

    fn save_cursor(&self) -> Option<Vec<u64>> {
        Some(vec![self.next as u64])
    }

    fn load_cursor(&mut self, words: &[u64]) -> Result<(), SnapError> {
        match words {
            [next] => {
                self.next = usize::try_from(*next)
                    .ok()
                    .filter(|&n| n <= self.arrivals.len())
                    .ok_or_else(|| SnapError::new("trace cursor out of range"))?;
                Ok(())
            }
            _ => Err(SnapError::new("malformed trace cursor")),
        }
    }
}

/// Merges several sources into one time-ordered stream.
///
/// Each inner source is buffered one arrival deep; the earliest buffered
/// arrival is emitted next, so the merged stream is monotone as long as the
/// inner streams are.
pub struct MergedSource {
    sources: Vec<(Box<dyn ArrivalSource>, Option<Arrival>)>,
    primed: bool,
}

impl MergedSource {
    /// Creates a merged source over the given inner sources.
    pub fn new(sources: Vec<Box<dyn ArrivalSource>>) -> Self {
        MergedSource {
            sources: sources.into_iter().map(|s| (s, None)).collect(),
            primed: false,
        }
    }
}

impl ArrivalSource for MergedSource {
    fn next_arrival(&mut self, rng: &mut Rng) -> Option<Arrival> {
        if !self.primed {
            for (src, buf) in &mut self.sources {
                *buf = src.next_arrival(rng);
            }
            self.primed = true;
        }
        // Pick the earliest buffered arrival.
        let idx = self
            .sources
            .iter()
            .enumerate()
            .filter_map(|(i, (_, buf))| buf.map(|a| (i, a.time)))
            .min_by_key(|&(_, t)| t)
            .map(|(i, _)| i)?;
        let out = self.sources[idx].1.take();
        self.sources[idx].1 = self.sources[idx].0.next_arrival(rng);
        out
    }
}

/// Drains up to `max` arrivals before `horizon` into a vector (testing and
/// batch-analysis helper).
pub fn collect_until(
    src: &mut dyn ArrivalSource,
    rng: &mut Rng,
    horizon: Time,
    max: usize,
) -> Vec<Arrival> {
    let mut out = Vec::new();
    while out.len() < max {
        match src.next_arrival(rng) {
            Some(a) if a.time <= horizon => out.push(a),
            _ => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_rate_matches() {
        let mut src = PoissonArrivals::per_tau(0.01, 100, 50);
        let mut rng = Rng::new(1);
        let horizon = Time::from_ticks(10_000_000);
        let arrivals = collect_until(&mut src, &mut rng, horizon, usize::MAX);
        // expected 0.01 per tau = 1e-4/tick * 1e7 ticks = 1000
        let n = arrivals.len() as f64;
        assert!((n - 1000.0).abs() < 120.0, "n = {n}");
    }

    #[test]
    fn poisson_times_monotone() {
        let mut src = PoissonArrivals::new(0.1, 4);
        let mut rng = Rng::new(2);
        let mut prev = Time::ZERO;
        for _ in 0..10_000 {
            let a = src.next_arrival(&mut rng).unwrap();
            assert!(a.time >= prev);
            prev = a.time;
        }
    }

    #[test]
    fn poisson_stations_covered() {
        let mut src = PoissonArrivals::new(0.5, 3);
        let mut rng = Rng::new(3);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            let a = src.next_arrival(&mut rng).unwrap();
            seen[a.station.0 as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn poisson_interarrival_cv_near_one() {
        // Exponential gaps: coefficient of variation 1.
        let mut src = PoissonArrivals::new(0.05, 1);
        let mut rng = Rng::new(4);
        let mut prev = 0.0;
        let mut tally = tcw_sim::stats::Tally::new();
        for _ in 0..50_000 {
            let a = src.next_arrival(&mut rng).unwrap();
            let t = a.time.ticks() as f64;
            tally.record(t - prev);
            prev = t;
        }
        let cv = tally.std_dev() / tally.mean();
        assert!((cv - 1.0).abs() < 0.05, "cv = {cv}");
    }

    #[test]
    fn piecewise_single_segment_is_bit_identical_to_poisson() {
        let mut poisson = PoissonArrivals::new(0.02, 7);
        let mut piece = PiecewiseArrivals::constant(0.02, 7);
        let mut rng_a = Rng::new(99);
        let mut rng_b = Rng::new(99);
        for _ in 0..5_000 {
            assert_eq!(
                poisson.next_arrival(&mut rng_a),
                piece.next_arrival(&mut rng_b)
            );
        }
    }

    #[test]
    fn piecewise_rate_steps_take_effect() {
        let at = Time::from_ticks(100_000);
        let mut src = PiecewiseArrivals::load_step(0.001, 0.01, at, 5);
        assert_eq!(src.rate_at(Time::from_ticks(0)), 0.001);
        assert_eq!(src.rate_at(at), 0.01);
        let mut rng = Rng::new(5);
        let (mut before, mut after) = (0u64, 0u64);
        loop {
            let a = src.next_arrival(&mut rng).unwrap();
            if a.time.ticks() >= 200_000 {
                break;
            }
            if a.time < at {
                before += 1;
            } else {
                after += 1;
            }
        }
        // Expect ~100 before, ~1000 after.
        assert!((before as f64 - 100.0).abs() < 50.0, "before = {before}");
        assert!((after as f64 - 1000.0).abs() < 150.0, "after = {after}");
    }

    #[test]
    fn piecewise_times_monotone_across_many_steps() {
        let steps: Vec<RateStep> = (0..20)
            .map(|i| RateStep {
                start: Time::from_ticks(i * 1_000),
                rate_per_tick: if i % 2 == 0 { 0.001 } else { 0.05 },
            })
            .collect();
        let mut src = PiecewiseArrivals::new(steps, 3);
        let mut rng = Rng::new(8);
        let mut prev = Time::ZERO;
        for _ in 0..5_000 {
            let a = src.next_arrival(&mut rng).unwrap();
            assert!(a.time >= prev);
            prev = a.time;
        }
    }

    #[test]
    fn flash_crowd_surges_during_bursts() {
        let bursts = [(Time::from_ticks(50_000), Dur::from_ticks(10_000))];
        let src = PiecewiseArrivals::flash_crowd(0.001, 10.0, &bursts, 4);
        assert_eq!(src.rate_at(Time::from_ticks(0)), 0.001);
        assert_eq!(src.rate_at(Time::from_ticks(55_000)), 0.01);
        assert_eq!(src.rate_at(Time::from_ticks(60_000)), 0.001);
        let mean = src.mean_rate_until(Time::from_ticks(100_000));
        let expect = (90_000.0 * 0.001 + 10_000.0 * 0.01) / 100_000.0;
        assert!((mean - expect).abs() < 1e-12, "{mean} vs {expect}");
    }

    #[test]
    fn piecewise_rejects_bad_schedules() {
        use std::panic::catch_unwind;
        assert!(catch_unwind(|| PiecewiseArrivals::new(vec![], 3)).is_err());
        assert!(catch_unwind(|| PiecewiseArrivals::new(
            vec![RateStep {
                start: Time::from_ticks(5),
                rate_per_tick: 0.1,
            }],
            3
        ))
        .is_err());
        assert!(catch_unwind(|| PiecewiseArrivals::constant(0.0, 3)).is_err());
        assert!(catch_unwind(|| PiecewiseArrivals::constant(0.1, 0)).is_err());
    }

    #[test]
    fn trace_sorted_and_exhausts() {
        let mut src = TraceArrivals::from_ticks(&[(30, 1), (10, 0), (20, 2)]);
        let mut rng = Rng::new(0);
        assert_eq!(src.remaining(), 3);
        let a = src.next_arrival(&mut rng).unwrap();
        assert_eq!((a.time.ticks(), a.station.0), (10, 0));
        let a = src.next_arrival(&mut rng).unwrap();
        assert_eq!(a.time.ticks(), 20);
        let a = src.next_arrival(&mut rng).unwrap();
        assert_eq!(a.time.ticks(), 30);
        assert_eq!(src.next_arrival(&mut rng), None);
        assert_eq!(src.remaining(), 0);
    }

    #[test]
    fn merged_interleaves_in_time_order() {
        let a = TraceArrivals::from_ticks(&[(1, 0), (5, 0), (9, 0)]);
        let b = TraceArrivals::from_ticks(&[(2, 1), (3, 1), (8, 1)]);
        let mut m = MergedSource::new(vec![Box::new(a), Box::new(b)]);
        let mut rng = Rng::new(0);
        let mut times = Vec::new();
        while let Some(x) = m.next_arrival(&mut rng) {
            times.push(x.time.ticks());
        }
        assert_eq!(times, vec![1, 2, 3, 5, 8, 9]);
    }

    #[test]
    fn merged_empty_sources() {
        let mut m = MergedSource::new(vec![]);
        let mut rng = Rng::new(0);
        assert_eq!(m.next_arrival(&mut rng), None);
    }
}
