//! Arrival processes: streams of message arrivals at stations.

use crate::message::StationId;
use tcw_sim::rng::Rng;
use tcw_sim::time::Time;

/// One message arrival: when, and at which station.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Arrival {
    /// Arrival instant.
    pub time: Time,
    /// The receiving (sending-side) station.
    pub station: StationId,
}

/// A stream of arrivals with non-decreasing times.
///
/// Implementations must return times that never decrease across calls;
/// `None` means the source is exhausted (infinite sources never return it).
pub trait ArrivalSource {
    /// Produces the next arrival, or `None` when the source is exhausted.
    fn next_arrival(&mut self, rng: &mut Rng) -> Option<Arrival>;
}

/// Aggregate Poisson arrivals at rate `lambda` (messages per tick),
/// assigned to one of `stations` uniformly at random — the paper's traffic
/// model ("the probability of more than one message arrival anywhere in the
/// network in `Delta` is zero" holds in the limit of fine ticks).
#[derive(Clone, Debug)]
pub struct PoissonArrivals {
    rate_per_tick: f64,
    stations: u32,
    /// Continuous-time position, kept in f64 ticks to avoid accumulating
    /// rounding bias when quantizing to the tick lattice.
    clock: f64,
}

impl PoissonArrivals {
    /// Creates a source with `rate_per_tick` expected arrivals per tick
    /// spread over `stations` stations.
    ///
    /// # Panics
    /// Panics if the rate is not positive-finite or `stations == 0`.
    pub fn new(rate_per_tick: f64, stations: u32) -> Self {
        assert!(rate_per_tick > 0.0 && rate_per_tick.is_finite());
        assert!(stations > 0);
        PoissonArrivals {
            rate_per_tick,
            stations,
            clock: 0.0,
        }
    }

    /// Creates a source with `rate_per_tau` expected arrivals per
    /// propagation delay, given the channel tick resolution.
    pub fn per_tau(rate_per_tau: f64, ticks_per_tau: u64, stations: u32) -> Self {
        Self::new(rate_per_tau / ticks_per_tau as f64, stations)
    }

    /// The aggregate arrival rate in messages per tick.
    pub fn rate_per_tick(&self) -> f64 {
        self.rate_per_tick
    }
}

impl ArrivalSource for PoissonArrivals {
    fn next_arrival(&mut self, rng: &mut Rng) -> Option<Arrival> {
        let gap = -rng.f64_open_left().ln() / self.rate_per_tick;
        self.clock += gap;
        let station = StationId(rng.below(u64::from(self.stations)) as u32);
        Some(Arrival {
            time: Time::from_ticks(self.clock as u64),
            station,
        })
    }
}

/// A deterministic, finite arrival trace — used for unit tests and for the
/// Figure 1 walk-through example where arrival instants are hand-placed.
#[derive(Clone, Debug)]
pub struct TraceArrivals {
    arrivals: Vec<Arrival>,
    next: usize,
}

impl TraceArrivals {
    /// Creates a trace from `(time, station)` pairs; they are sorted by
    /// time (stable).
    pub fn new(mut arrivals: Vec<Arrival>) -> Self {
        arrivals.sort_by_key(|a| a.time);
        TraceArrivals { arrivals, next: 0 }
    }

    /// Convenience constructor from `(ticks, station_index)` pairs.
    pub fn from_ticks(pairs: &[(u64, u32)]) -> Self {
        Self::new(
            pairs
                .iter()
                .map(|&(t, s)| Arrival {
                    time: Time::from_ticks(t),
                    station: StationId(s),
                })
                .collect(),
        )
    }

    /// Number of arrivals remaining.
    pub fn remaining(&self) -> usize {
        self.arrivals.len() - self.next
    }
}

impl ArrivalSource for TraceArrivals {
    fn next_arrival(&mut self, _rng: &mut Rng) -> Option<Arrival> {
        let a = self.arrivals.get(self.next).copied();
        if a.is_some() {
            self.next += 1;
        }
        a
    }
}

/// Merges several sources into one time-ordered stream.
///
/// Each inner source is buffered one arrival deep; the earliest buffered
/// arrival is emitted next, so the merged stream is monotone as long as the
/// inner streams are.
pub struct MergedSource {
    sources: Vec<(Box<dyn ArrivalSource>, Option<Arrival>)>,
    primed: bool,
}

impl MergedSource {
    /// Creates a merged source over the given inner sources.
    pub fn new(sources: Vec<Box<dyn ArrivalSource>>) -> Self {
        MergedSource {
            sources: sources.into_iter().map(|s| (s, None)).collect(),
            primed: false,
        }
    }
}

impl ArrivalSource for MergedSource {
    fn next_arrival(&mut self, rng: &mut Rng) -> Option<Arrival> {
        if !self.primed {
            for (src, buf) in &mut self.sources {
                *buf = src.next_arrival(rng);
            }
            self.primed = true;
        }
        // Pick the earliest buffered arrival.
        let idx = self
            .sources
            .iter()
            .enumerate()
            .filter_map(|(i, (_, buf))| buf.map(|a| (i, a.time)))
            .min_by_key(|&(_, t)| t)
            .map(|(i, _)| i)?;
        let out = self.sources[idx].1.take();
        self.sources[idx].1 = self.sources[idx].0.next_arrival(rng);
        out
    }
}

/// Drains up to `max` arrivals before `horizon` into a vector (testing and
/// batch-analysis helper).
pub fn collect_until(
    src: &mut dyn ArrivalSource,
    rng: &mut Rng,
    horizon: Time,
    max: usize,
) -> Vec<Arrival> {
    let mut out = Vec::new();
    while out.len() < max {
        match src.next_arrival(rng) {
            Some(a) if a.time <= horizon => out.push(a),
            _ => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_rate_matches() {
        let mut src = PoissonArrivals::per_tau(0.01, 100, 50);
        let mut rng = Rng::new(1);
        let horizon = Time::from_ticks(10_000_000);
        let arrivals = collect_until(&mut src, &mut rng, horizon, usize::MAX);
        // expected 0.01 per tau = 1e-4/tick * 1e7 ticks = 1000
        let n = arrivals.len() as f64;
        assert!((n - 1000.0).abs() < 120.0, "n = {n}");
    }

    #[test]
    fn poisson_times_monotone() {
        let mut src = PoissonArrivals::new(0.1, 4);
        let mut rng = Rng::new(2);
        let mut prev = Time::ZERO;
        for _ in 0..10_000 {
            let a = src.next_arrival(&mut rng).unwrap();
            assert!(a.time >= prev);
            prev = a.time;
        }
    }

    #[test]
    fn poisson_stations_covered() {
        let mut src = PoissonArrivals::new(0.5, 3);
        let mut rng = Rng::new(3);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            let a = src.next_arrival(&mut rng).unwrap();
            seen[a.station.0 as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn poisson_interarrival_cv_near_one() {
        // Exponential gaps: coefficient of variation 1.
        let mut src = PoissonArrivals::new(0.05, 1);
        let mut rng = Rng::new(4);
        let mut prev = 0.0;
        let mut tally = tcw_sim::stats::Tally::new();
        for _ in 0..50_000 {
            let a = src.next_arrival(&mut rng).unwrap();
            let t = a.time.ticks() as f64;
            tally.record(t - prev);
            prev = t;
        }
        let cv = tally.std_dev() / tally.mean();
        assert!((cv - 1.0).abs() < 0.05, "cv = {cv}");
    }

    #[test]
    fn trace_sorted_and_exhausts() {
        let mut src = TraceArrivals::from_ticks(&[(30, 1), (10, 0), (20, 2)]);
        let mut rng = Rng::new(0);
        assert_eq!(src.remaining(), 3);
        let a = src.next_arrival(&mut rng).unwrap();
        assert_eq!((a.time.ticks(), a.station.0), (10, 0));
        let a = src.next_arrival(&mut rng).unwrap();
        assert_eq!(a.time.ticks(), 20);
        let a = src.next_arrival(&mut rng).unwrap();
        assert_eq!(a.time.ticks(), 30);
        assert_eq!(src.next_arrival(&mut rng), None);
        assert_eq!(src.remaining(), 0);
    }

    #[test]
    fn merged_interleaves_in_time_order() {
        let a = TraceArrivals::from_ticks(&[(1, 0), (5, 0), (9, 0)]);
        let b = TraceArrivals::from_ticks(&[(2, 1), (3, 1), (8, 1)]);
        let mut m = MergedSource::new(vec![Box::new(a), Box::new(b)]);
        let mut rng = Rng::new(0);
        let mut times = Vec::new();
        while let Some(x) = m.next_arrival(&mut rng) {
            times.push(x.time.ticks());
        }
        assert_eq!(times, vec![1, 2, 3, 5, 8, 9]);
    }

    #[test]
    fn merged_empty_sources() {
        let mut m = MergedSource::new(vec![]);
        let mut rng = Rng::new(0);
        assert_eq!(m.next_arrival(&mut rng), None);
    }
}
