//! # tcw-mac — multiple-access broadcast channel substrate
//!
//! Models the physical environment the 1983 paper assumes: a population of
//! stations sharing a single slotted broadcast channel with end-to-end
//! propagation delay `tau`. Every protocol step costs `tau` (the time for
//! all stations to learn whether a slot was idle, a success, or a
//! collision); a successful transmission occupies the channel for `M * tau`
//! (the fixed message length of the paper's evaluation).
//!
//! The crate deliberately knows nothing about *which* stations transmit —
//! that is the protocol's job (`tcw-window`). It provides:
//!
//! * [`message`] — messages, stations, identifiers;
//! * [`channel`] — channel configuration, slot outcomes and costs
//!   ([`channel::Medium::probe`]), utilization accounting;
//! * [`fault`] — deterministic fault injection: a [`fault::FaultyMedium`]
//!   wrapper corrupting the ternary feedback per a [`fault::FaultPlan`]
//!   (misdetections, erasures, per-station deafness parameters);
//! * [`churn`] — dynamic station membership: a [`churn::ChurnPlan`]
//!   drives crash/restart, late-join and scheduled-leave transitions
//!   through a deterministic [`churn::ChurnProcess`];
//! * [`arrivals`] — arrival processes: aggregate Poisson, non-stationary
//!   piecewise-rate schedules (load steps, flash crowds), deterministic
//!   traces (for reproducing the paper's Figure 1 walk-through), and
//!   merged/composite sources;
//! * [`adversary`] — bounded-burst adversarial injection under a
//!   `(rho, sigma)` leaky-bucket envelope (the restrained-channel model);
//! * [`traffic`] — time-constrained application workloads motivating the
//!   paper: packetized voice (on/off talkspurts) and distributed-sensor
//!   event bursts.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adversary;
pub mod arrivals;
pub mod channel;
pub mod churn;
pub mod fault;
pub mod message;
pub mod traffic;

pub use adversary::{AdversarialInjector, AdversaryPlan};
pub use arrivals::{
    Arrival, ArrivalSource, MergedSource, PiecewiseArrivals, PoissonArrivals, RateStep,
    TraceArrivals,
};
pub use channel::{ChannelConfig, ChannelStats, Medium, SlotOutcome};
pub use churn::{ChurnEvent, ChurnPlan, ChurnProcess};
pub use fault::{FaultKind, FaultPlan, FaultyMedium, Feedback, ProbeReport};
pub use message::{Message, MessageId, StationId};
