//! Bounded-burst adversarial traffic injection (the restrained-channel
//! model).
//!
//! The adversarial contention-resolution literature (see PAPERS.md,
//! *"Contention resolution on a restrained channel"*) constrains the
//! adversary by a leaky-bucket envelope: in any interval of length `T`
//! it may inject at most `sigma + rho * T` messages. Within that budget
//! the worst case for a windowing protocol is the greedy schedule —
//! release the full burst `sigma` the moment the bucket fills, forcing
//! a maximal same-instant collision cluster, then wait `sigma / rho`
//! ticks for the next one. [`AdversarialInjector`] implements exactly
//! that schedule; only station assignment is random, so the injector
//! draws nothing from the RNG stream when the plan is
//! [`AdversaryPlan::none`] and any co-merged sources stay bit-identical.

use crate::arrivals::{Arrival, ArrivalSource};
use crate::message::StationId;
use tcw_sim::rng::Rng;
use tcw_sim::time::Time;

/// The (rho, sigma) injection envelope plus the attack phase.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdversaryPlan {
    /// `rho`: long-run injection rate in messages per tick.
    pub rate: f64,
    /// `sigma`: messages released per burst (the same-instant cluster
    /// size the protocol must resolve).
    pub burst: u32,
    /// Instant of the first burst.
    pub start: Time,
    /// Stations the injected messages claim to originate from, drawn
    /// uniformly per message.
    pub stations: u32,
}

impl AdversaryPlan {
    /// The disabled adversary: injects nothing, draws nothing.
    pub fn none() -> Self {
        AdversaryPlan {
            rate: 0.0,
            burst: 0,
            start: Time::ZERO,
            stations: 1,
        }
    }

    /// Whether this plan injects nothing.
    pub fn is_none(&self) -> bool {
        self.rate == 0.0 || self.burst == 0
    }

    /// # Panics
    /// Panics if an active plan has a non-finite or negative rate, or no
    /// stations.
    pub fn check(&self) {
        assert!(self.rate >= 0.0 && self.rate.is_finite(), "rate >= 0");
        assert!(self.stations > 0, "stations > 0");
    }
}

/// Greedy bounded-burst injector: bursts of `sigma` same-instant
/// messages every `sigma / rho` ticks from `start` — the tightest
/// schedule the `(rho, sigma)` envelope admits.
#[derive(Clone, Debug)]
pub struct AdversarialInjector {
    plan: AdversaryPlan,
    /// Instant of the burst currently being emitted.
    burst_time: f64,
    /// Messages left in the current burst.
    remaining: u32,
    /// Whether the first burst has been scheduled.
    started: bool,
}

impl AdversarialInjector {
    /// Creates the injector.
    ///
    /// # Panics
    /// Panics on an invalid plan (see [`AdversaryPlan::check`]).
    pub fn new(plan: AdversaryPlan) -> Self {
        plan.check();
        AdversarialInjector {
            plan,
            burst_time: plan.start.ticks() as f64,
            remaining: 0,
            started: false,
        }
    }

    /// The active plan.
    pub fn plan(&self) -> &AdversaryPlan {
        &self.plan
    }

    /// Ticks between consecutive bursts (`sigma / rho`).
    pub fn burst_period(&self) -> f64 {
        self.plan.burst as f64 / self.plan.rate
    }
}

impl ArrivalSource for AdversarialInjector {
    fn next_arrival(&mut self, rng: &mut Rng) -> Option<Arrival> {
        if self.plan.is_none() {
            return None;
        }
        if self.remaining == 0 {
            if self.started {
                self.burst_time += self.burst_period();
            }
            self.started = true;
            self.remaining = self.plan.burst;
        }
        self.remaining -= 1;
        let station = StationId(rng.below(u64::from(self.plan.stations)) as u32);
        Some(Arrival {
            time: Time::from_ticks(self.burst_time as u64),
            station,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::collect_until;

    #[test]
    fn none_plan_injects_nothing_and_draws_nothing() {
        let mut inj = AdversarialInjector::new(AdversaryPlan::none());
        let mut rng = Rng::new(1);
        let before = rng.next_u64();
        let mut rng = Rng::new(1);
        assert_eq!(inj.next_arrival(&mut rng), None);
        assert_eq!(rng.next_u64(), before, "disabled injector drew RNG");
    }

    #[test]
    fn greedy_schedule_respects_envelope() {
        let plan = AdversaryPlan {
            rate: 0.002,
            burst: 8,
            start: Time::from_ticks(1_000),
            stations: 16,
        };
        let mut inj = AdversarialInjector::new(plan);
        let mut rng = Rng::new(2);
        let horizon = Time::from_ticks(100_000);
        let arrivals = collect_until(&mut inj, &mut rng, horizon, 10_000);
        // Any interval of length T holds at most sigma + rho * T.
        for (i, a) in arrivals.iter().enumerate() {
            for b in &arrivals[i..] {
                let t = (b.time - a.time).ticks() as f64;
                let count = arrivals[i..]
                    .iter()
                    .take_while(|x| x.time <= b.time)
                    .count() as f64;
                assert!(
                    count <= plan.burst as f64 + plan.rate * t + 1e-9,
                    "envelope violated over [{:?}, {:?}]",
                    a.time,
                    b.time
                );
            }
        }
        // Long-run rate approaches rho.
        let rate = arrivals.len() as f64 / horizon.ticks() as f64;
        assert!((rate - plan.rate).abs() / plan.rate < 0.1, "rate = {rate}");
        // Bursts are same-instant clusters of exactly sigma.
        assert_eq!(arrivals[0].time, Time::from_ticks(1_000));
        let first_burst = arrivals
            .iter()
            .take_while(|a| a.time == arrivals[0].time)
            .count();
        assert_eq!(first_burst, plan.burst as usize);
    }

    #[test]
    fn times_are_monotone() {
        let mut inj = AdversarialInjector::new(AdversaryPlan {
            rate: 0.01,
            burst: 3,
            start: Time::ZERO,
            stations: 4,
        });
        let mut rng = Rng::new(3);
        let mut prev = Time::ZERO;
        for _ in 0..1_000 {
            let a = inj.next_arrival(&mut rng).unwrap();
            assert!(a.time >= prev);
            prev = a.time;
        }
    }
}
