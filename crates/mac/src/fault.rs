//! Deterministic fault injection for the broadcast channel.
//!
//! The paper assumes perfect ternary feedback: one propagation delay after
//! a protocol step, every station correctly learns whether the slot was
//! idle, a success, or a collision. [`FaultyMedium`] wraps [`Medium`] and
//! breaks that assumption in controlled, reproducible ways:
//!
//! * **misdetection** — the slot outcome all stations observe differs from
//!   what physically happened (`success→collision`, `collision→success`,
//!   `collision→idle`, `idle→collision`);
//! * **erasure** — the feedback for a slot is lost entirely; every station
//!   knows it learned nothing (a detectable fault);
//! * **deafness** — one station misses feedback the others receive
//!   (modelled by the per-station divergence detector in `tcw-window`,
//!   not by the shared medium, since deafness is private to a station).
//!
//! All injection is driven by a dedicated tagged RNG stream passed in by
//! the caller, so fault sequences are reproducible from the run seed and
//! independent of every other random stream in the simulation. With
//! [`FaultPlan::none`] the wrapper draws **nothing** from that stream and
//! behaves bit-identically to the bare [`Medium`].
//!
//! ## Semantics
//!
//! The *observed* outcome — not the physical one — drives both the channel
//! time a slot consumes and whether a message is delivered:
//!
//! * a success misread as a collision aborts the transmission after `tau`
//!   (the transmitter reacts to the collision signal); the message stays
//!   pending;
//! * a collision misread as a success makes every station wait out a full
//!   message time while nothing is delivered — the colliding messages are
//!   stranded in examined time until the protocol reopens their intervals;
//! * a collision misread as idle is detectable (the transmitters know they
//!   transmitted) and triggers the engine's re-probe/backoff path;
//! * an erased slot costs `tau` and destroys any transmission in it.

use crate::channel::{Medium, SlotOutcome};
use crate::message::MessageId;
use tcw_sim::rng::Rng;
use tcw_sim::time::Dur;

/// Per-slot fault probabilities. All values are clamped to `[0, 1]` at
/// injection time; the classes applicable to one physical outcome must sum
/// to at most 1 (checked by [`FaultPlan::validate`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// P(a physical success is observed as a collision).
    pub success_to_collision: f64,
    /// P(a physical collision is observed as a success).
    pub collision_to_success: f64,
    /// P(a physical collision is observed as idle).
    pub collision_to_idle: f64,
    /// P(a physical idle slot is observed as a collision).
    pub idle_to_collision: f64,
    /// P(the feedback for a slot is erased for every station).
    pub erasure: f64,
    /// P(per probe slot) that an individual listening station goes deaf.
    /// Consumed by the per-station divergence detector, not the medium.
    pub deafness: f64,
    /// How many consecutive probe slots a deafness episode lasts.
    pub deaf_slots: u64,
}

impl FaultPlan {
    /// The fault-free plan: the wrapper is a transparent pass-through and
    /// draws nothing from its RNG stream.
    pub fn none() -> Self {
        FaultPlan {
            success_to_collision: 0.0,
            collision_to_success: 0.0,
            collision_to_idle: 0.0,
            idle_to_collision: 0.0,
            erasure: 0.0,
            deafness: 0.0,
            deaf_slots: 0,
        }
    }

    /// A plan with every shared-feedback fault class at probability `p`
    /// and no station deafness.
    pub fn uniform(p: f64) -> Self {
        FaultPlan {
            success_to_collision: p,
            collision_to_success: p,
            collision_to_idle: p,
            idle_to_collision: p,
            erasure: p,
            deafness: 0.0,
            deaf_slots: 0,
        }
    }

    /// Whether this plan injects no shared-feedback faults at all
    /// (deafness is per-station and does not touch the shared medium).
    pub fn is_none(&self) -> bool {
        self.success_to_collision == 0.0
            && self.collision_to_success == 0.0
            && self.collision_to_idle == 0.0
            && self.idle_to_collision == 0.0
            && self.erasure == 0.0
    }

    /// Non-panicking validation: each probability must lie in `[0, 1]` and
    /// each physical outcome's fault classes must sum to at most 1. Used
    /// when parsing replay artifacts so a corrupted file degrades to an
    /// error instead of aborting.
    pub fn check(&self) -> Result<(), String> {
        let probs = [
            ("success_to_collision", self.success_to_collision),
            ("collision_to_success", self.collision_to_success),
            ("collision_to_idle", self.collision_to_idle),
            ("idle_to_collision", self.idle_to_collision),
            ("erasure", self.erasure),
            ("deafness", self.deafness),
        ];
        for (name, p) in probs {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} = {p} outside [0, 1]"));
            }
        }
        if self.erasure + self.collision_to_success + self.collision_to_idle > 1.0 {
            return Err("collision fault classes sum past 1".to_string());
        }
        if self.erasure + self.success_to_collision > 1.0 {
            return Err("success fault classes sum past 1".to_string());
        }
        if self.erasure + self.idle_to_collision > 1.0 {
            return Err("idle fault classes sum past 1".to_string());
        }
        Ok(())
    }

    /// Checks that each physical outcome's fault classes sum to at most 1.
    ///
    /// # Panics
    /// Panics with a description of the offending class on violation.
    pub fn validate(&self) {
        if let Err(e) = self.check() {
            panic!("invalid fault plan: {e}");
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// Which fault was injected into a slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// A physical success was observed as a collision.
    SuccessToCollision,
    /// A physical collision was observed as a success.
    CollisionToSuccess,
    /// A physical collision was observed as idle.
    CollisionToIdle,
    /// A physical idle slot was observed as a collision.
    IdleToCollision,
    /// The slot's feedback was erased for every station.
    Erasure,
}

/// What the stations learn about a slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Feedback {
    /// All stations observe this outcome (possibly a misdetection).
    Observed(SlotOutcome),
    /// All stations know the slot's feedback was lost.
    Erased,
}

/// The full result of one probe through a (possibly faulty) medium.
#[derive(Clone, Copy, Debug)]
pub struct ProbeReport {
    /// What physically happened on the channel.
    pub actual: SlotOutcome,
    /// What the stations observe (drives protocol behaviour and slot
    /// duration).
    pub observed: Feedback,
    /// Channel time the slot consumes, derived from the observed outcome.
    pub dur: Dur,
    /// The injected fault, if any.
    pub fault: Option<FaultKind>,
}

impl ProbeReport {
    /// The delivered message: `Some` only when the slot was physically a
    /// success *and* observed as one.
    pub fn delivered(&self) -> Option<MessageId> {
        match (self.actual, self.observed) {
            (SlotOutcome::Success(id), Feedback::Observed(SlotOutcome::Success(_))) => Some(id),
            _ => None,
        }
    }
}

/// A [`Medium`] wrapper that injects feedback faults per [`FaultPlan`].
#[derive(Clone, Debug)]
pub struct FaultyMedium {
    inner: Medium,
    plan: FaultPlan,
    rng: Rng,
}

impl FaultyMedium {
    /// Wraps `inner` with the given plan. `rng` must be a dedicated
    /// substream (the engine forks it as `"faults"` from the master seed)
    /// so injection is reproducible and independent of all other streams.
    pub fn new(inner: Medium, plan: FaultPlan, rng: Rng) -> Self {
        plan.validate();
        FaultyMedium { inner, plan, rng }
    }

    /// The underlying channel configuration.
    pub fn config(&self) -> &crate::channel::ChannelConfig {
        self.inner.config()
    }

    /// The active fault plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Replaces the fault plan (validated).
    pub fn set_plan(&mut self, plan: FaultPlan) {
        plan.validate();
        self.plan = plan;
    }

    /// Channel time a slot consumes given what the stations observe.
    fn dur_of(&self, observed: &Feedback) -> Dur {
        let cfg = self.inner.config();
        match observed {
            Feedback::Observed(SlotOutcome::Success(_)) => {
                if cfg.guard {
                    cfg.message_duration() + cfg.tau()
                } else {
                    cfg.message_duration()
                }
            }
            // Idle, collision and erased slots all cost one tau: an erased
            // or collided transmission is aborted at collision-detect time.
            _ => cfg.tau(),
        }
    }

    /// Resolves one protocol step, possibly corrupting the feedback.
    ///
    /// With [`FaultPlan::none`] this is a transparent pass-through that
    /// draws nothing from the RNG stream.
    pub fn probe(&mut self, transmitters: &[MessageId]) -> ProbeReport {
        let (actual, clean_dur) = self.inner.probe(transmitters);
        if self.plan.is_none() {
            return ProbeReport {
                actual,
                observed: Feedback::Observed(actual),
                dur: clean_dur,
                fault: None,
            };
        }
        // One uniform draw per probe decides the fault class via cumulative
        // thresholds over the classes applicable to the physical outcome.
        let u = self.rng.f64();
        let (observed, fault) = match actual {
            SlotOutcome::Idle => {
                if u < self.plan.erasure {
                    (Feedback::Erased, Some(FaultKind::Erasure))
                } else if u < self.plan.erasure + self.plan.idle_to_collision {
                    // Phantom collision: stations only learn "collision";
                    // the count 0 marks the phantom for diagnostics.
                    (
                        Feedback::Observed(SlotOutcome::Collision(0)),
                        Some(FaultKind::IdleToCollision),
                    )
                } else {
                    (Feedback::Observed(actual), None)
                }
            }
            SlotOutcome::Success(_) => {
                if u < self.plan.erasure {
                    (Feedback::Erased, Some(FaultKind::Erasure))
                } else if u < self.plan.erasure + self.plan.success_to_collision {
                    (
                        Feedback::Observed(SlotOutcome::Collision(1)),
                        Some(FaultKind::SuccessToCollision),
                    )
                } else {
                    (Feedback::Observed(actual), None)
                }
            }
            SlotOutcome::Collision(n) => {
                if u < self.plan.erasure {
                    (Feedback::Erased, Some(FaultKind::Erasure))
                } else if u < self.plan.erasure + self.plan.collision_to_idle {
                    (
                        Feedback::Observed(SlotOutcome::Idle),
                        Some(FaultKind::CollisionToIdle),
                    )
                } else if u < self.plan.erasure
                    + self.plan.collision_to_idle
                    + self.plan.collision_to_success
                {
                    (
                        Feedback::Observed(SlotOutcome::Success(transmitters[0])),
                        Some(FaultKind::CollisionToSuccess),
                    )
                } else {
                    (Feedback::Observed(SlotOutcome::Collision(n)), None)
                }
            }
        };
        let dur = self.dur_of(&observed);
        ProbeReport {
            actual,
            observed,
            dur,
            fault,
        }
    }
}

impl FaultyMedium {
    /// Serializes the medium's mutable state (plan + injection RNG) for an
    /// engine checkpoint. The wrapped channel config is *not* captured: a
    /// restore target must be built over the same configuration.
    pub fn save_state(&self, w: &mut tcw_sim::snap::SnapWriter) {
        w.push_f64(self.plan.success_to_collision);
        w.push_f64(self.plan.collision_to_success);
        w.push_f64(self.plan.collision_to_idle);
        w.push_f64(self.plan.idle_to_collision);
        w.push_f64(self.plan.erasure);
        w.push_f64(self.plan.deafness);
        w.push(self.plan.deaf_slots);
        for s in self.rng.state() {
            w.push(s);
        }
    }

    /// Restores plan + RNG state written by [`FaultyMedium::save_state`].
    pub fn load_state(
        &mut self,
        r: &mut tcw_sim::snap::SnapReader<'_>,
    ) -> Result<(), tcw_sim::snap::SnapError> {
        let plan = FaultPlan {
            success_to_collision: r.take_f64()?,
            collision_to_success: r.take_f64()?,
            collision_to_idle: r.take_f64()?,
            idle_to_collision: r.take_f64()?,
            erasure: r.take_f64()?,
            deafness: r.take_f64()?,
            deaf_slots: r.take()?,
        };
        plan.check().map_err(tcw_sim::snap::SnapError::new)?;
        let mut s = [0u64; 4];
        for x in s.iter_mut() {
            *x = r.take()?;
        }
        self.plan = plan;
        self.rng = Rng::from_state(s);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelConfig;

    fn cfg() -> ChannelConfig {
        ChannelConfig {
            ticks_per_tau: 10,
            message_slots: 25,
            guard: false,
        }
    }

    #[test]
    fn none_plan_matches_bare_medium_and_draws_nothing() {
        let medium = Medium::new(cfg());
        let mut faulty = FaultyMedium::new(medium, FaultPlan::none(), Rng::new(7));
        let mut witness = Rng::new(7);
        let cases: [&[MessageId]; 3] = [
            &[],
            &[MessageId(1)],
            &[MessageId(1), MessageId(2), MessageId(3)],
        ];
        for ids in cases {
            let (actual, dur) = medium.probe(ids);
            let report = faulty.probe(ids);
            assert_eq!(report.actual, actual);
            assert_eq!(report.observed, Feedback::Observed(actual));
            assert_eq!(report.dur, dur);
            assert_eq!(report.fault, None);
        }
        // The RNG stream was never touched.
        assert_eq!(faulty.rng.next_u64(), witness.next_u64());
    }

    #[test]
    fn injection_is_deterministic() {
        let mk = || FaultyMedium::new(Medium::new(cfg()), FaultPlan::uniform(0.3), Rng::new(11));
        let mut a = mk();
        let mut b = mk();
        for i in 0..500u64 {
            let ids: Vec<MessageId> = (0..(i % 4)).map(MessageId).collect();
            let ra = a.probe(&ids);
            let rb = b.probe(&ids);
            assert_eq!(ra.observed, rb.observed);
            assert_eq!(ra.fault, rb.fault);
            assert_eq!(ra.dur, rb.dur);
        }
    }

    #[test]
    fn all_fault_classes_occur() {
        let mut m = FaultyMedium::new(Medium::new(cfg()), FaultPlan::uniform(0.2), Rng::new(3));
        let mut seen = std::collections::HashSet::new();
        for i in 0..2_000u64 {
            let ids: Vec<MessageId> = (0..(i % 3)).map(MessageId).collect();
            if let Some(f) = m.probe(&ids).fault {
                seen.insert(format!("{f:?}"));
            }
        }
        for kind in [
            "SuccessToCollision",
            "CollisionToIdle",
            "CollisionToSuccess",
            "IdleToCollision",
            "Erasure",
        ] {
            assert!(seen.contains(kind), "never saw {kind}: {seen:?}");
        }
    }

    #[test]
    fn observed_outcome_drives_duration_and_delivery() {
        // collision_to_success = 1: every collision is observed as a full
        // message slot but delivers nothing.
        let plan = FaultPlan {
            collision_to_success: 1.0,
            ..FaultPlan::none()
        };
        let mut m = FaultyMedium::new(Medium::new(cfg()), plan, Rng::new(5));
        let r = m.probe(&[MessageId(1), MessageId(2)]);
        assert_eq!(r.fault, Some(FaultKind::CollisionToSuccess));
        assert_eq!(r.dur, Dur::from_ticks(250));
        assert_eq!(r.delivered(), None);

        // success_to_collision = 1: the transmission aborts after tau.
        let plan = FaultPlan {
            success_to_collision: 1.0,
            ..FaultPlan::none()
        };
        let mut m = FaultyMedium::new(Medium::new(cfg()), plan, Rng::new(5));
        let r = m.probe(&[MessageId(1)]);
        assert_eq!(r.fault, Some(FaultKind::SuccessToCollision));
        assert_eq!(r.dur, Dur::from_ticks(10));
        assert_eq!(r.delivered(), None);

        // erasure = 1: every slot costs tau and delivers nothing.
        let plan = FaultPlan {
            erasure: 1.0,
            ..FaultPlan::none()
        };
        let mut m = FaultyMedium::new(Medium::new(cfg()), plan, Rng::new(5));
        let r = m.probe(&[MessageId(1)]);
        assert_eq!(r.observed, Feedback::Erased);
        assert_eq!(r.dur, Dur::from_ticks(10));
        assert_eq!(r.delivered(), None);
    }

    #[test]
    fn clean_success_delivers() {
        let mut m = FaultyMedium::new(Medium::new(cfg()), FaultPlan::none(), Rng::new(1));
        assert_eq!(m.probe(&[MessageId(9)]).delivered(), Some(MessageId(9)));
    }

    #[test]
    #[should_panic]
    fn oversubscribed_plan_is_rejected() {
        let plan = FaultPlan {
            erasure: 0.7,
            collision_to_idle: 0.4,
            ..FaultPlan::none()
        };
        FaultyMedium::new(Medium::new(cfg()), plan, Rng::new(1));
    }
}
