//! Messages and station identities.

use std::fmt;
use tcw_sim::time::{Dur, Time};

/// Identifies a station in the network.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StationId(pub u32);

impl fmt::Debug for StationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

impl fmt::Display for StationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "station {}", self.0)
    }
}

/// Identifies a message, unique within a run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MessageId(pub u64);

impl fmt::Debug for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// A message waiting at a station for transmission.
///
/// The window protocol grants transmission rights by **arrival time**, so
/// the arrival instant is the message's protocol-visible attribute; the
/// station only matters for bookkeeping (all stations are statistically
/// identical in the paper's model).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Message {
    /// Unique id.
    pub id: MessageId,
    /// The station holding the message.
    pub station: StationId,
    /// Arrival instant at the sending station.
    pub arrival: Time,
}

impl Message {
    /// Creates a message.
    pub fn new(id: MessageId, station: StationId, arrival: Time) -> Self {
        Message {
            id,
            station,
            arrival,
        }
    }

    /// Elapsed time since this message arrived at its station — the
    /// age-of-information contribution the message would have if it were
    /// delivered at `now`. Saturates at zero if `now` precedes the
    /// arrival (e.g. a probe instant formatted before admission).
    pub fn age_at(&self, now: Time) -> Dur {
        Dur::from_ticks(now.ticks().saturating_sub(self.arrival.ticks()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(format!("{:?}", StationId(3)), "S3");
        assert_eq!(format!("{}", StationId(3)), "station 3");
        assert_eq!(format!("{:?}", MessageId(42)), "m42");
    }

    #[test]
    fn age_saturates_before_arrival() {
        let m = Message::new(MessageId(1), StationId(0), Time::from_ticks(10));
        assert_eq!(m.age_at(Time::from_ticks(25)), Dur::from_ticks(15));
        assert_eq!(m.age_at(Time::from_ticks(10)), Dur::ZERO);
        assert_eq!(m.age_at(Time::from_ticks(3)), Dur::ZERO);
    }

    #[test]
    fn message_ordering_by_id_is_stable() {
        let a = Message::new(MessageId(1), StationId(0), Time::from_ticks(5));
        let b = Message::new(MessageId(2), StationId(0), Time::from_ticks(5));
        assert_ne!(a, b);
        assert!(a.id < b.id);
    }
}
