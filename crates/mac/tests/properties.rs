//! Property-based tests for the channel substrate.
//!
//! Randomized cases are drawn from the deterministic [`Rng`] so every
//! failure reproduces from its case index (the repository builds offline,
//! without an external property-testing framework).

use tcw_mac::adversary::{AdversarialInjector, AdversaryPlan};
use tcw_mac::arrivals::{
    collect_until, ArrivalSource, MergedSource, PiecewiseArrivals, PoissonArrivals, TraceArrivals,
};
use tcw_mac::channel::{ChannelConfig, ChannelStats, Medium, SlotOutcome};
use tcw_mac::message::MessageId;
use tcw_mac::traffic::{SensorConfig, SensorSource, VoiceConfig, VoiceSource};
use tcw_sim::rng::Rng;
use tcw_sim::time::{Dur, Time};

const CASES: u64 = 150;

/// Every arrival source emits non-decreasing times.
#[test]
fn sources_are_time_monotone() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xACC0_0001 ^ case);
        let which = rng.below(6) as usize;
        let mut src: Box<dyn ArrivalSource> = match which {
            0 => Box::new(PoissonArrivals::new(0.05, 7)),
            1 => Box::new(VoiceSource::new(VoiceConfig {
                stations: 5,
                mean_talkspurt: Dur::from_ticks(4_000),
                mean_silence: Dur::from_ticks(6_000),
                packet_interval: Dur::from_ticks(400),
            })),
            2 => Box::new(SensorSource::new(SensorConfig {
                stations: 9,
                mean_event_gap: Dur::from_ticks(900),
                mean_reports: 2.5,
                jitter: Dur::from_ticks(50),
            })),
            3 => Box::new(PiecewiseArrivals::flash_crowd(
                0.01 + 0.04 * rng.f64(),
                1.0 + 7.0 * rng.f64(),
                &[
                    (Time::from_ticks(1_000), Dur::from_ticks(500)),
                    (Time::from_ticks(4_000), Dur::from_ticks(800)),
                ],
                5,
            )),
            4 => Box::new(AdversarialInjector::new(AdversaryPlan {
                rate: 0.005 + 0.02 * rng.f64(),
                burst: 1 + rng.below(12) as u32,
                start: Time::from_ticks(rng.below(5_000)),
                stations: 6,
            })),
            _ => Box::new(MergedSource::new(vec![
                Box::new(PoissonArrivals::new(0.02, 3)),
                Box::new(PoissonArrivals::new(0.05, 3)),
            ])),
        };
        let mut prev = None;
        for _ in 0..500 {
            let Some(a) = src.next_arrival(&mut rng) else {
                break;
            };
            if let Some(p) = prev {
                assert!(a.time >= p, "case {case}: time went backwards");
            }
            prev = Some(a.time);
        }
    }
}

/// Every rate-parameterized source delivers its configured long-run
/// rate empirically (within sampling tolerance over a long horizon).
#[test]
fn sources_match_their_configured_rates() {
    for case in 0..30 {
        let mut rng = Rng::new(0xACC0_0004 ^ case);
        let horizon = Time::from_ticks(400_000);
        let which = case % 5;
        let (mut src, expected, tol): (Box<dyn ArrivalSource>, f64, f64) = match which {
            0 => {
                let rate = 0.005 + 0.03 * rng.f64();
                (Box::new(PoissonArrivals::new(rate, 7)), rate, 0.05)
            }
            1 => {
                let before = 0.004 + 0.01 * rng.f64();
                let after = before * (2.0 + 8.0 * rng.f64());
                let at = Time::from_ticks(100_000 + rng.below(200_000));
                let pw = PiecewiseArrivals::load_step(before, after, at, 5);
                let mean = pw.mean_rate_until(horizon);
                (Box::new(pw), mean, 0.05)
            }
            2 => {
                let base = 0.004 + 0.008 * rng.f64();
                let surge = 2.0 + 6.0 * rng.f64();
                let pw = PiecewiseArrivals::flash_crowd(
                    base,
                    surge,
                    &[
                        (Time::from_ticks(50_000), Dur::from_ticks(20_000)),
                        (Time::from_ticks(200_000), Dur::from_ticks(30_000)),
                    ],
                    5,
                );
                let mean = pw.mean_rate_until(horizon);
                (Box::new(pw), mean, 0.05)
            }
            3 => {
                let cfg = VoiceConfig {
                    stations: 20,
                    mean_talkspurt: Dur::from_ticks(2_000),
                    mean_silence: Dur::from_ticks(6_000),
                    packet_interval: Dur::from_ticks(200),
                };
                // On/off phases correlate packets, so the empirical rate
                // converges far slower than for Poisson streams.
                (Box::new(VoiceSource::new(cfg)), cfg.aggregate_rate(), 0.15)
            }
            _ => {
                let plan = AdversaryPlan {
                    rate: 0.002 + 0.01 * rng.f64(),
                    burst: 2 + rng.below(10) as u32,
                    start: Time::ZERO,
                    stations: 6,
                };
                (Box::new(AdversarialInjector::new(plan)), plan.rate, 0.05)
            }
        };
        let arrivals = collect_until(&mut *src, &mut rng, horizon, usize::MAX);
        let empirical = arrivals.len() as f64 / horizon.ticks() as f64;
        assert!(
            (empirical - expected).abs() / expected < tol,
            "case {case} (kind {which}): empirical rate {empirical:.5}, expected {expected:.5}"
        );
    }
}

/// Trace sources replay exactly their input multiset, sorted.
#[test]
fn trace_replays_sorted() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xACC0_0002 ^ case);
        let n = rng.below(50) as usize;
        let pairs: Vec<(u64, u32)> = (0..n)
            .map(|_| (rng.below(10_000), rng.below(8) as u32))
            .collect();
        let mut src = TraceArrivals::from_ticks(&pairs);
        let mut feed = Rng::new(0);
        let mut got = Vec::new();
        while let Some(a) = src.next_arrival(&mut feed) {
            got.push((a.time.ticks(), a.station.0));
        }
        assert_eq!(got.len(), pairs.len());
        let mut got_times: Vec<u64> = got.iter().map(|&(t, _)| t).collect();
        let mut expect_times: Vec<u64> = pairs.iter().map(|&(t, _)| t).collect();
        got_times.sort();
        expect_times.sort();
        assert_eq!(got_times, expect_times, "case {case}");
        // and emission order is sorted
        for w in got.windows(2) {
            assert!(w[0].0 <= w[1].0, "case {case}: emission not sorted");
        }
    }
}

/// Medium outcomes and costs are exhaustively consistent with the
/// transmitter count, and stats conserve channel time.
#[test]
fn medium_and_stats_invariants() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xACC0_0003 ^ case);
        let m = 1 + rng.below(119);
        let tpt = 1 + rng.below(127);
        let guard = rng.chance(0.5);
        let steps = 1 + rng.below(99) as usize;
        let counts: Vec<usize> = (0..steps).map(|_| rng.below(6) as usize).collect();
        let cfg = ChannelConfig {
            ticks_per_tau: tpt,
            message_slots: m,
            guard,
        };
        let medium = Medium::new(cfg);
        let mut stats = ChannelStats::new();
        let mut expected_total = 0u64;
        for (i, &n) in counts.iter().enumerate() {
            let ids: Vec<MessageId> = (0..n).map(|j| MessageId((i * 10 + j) as u64)).collect();
            let (outcome, dur) = medium.probe(&ids);
            match n {
                0 => assert_eq!(outcome, SlotOutcome::Idle),
                1 => assert!(outcome.is_success()),
                k => assert_eq!(outcome, SlotOutcome::Collision(k as u32)),
            }
            let expect_dur = match n {
                1 => tpt * m + if guard { tpt } else { 0 },
                _ => tpt,
            };
            assert_eq!(dur.ticks(), expect_dur, "case {case}");
            stats.record(&outcome, dur);
            expected_total += expect_dur;
        }
        assert_eq!(stats.total().ticks(), expected_total, "case {case}");
        let busy = stats.utilization();
        assert!((0.0..=1.0).contains(&busy));
        assert_eq!(
            stats.successes as usize,
            counts.iter().filter(|&&n| n == 1).count()
        );
    }
}
