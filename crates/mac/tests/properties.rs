//! Property-based tests for the channel substrate.

use proptest::prelude::*;
use tcw_mac::arrivals::{ArrivalSource, MergedSource, PoissonArrivals, TraceArrivals};
use tcw_mac::channel::{ChannelConfig, ChannelStats, Medium, SlotOutcome};
use tcw_mac::message::MessageId;
use tcw_mac::traffic::{SensorConfig, SensorSource, VoiceConfig, VoiceSource};
use tcw_sim::rng::Rng;
use tcw_sim::time::Dur;

proptest! {
    /// Every arrival source emits non-decreasing times.
    #[test]
    fn sources_are_time_monotone(seed in any::<u64>(), which in 0usize..4) {
        let mut rng = Rng::new(seed);
        let mut src: Box<dyn ArrivalSource> = match which {
            0 => Box::new(PoissonArrivals::new(0.05, 7)),
            1 => Box::new(VoiceSource::new(VoiceConfig {
                stations: 5,
                mean_talkspurt: Dur::from_ticks(4_000),
                mean_silence: Dur::from_ticks(6_000),
                packet_interval: Dur::from_ticks(400),
            })),
            2 => Box::new(SensorSource::new(SensorConfig {
                stations: 9,
                mean_event_gap: Dur::from_ticks(900),
                mean_reports: 2.5,
                jitter: Dur::from_ticks(50),
            })),
            _ => Box::new(MergedSource::new(vec![
                Box::new(PoissonArrivals::new(0.02, 3)),
                Box::new(PoissonArrivals::new(0.05, 3)),
            ])),
        };
        let mut prev = None;
        for _ in 0..500 {
            let Some(a) = src.next_arrival(&mut rng) else { break };
            if let Some(p) = prev {
                prop_assert!(a.time >= p, "time went backwards");
            }
            prev = Some(a.time);
        }
    }

    /// Trace sources replay exactly their input multiset, sorted.
    #[test]
    fn trace_replays_sorted(pairs in proptest::collection::vec((0u64..10_000, 0u32..8), 0..50)) {
        let mut src = TraceArrivals::from_ticks(&pairs);
        let mut rng = Rng::new(0);
        let mut got = Vec::new();
        while let Some(a) = src.next_arrival(&mut rng) {
            got.push((a.time.ticks(), a.station.0));
        }
        let mut expect = pairs.clone();
        expect.sort_by_key(|&(t, _)| t);
        prop_assert_eq!(got.len(), expect.len());
        let mut got_times: Vec<u64> = got.iter().map(|&(t, _)| t).collect();
        let expect_times: Vec<u64> = expect.iter().map(|&(t, _)| t).collect();
        got_times.sort();
        let mut sorted_expect = expect_times.clone();
        sorted_expect.sort();
        prop_assert_eq!(got_times, sorted_expect);
        // and emission order is sorted
        for w in got.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
        }
    }

    /// Medium outcomes and costs are exhaustively consistent with the
    /// transmitter count, and stats conserve channel time.
    #[test]
    fn medium_and_stats_invariants(
        counts in proptest::collection::vec(0usize..6, 1..100),
        m in 1u64..120,
        tpt in 1u64..128,
        guard in any::<bool>(),
    ) {
        let cfg = ChannelConfig { ticks_per_tau: tpt, message_slots: m, guard };
        let medium = Medium::new(cfg);
        let mut stats = ChannelStats::new();
        let mut expected_total = 0u64;
        for (i, &n) in counts.iter().enumerate() {
            let ids: Vec<MessageId> = (0..n).map(|j| MessageId((i * 10 + j) as u64)).collect();
            let (outcome, dur) = medium.probe(&ids);
            match n {
                0 => prop_assert_eq!(outcome, SlotOutcome::Idle),
                1 => prop_assert!(outcome.is_success()),
                k => prop_assert_eq!(outcome, SlotOutcome::Collision(k as u32)),
            }
            let expect_dur = match n {
                1 => tpt * m + if guard { tpt } else { 0 },
                _ => tpt,
            };
            prop_assert_eq!(dur.ticks(), expect_dur);
            stats.record(&outcome, dur);
            expected_total += expect_dur;
        }
        prop_assert_eq!(stats.total().ticks(), expected_total);
        let busy = stats.utilization();
        prop_assert!((0.0..=1.0).contains(&busy));
        prop_assert_eq!(
            stats.successes as usize,
            counts.iter().filter(|&&n| n == 1).count()
        );
    }
}
