//! Property-based tests for the simulation kernel.

use proptest::prelude::*;
use tcw_sim::events::EventQueue;
use tcw_sim::rng::Rng;
use tcw_sim::stats::{Histogram, Tally};
use tcw_sim::time::{Dur, Time};

proptest! {
    /// Popping the event queue yields times in non-decreasing order, and
    /// events with equal times come out in insertion order.
    #[test]
    fn event_queue_is_ordered_and_stable(times in proptest::collection::vec(0u64..50, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Time::from_ticks(t), i);
        }
        let mut prev: Option<(Time, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((pt, pi)) = prev {
                prop_assert!(t >= pt);
                if t == pt {
                    prop_assert!(i > pi, "equal-time events out of insertion order");
                }
            }
            prev = Some((t, i));
        }
    }

    /// Every scheduled event is delivered exactly once.
    #[test]
    fn event_queue_conserves_events(times in proptest::collection::vec(0u64..1000, 0..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Time::from_ticks(t), i);
        }
        let mut seen = vec![false; times.len()];
        while let Some((_, i)) = q.pop() {
            prop_assert!(!seen[i], "event delivered twice");
            seen[i] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Time affine algebra: (a + d) - a == d for all representable pairs.
    #[test]
    fn time_affine_roundtrip(a in 0u64..u64::MAX / 2, d in 0u64..u64::MAX / 2) {
        let t = Time::from_ticks(a);
        let dur = Dur::from_ticks(d);
        prop_assert_eq!((t + dur) - t, dur);
        prop_assert_eq!((t + dur) - dur, t);
    }

    /// Tally::merge is equivalent to recording the concatenation.
    #[test]
    fn tally_merge_associative(
        xs in proptest::collection::vec(-1e6f64..1e6, 0..50),
        ys in proptest::collection::vec(-1e6f64..1e6, 0..50),
    ) {
        let mut whole = Tally::new();
        for &x in xs.iter().chain(ys.iter()) {
            whole.record(x);
        }
        let mut a = Tally::new();
        for &x in &xs {
            a.record(x);
        }
        let mut b = Tally::new();
        for &y in &ys {
            b.record(y);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        if whole.count() > 0 {
            prop_assert!((a.mean() - whole.mean()).abs() <= 1e-6 * (1.0 + whole.mean().abs()));
            prop_assert!((a.variance() - whole.variance()).abs() <= 1e-4 * (1.0 + whole.variance().abs()));
        }
    }

    /// The RNG's bounded sampler stays in range for arbitrary bounds.
    #[test]
    fn rng_below_in_range(seed in any::<u64>(), bound in 1u64..u64::MAX) {
        let mut r = Rng::new(seed);
        for _ in 0..64 {
            prop_assert!(r.below(bound) < bound);
        }
    }

    /// Histogram CDF is monotone non-decreasing and bounded by [0,1].
    #[test]
    fn histogram_cdf_monotone(xs in proptest::collection::vec(-2.0f64..12.0, 1..200)) {
        let mut h = Histogram::new(0.0, 10.0, 17);
        for &x in &xs {
            h.record(x);
        }
        let mut prev = 0.0;
        for i in 0..=120 {
            let q = -1.0 + i as f64 * 0.1;
            let c = h.cdf(q);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&c));
            prop_assert!(c + 1e-12 >= prev, "cdf decreased at {q}: {c} < {prev}");
            prev = c;
        }
    }

    /// Histogram conserves its observation count across buckets.
    #[test]
    fn histogram_conserves_count(xs in proptest::collection::vec(-5.0f64..15.0, 0..300)) {
        let mut h = Histogram::new(0.0, 10.0, 13);
        for &x in &xs {
            h.record(x);
        }
        let binned: u64 = (0..h.bins()).map(|i| h.bin_count(i)).sum();
        prop_assert_eq!(binned + h.underflow() + h.overflow(), xs.len() as u64);
    }
}
