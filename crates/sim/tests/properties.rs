//! Property-based tests for the simulation kernel.
//!
//! Properties are checked over many randomized cases drawn from the
//! crate's own deterministic [`Rng`] (the repository builds offline, so no
//! external property-testing framework is used; the loop-over-seeds style
//! keeps every failure reproducible from the case index).

use tcw_sim::events::EventQueue;
use tcw_sim::rng::Rng;
use tcw_sim::stats::{Histogram, P2Quantile, RatioCounter, Tally};
use tcw_sim::time::{Dur, Time};

const CASES: u64 = 200;

/// Popping the event queue yields times in non-decreasing order, and
/// events with equal times come out in insertion order.
#[test]
fn event_queue_is_ordered_and_stable() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x5EED_0001 ^ case);
        let n = 1 + rng.below(199) as usize;
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule(Time::from_ticks(rng.below(50)), i);
        }
        let mut prev: Option<(Time, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((pt, pi)) = prev {
                assert!(t >= pt, "case {case}: time went backwards");
                if t == pt {
                    assert!(
                        i > pi,
                        "case {case}: equal-time events out of insertion order"
                    );
                }
            }
            prev = Some((t, i));
        }
    }
}

/// Every scheduled event is delivered exactly once.
#[test]
fn event_queue_conserves_events() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x5EED_0002 ^ case);
        let n = rng.below(300) as usize;
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule(Time::from_ticks(rng.below(1000)), i);
        }
        let mut seen = vec![false; n];
        while let Some((_, i)) = q.pop() {
            assert!(!seen[i], "case {case}: event delivered twice");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "case {case}: event lost");
    }
}

/// Time affine algebra: (a + d) - a == d for all representable pairs.
#[test]
fn time_affine_roundtrip() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x5EED_0003 ^ case);
        let a = rng.below(u64::MAX / 2);
        let d = rng.below(u64::MAX / 2);
        let t = Time::from_ticks(a);
        let dur = Dur::from_ticks(d);
        assert_eq!((t + dur) - t, dur);
        assert_eq!((t + dur) - dur, t);
    }
}

/// Tally::merge is equivalent to recording the concatenation.
#[test]
fn tally_merge_associative() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x5EED_0004 ^ case);
        let draw = |rng: &mut Rng| -> Vec<f64> {
            let n = rng.below(50) as usize;
            (0..n).map(|_| (rng.f64() - 0.5) * 2e6).collect()
        };
        let xs = draw(&mut rng);
        let ys = draw(&mut rng);
        let mut whole = Tally::new();
        for &x in xs.iter().chain(ys.iter()) {
            whole.record(x);
        }
        let mut a = Tally::new();
        for &x in &xs {
            a.record(x);
        }
        let mut b = Tally::new();
        for &y in &ys {
            b.record(y);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        if whole.count() > 0 {
            assert!((a.mean() - whole.mean()).abs() <= 1e-6 * (1.0 + whole.mean().abs()));
            assert!(
                (a.variance() - whole.variance()).abs() <= 1e-4 * (1.0 + whole.variance().abs())
            );
        }
    }
}

/// The RNG's bounded sampler stays in range for arbitrary bounds.
#[test]
fn rng_below_in_range() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x5EED_0005 ^ case);
        let seed = rng.next_u64();
        let bound = 1 + rng.below(u64::MAX - 1);
        let mut r = Rng::new(seed);
        for _ in 0..64 {
            assert!(r.below(bound) < bound, "case {case}: out of range");
        }
    }
}

/// Histogram CDF is monotone non-decreasing and bounded by [0,1].
#[test]
fn histogram_cdf_monotone() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x5EED_0006 ^ case);
        let n = 1 + rng.below(199) as usize;
        let mut h = Histogram::new(0.0, 10.0, 17);
        for _ in 0..n {
            h.record(-2.0 + rng.f64() * 14.0);
        }
        let mut prev = 0.0;
        for i in 0..=120 {
            let q = -1.0 + i as f64 * 0.1;
            let c = h.cdf(q);
            assert!((0.0..=1.0 + 1e-12).contains(&c));
            assert!(
                c + 1e-12 >= prev,
                "case {case}: cdf decreased at {q}: {c} < {prev}"
            );
            prev = c;
        }
    }
}

/// The exact `q`-quantile of a sorted sample (the value at rank
/// `ceil(q*n)`, clamped into range).
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

/// Histogram quantile estimates land within one bin width of the exact
/// sorted-sample quantile, for in-range samples (no under/overflow mass).
#[test]
fn histogram_quantile_matches_exact() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x5EED_0008 ^ case);
        let n = 50 + rng.below(200) as usize;
        let bins = 8 + rng.below(56) as usize;
        let mut h = Histogram::new(0.0, 10.0, bins);
        let mut samples: Vec<f64> = (0..n).map(|_| rng.f64() * 10.0).collect();
        for &x in &samples {
            h.record(x);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let width = 10.0 / bins as f64;
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.95] {
            let exact = exact_quantile(&samples, q);
            let est = h
                .quantile(q)
                .expect("in-range samples: quantile never falls in under/overflow");
            assert!(
                (est - exact).abs() <= width + 1e-9,
                "case {case}: q={q} bins={bins}: histogram {est} vs exact {exact} \
                 (bin width {width})"
            );
        }
    }
}

/// P² streaming quantile estimates track the exact sorted-sample
/// quantile on random inputs, and never leave the sample range.
#[test]
fn p2_quantile_tracks_exact() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x5EED_0009 ^ case);
        let n = 100 + rng.below(400) as usize;
        for q in [0.5, 0.9, 0.95] {
            let mut p2 = P2Quantile::new(q);
            let mut samples: Vec<f64> = (0..n).map(|_| rng.f64()).collect();
            for &x in &samples {
                p2.record(x);
            }
            samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let exact = exact_quantile(&samples, q);
            let est = p2.estimate().expect("n >= 100 observations");
            assert_eq!(p2.count(), n as u64);
            assert!(
                (samples[0]..=samples[n - 1]).contains(&est),
                "case {case}: q={q}: estimate {est} outside the sample range"
            );
            assert!(
                (est - exact).abs() <= 0.15,
                "case {case}: q={q} n={n}: P2 {est} vs exact {exact}"
            );
        }
    }
}

/// RatioCounter::merge equals recording the concatenation, and merging
/// is associative: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
#[test]
fn ratio_counter_merge_associative() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x5EED_000A ^ case);
        let draw = |rng: &mut Rng| -> Vec<bool> {
            let n = rng.below(60) as usize;
            (0..n).map(|_| rng.f64() < 0.3).collect()
        };
        let (xs, ys, zs) = (draw(&mut rng), draw(&mut rng), draw(&mut rng));
        let fill = |marks: &[bool]| {
            let mut c = RatioCounter::new();
            for &m in marks {
                c.record(m);
            }
            c
        };
        let mut whole = RatioCounter::new();
        for &m in xs.iter().chain(ys.iter()).chain(zs.iter()) {
            whole.record(m);
        }
        // Left fold: (a ⊕ b) ⊕ c.
        let mut left = fill(&xs);
        left.merge(&fill(&ys));
        left.merge(&fill(&zs));
        // Right fold: a ⊕ (b ⊕ c).
        let mut bc = fill(&ys);
        bc.merge(&fill(&zs));
        let mut right = fill(&xs);
        right.merge(&bc);
        for c in [&left, &right] {
            assert_eq!(c.marked(), whole.marked(), "case {case}: marked differs");
            assert_eq!(c.total(), whole.total(), "case {case}: total differs");
            assert_eq!(
                c.ratio().to_bits(),
                whole.ratio().to_bits(),
                "case {case}: ratio differs"
            );
        }
    }
}

/// Histogram conserves its observation count across buckets.
#[test]
fn histogram_conserves_count() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x5EED_0007 ^ case);
        let n = rng.below(300) as usize;
        let mut h = Histogram::new(0.0, 10.0, 13);
        for _ in 0..n {
            h.record(-5.0 + rng.f64() * 20.0);
        }
        let binned: u64 = (0..h.bins()).map(|i| h.bin_count(i)).sum();
        assert_eq!(binned + h.underflow() + h.overflow(), n as u64);
    }
}
