//! Integer-tick simulation time.
//!
//! All simulation time is kept in unsigned integer *ticks* so that event
//! ordering is exact and runs are reproducible across platforms (no floating
//! point drift). The physical meaning of a tick is set by the embedding
//! model; in this workspace the `tcw-mac` channel fixes `ticks_per_tau`, the
//! number of ticks in one end-to-end propagation delay `tau`.
//!
//! [`Time`] is an absolute instant; [`Dur`] is a non-negative span. The
//! arithmetic between them is the usual affine algebra (`Time - Time = Dur`,
//! `Time + Dur = Time`, ...), with overflow checked in debug builds via the
//! standard integer semantics.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// An absolute simulation instant, in ticks since the start of the run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

/// A non-negative span of simulation time, in ticks.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(u64);

impl Time {
    /// The origin of simulation time.
    pub const ZERO: Time = Time(0);
    /// The largest representable instant (useful as an "infinite" horizon).
    pub const MAX: Time = Time(u64::MAX);

    /// Builds an instant from a raw tick count.
    #[inline]
    pub const fn from_ticks(t: u64) -> Self {
        Time(t)
    }

    /// Raw tick count since the origin.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Span from the origin to this instant.
    #[inline]
    pub const fn since_origin(self) -> Dur {
        Dur(self.0)
    }

    /// Saturating subtraction of a span; clamps at the origin.
    #[inline]
    pub const fn saturating_sub(self, d: Dur) -> Time {
        Time(self.0.saturating_sub(d.0))
    }

    /// Checked subtraction of a span.
    #[inline]
    pub const fn checked_sub(self, d: Dur) -> Option<Time> {
        match self.0.checked_sub(d.0) {
            Some(t) => Some(Time(t)),
            None => None,
        }
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Dur {
    /// The empty span.
    pub const ZERO: Dur = Dur(0);
    /// The largest representable span.
    pub const MAX: Dur = Dur(u64::MAX);

    /// Builds a span from a raw tick count.
    #[inline]
    pub const fn from_ticks(t: u64) -> Self {
        Dur(t)
    }

    /// Raw tick count of this span.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Whether the span is empty.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction; clamps at zero.
    #[inline]
    pub const fn saturating_sub(self, other: Dur) -> Dur {
        Dur(self.0.saturating_sub(other.0))
    }

    /// The larger of two spans.
    #[inline]
    pub fn max(self, other: Dur) -> Dur {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of two spans.
    #[inline]
    pub fn min(self, other: Dur) -> Dur {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// This span as a floating-point number of ticks (for statistics only;
    /// never used for event ordering).
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Dur) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Dur> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub<Dur> for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Dur) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl SubAssign<Dur> for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Dur) {
        self.0 -= rhs.0;
    }
}

impl Sub<Time> for Time {
    type Output = Dur;
    #[inline]
    fn sub(self, rhs: Time) -> Dur {
        debug_assert!(self.0 >= rhs.0, "negative duration: {self:?} - {rhs:?}");
        Dur(self.0 - rhs.0)
    }
}

impl Add for Dur {
    type Output = Dur;
    #[inline]
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0 + rhs.0)
    }
}

impl AddAssign for Dur {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub for Dur {
    type Output = Dur;
    #[inline]
    fn sub(self, rhs: Dur) -> Dur {
        debug_assert!(self.0 >= rhs.0, "negative duration: {self:?} - {rhs:?}");
        Dur(self.0 - rhs.0)
    }
}

impl SubAssign for Dur {
    #[inline]
    fn sub_assign(&mut self, rhs: Dur) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Dur {
    type Output = Dur;
    #[inline]
    fn mul(self, rhs: u64) -> Dur {
        Dur(self.0 * rhs)
    }
}

impl Div<u64> for Dur {
    type Output = Dur;
    #[inline]
    fn div(self, rhs: u64) -> Dur {
        Dur(self.0 / rhs)
    }
}

impl Div<Dur> for Dur {
    type Output = u64;
    /// Integer ratio of two spans (floor division).
    #[inline]
    fn div(self, rhs: Dur) -> u64 {
        self.0 / rhs.0
    }
}

impl Rem<Dur> for Dur {
    type Output = Dur;
    #[inline]
    fn rem(self, rhs: Dur) -> Dur {
        Dur(self.0 % rhs.0)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}t", self.0)
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_algebra() {
        let a = Time::from_ticks(10);
        let b = Time::from_ticks(25);
        assert_eq!(b - a, Dur::from_ticks(15));
        assert_eq!(a + Dur::from_ticks(15), b);
        assert_eq!(b - Dur::from_ticks(15), a);
    }

    #[test]
    fn saturating_behavior() {
        let a = Time::from_ticks(3);
        assert_eq!(a.saturating_sub(Dur::from_ticks(10)), Time::ZERO);
        assert_eq!(a.checked_sub(Dur::from_ticks(10)), None);
        assert_eq!(a.checked_sub(Dur::from_ticks(3)), Some(Time::ZERO));
        assert_eq!(
            Dur::from_ticks(3).saturating_sub(Dur::from_ticks(5)),
            Dur::ZERO
        );
    }

    #[test]
    fn dur_scaling_and_division() {
        let d = Dur::from_ticks(12);
        assert_eq!(d * 3, Dur::from_ticks(36));
        assert_eq!(d / 5, Dur::from_ticks(2));
        assert_eq!(d / Dur::from_ticks(5), 2);
        assert_eq!(d % Dur::from_ticks(5), Dur::from_ticks(2));
    }

    #[test]
    fn min_max() {
        let a = Time::from_ticks(1);
        let b = Time::from_ticks(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(
            Dur::from_ticks(1).max(Dur::from_ticks(2)),
            Dur::from_ticks(2)
        );
        assert_eq!(
            Dur::from_ticks(1).min(Dur::from_ticks(2)),
            Dur::from_ticks(1)
        );
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn negative_duration_panics_in_debug() {
        let _ = Time::from_ticks(1) - Time::from_ticks(2);
    }
}
