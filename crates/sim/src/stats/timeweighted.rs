//! Time-weighted averages of piecewise-constant signals.

use crate::time::Time;

/// Integrates a piecewise-constant signal over simulation time and reports
/// its time average — the right estimator for quantities like queue length
/// or server-busy indicators ("fraction of time the server was busy",
/// i.e. `1 − P(0)` in the paper's flow-conservation identity, eq. 4.6).
#[derive(Clone, Debug)]
pub struct TimeWeighted {
    start: Time,
    last_change: Time,
    value: f64,
    integral: f64,
    max: f64,
}

impl TimeWeighted {
    /// Starts integrating at `start` with initial signal value `value`.
    pub fn new(start: Time, value: f64) -> Self {
        TimeWeighted {
            start,
            last_change: start,
            value,
            integral: 0.0,
            max: value,
        }
    }

    /// Records that the signal changed to `value` at instant `now`.
    ///
    /// # Panics
    /// Debug-panics if `now` precedes the previous update.
    pub fn set(&mut self, now: Time, value: f64) {
        self.advance(now);
        self.value = value;
        if value > self.max {
            self.max = value;
        }
    }

    /// Adds `delta` to the current signal value at instant `now`.
    pub fn add(&mut self, now: Time, delta: f64) {
        let v = self.value + delta;
        self.set(now, v);
    }

    /// The current signal value.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// The largest value the signal has taken.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Time average of the signal over `[start, now]`.
    ///
    /// Returns `0.0` if no time has elapsed.
    pub fn average(&self, now: Time) -> f64 {
        let total = (now - self.start).as_f64();
        if total == 0.0 {
            return 0.0;
        }
        let tail = (now - self.last_change).as_f64() * self.value;
        (self.integral + tail) / total
    }

    fn advance(&mut self, now: Time) {
        debug_assert!(now >= self.last_change, "time went backwards");
        self.integral += (now - self.last_change).as_f64() * self.value;
        self.last_change = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{Dur, Time};

    fn t(x: u64) -> Time {
        Time::from_ticks(x)
    }

    #[test]
    fn square_wave_average() {
        let mut w = TimeWeighted::new(t(0), 0.0);
        w.set(t(10), 1.0); // 0 for 10 ticks
        w.set(t(30), 0.0); // 1 for 20 ticks
                           // average over [0, 40] = 20/40
        assert!((w.average(t(40)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn average_includes_open_tail() {
        let mut w = TimeWeighted::new(t(0), 2.0);
        w.set(t(5), 4.0);
        // [0,5): 2, [5,15): 4 -> (10 + 40)/15
        assert!((w.average(t(15)) - 50.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn add_tracks_queue_length() {
        let mut w = TimeWeighted::new(t(0), 0.0);
        w.add(t(1), 1.0);
        w.add(t(2), 1.0);
        w.add(t(4), -1.0);
        assert_eq!(w.value(), 1.0);
        assert_eq!(w.max(), 2.0);
        // integral: [1,2)=1, [2,4)=2*2=4, [4,6)=1*2=2 => 7/6
        assert!((w.average(t(6)) - 7.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn zero_elapsed_time_is_zero_average() {
        let w = TimeWeighted::new(t(5), 3.0);
        assert_eq!(w.average(t(5)), 0.0);
    }

    #[test]
    fn nonzero_start_offsets_window() {
        let mut w = TimeWeighted::new(t(100), 1.0);
        w.set(t(100) + Dur::from_ticks(10), 0.0);
        assert!((w.average(t(120)) - 0.5).abs() < 1e-12);
    }
}
