//! Fixed-width-bin histograms with quantile estimation.

/// A histogram with `bins` equal-width buckets over `[lo, hi)` plus
/// underflow/overflow buckets. Quantiles are estimated by linear
/// interpolation inside the containing bucket.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    width: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` buckets.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(hi > lo, "hi must exceed lo");
        Histogram {
            lo,
            width: (hi - lo) / bins as f64,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        let idx = ((x - self.lo) / self.width) as usize;
        if idx >= self.counts.len() {
            self.overflow += 1;
        } else {
            self.counts[idx] += 1;
        }
    }

    /// Total number of observations (including under/overflow).
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Observations below the histogram range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the histogram range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Count in bucket `i`.
    pub fn bin_count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Number of buckets (excluding under/overflow).
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// The `[lo, hi)` bounds of bucket `i`.
    pub fn bin_bounds(&self, i: usize) -> (f64, f64) {
        let lo = self.lo + self.width * i as f64;
        (lo, lo + self.width)
    }

    /// Empirical fraction of observations strictly below `x` (underflow
    /// counts as below; overflow as above). Within the containing bucket the
    /// mass is assumed uniform.
    pub fn cdf(&self, x: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        if x <= self.lo {
            return self.underflow as f64 / self.total as f64;
        }
        let mut below = self.underflow;
        let idx = ((x - self.lo) / self.width) as usize;
        for (i, &c) in self.counts.iter().enumerate() {
            if i < idx {
                below += c;
            } else {
                break;
            }
        }
        let mut frac = below as f64;
        if idx < self.counts.len() {
            let (blo, _) = self.bin_bounds(idx);
            frac += self.counts[idx] as f64 * ((x - blo) / self.width).clamp(0.0, 1.0);
        } else {
            // x beyond the histogram range: everything except overflow is below.
            frac = (self.total - self.overflow) as f64;
        }
        frac / self.total as f64
    }

    /// Estimates the `q`-quantile (`q ∈ [0,1]`).
    ///
    /// Returns `None` if the histogram is empty or the quantile falls in the
    /// under/overflow mass (where no value estimate is possible).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q));
        if self.total == 0 {
            return None;
        }
        let target = q * self.total as f64;
        let mut acc = self.underflow as f64;
        if target < acc {
            return None;
        }
        for (i, &c) in self.counts.iter().enumerate() {
            let next = acc + c as f64;
            if target <= next && c > 0 {
                let (blo, _) = self.bin_bounds(i);
                let inside = (target - acc) / c as f64;
                return Some(blo + inside * self.width);
            }
            acc = next;
        }
        None
    }

    /// Mean estimated from bucket midpoints (ignores under/overflow).
    pub fn approximate_mean(&self) -> f64 {
        let in_range: u64 = self.counts.iter().sum();
        if in_range == 0 {
            return 0.0;
        }
        let mut s = 0.0;
        for (i, &c) in self.counts.iter().enumerate() {
            let (blo, bhi) = self.bin_bounds(i);
            s += c as f64 * 0.5 * (blo + bhi);
        }
        s / in_range as f64
    }
}

impl Histogram {
    /// Serializes the histogram's full state (binning and counts) for an
    /// engine checkpoint.
    pub fn save_state(&self, w: &mut crate::snap::SnapWriter) {
        w.push_f64(self.lo);
        w.push_f64(self.width);
        w.push_usize(self.counts.len());
        for &c in &self.counts {
            w.push(c);
        }
        w.push(self.underflow);
        w.push(self.overflow);
        w.push(self.total);
    }

    /// Rebuilds a histogram from checkpoint state written by
    /// [`Histogram::save_state`].
    pub fn load_state(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::SnapError> {
        let lo = r.take_f64()?;
        let width = r.take_f64()?;
        let bins = r.take_len()?;
        let mut counts = Vec::with_capacity(bins);
        for _ in 0..bins {
            counts.push(r.take()?);
        }
        Ok(Histogram {
            lo,
            width,
            counts,
            underflow: r.take()?,
            overflow: r.take()?,
            total: r.take()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_and_bounds() {
        let h = Histogram::new(0.0, 10.0, 5);
        assert_eq!(h.bins(), 5);
        assert_eq!(h.bin_bounds(0), (0.0, 2.0));
        assert_eq!(h.bin_bounds(4), (8.0, 10.0));
    }

    #[test]
    fn records_into_correct_buckets() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record(-1.0);
        h.record(0.0);
        h.record(1.99);
        h.record(2.0);
        h.record(9.99);
        h.record(10.0);
        h.record(100.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bin_count(0), 2);
        assert_eq!(h.bin_count(1), 1);
        assert_eq!(h.bin_count(4), 1);
        assert_eq!(h.count(), 7);
    }

    #[test]
    fn cdf_of_uniform_fill() {
        let mut h = Histogram::new(0.0, 1.0, 100);
        for i in 0..1000 {
            h.record(i as f64 / 1000.0);
        }
        assert!((h.cdf(0.5) - 0.5).abs() < 0.01);
        assert!((h.cdf(0.25) - 0.25).abs() < 0.01);
        assert_eq!(h.cdf(2.0), 1.0);
        assert_eq!(h.cdf(0.0), 0.0);
    }

    #[test]
    fn quantiles_of_uniform_fill() {
        let mut h = Histogram::new(0.0, 1.0, 100);
        for i in 0..10_000 {
            h.record(i as f64 / 10_000.0);
        }
        let med = h.quantile(0.5).unwrap();
        assert!((med - 0.5).abs() < 0.02, "median = {med}");
        let p95 = h.quantile(0.95).unwrap();
        assert!((p95 - 0.95).abs() < 0.02, "p95 = {p95}");
    }

    #[test]
    fn quantile_in_overflow_is_none() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        h.record(5.0);
        h.record(6.0);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new(0.0, 1.0, 10);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.cdf(0.5), 0.0);
        assert_eq!(h.approximate_mean(), 0.0);
    }

    #[test]
    fn approximate_mean_tracks_true_mean() {
        let mut h = Histogram::new(0.0, 10.0, 1000);
        for i in 0..10_000 {
            h.record((i % 100) as f64 / 10.0);
        }
        assert!((h.approximate_mean() - 4.95).abs() < 0.02);
    }
}
