//! Batch-means confidence intervals for steady-state estimates.

use super::Tally;

/// Student-t 97.5% quantiles for small degrees of freedom; beyond the table
/// the normal quantile 1.96 is used.
const T_975: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

fn t975(df: u64) -> f64 {
    if df == 0 {
        f64::INFINITY
    } else if df <= 30 {
        T_975[(df - 1) as usize]
    } else {
        1.96
    }
}

/// The method of batch means: consecutive observations are grouped into
/// fixed-size batches whose averages are approximately independent, giving a
/// defensible confidence interval for autocorrelated simulation output
/// (e.g. successive message delays in a queue).
#[derive(Clone, Debug)]
pub struct BatchMeans {
    batch_size: u64,
    current_sum: f64,
    current_n: u64,
    batches: Tally,
    all: Tally,
}

impl BatchMeans {
    /// Creates a collector with the given batch size (observations per
    /// batch).
    ///
    /// # Panics
    /// Panics if `batch_size == 0`.
    pub fn new(batch_size: u64) -> Self {
        assert!(batch_size > 0);
        BatchMeans {
            batch_size,
            current_sum: 0.0,
            current_n: 0,
            batches: Tally::new(),
            all: Tally::new(),
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.all.record(x);
        self.current_sum += x;
        self.current_n += 1;
        if self.current_n == self.batch_size {
            self.batches
                .record(self.current_sum / self.batch_size as f64);
            self.current_sum = 0.0;
            self.current_n = 0;
        }
    }

    /// Overall sample mean across all observations (including a partial
    /// final batch).
    pub fn mean(&self) -> f64 {
        self.all.mean()
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.all.count()
    }

    /// Number of completed batches.
    pub fn completed_batches(&self) -> u64 {
        self.batches.count()
    }

    /// Half-width of the 95% confidence interval from the batch means.
    ///
    /// Returns `None` until at least two batches are complete.
    pub fn ci95_half_width(&self) -> Option<f64> {
        let k = self.batches.count();
        if k < 2 {
            return None;
        }
        let se = self.batches.std_dev() / (k as f64).sqrt();
        Some(t975(k - 1) * se)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn mean_matches_plain_average() {
        let mut bm = BatchMeans::new(10);
        for i in 0..105 {
            bm.record(i as f64);
        }
        assert_eq!(bm.count(), 105);
        assert_eq!(bm.completed_batches(), 10);
        assert!((bm.mean() - 52.0).abs() < 1e-9);
    }

    #[test]
    fn no_ci_until_two_batches() {
        let mut bm = BatchMeans::new(100);
        for i in 0..150 {
            bm.record(i as f64);
        }
        assert_eq!(bm.ci95_half_width(), None);
        for i in 0..50 {
            bm.record(i as f64);
        }
        assert!(bm.ci95_half_width().is_some());
    }

    #[test]
    fn iid_coverage_is_reasonable() {
        // For i.i.d. uniform data, the 95% CI should contain the true mean
        // in most replications.
        let mut covered = 0;
        for seed in 0..200u64 {
            let mut rng = Rng::new(seed);
            let mut bm = BatchMeans::new(50);
            for _ in 0..2_500 {
                bm.record(rng.f64());
            }
            let hw = bm.ci95_half_width().unwrap();
            if (bm.mean() - 0.5).abs() <= hw {
                covered += 1;
            }
        }
        // nominal coverage 95%; accept anything above 85% to keep the test
        // robust to the fixed seed set
        assert!(covered >= 170, "covered {covered}/200");
    }

    #[test]
    fn t_table_lookup() {
        assert!((t975(1) - 12.706).abs() < 1e-9);
        assert!((t975(30) - 2.042).abs() < 1e-9);
        assert!((t975(1000) - 1.96).abs() < 1e-9);
        assert!(t975(0).is_infinite());
    }
}
