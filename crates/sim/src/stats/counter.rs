//! Event counters for ratio estimates (loss probabilities).

/// Counts "marked" events against a total, reporting their ratio together
/// with a normal-approximation confidence interval for the proportion.
///
/// This is the estimator used for the paper's headline metric: the fraction
/// of messages **not** delivered within the time constraint `K`.
#[derive(Clone, Debug, Default)]
pub struct RatioCounter {
    marked: u64,
    total: u64,
}

impl RatioCounter {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one event; `marked` says whether it counts toward the ratio.
    pub fn record(&mut self, marked: bool) {
        self.total += 1;
        if marked {
            self.marked += 1;
        }
    }

    /// Records a marked event.
    pub fn hit(&mut self) {
        self.record(true);
    }

    /// Records an unmarked event.
    pub fn miss(&mut self) {
        self.record(false);
    }

    /// Number of marked events.
    pub fn marked(&self) -> u64 {
        self.marked
    }

    /// Total number of events.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Ratio of marked events; `0.0` when empty.
    pub fn ratio(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.marked as f64 / self.total as f64
        }
    }

    /// Half-width of the 95% normal-approximation confidence interval for
    /// the proportion. Returns `0.0` when empty.
    pub fn ci95_half_width(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let p = self.ratio();
        1.96 * (p * (1.0 - p) / self.total as f64).sqrt()
    }

    /// Merges another counter's observations into this one.
    pub fn merge(&mut self, other: &RatioCounter) {
        self.marked += other.marked;
        self.total += other.total;
    }
}

impl RatioCounter {
    /// Serializes the counter's state for an engine checkpoint.
    pub fn save_state(&self, w: &mut crate::snap::SnapWriter) {
        w.push(self.marked);
        w.push(self.total);
    }

    /// Rebuilds a counter from checkpoint state written by
    /// [`RatioCounter::save_state`].
    pub fn load_state(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::SnapError> {
        Ok(RatioCounter {
            marked: r.take()?,
            total: r.take()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_counts() {
        let mut c = RatioCounter::new();
        c.hit();
        c.miss();
        c.miss();
        c.record(true);
        assert_eq!(c.marked(), 2);
        assert_eq!(c.total(), 4);
        assert!((c.ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_ratio_is_zero() {
        let c = RatioCounter::new();
        assert_eq!(c.ratio(), 0.0);
        assert_eq!(c.ci95_half_width(), 0.0);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let mut small = RatioCounter::new();
        let mut large = RatioCounter::new();
        for i in 0..100 {
            small.record(i % 2 == 0);
        }
        for i in 0..10_000 {
            large.record(i % 2 == 0);
        }
        assert!(large.ci95_half_width() < small.ci95_half_width());
        // 1.96 * sqrt(0.25/10000) = 0.0098
        assert!((large.ci95_half_width() - 0.0098).abs() < 1e-4);
    }

    #[test]
    fn merge_adds() {
        let mut a = RatioCounter::new();
        a.hit();
        let mut b = RatioCounter::new();
        b.miss();
        b.miss();
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.marked(), 1);
    }
}
