//! Welford online mean/variance tally.

/// Accumulates observations and reports count, mean, variance, min and max.
///
/// Uses Welford's numerically stable recurrence, so it is safe for long runs
/// with values of very different magnitude.
#[derive(Clone, Debug, Default)]
pub struct Tally {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Tally {
    /// Creates an empty tally.
    pub fn new() -> Self {
        Tally {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance; `0.0` with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; `+inf` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `-inf` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }

    /// Merges another tally into this one (parallel-reduction friendly).
    pub fn merge(&mut self, other: &Tally) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Tally {
    /// Serializes the tally's state for an engine checkpoint.
    pub fn save_state(&self, w: &mut crate::snap::SnapWriter) {
        w.push(self.n);
        w.push_f64(self.mean);
        w.push_f64(self.m2);
        w.push_f64(self.min);
        w.push_f64(self.max);
    }

    /// Rebuilds a tally from checkpoint state written by
    /// [`Tally::save_state`].
    pub fn load_state(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::SnapError> {
        Ok(Tally {
            n: r.take()?,
            mean: r.take_f64()?,
            m2: r.take_f64()?,
            min: r.take_f64()?,
            max: r.take_f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let mut t = Tally::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            t.record(x);
        }
        assert_eq!(t.count(), 8);
        assert!((t.mean() - 5.0).abs() < 1e-12);
        // population variance 4.0 => sample variance 32/7
        assert!((t.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(t.min(), 2.0);
        assert_eq!(t.max(), 9.0);
        assert!((t.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn empty_is_sane() {
        let t = Tally::new();
        assert_eq!(t.count(), 0);
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.variance(), 0.0);
    }

    #[test]
    fn single_observation_has_zero_variance() {
        let mut t = Tally::new();
        t.record(3.0);
        assert_eq!(t.variance(), 0.0);
        assert_eq!(t.mean(), 3.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Tally::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = Tally::new();
        let mut b = Tally::new();
        for &x in &xs[..37] {
            a.record(x);
        }
        for &x in &xs[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Tally::new();
        a.record(1.0);
        a.record(2.0);
        let before = (a.count(), a.mean(), a.variance());
        a.merge(&Tally::new());
        assert_eq!(before, (a.count(), a.mean(), a.variance()));

        let mut empty = Tally::new();
        let mut b = Tally::new();
        b.record(5.0);
        empty.merge(&b);
        assert_eq!(empty.count(), 1);
        assert_eq!(empty.mean(), 5.0);
    }
}
