//! Online statistics for simulation output analysis.
//!
//! All collectors are *online* (O(1) memory per observation) and never
//! allocate on the observation path, so they can be sampled inside the inner
//! simulation loop:
//!
//! * [`Tally`] — Welford mean/variance/min/max of plain observations;
//! * [`TimeWeighted`] — time-averaged piecewise-constant signals (queue
//!   lengths, busy indicators);
//! * [`Histogram`] — fixed-width bins with overflow, quantile estimates;
//! * [`RatioCounter`] — counted events over a denominator (loss ratios);
//! * [`BatchMeans`] — batch-means confidence intervals for steady-state
//!   simulation estimates;
//! * [`P2Quantile`] — O(1)-memory online quantile estimation (tail-delay
//!   percentiles).
//!
//! [`MetricSink`] is the push-style enumeration interface metric
//! *producers* use to expose these collectors to an observability
//! registry without depending on one.

mod batch;
mod counter;
mod histogram;
mod quantile;
mod sink;
mod tally;
mod timeweighted;

pub use batch::BatchMeans;
pub use counter::RatioCounter;
pub use histogram::Histogram;
pub use quantile::P2Quantile;
pub use sink::MetricSink;
pub use tally::Tally;
pub use timeweighted::TimeWeighted;
