//! A push-style enumeration interface for metric producers.
//!
//! Subsystems that accumulate counters and online statistics (the engine's
//! [`super::Tally`]s, the channel accounting, the churn process, the
//! divergence detector) expose an `emit`-style method that pushes every
//! named value into a [`MetricSink`]. The sink decides what to do with
//! them — the observability registry keeps labelled samples for
//! Prometheus/JSON export, while tests can collect them into a map.
//!
//! The indirection points one way only: producers know the trait, never a
//! concrete registry, so the simulation crates stay free of any
//! observability dependency and the hot path is untouched (emission
//! happens once per run, after the fact).

use super::{Histogram, Tally};

/// Receives named metric values pushed by a producer.
///
/// Only [`MetricSink::counter`] and [`MetricSink::gauge`] are required;
/// the composite methods have conservative defaults that decompose into
/// scalar samples. Sinks that can represent richer shapes (a Prometheus
/// histogram, say) override them.
///
/// Naming convention: `snake_case`, `tcw_`-prefixed, matching the
/// Prometheus exposition-format grammar (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
pub trait MetricSink {
    /// A monotonically increasing count.
    fn counter(&mut self, name: &str, help: &str, value: u64);

    /// A point-in-time scalar.
    fn gauge(&mut self, name: &str, help: &str, value: f64);

    /// A [`Tally`] of observations. The default decomposes into a count
    /// plus mean/min/max gauges (omitted while empty, when they are
    /// `NaN`/infinite).
    fn tally(&mut self, name: &str, help: &str, t: &Tally) {
        self.counter(&format!("{name}_count"), help, t.count());
        if t.count() > 0 {
            self.gauge(&format!("{name}_mean"), help, t.mean());
            self.gauge(&format!("{name}_min"), help, t.min());
            self.gauge(&format!("{name}_max"), help, t.max());
        }
    }

    /// A binned [`Histogram`]. The default records only the counts; the
    /// observability registry overrides this to keep the full bin
    /// structure.
    fn histogram(&mut self, name: &str, help: &str, h: &Histogram) {
        self.counter(&format!("{name}_count"), help, h.count());
        self.counter(&format!("{name}_underflow"), help, h.underflow());
        self.counter(&format!("{name}_overflow"), help, h.overflow());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct MapSink {
        counters: Vec<(String, u64)>,
        gauges: Vec<(String, f64)>,
    }

    impl MetricSink for MapSink {
        fn counter(&mut self, name: &str, _help: &str, value: u64) {
            self.counters.push((name.to_string(), value));
        }
        fn gauge(&mut self, name: &str, _help: &str, value: f64) {
            self.gauges.push((name.to_string(), value));
        }
    }

    #[test]
    fn default_tally_decomposition() {
        let mut t = Tally::new();
        let mut s = MapSink::default();
        s.tally("x", "help", &t);
        assert_eq!(s.counters, vec![("x_count".to_string(), 0)]);
        assert!(s.gauges.is_empty());
        t.record(1.0);
        t.record(3.0);
        let mut s = MapSink::default();
        s.tally("x", "help", &t);
        assert_eq!(s.counters, vec![("x_count".to_string(), 2)]);
        assert_eq!(
            s.gauges,
            vec![
                ("x_mean".to_string(), 2.0),
                ("x_min".to_string(), 1.0),
                ("x_max".to_string(), 3.0),
            ]
        );
    }

    #[test]
    fn default_histogram_decomposition() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record(1.0);
        h.record(99.0);
        let mut s = MapSink::default();
        s.histogram("h", "help", &h);
        assert_eq!(
            s.counters,
            vec![
                ("h_count".to_string(), 2),
                ("h_underflow".to_string(), 0),
                ("h_overflow".to_string(), 1),
            ]
        );
    }
}
