//! P² (piecewise-parabolic) online quantile estimation.
//!
//! Jain & Chlamtac's P² algorithm estimates a single quantile in O(1)
//! memory without storing observations — the right tool for tail-delay
//! percentiles (p95/p99 waiting times) over long simulation runs, where a
//! bounded histogram would clip and a full sample would not fit.

/// Online estimator of one quantile via the P² algorithm.
#[derive(Clone, Debug)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights (estimates of the quantile curve).
    heights: [f64; 5],
    /// Marker positions (1-based observation ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments per observation.
    increments: [f64; 5],
    count: u64,
}

impl P2Quantile {
    /// Creates an estimator for the `q`-quantile (`0 < q < 1`).
    ///
    /// # Panics
    /// Panics if `q` is outside `(0, 1)`.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0,1)");
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
        }
    }

    /// The quantile being estimated.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        if self.count < 5 {
            self.heights[self.count as usize] = x;
            self.count += 1;
            if self.count == 5 {
                self.heights
                    .sort_by(|a, b| a.partial_cmp(b).expect("NaN observation"));
            }
            return;
        }
        self.count += 1;

        // Find the cell containing x and update extreme markers.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x < self.heights[1] {
            0
        } else if x < self.heights[2] {
            1
        } else if x < self.heights[3] {
            2
        } else if x <= self.heights[4] {
            3
        } else {
            self.heights[4] = x;
            3
        };

        for p in &mut self.positions[k + 1..] {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(&self.increments) {
            *d += inc;
        }

        // Adjust interior markers toward their desired positions.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right_gap = self.positions[i + 1] - self.positions[i];
            let left_gap = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0) {
                let d = d.signum();
                let candidate = self.parabolic(i, d);
                self.heights[i] =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, d)
                    };
                self.positions[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (hm, h, hp) = (self.heights[i - 1], self.heights[i], self.heights[i + 1]);
        let (nm, n, np) = (
            self.positions[i - 1],
            self.positions[i],
            self.positions[i + 1],
        );
        h + d / (np - nm)
            * ((n - nm + d) * (hp - h) / (np - n) + (np - n - d) * (h - hm) / (n - nm))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = (i as f64 + d) as usize;
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// The current quantile estimate.
    ///
    /// With fewer than five observations, returns the exact sample
    /// quantile of what has been seen (`None` when empty).
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.count < 5 {
            let mut seen: Vec<f64> = self.heights[..self.count as usize].to_vec();
            seen.sort_by(|a, b| a.partial_cmp(b).expect("NaN observation"));
            let idx = ((self.count as f64 - 1.0) * self.q).round() as usize;
            return Some(seen[idx]);
        }
        Some(self.heights[2])
    }
}

impl P2Quantile {
    /// Serializes the estimator's state for an engine checkpoint.
    pub fn save_state(&self, w: &mut crate::snap::SnapWriter) {
        w.push_f64(self.q);
        for x in self
            .heights
            .iter()
            .chain(&self.positions)
            .chain(&self.desired)
            .chain(&self.increments)
        {
            w.push_f64(*x);
        }
        w.push(self.count);
    }

    /// Rebuilds an estimator from checkpoint state written by
    /// [`P2Quantile::save_state`].
    pub fn load_state(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::SnapError> {
        let q = r.take_f64()?;
        let mut arrays = [[0.0f64; 5]; 4];
        for a in arrays.iter_mut() {
            for x in a.iter_mut() {
                *x = r.take_f64()?;
            }
        }
        Ok(P2Quantile {
            q,
            heights: arrays[0],
            positions: arrays[1],
            desired: arrays[2],
            increments: arrays[3],
            count: r.take()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn uniform_median() {
        let mut est = P2Quantile::new(0.5);
        let mut rng = Rng::new(1);
        for _ in 0..100_000 {
            est.record(rng.f64());
        }
        let m = est.estimate().unwrap();
        assert!((m - 0.5).abs() < 0.01, "median = {m}");
    }

    #[test]
    fn uniform_p95_and_p99() {
        let mut p95 = P2Quantile::new(0.95);
        let mut p99 = P2Quantile::new(0.99);
        let mut rng = Rng::new(2);
        for _ in 0..200_000 {
            let x = rng.f64();
            p95.record(x);
            p99.record(x);
        }
        let a = p95.estimate().unwrap();
        let b = p99.estimate().unwrap();
        assert!((a - 0.95).abs() < 0.01, "p95 = {a}");
        assert!((b - 0.99).abs() < 0.005, "p99 = {b}");
        assert!(b > a);
    }

    #[test]
    fn exponential_tail_quantile() {
        // p90 of Exp(1) is ln(10) ≈ 2.3026.
        let mut est = P2Quantile::new(0.9);
        let mut rng = Rng::new(3);
        for _ in 0..300_000 {
            est.record(-rng.f64_open_left().ln());
        }
        let x = est.estimate().unwrap();
        assert!((x - 10f64.ln()).abs() < 0.05, "p90 = {x}");
    }

    #[test]
    fn small_samples_are_exact() {
        let mut est = P2Quantile::new(0.5);
        assert_eq!(est.estimate(), None);
        est.record(3.0);
        assert_eq!(est.estimate(), Some(3.0));
        est.record(1.0);
        est.record(2.0);
        // exact median of {1,2,3}
        assert_eq!(est.estimate(), Some(2.0));
        assert_eq!(est.count(), 3);
    }

    #[test]
    fn constant_stream() {
        let mut est = P2Quantile::new(0.75);
        for _ in 0..1000 {
            est.record(7.0);
        }
        assert_eq!(est.estimate(), Some(7.0));
    }

    #[test]
    fn sorted_and_reverse_sorted_streams_agree() {
        let n = 50_000;
        let mut fwd = P2Quantile::new(0.9);
        let mut rev = P2Quantile::new(0.9);
        for i in 0..n {
            fwd.record(i as f64);
            rev.record((n - 1 - i) as f64);
        }
        let expect = 0.9 * (n as f64 - 1.0);
        let f = fwd.estimate().unwrap();
        let r = rev.estimate().unwrap();
        assert!((f - expect).abs() / expect < 0.02, "fwd {f} vs {expect}");
        assert!((r - expect).abs() / expect < 0.02, "rev {r} vs {expect}");
    }

    #[test]
    #[should_panic]
    fn invalid_quantile_panics() {
        P2Quantile::new(1.0);
    }
}
