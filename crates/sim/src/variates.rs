//! Random-variate generators on top of [`Rng`].
//!
//! Each distribution is a small value type with a `sample(&mut Rng)` method;
//! they are deliberately stateless so a single generator instance can be
//! shared across model components while all randomness flows through an
//! explicitly-seeded [`Rng`].

use crate::rng::Rng;

/// Continuous uniform distribution on `[lo, hi)`.
#[derive(Clone, Copy, Debug)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates `U[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi);
        Uniform { lo, hi }
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        self.lo + (self.hi - self.lo) * rng.f64()
    }
}

/// Exponential distribution with the given rate `lambda` (mean `1/lambda`).
#[derive(Clone, Copy, Debug)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential with rate `lambda > 0`.
    ///
    /// # Panics
    /// Panics if `rate` is not strictly positive and finite.
    pub fn new(rate: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "rate must be > 0");
        Exponential { rate }
    }

    /// Creates an exponential with the given mean.
    pub fn with_mean(mean: f64) -> Self {
        Self::new(1.0 / mean)
    }

    /// The rate parameter.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Draws one sample by inversion.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        -rng.f64_open_left().ln() / self.rate
    }
}

/// Geometric distribution on `{1, 2, 3, ...}` (number of Bernoulli trials up
/// to and including the first success), with success probability `p`.
///
/// The mean is `1/p`. A geometric on `{0, 1, ...}` is obtained by
/// subtracting one from the sample.
#[derive(Clone, Copy, Debug)]
pub struct Geometric {
    p: f64,
}

impl Geometric {
    /// Creates a geometric with success probability `p ∈ (0, 1]`.
    ///
    /// # Panics
    /// Panics if `p` is outside `(0, 1]`.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p <= 1.0, "p must be in (0,1], got {p}");
        Geometric { p }
    }

    /// Creates a geometric on `{1,2,...}` with the given mean (`>= 1`).
    pub fn with_mean(mean: f64) -> Self {
        assert!(mean >= 1.0, "geometric mean must be >= 1, got {mean}");
        Self::new(1.0 / mean)
    }

    /// The per-trial success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Draws one sample by inversion of the CDF.
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        if self.p >= 1.0 {
            return 1;
        }
        let u = rng.f64_open_left();
        // ceil(ln(u) / ln(1-p)) has the geometric law on {1,2,...}.
        let x = (u.ln() / (1.0 - self.p).ln()).ceil();
        if x < 1.0 {
            1
        } else if x >= u64::MAX as f64 {
            u64::MAX
        } else {
            x as u64
        }
    }
}

/// Poisson distribution with the given mean.
#[derive(Clone, Copy, Debug)]
pub struct Poisson {
    mean: f64,
}

impl Poisson {
    /// Creates a Poisson with mean `>= 0`.
    ///
    /// # Panics
    /// Panics if `mean` is negative or not finite.
    pub fn new(mean: f64) -> Self {
        assert!(mean.is_finite() && mean >= 0.0);
        Poisson { mean }
    }

    /// Draws one sample.
    ///
    /// Uses Knuth's product method for small means and a normal
    /// approximation with continuity correction for large means (`> 60`,
    /// where the relative error of the approximation is far below the Monte
    /// Carlo noise of any use in this workspace).
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        if self.mean == 0.0 {
            return 0;
        }
        if self.mean <= 60.0 {
            let l = (-self.mean).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= rng.f64_open_left();
                if p <= l {
                    return k;
                }
                k += 1;
            }
        } else {
            // Box-Muller normal approximation.
            let u1 = rng.f64_open_left();
            let u2 = rng.f64();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            let x = self.mean + self.mean.sqrt() * z + 0.5;
            if x < 0.0 {
                0
            } else {
                x as u64
            }
        }
    }
}

/// Erlang-`k` distribution (sum of `k` i.i.d. exponentials).
#[derive(Clone, Copy, Debug)]
pub struct Erlang {
    k: u32,
    stage: Exponential,
}

impl Erlang {
    /// Creates an Erlang with `k >= 1` stages and total mean `mean`.
    ///
    /// # Panics
    /// Panics if `k == 0` or `mean <= 0`.
    pub fn new(k: u32, mean: f64) -> Self {
        assert!(k >= 1);
        assert!(mean > 0.0);
        Erlang {
            k,
            stage: Exponential::with_mean(mean / f64::from(k)),
        }
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        (0..self.k).map(|_| self.stage.sample(rng)).sum()
    }
}

/// Two-phase hyperexponential distribution: with probability `p1` the sample
/// is `Exp(rate1)`, otherwise `Exp(rate2)`. Useful for high-variance service
/// time models.
#[derive(Clone, Copy, Debug)]
pub struct HyperExponential {
    p1: f64,
    e1: Exponential,
    e2: Exponential,
}

impl HyperExponential {
    /// Creates the mixture `p1·Exp(rate1) + (1-p1)·Exp(rate2)`.
    ///
    /// # Panics
    /// Panics if `p1` is outside `[0,1]` or the rates are invalid.
    pub fn new(p1: f64, rate1: f64, rate2: f64) -> Self {
        assert!((0.0..=1.0).contains(&p1));
        HyperExponential {
            p1,
            e1: Exponential::new(rate1),
            e2: Exponential::new(rate2),
        }
    }

    /// The mean of the mixture.
    pub fn mean(&self) -> f64 {
        self.p1 / self.e1.rate() + (1.0 - self.p1) / self.e2.rate()
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        if rng.chance(self.p1) {
            self.e1.sample(rng)
        } else {
            self.e2.sample(rng)
        }
    }
}

/// An empirical discrete distribution over `0..pmf.len()`, sampled by
/// inversion of the cumulative table.
#[derive(Clone, Debug)]
pub struct EmpiricalDiscrete {
    cdf: Vec<f64>,
}

impl EmpiricalDiscrete {
    /// Builds the sampler from a (not necessarily normalized) weight table.
    ///
    /// # Panics
    /// Panics if the table is empty, any weight is negative, or all weights
    /// are zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty());
        assert!(weights.iter().all(|&w| w >= 0.0 && w.is_finite()));
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "all weights are zero");
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            acc += w / total;
            cdf.push(acc);
        }
        *cdf.last_mut().unwrap() = 1.0;
        EmpiricalDiscrete { cdf }
    }

    /// Draws an index in `0..len` with probability proportional to its
    /// weight.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.f64();
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
            Ok(i) => i + 1, // u equal to a cdf point belongs to the next bin
            Err(i) => i,
        }
        .min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_of(n: usize, mut f: impl FnMut() -> f64) -> f64 {
        (0..n).map(|_| f()).sum::<f64>() / n as f64
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let mut rng = Rng::new(1);
        let u = Uniform::new(2.0, 6.0);
        let m = mean_of(50_000, || {
            let x = u.sample(&mut rng);
            assert!((2.0..6.0).contains(&x));
            x
        });
        assert!((m - 4.0).abs() < 0.05, "mean = {m}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = Rng::new(2);
        let e = Exponential::with_mean(3.0);
        let m = mean_of(100_000, || e.sample(&mut rng));
        assert!((m - 3.0).abs() < 0.05, "mean = {m}");
    }

    #[test]
    fn exponential_memoryless_tail() {
        let mut rng = Rng::new(3);
        let e = Exponential::new(1.0);
        let n = 100_000;
        let above1 = (0..n).filter(|_| e.sample(&mut rng) > 1.0).count() as f64 / n as f64;
        assert!((above1 - (-1.0f64).exp()).abs() < 0.01);
    }

    #[test]
    fn geometric_mean_and_support() {
        let mut rng = Rng::new(4);
        let g = Geometric::with_mean(4.0);
        let m = mean_of(100_000, || {
            let x = g.sample(&mut rng);
            assert!(x >= 1);
            x as f64
        });
        assert!((m - 4.0).abs() < 0.1, "mean = {m}");
    }

    #[test]
    fn geometric_p1_is_constant_one() {
        let mut rng = Rng::new(5);
        let g = Geometric::new(1.0);
        for _ in 0..100 {
            assert_eq!(g.sample(&mut rng), 1);
        }
    }

    #[test]
    fn poisson_small_mean() {
        let mut rng = Rng::new(6);
        let p = Poisson::new(2.5);
        let m = mean_of(100_000, || p.sample(&mut rng) as f64);
        assert!((m - 2.5).abs() < 0.05, "mean = {m}");
    }

    #[test]
    fn poisson_zero_mean() {
        let mut rng = Rng::new(7);
        assert_eq!(Poisson::new(0.0).sample(&mut rng), 0);
    }

    #[test]
    fn poisson_large_mean_normal_path() {
        let mut rng = Rng::new(8);
        let p = Poisson::new(200.0);
        let m = mean_of(50_000, || p.sample(&mut rng) as f64);
        assert!((m - 200.0).abs() < 1.0, "mean = {m}");
    }

    #[test]
    fn erlang_mean_and_variance() {
        let mut rng = Rng::new(9);
        let e = Erlang::new(4, 8.0);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| e.sample(&mut rng)).collect();
        let m = xs.iter().sum::<f64>() / n as f64;
        let v = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / n as f64;
        assert!((m - 8.0).abs() < 0.1, "mean = {m}");
        // Var = mean^2 / k = 16
        assert!((v - 16.0).abs() < 0.8, "var = {v}");
    }

    #[test]
    fn hyperexponential_mean() {
        let mut rng = Rng::new(10);
        let h = HyperExponential::new(0.3, 1.0, 0.1);
        let expect = h.mean();
        let m = mean_of(200_000, || h.sample(&mut rng));
        assert!(
            (m - expect).abs() / expect < 0.03,
            "mean = {m}, expect {expect}"
        );
    }

    #[test]
    fn empirical_discrete_frequencies() {
        let mut rng = Rng::new(11);
        let d = EmpiricalDiscrete::new(&[1.0, 0.0, 3.0]);
        let mut counts = [0u32; 3];
        for _ in 0..40_000 {
            counts[d.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        let frac0 = counts[0] as f64 / 40_000.0;
        assert!((frac0 - 0.25).abs() < 0.02, "counts = {counts:?}");
    }

    #[test]
    #[should_panic]
    fn empirical_all_zero_panics() {
        EmpiricalDiscrete::new(&[0.0, 0.0]);
    }
}
