//! A stable discrete-event queue.
//!
//! Events are ordered by their scheduled [`Time`]; events scheduled for the
//! same instant are delivered in FIFO (insertion) order. Stability matters
//! for reproducibility: `std::collections::BinaryHeap` alone is not stable,
//! so every entry carries a monotone sequence number used as a tie-breaker.

use crate::time::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A future-event list keyed by simulation time, stable for equal times.
///
/// ```
/// use tcw_sim::events::EventQueue;
/// use tcw_sim::time::Time;
///
/// let mut q = EventQueue::new();
/// q.schedule(Time::from_ticks(7), 'x');
/// q.schedule(Time::from_ticks(7), 'y');
/// q.schedule(Time::from_ticks(3), 'z');
/// assert_eq!(q.pop(), Some((Time::from_ticks(3), 'z')));
/// assert_eq!(q.pop(), Some((Time::from_ticks(7), 'x')));
/// assert_eq!(q.pop(), Some((Time::from_ticks(7), 'y')));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with capacity for `n` pending events.
    pub fn with_capacity(n: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(n),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at instant `at`.
    pub fn schedule(&mut self, at: Time, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// The instant of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Time;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        for &t in &[9u64, 1, 5, 3, 7] {
            q.schedule(Time::from_ticks(t), t);
        }
        let mut got = Vec::new();
        while let Some((_, e)) = q.pop() {
            got.push(e);
        }
        assert_eq!(got, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn fifo_for_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Time::from_ticks(42), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_len_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(Time::from_ticks(4), ());
        q.schedule(Time::from_ticks(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Time::from_ticks(2)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ticks(10), "late");
        q.schedule(Time::from_ticks(1), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        q.schedule(Time::from_ticks(5), "mid");
        assert_eq!(q.pop().unwrap().1, "mid");
        assert_eq!(q.pop().unwrap().1, "late");
    }
}
