//! Deterministic pseudo-random number generation.
//!
//! The generator is **xoshiro256++** seeded through **SplitMix64**, a
//! well-studied combination with a 2^256 − 1 period and excellent statistical
//! quality for simulation work. It is implemented here (≈60 lines) rather
//! than imported so that
//!
//! 1. random streams are identical on every platform and toolchain, forever
//!    (an external crate may legitimately change its stream in a major
//!    version bump, silently invalidating recorded experiment outputs), and
//! 2. the simulation core stays dependency-free.
//!
//! Independent substreams for different model components (arrivals per
//! station, service times, ...) are derived with [`Rng::fork`], which hashes
//! a label into a fresh seed; forked streams are statistically independent
//! and insensitive to the order in which other components draw numbers.

/// The `index`-th output of the SplitMix64 sequence seeded at `base`.
///
/// This is the master-seed stream for replicated experiments: replication
/// `r` of a run rooted at `base_seed` uses `stream_seed(base_seed, r)` as
/// its engine master seed, and the engine then forks its per-component
/// substreams ("policy", "coins", "source", "faults", "churn", per-station
/// arrivals) from that master seed. SplitMix64's state advance
/// (`+= GAMMA`) and output finalizer are both bijections on `u64`, so for
/// a fixed `base` all indices map to distinct seeds and for a fixed
/// `index` all bases map to distinct seeds — unlike an XOR-of-offsets
/// scheme, no (base, index) pair can collide with (base', index') unless
/// the underlying states already coincide.
///
/// The jump to position `index` is O(1): the SplitMix64 state after `n`
/// steps is `base + n·GAMMA`, so one more step from there yields output
/// `n`.
#[inline]
pub fn stream_seed(base: u64, index: u64) -> u64 {
    let mut state = base.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    splitmix64(&mut state)
}

/// SplitMix64 step: advances the state and returns the next output.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ generator.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// Any seed (including 0) is valid; the state is expanded through
    /// SplitMix64, which never produces the all-zero xoshiro state.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Returns the raw xoshiro256++ state, for engine checkpoints.
    ///
    /// Paired with [`Rng::from_state`]; the captured generator resumes its
    /// stream exactly where this one stands.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a state captured by [`Rng::state`].
    ///
    /// Only states that came from `state()` are meaningful; in particular
    /// the all-zero state (which `new` can never produce) yields a stuck
    /// generator, so snapshot decoders guard it behind a checksum.
    pub fn from_state(s: [u64; 4]) -> Self {
        Rng { s }
    }

    /// Derives an independent substream for component `label`.
    ///
    /// The label is mixed with fresh output of this generator, so two forks
    /// with the same label taken at different points differ, while a fixed
    /// fork sequence from a fixed seed is fully reproducible.
    pub fn fork(&mut self, label: &str) -> Rng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Rng::new(h ^ self.next_u64())
    }

    /// Derives an independent substream for the `index`-th instance of
    /// component `label` (e.g. one stream per station).
    ///
    /// Equivalent to [`Rng::fork`] with a label that also encodes `index`,
    /// so streams for different indices are statistically independent.
    pub fn fork_indexed(&mut self, label: &str, index: u64) -> Rng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h ^= index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Rng::new(h ^ self.next_u64())
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `(0, 1]` (never exactly zero; safe for `ln`).
    #[inline]
    pub fn f64_open_left(&mut self) -> f64 {
        1.0 - self.f64()
    }

    /// Uniform integer in `[0, bound)` using Lemire's unbiased method.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is undefined");
        // Lemire's multiply-shift rejection method.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(hi - lo + 1)
    }

    /// A Bernoulli trial with success probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::new(12345);
        let mut b = Rng::new(12345);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forks_are_reproducible_and_distinct() {
        let mut root1 = Rng::new(7);
        let mut root2 = Rng::new(7);
        let mut f1 = root1.fork("arrivals");
        let mut f2 = root2.fork("arrivals");
        assert_eq!(f1.next_u64(), f2.next_u64());

        let mut root = Rng::new(7);
        let mut a = root.fork("arrivals");
        let mut s = root.fork("service");
        assert_ne!(a.next_u64(), s.next_u64());
    }

    #[test]
    fn fork_indexed_is_reproducible_and_distinct() {
        let mut root1 = Rng::new(42);
        let mut root2 = Rng::new(42);
        let mut a = root1.fork_indexed("deaf", 3);
        let mut b = root2.fork_indexed("deaf", 3);
        assert_eq!(a.next_u64(), b.next_u64());

        let mut root = Rng::new(42);
        let mut x = root.fork_indexed("deaf", 0);
        let mut root = Rng::new(42);
        let mut y = root.fork_indexed("deaf", 1);
        assert_ne!(x.next_u64(), y.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(99);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.f64_open_left();
            assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = Rng::new(4242);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut r = Rng::new(5);
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            let x = r.below(7) as usize;
            counts[x] += 1;
        }
        for &c in &counts {
            // expectation 10_000 per bucket; allow generous slack
            assert!((9_000..11_000).contains(&c), "counts = {counts:?}");
        }
    }

    #[test]
    fn range_inclusive_covers_endpoints() {
        let mut r = Rng::new(6);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let x = r.range_inclusive(3, 5);
            assert!((3..=5).contains(&x), "out of range: {x}");
            saw_lo |= x == 3;
            saw_hi |= x == 5;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    #[should_panic]
    fn below_zero_panics() {
        Rng::new(0).below(0);
    }

    #[test]
    fn stream_seed_matches_splitmix_sequence() {
        // Position n of the jump formula equals n sequential steps.
        let base = 0xDEAD_BEEF_u64;
        let mut state = base;
        for i in 0..16 {
            assert_eq!(stream_seed(base, i), splitmix64(&mut state));
        }
    }

    #[test]
    fn stream_seed_is_collision_free_on_a_dense_grid() {
        // The old `base ^ (0x9E37 + r)` derivation collided whenever two
        // (base, r) pairs XORed to the same value; the SplitMix64 stream
        // cannot, because state advance and finalizer are bijections.
        let mut seen = std::collections::HashSet::new();
        for base in 0..64u64 {
            for idx in 0..64u64 {
                assert!(
                    seen.insert(stream_seed(base, idx)),
                    "collision at base={base} idx={idx}"
                );
            }
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(11);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }
}
