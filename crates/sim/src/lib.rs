//! # tcw-sim — deterministic discrete-event simulation kernel
//!
//! This crate is the bottom-most substrate of the `tcw` workspace, which
//! reproduces Kurose, Schwartz & Yemini, *"Controlling Window Protocols for
//! Time-Constrained Communication in a Multiple Access Environment"* (5th
//! Data Communications Symposium, 1983).
//!
//! It provides everything a reproducible protocol simulation needs and
//! nothing more:
//!
//! * [`time`] — an integer-tick simulation clock ([`time::Time`], [`time::Dur`]) with a
//!   configurable resolution relative to the channel propagation delay `tau`;
//! * [`events`] — a stable (FIFO-at-equal-time) event queue;
//! * [`rng`] — an in-house, cross-platform deterministic PRNG
//!   (SplitMix64-seeded xoshiro256++) with independent named streams;
//! * [`variates`] — random-variate generators (uniform, exponential,
//!   geometric, Poisson, Erlang, hyperexponential, empirical);
//! * [`stats`] — online statistics: Welford tallies, time-weighted averages,
//!   histograms with quantiles, ratio/loss counters, batch-means confidence
//!   intervals;
//! * [`snap`] — the flat word-stream codec engine checkpoints are encoded
//!   with ([`snap::SnapWriter`], [`snap::SnapReader`], FNV checksum).
//!
//! Determinism is a design requirement (the paper's Figure 7 simulation
//! points must be regenerable bit-for-bit), which is why the RNG is
//! implemented here rather than pulled from an external crate whose stream
//! definitions may change across major versions.
//!
//! ## Quick example
//!
//! ```
//! use tcw_sim::prelude::*;
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(Time::ZERO + Dur::from_ticks(5), "b");
//! q.schedule(Time::ZERO + Dur::from_ticks(2), "a");
//! let (t, e) = q.pop().unwrap();
//! assert_eq!((t.ticks(), e), (2, "a"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod events;
pub mod rng;
pub mod snap;
pub mod stats;
pub mod time;
pub mod variates;

/// Convenient glob-import of the most commonly used kernel types.
pub mod prelude {
    pub use crate::events::EventQueue;
    pub use crate::rng::Rng;
    pub use crate::stats::{BatchMeans, Histogram, RatioCounter, Tally, TimeWeighted};
    pub use crate::time::{Dur, Time};
    pub use crate::variates::{Exponential, Geometric, Poisson, Uniform};
}
