//! Word-stream codec for engine checkpoints.
//!
//! A snapshot is a flat `Vec<u64>` produced by [`SnapWriter`] and consumed
//! by [`SnapReader`]. Every stateful type in the workspace serializes its
//! *mutable* state (never its configuration, which the restore target is
//! required to share) into this stream; `f64`s travel as raw IEEE-754 bits
//! so round-trips are exact, and container lengths are written before their
//! elements so a reader can reject structurally truncated input.
//!
//! The codec is deliberately dumb — no tags, no schema — because the
//! snapshot format version plus the [`checksum`] word written at the end of
//! the stream make any layout drift or bit corruption detectable, and the
//! encoder/decoder pairs live side by side in each type's own module.

use std::fmt;

/// Error raised when a snapshot word stream is truncated, corrupt, or
/// structurally inconsistent with what the decoder expects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapError(String);

impl SnapError {
    /// Creates an error with the given human-readable reason.
    pub fn new(msg: impl Into<String>) -> Self {
        SnapError(msg.into())
    }
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "snapshot error: {}", self.0)
    }
}

impl std::error::Error for SnapError {}

/// Appends state words to a snapshot stream.
#[derive(Debug, Default)]
pub struct SnapWriter {
    words: Vec<u64>,
}

impl SnapWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        SnapWriter { words: Vec::new() }
    }

    /// Appends one raw word.
    pub fn push(&mut self, w: u64) {
        self.words.push(w);
    }

    /// Appends an `f64` as its raw bit pattern (exact round-trip).
    pub fn push_f64(&mut self, x: f64) {
        self.words.push(x.to_bits());
    }

    /// Appends a `usize` (lossless: `usize` is at most 64 bits here).
    pub fn push_usize(&mut self, n: usize) {
        self.words.push(n as u64);
    }

    /// Appends a boolean as 0/1.
    pub fn push_bool(&mut self, b: bool) {
        self.words.push(u64::from(b));
    }

    /// Appends a length-prefixed sub-stream, so the matching reader can
    /// check that a delegated decoder consumed exactly its own section.
    pub fn push_section(&mut self, words: &[u64]) {
        self.push_usize(words.len());
        self.words.extend_from_slice(words);
    }

    /// Appends a byte string: its length in bytes, then the bytes packed
    /// little-endian into words (the final word zero-padded).
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        self.push_usize(bytes.len());
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.words.push(u64::from_le_bytes(buf));
        }
    }

    /// Appends a UTF-8 string via [`SnapWriter::push_bytes`].
    pub fn push_str(&mut self, s: &str) {
        self.push_bytes(s.as_bytes());
    }

    /// Number of words written so far.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Consumes the writer and returns the word stream.
    pub fn into_words(self) -> Vec<u64> {
        self.words
    }
}

/// Reads state words back from a snapshot stream, failing loudly on
/// truncation or malformed values.
#[derive(Debug)]
pub struct SnapReader<'a> {
    words: &'a [u64],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Creates a reader over the given stream.
    pub fn new(words: &'a [u64]) -> Self {
        SnapReader { words, pos: 0 }
    }

    /// Reads one raw word.
    pub fn take(&mut self) -> Result<u64, SnapError> {
        let w = self
            .words
            .get(self.pos)
            .copied()
            .ok_or_else(|| SnapError::new(format!("truncated at word {}", self.pos)))?;
        self.pos += 1;
        Ok(w)
    }

    /// Reads an `f64` stored as raw bits.
    pub fn take_f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.take()?))
    }

    /// Reads a `usize`, rejecting values that cannot fit.
    pub fn take_usize(&mut self) -> Result<usize, SnapError> {
        let w = self.take()?;
        usize::try_from(w).map_err(|_| SnapError::new(format!("length overflows usize: {w}")))
    }

    /// Reads a length field, additionally bounding it by the words that
    /// actually remain (so a corrupt length cannot drive huge allocations).
    pub fn take_len(&mut self) -> Result<usize, SnapError> {
        let n = self.take_usize()?;
        if n > self.remaining() {
            return Err(SnapError::new(format!(
                "declared length {n} exceeds {} remaining words",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Reads a boolean, rejecting anything but 0/1.
    pub fn take_bool(&mut self) -> Result<bool, SnapError> {
        match self.take()? {
            0 => Ok(false),
            1 => Ok(true),
            w => Err(SnapError::new(format!("invalid bool word: {w}"))),
        }
    }

    /// Reads a length-prefixed sub-stream written by
    /// [`SnapWriter::push_section`].
    pub fn take_section(&mut self) -> Result<&'a [u64], SnapError> {
        let n = self.take_len()?;
        let s = &self.words[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a byte string written by [`SnapWriter::push_bytes`],
    /// rejecting declared lengths the remaining words cannot hold and
    /// nonzero padding in the final word.
    pub fn take_bytes(&mut self) -> Result<Vec<u8>, SnapError> {
        let n = self.take_usize()?;
        let words_needed = n.div_ceil(8);
        if words_needed > self.remaining() {
            return Err(SnapError::new(format!(
                "declared byte length {n} exceeds {} remaining words",
                self.remaining()
            )));
        }
        let mut bytes = Vec::with_capacity(n);
        for _ in 0..words_needed {
            bytes.extend_from_slice(&self.take()?.to_le_bytes());
        }
        for &pad in &bytes[n..] {
            if pad != 0 {
                return Err(SnapError::new("nonzero padding in byte string"));
            }
        }
        bytes.truncate(n);
        Ok(bytes)
    }

    /// Reads a UTF-8 string written by [`SnapWriter::push_str`].
    pub fn take_str(&mut self) -> Result<String, SnapError> {
        String::from_utf8(self.take_bytes()?)
            .map_err(|_| SnapError::new("byte string is not valid UTF-8"))
    }

    /// Words not yet consumed.
    pub fn remaining(&self) -> usize {
        self.words.len() - self.pos
    }

    /// Asserts the stream was consumed exactly; trailing garbage means the
    /// encoder and decoder disagree about the layout.
    pub fn finish(self) -> Result<(), SnapError> {
        if self.remaining() != 0 {
            return Err(SnapError::new(format!(
                "{} trailing words after decode",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// FNV-1a-style mix over whole 64-bit words; used as the snapshot's
/// integrity checksum. One xor-multiply round per word (rather than the
/// classic one per byte): the 8 serially dependent multiplies per word
/// made the byte-wise variant dominate checkpoint cost — this form
/// checksums a supervisor snapshot ~8x faster while still turning any
/// bit flip into a different digest (the flip lands in `h` via the xor
/// and every later round diffuses it).
pub fn checksum(words: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        h ^= w;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_kinds() {
        let mut w = SnapWriter::new();
        w.push(42);
        w.push_f64(-0.75);
        w.push_usize(7);
        w.push_bool(true);
        w.push_section(&[1, 2, 3]);
        let words = w.into_words();
        let mut r = SnapReader::new(&words);
        assert_eq!(r.take().unwrap(), 42);
        assert_eq!(r.take_f64().unwrap(), -0.75);
        assert_eq!(r.take_usize().unwrap(), 7);
        assert!(r.take_bool().unwrap());
        assert_eq!(r.take_section().unwrap(), &[1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_and_garbage_are_rejected() {
        let words = vec![5u64];
        let mut r = SnapReader::new(&words);
        // Declared length 5 with no payload left.
        assert!(r.take_len().is_err());

        let words = vec![1, 2];
        let mut r = SnapReader::new(&words);
        r.take().unwrap();
        assert!(r.finish().is_err());

        let words = vec![3u64];
        let mut r = SnapReader::new(&words);
        assert!(r.take_bool().is_err());
    }

    #[test]
    fn strings_round_trip_and_reject_corruption() {
        for s in ["", "x", "exactly8", "nine char", "tcw: панель"] {
            let mut w = SnapWriter::new();
            w.push_str(s);
            w.push(77);
            let words = w.into_words();
            let mut r = SnapReader::new(&words);
            assert_eq!(r.take_str().unwrap(), s);
            assert_eq!(r.take().unwrap(), 77);
            r.finish().unwrap();
        }
        // Truncated payload.
        let mut w = SnapWriter::new();
        w.push_str("hello world");
        let mut words = w.into_words();
        words.pop();
        assert!(SnapReader::new(&words).take_str().is_err());
        // Invalid UTF-8.
        let mut w = SnapWriter::new();
        w.push_bytes(&[0xff, 0xfe]);
        let words = w.into_words();
        assert!(SnapReader::new(&words).take_str().is_err());
        // Corrupt padding bits.
        let mut w = SnapWriter::new();
        w.push_str("abc");
        let mut words = w.into_words();
        words[1] |= 1 << 60;
        assert!(SnapReader::new(&words).take_bytes().is_err());
    }

    #[test]
    fn checksum_detects_bit_flips() {
        let words = vec![0xdead_beef, 0x1234_5678_9abc_def0];
        let c = checksum(&words);
        let mut flipped = words.clone();
        flipped[1] ^= 1 << 17;
        assert_ne!(c, checksum(&flipped));
    }

    #[test]
    fn nan_round_trips_exactly() {
        let mut w = SnapWriter::new();
        w.push_f64(f64::NAN);
        w.push_f64(f64::INFINITY);
        w.push_f64(f64::NEG_INFINITY);
        let words = w.into_words();
        let mut r = SnapReader::new(&words);
        assert!(r.take_f64().unwrap().is_nan());
        assert_eq!(r.take_f64().unwrap(), f64::INFINITY);
        assert_eq!(r.take_f64().unwrap(), f64::NEG_INFINITY);
    }
}
