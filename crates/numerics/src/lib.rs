//! # tcw-numerics — numeric substrate for the analytic models
//!
//! The 1983 paper's performance model (Section 4) is built from operations
//! on probability distributions of *times*: service-time distributions,
//! their residual (equilibrium) transforms, i-fold convolutions, and the
//! renewal-type series
//!
//! ```text
//! z(K, rho) = sum_i rho^i  Int_0^K  beta^(i)(w) dw          (eq. 4.7)
//! F(w)      = P(0) sum_i rho^i beta^(i)(w)                  (eq. 4.4)
//! ```
//!
//! This crate provides those operations on **lattice distributions**
//! ([`grid::GridDist`]): probability mass functions supported on
//! `{0, h, 2h, ...}` for a configurable step `h`. Working on a lattice is
//! exact for this protocol — every service time is an integer number of
//! channel slots — and makes the series computable in a single `O(n^2)`
//! forward pass ([`grid::renewal_series`]) instead of summing explicit
//! convolution powers.
//!
//! Supporting modules: a dense linear solver ([`linalg`]) for the Howard
//! policy-iteration value equations (Appendix A, eq. A1), scalar
//! minimization ([`optimize`]) for the window-length heuristic, and stable
//! special functions ([`special`]) for Poisson/binomial probabilities used
//! by the splitting-process analysis.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod grid;
pub mod linalg;
pub mod optimize;
pub mod special;
