//! Lattice probability distributions and renewal-series computations.
//!
//! A [`GridDist`] is a (possibly sub-stochastic) probability mass function
//! on the lattice `{0, h, 2h, ...}`: entry `j` of the pmf vector is the
//! probability of the value `j * h`. Truncation of an infinite support
//! (e.g. a geometric scheduling-time distribution) leaves total mass
//! slightly below one; the deficit is tracked by callers through
//! [`GridDist::total_mass`].

/// A probability mass function on the lattice `{0, h, 2h, ...}`.
#[derive(Clone, Debug)]
pub struct GridDist {
    step: f64,
    pmf: Vec<f64>,
}

impl GridDist {
    /// Builds a distribution from a raw pmf vector on a lattice with step
    /// `h`.
    ///
    /// # Panics
    /// Panics if `h <= 0`, the vector is empty, any entry is negative/not
    /// finite, or total mass exceeds `1 + 1e-9`.
    pub fn from_pmf(step: f64, pmf: Vec<f64>) -> Self {
        assert!(step > 0.0 && step.is_finite());
        assert!(!pmf.is_empty());
        let mut total = 0.0;
        for &p in &pmf {
            assert!(p >= 0.0 && p.is_finite(), "bad pmf entry {p}");
            total += p;
        }
        assert!(total <= 1.0 + 1e-9, "pmf mass {total} exceeds 1");
        GridDist { step, pmf }
    }

    /// A unit point mass at `value` (which must be a lattice point within
    /// rounding tolerance).
    ///
    /// # Panics
    /// Panics if `value` is negative or not within `1e-6` of a multiple of
    /// `step`.
    pub fn point(step: f64, value: f64) -> Self {
        assert!(value >= 0.0);
        let j = (value / step).round();
        assert!(
            (value - j * step).abs() <= 1e-6 * step.max(1.0),
            "{value} is not a lattice point of step {step}"
        );
        let j = j as usize;
        let mut pmf = vec![0.0; j + 1];
        pmf[j] = 1.0;
        GridDist { step, pmf }
    }

    /// A geometric distribution on `{1h, 2h, ...}` with per-trial success
    /// probability `p`, truncated once the tail mass drops below `tail_tol`.
    ///
    /// # Panics
    /// Panics if `p` is outside `(0, 1]`.
    pub fn geometric(step: f64, p: f64, tail_tol: f64) -> Self {
        assert!(p > 0.0 && p <= 1.0);
        let q = 1.0 - p;
        let mut pmf = vec![0.0];
        let mut tail = 1.0; // P(X > k)
        let mut pk = p; // P(X = k), k starting at 1
        while tail > tail_tol && pmf.len() < 4_000_000 {
            pmf.push(pk);
            tail *= q;
            pk *= q;
        }
        GridDist { step, pmf }
    }

    /// A geometric distribution on `{0, 1h, 2h, ...}` (shifted to include
    /// zero) with mean `mean` lattice steps, truncated at `tail_tol`.
    ///
    /// This is the paper's scheduling-time model: the number of *overhead*
    /// slots before a successful transmission may be zero.
    ///
    /// # Panics
    /// Panics if `mean < 0`.
    pub fn geometric_from_zero(step: f64, mean: f64, tail_tol: f64) -> Self {
        assert!(mean >= 0.0);
        if mean == 0.0 {
            return GridDist::point(step, 0.0);
        }
        // For a geometric on {0,1,2,...}, mean m ⟹ p = 1/(1+m).
        let p = 1.0 / (1.0 + mean);
        let q = 1.0 - p;
        let mut pmf = Vec::new();
        let mut pk = p;
        let mut tail = 1.0;
        while tail > tail_tol && pmf.len() < 4_000_000 {
            pmf.push(pk);
            tail *= q;
            pk *= q;
        }
        GridDist { step, pmf }
    }

    /// The lattice step `h`.
    pub fn step(&self) -> f64 {
        self.step
    }

    /// The pmf vector (entry `j` is the mass at `j * h`).
    pub fn pmf(&self) -> &[f64] {
        &self.pmf
    }

    /// Number of lattice points in the stored support.
    pub fn len(&self) -> usize {
        self.pmf.len()
    }

    /// Whether the support is empty (never true for a valid distribution).
    pub fn is_empty(&self) -> bool {
        self.pmf.is_empty()
    }

    /// Total stored mass (`<= 1`; less than one after truncation).
    pub fn total_mass(&self) -> f64 {
        self.pmf.iter().sum()
    }

    /// Mean of the stored mass.
    pub fn mean(&self) -> f64 {
        self.pmf
            .iter()
            .enumerate()
            .map(|(j, &p)| p * j as f64 * self.step)
            .sum()
    }

    /// Second moment `E[X^2]` of the stored mass.
    pub fn second_moment(&self) -> f64 {
        self.pmf
            .iter()
            .enumerate()
            .map(|(j, &p)| {
                let x = j as f64 * self.step;
                p * x * x
            })
            .sum()
    }

    /// Variance of the stored mass (treating it as a full distribution).
    pub fn variance(&self) -> f64 {
        let m = self.mean();
        (self.second_moment() - m * m).max(0.0)
    }

    /// `P(X <= x)` for the stored mass.
    pub fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        let jmax = (x / self.step + 1e-9).floor() as usize;
        self.pmf.iter().take(jmax + 1).sum()
    }

    /// Shifts the distribution right by `k` lattice steps (adds the constant
    /// `k * h`).
    pub fn shift(&self, k: usize) -> GridDist {
        let mut pmf = vec![0.0; k];
        pmf.extend_from_slice(&self.pmf);
        GridDist {
            step: self.step,
            pmf,
        }
    }

    /// Convolution with another lattice distribution on the same step,
    /// truncated at `max_len` lattice points (mass beyond is dropped).
    ///
    /// # Panics
    /// Panics if the steps differ by more than floating-point tolerance.
    pub fn convolve(&self, other: &GridDist, max_len: usize) -> GridDist {
        assert!(
            (self.step - other.step).abs() <= 1e-12 * self.step,
            "convolving distributions on different lattices"
        );
        let n = (self.pmf.len() + other.pmf.len() - 1).min(max_len.max(1));
        let mut pmf = vec![0.0; n];
        for (i, &a) in self.pmf.iter().enumerate() {
            if a == 0.0 || i >= n {
                continue;
            }
            let jmax = (n - i).min(other.pmf.len());
            for (j, &b) in other.pmf.iter().take(jmax).enumerate() {
                pmf[i + j] += a * b;
            }
        }
        GridDist {
            step: self.step,
            pmf,
        }
    }

    /// A mixture `w1 * self + (1 - w1) * other`.
    ///
    /// # Panics
    /// Panics if the steps differ or `w1` is outside `[0, 1]`.
    pub fn mix(&self, w1: f64, other: &GridDist) -> GridDist {
        assert!((0.0..=1.0).contains(&w1));
        assert!((self.step - other.step).abs() <= 1e-12 * self.step);
        let n = self.pmf.len().max(other.pmf.len());
        let mut pmf = vec![0.0; n];
        for (j, &p) in self.pmf.iter().enumerate() {
            pmf[j] += w1 * p;
        }
        for (j, &p) in other.pmf.iter().enumerate() {
            pmf[j] += (1.0 - w1) * p;
        }
        GridDist {
            step: self.step,
            pmf,
        }
    }

    /// The residual (equilibrium / stationary-excess) distribution
    ///
    /// ```text
    /// beta_j = P(X > j - 1) * h / E[X],   j = 1, 2, ...    (beta_0 = 0)
    /// ```
    ///
    /// which is the distribution of the remaining work an arriving customer
    /// finds for the customer in service in an M/G/1 queue — the `beta(w)`
    /// of the paper's eq. 4.4. The identity `sum_j P(X > j) * h = E[X]`
    /// (for lattice `X >= 0`) makes the result a proper distribution up to
    /// the truncation deficit of `self`.
    ///
    /// The continuous residual density over `[j*h, (j+1)*h)` is assigned to
    /// the lattice point `(j+1)*h` (right-edge convention). This leaves no
    /// atom at zero, so the continuous boundary identities hold exactly on
    /// the lattice — `F_W(0) = 1 - rho` for the M/G/1 queue and
    /// `p(loss) -> rho/(1+rho)` as `K -> 0` in eq. 4.7 — at the price of
    /// over-estimating waits by at most `h/2` per convolution term
    /// (conservative).
    ///
    /// # Panics
    /// Panics if the mean of `self` is zero (a point mass at 0 has no
    /// residual distribution).
    pub fn residual(&self) -> GridDist {
        let mean = self.mean();
        assert!(mean > 0.0, "residual of a zero-mean distribution");
        let total = self.total_mass();
        let mut tail = total;
        let mut pmf = Vec::with_capacity(self.pmf.len() + 1);
        pmf.push(0.0);
        for &p in &self.pmf {
            tail -= p;
            if tail <= 0.0 {
                break;
            }
            pmf.push(tail * self.step / mean);
        }
        GridDist {
            step: self.step,
            pmf,
        }
    }

    /// Renormalizes the stored mass to exactly one (used after deliberate
    /// truncation when the deficit is known to be negligible).
    pub fn normalized(&self) -> GridDist {
        let total = self.total_mass();
        assert!(total > 0.0);
        GridDist {
            step: self.step,
            pmf: self.pmf.iter().map(|&p| p / total).collect(),
        }
    }
}

/// Computes the renewal-type series `u = sum_i rho^i * beta^(i)` as a
/// measure on the lattice, up to `n` lattice points.
///
/// `u` is the unique solution of the renewal equation
/// `u = delta_0 + rho * (beta ⊛ u)`, solved by forward substitution in
/// `O(n * support(beta))`. From it:
///
/// * eq. 4.7's `z(K, rho)` is the partial sum `sum_{j*h <= K} u_j`
///   (see [`RenewalSeries::partial_sum`]);
/// * eq. 4.4's workload CDF is `P(0) * z(w, rho)`.
///
/// `beta` may carry an atom at zero (a lattice residual distribution always
/// does); the solver handles it as long as `rho * beta_0 < 1`.
///
/// # Panics
/// Panics if `rho < 0`, `n == 0`, or `rho * beta_0 >= 1`.
pub fn renewal_series(beta: &GridDist, rho: f64, n: usize) -> RenewalSeries {
    assert!(rho >= 0.0);
    assert!(n > 0);
    let b = beta.pmf();
    let b0 = rho * b.first().copied().unwrap_or(0.0);
    assert!(
        b0 < 1.0,
        "renewal series diverges: rho * beta(0) = {b0} >= 1"
    );
    let scale = 1.0 / (1.0 - b0);
    let mut u = vec![0.0; n];
    u[0] = scale;
    for k in 1..n {
        let mut s = 0.0;
        let jmax = k.min(b.len() - 1);
        for j in 1..=jmax {
            s += b[j] * u[k - j];
        }
        u[k] = rho * s * scale;
    }
    RenewalSeries {
        step: beta.step(),
        u,
    }
}

/// The solved renewal series; see [`renewal_series`].
#[derive(Clone, Debug)]
pub struct RenewalSeries {
    step: f64,
    u: Vec<f64>,
}

impl RenewalSeries {
    /// The lattice step of the underlying distribution.
    pub fn step(&self) -> f64 {
        self.step
    }

    /// The raw series values `u_j` (the mass of `sum_i rho^i beta^(i)` at
    /// `j * h`).
    pub fn values(&self) -> &[f64] {
        &self.u
    }

    /// `z(K) = sum_{j : j*h <= K} u_j` — the partial sum entering eq. 4.7.
    ///
    /// Saturates at the full stored sum for `K` beyond the computed range.
    pub fn partial_sum(&self, k: f64) -> f64 {
        if k < 0.0 {
            return 0.0;
        }
        let jmax = ((k / self.step + 1e-9).floor() as usize).min(self.u.len() - 1);
        self.u.iter().take(jmax + 1).sum()
    }

    /// All prefix sums, so a full `z(K)` sweep costs one pass.
    pub fn prefix_sums(&self) -> Vec<f64> {
        let mut acc = 0.0;
        self.u
            .iter()
            .map(|&x| {
                acc += x;
                acc
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn point_mass_basics() {
        let d = GridDist::point(1.0, 3.0);
        assert_eq!(d.len(), 4);
        assert!(close(d.mean(), 3.0, 1e-12));
        assert!(close(d.second_moment(), 9.0, 1e-12));
        assert_eq!(d.variance(), 0.0);
        assert_eq!(d.cdf(2.9), 0.0);
        assert_eq!(d.cdf(3.0), 1.0);
    }

    #[test]
    #[should_panic]
    fn off_lattice_point_panics() {
        GridDist::point(1.0, 2.5);
    }

    #[test]
    fn geometric_mean_matches() {
        let d = GridDist::geometric(1.0, 0.25, 1e-14);
        assert!(close(d.total_mass(), 1.0, 1e-10));
        assert!(close(d.mean(), 4.0, 1e-9), "mean = {}", d.mean());
    }

    #[test]
    fn geometric_from_zero_mean_matches() {
        let d = GridDist::geometric_from_zero(1.0, 2.5, 1e-14);
        assert!(close(d.mean(), 2.5, 1e-9), "mean = {}", d.mean());
        assert!(d.pmf()[0] > 0.0);
    }

    #[test]
    fn geometric_from_zero_zero_mean_is_point() {
        let d = GridDist::geometric_from_zero(1.0, 0.0, 1e-12);
        assert_eq!(d.len(), 1);
        assert_eq!(d.pmf()[0], 1.0);
    }

    #[test]
    fn convolution_of_points_adds() {
        let a = GridDist::point(1.0, 2.0);
        let b = GridDist::point(1.0, 5.0);
        let c = a.convolve(&b, usize::MAX);
        assert!(close(c.mean(), 7.0, 1e-12));
        assert!(close(c.total_mass(), 1.0, 1e-12));
    }

    #[test]
    fn convolution_means_add() {
        let a = GridDist::geometric(1.0, 0.5, 1e-15);
        let b = GridDist::geometric(1.0, 0.25, 1e-15);
        let c = a.convolve(&b, usize::MAX);
        assert!(close(c.mean(), a.mean() + b.mean(), 1e-6));
        assert!(close(c.variance(), a.variance() + b.variance(), 1e-6));
    }

    #[test]
    fn convolution_truncation_drops_tail_mass() {
        let a = GridDist::point(1.0, 3.0);
        let b = GridDist::point(1.0, 4.0);
        let c = a.convolve(&b, 5); // support index 7 cut off
        assert_eq!(c.total_mass(), 0.0);
        let d = a.convolve(&b, 8);
        assert!(close(d.total_mass(), 1.0, 1e-12));
    }

    #[test]
    fn shift_adds_constant() {
        let d = GridDist::geometric(1.0, 0.5, 1e-15).shift(3);
        assert!(close(d.mean(), 2.0 + 3.0, 1e-9));
    }

    #[test]
    fn mix_is_convex_combination() {
        let a = GridDist::point(1.0, 0.0);
        let b = GridDist::point(1.0, 10.0);
        let m = a.mix(0.3, &b);
        assert!(close(m.mean(), 7.0, 1e-12));
        assert!(close(m.total_mass(), 1.0, 1e-12));
    }

    #[test]
    fn residual_of_deterministic_is_uniform() {
        // Residual of a point mass at m is uniform on {1,...,m} * h / m
        // (right-edge convention, no atom at zero).
        let d = GridDist::point(1.0, 4.0);
        let r = d.residual();
        assert_eq!(r.len(), 5);
        assert_eq!(r.pmf()[0], 0.0);
        for &p in &r.pmf()[1..] {
            assert!(close(p, 0.25, 1e-12));
        }
        assert!(close(r.total_mass(), 1.0, 1e-12));
        // continuous E[R] = E[X^2]/(2E[X]) = 2; right-edge adds h/2.
        assert!(close(r.mean(), 2.5, 1e-12));
    }

    #[test]
    fn residual_mass_is_one_up_to_truncation() {
        let d = GridDist::geometric(1.0, 0.2, 1e-13);
        let r = d.residual();
        assert!(
            close(r.total_mass(), 1.0, 1e-9),
            "mass = {}",
            r.total_mass()
        );
    }

    #[test]
    fn residual_mean_is_excess_formula() {
        // Continuous-time identity E[R] = E[X^2]/(2E[X]) adapted to the
        // right-edge lattice convention: E[R] = E[X^2]/(2E[X]) + h/2.
        let d = GridDist::geometric(1.0, 0.3, 1e-14);
        let r = d.residual();
        let expect = d.second_moment() / (2.0 * d.mean()) + 0.5;
        assert!(close(r.mean(), expect, 1e-8), "{} vs {}", r.mean(), expect);
    }

    #[test]
    fn renewal_series_geometric_sum_at_zero_support() {
        // beta = point at 0 is not allowed (rho*beta_0 >= 1 for rho >= 1);
        // with rho < 1 it sums the plain geometric series at lattice 0.
        let beta = GridDist::point(1.0, 0.0);
        let s = renewal_series(&beta, 0.5, 4);
        assert!(close(s.values()[0], 2.0, 1e-12)); // 1/(1-0.5)
        assert_eq!(s.values()[1], 0.0);
    }

    #[test]
    fn renewal_series_matches_explicit_powers() {
        // Compare against explicitly summed convolution powers.
        let beta = GridDist::from_pmf(1.0, vec![0.1, 0.5, 0.4]);
        let rho = 0.6;
        let n = 40;
        let s = renewal_series(&beta, rho, n);

        let mut expect = vec![0.0; n];
        // i = 0 term: delta at 0
        expect[0] += 1.0;
        let mut power = GridDist::point(1.0, 0.0);
        let mut coef = 1.0;
        for _ in 1..60 {
            power = power.convolve(&beta, n);
            coef *= rho;
            for (j, &p) in power.pmf().iter().enumerate() {
                if j < n {
                    expect[j] += coef * p;
                }
            }
        }
        for (j, &e) in expect.iter().enumerate().take(n) {
            assert!(
                close(s.values()[j], e, 1e-9),
                "j={j}: {} vs {}",
                s.values()[j],
                e
            );
        }
    }

    #[test]
    fn renewal_series_total_is_geometric_sum() {
        // For rho < 1 and proper beta, the total mass of u is 1/(1-rho)
        // (as n -> infinity).
        let beta = GridDist::geometric(1.0, 0.5, 1e-15);
        let rho = 0.7;
        let s = renewal_series(&beta, rho, 400);
        let total = s.partial_sum(f64::INFINITY.min(399.0));
        assert!(close(total, 1.0 / (1.0 - rho), 1e-6), "total = {total}");
    }

    #[test]
    fn partial_sums_monotone() {
        let beta = GridDist::geometric(1.0, 0.4, 1e-14);
        let s = renewal_series(&beta, 0.8, 100);
        let ps = s.prefix_sums();
        for w in ps.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!(close(s.partial_sum(50.0), ps[50], 1e-12));
    }

    #[test]
    #[should_panic]
    fn renewal_series_diverges_on_heavy_atom() {
        let beta = GridDist::from_pmf(1.0, vec![0.9, 0.1]);
        renewal_series(&beta, 1.2, 10);
    }
}
