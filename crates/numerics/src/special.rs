//! Stable special functions: log-gamma, log-factorial, and the Poisson /
//! binomial probability mass functions used by the splitting-process
//! analysis (numbers of arrivals in windows and their binomial splits).

/// Natural log of the gamma function, Lanczos approximation (g = 7, n = 9).
///
/// Accurate to ~1e-13 relative error for `x > 0`.
///
/// # Panics
/// Panics if `x <= 0`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma needs x > 0, got {x}");
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// `ln(n!)`.
pub fn ln_factorial(n: u64) -> f64 {
    // Exact table for small n avoids any rounding in the hot path.
    const TABLE: [f64; 21] = [
        0.0,
        0.0,
        std::f64::consts::LN_2,
        1.791_759_469_228_055,
        3.178_053_830_347_946,
        4.787_491_742_782_046,
        6.579_251_212_010_101,
        8.525_161_361_065_415,
        10.604_602_902_745_25,
        12.801_827_480_081_469,
        15.104_412_573_075_516,
        17.502_307_845_873_887,
        19.987_214_495_661_885,
        22.552_163_853_123_42,
        25.191_221_182_738_68,
        27.899_271_383_840_894,
        30.671_860_106_080_675,
        33.505_073_450_136_89,
        36.395_445_208_033_05,
        39.339_884_187_199_495,
        42.335_616_460_753_485,
    ];
    if n <= 20 {
        TABLE[n as usize]
    } else {
        ln_gamma(n as f64 + 1.0)
    }
}

/// `ln C(n, k)`.
///
/// # Panics
/// Panics if `k > n`.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    assert!(k <= n);
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Poisson pmf `P(N = k)` for mean `mu >= 0`, computed in log space.
pub fn poisson_pmf(k: u64, mu: f64) -> f64 {
    assert!(mu >= 0.0 && mu.is_finite());
    if mu == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    (k as f64 * mu.ln() - mu - ln_factorial(k)).exp()
}

/// Poisson tail `P(N > k)`.
pub fn poisson_sf(k: u64, mu: f64) -> f64 {
    let mut cdf = 0.0;
    for j in 0..=k {
        cdf += poisson_pmf(j, mu);
    }
    (1.0 - cdf).max(0.0)
}

/// Binomial pmf `P(X = k)` for `X ~ Bin(n, p)`, computed in log space.
///
/// # Panics
/// Panics if `k > n` or `p` is outside `[0, 1]`.
pub fn binomial_pmf(k: u64, n: u64, p: f64) -> f64 {
    assert!(k <= n);
    assert!((0.0..=1.0).contains(&p));
    if p == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p == 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    (ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln()).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn ln_gamma_integer_values() {
        // Gamma(n) = (n-1)!
        assert!(close(ln_gamma(1.0), 0.0, 1e-12));
        assert!(close(ln_gamma(2.0), 0.0, 1e-12));
        assert!(close(ln_gamma(5.0), (24.0f64).ln(), 1e-12));
        assert!(close(ln_gamma(11.0), ln_factorial(10), 1e-12));
    }

    #[test]
    fn ln_gamma_half() {
        // Gamma(1/2) = sqrt(pi)
        assert!(close(ln_gamma(0.5), 0.5 * std::f64::consts::PI.ln(), 1e-12));
    }

    #[test]
    fn ln_factorial_matches_direct() {
        let mut acc = 0.0f64;
        for n in 1..=30u64 {
            acc += (n as f64).ln();
            assert!(close(ln_factorial(n), acc, 1e-12), "n = {n}");
        }
    }

    #[test]
    fn choose_small_cases() {
        assert!(close(ln_choose(5, 2).exp(), 10.0, 1e-12));
        assert!(close(ln_choose(10, 0).exp(), 1.0, 1e-12));
        assert!(close(ln_choose(52, 5).exp(), 2_598_960.0, 1e-9));
    }

    #[test]
    fn poisson_pmf_sums_to_one() {
        for &mu in &[0.1, 1.0, 5.0, 25.0] {
            let total: f64 = (0..200).map(|k| poisson_pmf(k, mu)).sum();
            assert!(close(total, 1.0, 1e-10), "mu = {mu}, total = {total}");
        }
    }

    #[test]
    fn poisson_mean_is_mu() {
        let mu = 3.7;
        let mean: f64 = (0..200).map(|k| k as f64 * poisson_pmf(k, mu)).sum();
        assert!(close(mean, mu, 1e-10));
    }

    #[test]
    fn poisson_zero_mean() {
        assert_eq!(poisson_pmf(0, 0.0), 1.0);
        assert_eq!(poisson_pmf(3, 0.0), 0.0);
        assert_eq!(poisson_sf(5, 0.0), 0.0);
    }

    #[test]
    fn poisson_sf_complements_cdf() {
        let mu = 2.0;
        let cdf: f64 = (0..=4).map(|k| poisson_pmf(k, mu)).sum();
        assert!(close(poisson_sf(4, mu), 1.0 - cdf, 1e-12));
    }

    #[test]
    fn binomial_pmf_sums_and_mean() {
        let (n, p) = (13u64, 0.37);
        let total: f64 = (0..=n).map(|k| binomial_pmf(k, n, p)).sum();
        assert!(close(total, 1.0, 1e-12));
        let mean: f64 = (0..=n).map(|k| k as f64 * binomial_pmf(k, n, p)).sum();
        assert!(close(mean, n as f64 * p, 1e-10));
    }

    #[test]
    fn binomial_degenerate_p() {
        assert_eq!(binomial_pmf(0, 7, 0.0), 1.0);
        assert_eq!(binomial_pmf(3, 7, 0.0), 0.0);
        assert_eq!(binomial_pmf(7, 7, 1.0), 1.0);
        assert_eq!(binomial_pmf(6, 7, 1.0), 0.0);
    }

    #[test]
    fn binomial_half_symmetry() {
        for k in 0..=9u64 {
            assert!(close(
                binomial_pmf(k, 9, 0.5),
                binomial_pmf(9 - k, 9, 0.5),
                1e-12
            ));
        }
    }
}
