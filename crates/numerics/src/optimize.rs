//! Scalar minimization.
//!
//! The paper's heuristic for control-policy element (2) chooses the initial
//! window length that minimizes the mean scheduling time (Section 4.1).
//! That objective is unimodal in the window length, so golden-section search
//! applies; an exhaustive integer grid search is also provided for lattice
//! decision variables and for verifying unimodality assumptions in tests.

/// Golden-section search for the minimum of a unimodal `f` on `[a, b]`.
///
/// Returns `(x_min, f(x_min))` with the bracket narrowed to width `tol`.
///
/// # Panics
/// Panics if `a > b`, bounds are not finite, or `tol <= 0`.
pub fn golden_section<F: FnMut(f64) -> f64>(mut f: F, a: f64, b: f64, tol: f64) -> (f64, f64) {
    assert!(a.is_finite() && b.is_finite() && a <= b);
    assert!(tol > 0.0);
    const INV_PHI: f64 = 0.618_033_988_749_894_9;
    let (mut a, mut b) = (a, b);
    let mut c = b - INV_PHI * (b - a);
    let mut d = a + INV_PHI * (b - a);
    let mut fc = f(c);
    let mut fd = f(d);
    while (b - a) > tol {
        if fc <= fd {
            b = d;
            d = c;
            fd = fc;
            c = b - INV_PHI * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + INV_PHI * (b - a);
            fd = f(d);
        }
    }
    let x = 0.5 * (a + b);
    (x, f(x))
}

/// Exhaustive minimization of `f` over the integer range `lo..=hi`.
///
/// Returns `(argmin, min)`; ties break toward the smaller argument.
///
/// # Panics
/// Panics if `lo > hi`.
pub fn argmin_grid<F: FnMut(u64) -> f64>(mut f: F, lo: u64, hi: u64) -> (u64, f64) {
    assert!(lo <= hi);
    let mut best_x = lo;
    let mut best = f(lo);
    for x in (lo + 1)..=hi {
        let v = f(x);
        if v < best {
            best = v;
            best_x = x;
        }
    }
    (best_x, best)
}

/// Minimizes a unimodal function on the integer range `lo..=hi` by ternary
/// search (`O(log(hi - lo))` evaluations).
///
/// For non-unimodal inputs the result is a local minimum.
///
/// # Panics
/// Panics if `lo > hi`.
pub fn argmin_unimodal<F: FnMut(u64) -> f64>(mut f: F, lo: u64, hi: u64) -> (u64, f64) {
    assert!(lo <= hi);
    let (mut lo, mut hi) = (lo, hi);
    while hi - lo > 2 {
        let m1 = lo + (hi - lo) / 3;
        let m2 = hi - (hi - lo) / 3;
        if f(m1) <= f(m2) {
            hi = m2 - 1;
        } else {
            lo = m1 + 1;
        }
    }
    argmin_grid(f, lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_finds_parabola_minimum() {
        let (x, fx) = golden_section(|x| (x - 3.2) * (x - 3.2) + 1.0, 0.0, 10.0, 1e-8);
        assert!((x - 3.2).abs() < 1e-6);
        assert!((fx - 1.0).abs() < 1e-10);
    }

    #[test]
    fn golden_handles_minimum_at_edge() {
        let (x, _) = golden_section(|x| x, 2.0, 5.0, 1e-8);
        assert!((x - 2.0).abs() < 1e-6);
    }

    #[test]
    fn golden_degenerate_interval() {
        let (x, fx) = golden_section(|x| x * x, 4.0, 4.0, 1e-8);
        assert_eq!(x, 4.0);
        assert_eq!(fx, 16.0);
    }

    #[test]
    fn grid_finds_global_min() {
        let f = |x: u64| ((x as f64) - 17.0).abs();
        assert_eq!(argmin_grid(f, 0, 100), (17, 0.0));
    }

    #[test]
    fn grid_tie_breaks_low() {
        let f = |x: u64| if x == 3 || x == 7 { 0.0 } else { 1.0 };
        assert_eq!(argmin_grid(f, 0, 10).0, 3);
    }

    #[test]
    fn unimodal_matches_grid_on_convex() {
        let f = |x: u64| {
            let d = x as f64 - 41.0;
            d * d + 5.0
        };
        let g = argmin_grid(f, 0, 200);
        let u = argmin_unimodal(f, 0, 200);
        assert_eq!(g, u);
    }

    #[test]
    fn unimodal_single_point() {
        assert_eq!(argmin_unimodal(|x| x as f64, 9, 9), (9, 9.0));
    }
}
