//! Dense linear algebra: a row-major matrix and a Gaussian-elimination
//! solver with partial pivoting.
//!
//! Used by `tcw-mdp` to solve the Howard value-determination equations
//! (Appendix A, eq. A1): one dense system of size `|S|` per policy
//! iteration. State spaces there are a few hundred at most, so a simple
//! `O(n^3)` dense solve is the right tool.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` zero matrix.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0);
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from rows.
    ///
    /// # Panics
    /// Panics if rows are empty or ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty() && !rows[0].is_empty());
        let cols = rows[0].len();
        assert!(rows.iter().all(|r| r.len() == cols), "ragged rows");
        Matrix {
            rows: rows.len(),
            cols,
            data: rows.iter().flatten().copied().collect(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix-vector product `A x`.
    ///
    /// # Panics
    /// Panics if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        (0..self.rows)
            .map(|i| {
                let row = &self.data[i * self.cols..(i + 1) * self.cols];
                row.iter().zip(x).map(|(a, b)| a * b).sum()
            })
            .collect()
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            writeln!(f, "  {row:?}")?;
        }
        write!(f, "]")
    }
}

/// Error from [`solve`]: the system is singular (or numerically so).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SingularMatrix;

impl fmt::Display for SingularMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "matrix is singular to working precision")
    }
}

impl std::error::Error for SingularMatrix {}

/// Solves `A x = b` by Gaussian elimination with partial pivoting.
///
/// # Panics
/// Panics if `A` is not square or `b` has the wrong length.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, SingularMatrix> {
    assert_eq!(a.rows, a.cols, "solve needs a square matrix");
    assert_eq!(b.len(), a.rows);
    let n = a.rows;
    // Augmented working copy.
    let mut m = a.data.clone();
    let mut rhs = b.to_vec();

    for col in 0..n {
        // Partial pivot.
        let mut piv = col;
        let mut best = m[col * n + col].abs();
        for r in (col + 1)..n {
            let v = m[r * n + col].abs();
            if v > best {
                best = v;
                piv = r;
            }
        }
        if best < 1e-300 {
            return Err(SingularMatrix);
        }
        if piv != col {
            for j in 0..n {
                m.swap(col * n + j, piv * n + j);
            }
            rhs.swap(col, piv);
        }
        let d = m[col * n + col];
        for r in (col + 1)..n {
            let factor = m[r * n + col] / d;
            if factor == 0.0 {
                continue;
            }
            m[r * n + col] = 0.0;
            for j in (col + 1)..n {
                m[r * n + j] -= factor * m[col * n + j];
            }
            rhs[r] -= factor * rhs[col];
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = rhs[i];
        for j in (i + 1)..n {
            s -= m[i * n + j] * x[j];
        }
        x[i] = s / m[i * n + i];
    }
    Ok(x)
}

/// Maximum absolute residual `|A x - b|_inf`, for verifying solutions.
pub fn residual_inf(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
    a.mul_vec(x)
        .iter()
        .zip(b)
        .map(|(ax, bi)| (ax - bi).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve_returns_rhs() {
        let a = Matrix::identity(4);
        let b = vec![1.0, -2.0, 3.0, 0.5];
        let x = solve(&a, &b).unwrap();
        assert_eq!(x, b);
    }

    #[test]
    fn solves_small_system() {
        // 2x + y = 5 ; x - y = 1  => x = 2, y = 1
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, -1.0]]);
        let x = solve(&a, &[5.0, 1.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = solve(&a, &[3.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert_eq!(solve(&a, &[1.0, 2.0]), Err(SingularMatrix));
    }

    #[test]
    fn residual_small_on_random_system() {
        // Deterministic pseudo-random matrix.
        let n = 30;
        let mut a = Matrix::zeros(n, n);
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = next();
            }
            a[(i, i)] += 4.0; // diagonally dominant => well conditioned
        }
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let x = solve(&a, &b).unwrap();
        assert!(residual_inf(&a, &x, &b) < 1e-10);
    }

    #[test]
    fn mul_vec_matches_manual() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.mul_vec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
    }

    #[test]
    #[should_panic]
    fn ragged_rows_panic() {
        Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
