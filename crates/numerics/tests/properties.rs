//! Property-based tests for the numeric substrate.

use proptest::prelude::*;
use tcw_numerics::grid::{renewal_series, GridDist};
use tcw_numerics::linalg::{residual_inf, solve, Matrix};
use tcw_numerics::special::{binomial_pmf, poisson_pmf};

/// Strategy: a small random sub-stochastic pmf vector.
fn pmf_strategy(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..1.0, 1..max_len).prop_map(|mut v| {
        let total: f64 = v.iter().sum();
        if total > 0.0 {
            for x in &mut v {
                *x /= total * 1.001; // keep strictly sub-stochastic
            }
        }
        v
    })
}

proptest! {
    /// Convolution preserves total mass (product of the factor masses) when
    /// not truncated.
    #[test]
    fn convolution_mass_is_product(a in pmf_strategy(20), b in pmf_strategy(20)) {
        let da = GridDist::from_pmf(1.0, a);
        let db = GridDist::from_pmf(1.0, b);
        let c = da.convolve(&db, usize::MAX);
        let expect = da.total_mass() * db.total_mass();
        prop_assert!((c.total_mass() - expect).abs() < 1e-10);
    }

    /// Convolution means add (scaled by the factor masses).
    #[test]
    fn convolution_mean_adds(a in pmf_strategy(20), b in pmf_strategy(20)) {
        let da = GridDist::from_pmf(1.0, a).normalized();
        let db = GridDist::from_pmf(1.0, b).normalized();
        let c = da.convolve(&db, usize::MAX);
        prop_assert!((c.mean() - (da.mean() + db.mean())).abs() < 1e-8);
    }

    /// Convolution is commutative.
    #[test]
    fn convolution_commutes(a in pmf_strategy(15), b in pmf_strategy(15)) {
        let da = GridDist::from_pmf(1.0, a);
        let db = GridDist::from_pmf(1.0, b);
        let ab = da.convolve(&db, usize::MAX);
        let ba = db.convolve(&da, usize::MAX);
        prop_assert_eq!(ab.len(), ba.len());
        for (x, y) in ab.pmf().iter().zip(ba.pmf()) {
            prop_assert!((x - y).abs() < 1e-12);
        }
    }

    /// CDF of any GridDist is monotone, 0 below support, total mass at top.
    #[test]
    fn cdf_monotone_bounded(a in pmf_strategy(30)) {
        let d = GridDist::from_pmf(1.0, a);
        let mut prev = 0.0;
        for j in 0..d.len() + 3 {
            let c = d.cdf(j as f64);
            prop_assert!(c + 1e-12 >= prev);
            prev = c;
        }
        prop_assert!((prev - d.total_mass()).abs() < 1e-12);
        prop_assert_eq!(d.cdf(-1.0), 0.0);
    }

    /// Residual distribution: total mass equals one for a proper
    /// distribution, no atom at zero (right-edge convention), and the
    /// residual mean follows the lattice excess formula
    /// E[R] = E[X^2]/(2E[X]) + h/2.
    #[test]
    fn residual_mass_and_mean(a in pmf_strategy(25)) {
        let d = GridDist::from_pmf(1.0, a).normalized();
        prop_assume!(d.mean() > 1e-9);
        let r = d.residual();
        prop_assert!((r.total_mass() - 1.0).abs() < 1e-9);
        prop_assert_eq!(r.pmf()[0], 0.0);
        let expect = d.second_moment() / (2.0 * d.mean()) + 0.5;
        prop_assert!((r.mean() - expect).abs() < 1e-8);
    }

    /// The renewal series solves its defining equation
    /// u = delta_0 + rho * beta ⊛ u on the computed range.
    #[test]
    fn renewal_series_satisfies_equation(a in pmf_strategy(12), rho in 0.05f64..0.95) {
        let beta = GridDist::from_pmf(1.0, a).normalized();
        prop_assume!(rho * beta.pmf()[0] < 0.99);
        let n = 50;
        let s = renewal_series(&beta, rho, n);
        let u = s.values();
        for k in 0..n {
            let mut conv = 0.0;
            for j in 0..=k.min(beta.len() - 1) {
                conv += beta.pmf()[j] * u[k - j];
            }
            let expect = if k == 0 { 1.0 } else { 0.0 } + rho * conv;
            prop_assert!((u[k] - expect).abs() < 1e-9, "k={k}: {} vs {}", u[k], expect);
        }
    }

    /// Gaussian elimination solutions have tiny residuals on diagonally
    /// dominant systems.
    #[test]
    fn solver_residual_small(
        seed in any::<u64>(),
        n in 2usize..20,
    ) {
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = next();
            }
            a[(i, i)] += n as f64; // ensure well-conditioned
        }
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let x = solve(&a, &b).unwrap();
        prop_assert!(residual_inf(&a, &x, &b) < 1e-8);
    }

    /// Poisson pmf values are probabilities and decay past the mean.
    #[test]
    fn poisson_pmf_is_probability(k in 0u64..200, mu in 0.0f64..50.0) {
        let p = poisson_pmf(k, mu);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    /// A binomial split of a binomial is binomial:
    /// thinning Bin(n, 1/2) by 1/2 gives Bin(n, 1/4).
    #[test]
    fn binomial_thinning(n in 1u64..30, k in 0u64..30) {
        prop_assume!(k <= n);
        let direct = binomial_pmf(k, n, 0.25);
        let mut via_split = 0.0;
        for m in k..=n {
            via_split += binomial_pmf(m, n, 0.5) * binomial_pmf(k, m, 0.5);
        }
        prop_assert!((direct - via_split).abs() < 1e-10);
    }
}
