//! Property-based tests for the numeric substrate.
//!
//! Randomized cases are drawn from the deterministic `tcw_sim` [`Rng`] so
//! every failure reproduces from its case index (the repository builds
//! offline, without an external property-testing framework).

use tcw_numerics::grid::{renewal_series, GridDist};
use tcw_numerics::linalg::{residual_inf, solve, Matrix};
use tcw_numerics::special::{binomial_pmf, poisson_pmf};
use tcw_sim::rng::Rng;

const CASES: u64 = 150;

/// A small random strictly sub-stochastic pmf vector.
fn pmf(rng: &mut Rng, max_len: u64) -> Vec<f64> {
    let n = 1 + rng.below(max_len - 1) as usize;
    let mut v: Vec<f64> = (0..n).map(|_| rng.f64()).collect();
    let total: f64 = v.iter().sum();
    if total > 0.0 {
        for x in &mut v {
            *x /= total * 1.001; // keep strictly sub-stochastic
        }
    }
    v
}

/// Convolution preserves total mass (product of the factor masses) when
/// not truncated.
#[test]
fn convolution_mass_is_product() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x40E0_0001 ^ case);
        let da = GridDist::from_pmf(1.0, pmf(&mut rng, 20));
        let db = GridDist::from_pmf(1.0, pmf(&mut rng, 20));
        let c = da.convolve(&db, usize::MAX);
        let expect = da.total_mass() * db.total_mass();
        assert!((c.total_mass() - expect).abs() < 1e-10, "case {case}");
    }
}

/// Convolution means add (scaled by the factor masses).
#[test]
fn convolution_mean_adds() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x40E0_0002 ^ case);
        let da = GridDist::from_pmf(1.0, pmf(&mut rng, 20)).normalized();
        let db = GridDist::from_pmf(1.0, pmf(&mut rng, 20)).normalized();
        let c = da.convolve(&db, usize::MAX);
        assert!(
            (c.mean() - (da.mean() + db.mean())).abs() < 1e-8,
            "case {case}"
        );
    }
}

/// Convolution is commutative.
#[test]
fn convolution_commutes() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x40E0_0003 ^ case);
        let da = GridDist::from_pmf(1.0, pmf(&mut rng, 15));
        let db = GridDist::from_pmf(1.0, pmf(&mut rng, 15));
        let ab = da.convolve(&db, usize::MAX);
        let ba = db.convolve(&da, usize::MAX);
        assert_eq!(ab.len(), ba.len());
        for (x, y) in ab.pmf().iter().zip(ba.pmf()) {
            assert!((x - y).abs() < 1e-12, "case {case}");
        }
    }
}

/// CDF of any GridDist is monotone, 0 below support, total mass at top.
#[test]
fn cdf_monotone_bounded() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x40E0_0004 ^ case);
        let d = GridDist::from_pmf(1.0, pmf(&mut rng, 30));
        let mut prev = 0.0;
        for j in 0..d.len() + 3 {
            let c = d.cdf(j as f64);
            assert!(c + 1e-12 >= prev, "case {case}");
            prev = c;
        }
        assert!((prev - d.total_mass()).abs() < 1e-12, "case {case}");
        assert_eq!(d.cdf(-1.0), 0.0);
    }
}

/// Residual distribution: total mass equals one for a proper
/// distribution, no atom at zero (right-edge convention), and the
/// residual mean follows the lattice excess formula
/// E[R] = E[X^2]/(2E[X]) + h/2.
#[test]
fn residual_mass_and_mean() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x40E0_0005 ^ case);
        let d = GridDist::from_pmf(1.0, pmf(&mut rng, 25)).normalized();
        if d.mean() <= 1e-9 {
            continue;
        }
        let r = d.residual();
        assert!((r.total_mass() - 1.0).abs() < 1e-9, "case {case}");
        assert_eq!(r.pmf()[0], 0.0);
        let expect = d.second_moment() / (2.0 * d.mean()) + 0.5;
        assert!((r.mean() - expect).abs() < 1e-8, "case {case}");
    }
}

/// The renewal series solves its defining equation
/// u = delta_0 + rho * beta ⊛ u on the computed range.
#[test]
fn renewal_series_satisfies_equation() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x40E0_0006 ^ case);
        let beta = GridDist::from_pmf(1.0, pmf(&mut rng, 12)).normalized();
        let rho = 0.05 + rng.f64() * 0.9;
        if rho * beta.pmf()[0] >= 0.99 {
            continue;
        }
        let n = 50;
        let s = renewal_series(&beta, rho, n);
        let u = s.values();
        for k in 0..n {
            let mut conv = 0.0;
            for j in 0..=k.min(beta.len() - 1) {
                conv += beta.pmf()[j] * u[k - j];
            }
            let expect = if k == 0 { 1.0 } else { 0.0 } + rho * conv;
            assert!(
                (u[k] - expect).abs() < 1e-9,
                "case {case}, k={k}: {} vs {}",
                u[k],
                expect
            );
        }
    }
}

/// Gaussian elimination solutions have tiny residuals on diagonally
/// dominant systems.
#[test]
fn solver_residual_small() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x40E0_0007 ^ case);
        let n = 2 + rng.below(18) as usize;
        let next = |rng: &mut Rng| rng.f64() * 2.0 - 1.0;
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = next(&mut rng);
            }
            a[(i, i)] += n as f64; // ensure well-conditioned
        }
        let b: Vec<f64> = (0..n).map(|_| next(&mut rng)).collect();
        let x = solve(&a, &b).unwrap();
        assert!(residual_inf(&a, &x, &b) < 1e-8, "case {case}");
    }
}

/// Poisson pmf values are probabilities.
#[test]
fn poisson_pmf_is_probability() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x40E0_0008 ^ case);
        let k = rng.below(200);
        let mu = rng.f64() * 50.0;
        let p = poisson_pmf(k, mu);
        assert!((0.0..=1.0).contains(&p), "case {case}: p={p}");
    }
}

/// A binomial split of a binomial is binomial:
/// thinning Bin(n, 1/2) by 1/2 gives Bin(n, 1/4).
#[test]
fn binomial_thinning() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x40E0_0009 ^ case);
        let n = 1 + rng.below(29);
        let k = rng.below(n + 1);
        let direct = binomial_pmf(k, n, 0.25);
        let mut via_split = 0.0;
        for m in k..=n {
            via_split += binomial_pmf(m, n, 0.5) * binomial_pmf(k, m, 0.5);
        }
        assert!((direct - via_split).abs() < 1e-10, "case {case}");
    }
}
