//! Exact analysis of the windowing process under Poisson arrivals.
//!
//! One *scheduling round* draws a window containing `N ~ Poisson(mu)`
//! arrivals (`mu = lambda * w`) and resolves it by binary splitting; empty
//! rounds (one idle slot) are redrawn. Under the paper's Assumption 1
//! (windows over statistically fresh pseudo time) successive rounds are
//! i.i.d., which makes both the *expected* number of overhead slots per
//! scheduled message and its full *distribution* computable by recursion —
//! sharper than the two-point geometric fit of [Kurose 83] that the paper
//! reuses (`tcw-queueing` implements that fit too, for comparison).
//!
//! ## Recursions
//!
//! Let `R(k)` be the expected overhead slots following a collision among
//! `k >= 2` messages (uniformly positioned), until the first success. The
//! split sends each message to the older half independently with
//! probability 1/2 (`k1 ~ Bin(k, 1/2)`):
//!
//! * `k1 = 1`: the next probe is the success — 0 further overhead;
//! * `k1 = 0`: one idle slot, and the younger half (all `k`, known `>= 2`)
//!   is split again — state unchanged;
//! * `k1 = k`: one collision slot, state unchanged;
//! * `2 <= k1 < k`: one collision slot, recurse on `k1`.
//!
//! The distributional analogue `D_k(s)` (probability of exactly `s`
//! further overhead slots) satisfies the same recursion with the
//! expectation replaced by a forward recursion in `s`. The per-message
//! overhead distribution then compounds rounds: an empty round costs one
//! slot and redraws; a singleton round costs nothing; a collided round
//! costs one slot plus `D_n`.
//!
//! The optimal window (policy element (2) heuristic, §4.1) minimizes the
//! expected scheduling time; by scale invariance the objective depends
//! only on `mu`, so the optimum is a universal constant `mu* ≈ 1.26`
//! divided by the arrival rate.

use tcw_numerics::optimize::golden_section;
use tcw_numerics::special::{binomial_pmf, poisson_pmf};

/// Truncation point for the Poisson window occupancy: smallest `k` with
/// negligible tail beyond it.
fn poisson_kmax(mu: f64, tol: f64) -> usize {
    let mut k = 4usize.max((mu + 6.0 * mu.sqrt()) as usize);
    let tail_bound = |k: usize| {
        // crude but safe: sum pmf until below tol
        let mut acc = 0.0;
        for j in 0..=k {
            acc += poisson_pmf(j as u64, mu);
        }
        1.0 - acc
    };
    while tail_bound(k) > tol && k < 400 {
        k += 8;
    }
    k
}

/// Expected overhead slots `R(k)` after a collision among `k` messages,
/// for `k = 0..=kmax` (entries 0 and 1 are zero by convention).
pub fn collision_resolution_expectations(kmax: usize) -> Vec<f64> {
    collision_resolution_expectations_biased(kmax, 0.5)
}

/// [`collision_resolution_expectations`] generalized to a biased split:
/// each split gives the *older* part a fraction `frac` of the window
/// (the §5 extension "not necessarily splitting a window in half"), so a
/// uniformly-positioned message lands in it with probability `frac`.
///
/// # Panics
/// Panics if `frac` is outside `(0, 1)`.
pub fn collision_resolution_expectations_biased(kmax: usize, frac: f64) -> Vec<f64> {
    assert!(frac > 0.0 && frac < 1.0);
    let mut r = vec![0.0; kmax + 1];
    for k in 2..=kmax {
        let k64 = k as u64;
        let p_stay = binomial_pmf(0, k64, frac) + binomial_pmf(k64, k64, frac);
        let mut constant = p_stay;
        for (j, rj) in r.iter().enumerate().take(k).skip(2) {
            let pj = binomial_pmf(j as u64, k64, frac);
            constant += pj * (1.0 + rj);
        }
        r[k] = constant / (1.0 - p_stay);
    }
    r
}

/// Expected overhead (idle + collision) slots per scheduled message when
/// each round's window holds `N ~ Poisson(mu)` arrivals.
///
/// # Panics
/// Panics if `mu <= 0`.
pub fn expected_overhead_slots(mu: f64) -> f64 {
    assert!(mu > 0.0, "window occupancy must be positive");
    let kmax = poisson_kmax(mu, 1e-12);
    let r = collision_resolution_expectations(kmax);
    let q0 = poisson_pmf(0, mu);
    let mut collided = 0.0;
    for (n, rn) in r.iter().enumerate().skip(2) {
        collided += poisson_pmf(n as u64, mu) * (1.0 + rn);
    }
    (q0 + collided) / (1.0 - q0)
}

/// Distribution of overhead slots per scheduled message (pmf over
/// `s = 0, 1, 2, ...`), truncated once the captured mass exceeds
/// `1 - tail_tol`.
///
/// # Panics
/// Panics if `mu <= 0` or `tail_tol <= 0`.
pub fn overhead_slot_pmf(mu: f64, tail_tol: f64) -> Vec<f64> {
    assert!(mu > 0.0);
    assert!(tail_tol > 0.0);
    let kmax = poisson_kmax(mu, tail_tol * 1e-3);
    let pk: Vec<f64> = (0..=kmax).map(|n| poisson_pmf(n as u64, mu)).collect();
    let q0 = pk[0];
    let q1 = pk[1];

    // d[k][s]: probability of exactly s further overhead slots after a
    // collision among k (k >= 2). Computed jointly, forward in s.
    let smax_hard = 4096;
    let mut d: Vec<Vec<f64>> = vec![Vec::new(); kmax + 1];
    for (k, dk) in d.iter_mut().enumerate().skip(2) {
        // s = 0: immediate isolation (k1 = 1).
        dk.push(binomial_pmf(1, k as u64, 0.5));
    }
    let mut s_pmf = vec![q1]; // S(0) = q1 (singleton window, no overhead)
    let mut captured = q1;
    let mut s = 1usize;
    while captured < 1.0 - tail_tol && s < smax_hard {
        // Extend every d[k] to index s.
        for k in 2..=kmax {
            let k64 = k as u64;
            let p_stay = binomial_pmf(0, k64, 0.5) + binomial_pmf(k64, k64, 0.5);
            let mut val = p_stay * d[k][s - 1];
            for (j, dj) in d.iter().enumerate().take(k).skip(2) {
                val += binomial_pmf(j as u64, k64, 0.5) * dj[s - 1];
            }
            d[k].push(val);
        }
        // S(s) = q0 * S(s-1) + sum_{n>=2} P(n) * D_n(s-1)
        let mut val = q0 * s_pmf[s - 1];
        for n in 2..=kmax {
            val += pk[n] * d[n][s - 1];
        }
        s_pmf.push(val);
        captured += val;
        s += 1;
    }
    s_pmf
}

/// [`expected_overhead_slots`] under a biased split (older part gets
/// fraction `frac` of every split window).
///
/// # Panics
/// Panics if `mu <= 0` or `frac` is outside `(0, 1)`.
pub fn expected_overhead_slots_biased(mu: f64, frac: f64) -> f64 {
    assert!(mu > 0.0);
    let kmax = poisson_kmax(mu, 1e-12);
    let r = collision_resolution_expectations_biased(kmax, frac);
    let q0 = poisson_pmf(0, mu);
    let mut collided = 0.0;
    for (n, rn) in r.iter().enumerate().skip(2) {
        collided += poisson_pmf(n as u64, mu) * (1.0 + rn);
    }
    (q0 + collided) / (1.0 - q0)
}

/// The universal optimal window occupancy `mu* = lambda * w*` minimizing
/// the expected scheduling overhead per message.
pub fn optimal_mu() -> f64 {
    let (mu, _) = golden_section(expected_overhead_slots, 0.05, 6.0, 1e-6);
    mu
}

/// Jointly optimizes the window occupancy and the split fraction:
/// returns `(mu*, frac*, E[overhead]*)` — quantifying the paper's §5
/// conjecture that non-halving splits "may result in further performance
/// improvements" (for the scheduling-overhead objective).
pub fn optimal_mu_and_fraction() -> (f64, f64, f64) {
    let mut best = (0.0, 0.5, f64::INFINITY);
    // The objective is smooth in frac; a golden section nested inside a
    // frac grid is accurate to the reporting precision.
    for i in 1..40 {
        let frac = i as f64 / 40.0;
        let (mu, e) = golden_section(|m| expected_overhead_slots_biased(m, frac), 0.05, 6.0, 1e-6);
        if e < best.2 {
            best = (mu, frac, e);
        }
    }
    best
}

/// The heuristic-optimal window length (in units of `tau`) for aggregate
/// arrival rate `lambda` (messages per `tau`): `w* = mu* / lambda`.
///
/// # Panics
/// Panics if `lambda <= 0`.
pub fn optimal_window(lambda_per_tau: f64) -> f64 {
    assert!(lambda_per_tau > 0.0);
    optimal_mu() / lambda_per_tau
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pmf_mean(pmf: &[f64]) -> f64 {
        pmf.iter().enumerate().map(|(s, &p)| s as f64 * p).sum()
    }

    #[test]
    fn r2_is_one() {
        // Two messages: each split isolates with prob 1/2 (k1 = 1),
        // otherwise (k1 ∈ {0, 2}, prob 1/2) costs a slot and repeats:
        // R(2) = (1/2)(1 + R(2)) => R(2) = 1.
        let r = collision_resolution_expectations(4);
        assert!((r[2] - 1.0).abs() < 1e-12, "R(2) = {}", r[2]);
    }

    #[test]
    fn r3_is_four_thirds() {
        // R(3)(1 - 1/4) = 1/4 + (3/8)(1 + R(2)) = 1/4 + 3/4 = 1
        // => R(3) = 4/3.
        let r = collision_resolution_expectations(5);
        assert!((r[3] - 4.0 / 3.0).abs() < 1e-12, "R(3) = {}", r[3]);
    }

    #[test]
    fn r_is_increasing_in_k() {
        let r = collision_resolution_expectations(60);
        for k in 2..60 {
            assert!(r[k + 1] > r[k], "R not increasing at k = {k}");
        }
    }

    #[test]
    fn r_grows_logarithmically() {
        // Isolating the first message out of k takes O(log k) splits.
        let r = collision_resolution_expectations(256);
        assert!(r[256] < 20.0, "R(256) = {} unexpectedly large", r[256]);
        assert!(r[256] > r[16]);
    }

    #[test]
    fn expected_overhead_blows_up_at_small_mu() {
        // Nearly-empty windows: ~1/mu idle slots per message.
        let e = expected_overhead_slots(0.01);
        assert!(e > 50.0, "E = {e}");
    }

    #[test]
    fn expected_overhead_moderate_at_mu_one() {
        let e = expected_overhead_slots(1.0);
        assert!((1.0..2.2).contains(&e), "E(1.0) = {e}");
    }

    #[test]
    fn pmf_sums_to_one_and_matches_expectation() {
        for &mu in &[0.3, 0.8, 1.26, 2.5] {
            let pmf = overhead_slot_pmf(mu, 1e-10);
            let total: f64 = pmf.iter().sum();
            assert!((total - 1.0).abs() < 1e-8, "mu={mu}: mass {total}");
            let mean = pmf_mean(&pmf);
            let expect = expected_overhead_slots(mu);
            assert!(
                (mean - expect).abs() < 1e-6,
                "mu={mu}: pmf mean {mean} vs recursion {expect}"
            );
        }
    }

    #[test]
    fn optimal_mu_is_near_1_2() {
        let mu = optimal_mu();
        assert!(
            (1.0..1.6).contains(&mu),
            "optimal mu = {mu} outside plausible band"
        );
        // It is a genuine interior minimum.
        let e_opt = expected_overhead_slots(mu);
        assert!(expected_overhead_slots(mu * 0.5) > e_opt);
        assert!(expected_overhead_slots(mu * 2.0) > e_opt);
    }

    #[test]
    fn biased_split_reduces_to_halving_at_half() {
        for &mu in &[0.5, 1.26, 2.0] {
            let a = expected_overhead_slots(mu);
            let b = expected_overhead_slots_biased(mu, 0.5);
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn biased_resolution_r2_formula() {
        // Two messages, older part fraction f: isolation on the next probe
        // happens when exactly one lands older (prob 2f(1-f)); otherwise
        // one slot is spent and the state repeats:
        // R(2) = (1 - 2f(1-f)) (1 + R(2)) / ... => R(2) = (1-q)/q with
        // q = 2f(1-f).
        for &f in &[0.2, 0.35, 0.5, 0.7] {
            let r = collision_resolution_expectations_biased(4, f);
            let q = 2.0 * f * (1.0 - f);
            assert!(
                (r[2] - (1.0 - q) / q).abs() < 1e-10,
                "f={f}: R(2) = {}",
                r[2]
            );
        }
    }

    #[test]
    fn joint_optimum_is_no_worse_than_halving() {
        let (_, frac, e) = optimal_mu_and_fraction();
        let e_half = expected_overhead_slots(optimal_mu());
        assert!(e <= e_half + 1e-9, "joint {e} vs halving {e_half}");
        assert!(frac > 0.0 && frac < 1.0);
    }

    #[test]
    fn optimal_window_scales_inversely_with_rate() {
        let w1 = optimal_window(0.01);
        let w2 = optimal_window(0.02);
        assert!((w1 / w2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn pmf_zero_slot_probability_is_singleton_rate() {
        let mu = 1.0f64;
        let pmf = overhead_slot_pmf(mu, 1e-10);
        // S(0) = P(N = 1) = mu * e^{-mu}
        assert!((pmf[0] - mu * (-mu).exp()).abs() < 1e-12);
    }
}
