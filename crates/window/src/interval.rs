//! Half-open time intervals `[lo, hi)` on the tick lattice.

use std::fmt;
use tcw_sim::time::{Dur, Time};

/// A half-open interval of simulation time, `lo <= t < hi`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: Time,
    /// Exclusive upper bound.
    pub hi: Time,
}

impl Interval {
    /// Creates `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo > hi` (empty intervals with `lo == hi` are allowed).
    pub fn new(lo: Time, hi: Time) -> Self {
        assert!(lo <= hi, "inverted interval [{lo:?}, {hi:?})");
        Interval { lo, hi }
    }

    /// Builds from raw tick bounds.
    pub fn from_ticks(lo: u64, hi: u64) -> Self {
        Self::new(Time::from_ticks(lo), Time::from_ticks(hi))
    }

    /// Interval width.
    pub fn width(&self) -> Dur {
        self.hi - self.lo
    }

    /// Whether the interval contains no time.
    pub fn is_empty(&self) -> bool {
        self.lo == self.hi
    }

    /// Whether instant `t` lies inside.
    pub fn contains(&self, t: Time) -> bool {
        self.lo <= t && t < self.hi
    }

    /// Whether two intervals share any time.
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.lo < other.hi && other.lo < self.hi
    }

    /// Intersection, or `None` when disjoint (an empty intersection at a
    /// shared boundary counts as disjoint).
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo < hi {
            Some(Interval { lo, hi })
        } else {
            None
        }
    }

    /// Splits at the midpoint into (older, younger) halves.
    ///
    /// The midpoint is `lo + floor(width/2)`, so for odd widths the older
    /// half is the shorter one; both halves are non-empty whenever
    /// `width >= 2` ticks.
    ///
    /// Returns `None` if the interval is narrower than 2 ticks (the lattice
    /// cannot split further; the engine then falls back to per-message
    /// coin-flip resolution, which models sub-tick splitting of the
    /// continuous-time protocol).
    pub fn split(&self) -> Option<(Interval, Interval)> {
        if self.width().ticks() < 2 {
            return None;
        }
        let mid = self.lo + Dur::from_ticks(self.width().ticks() / 2);
        Some((
            Interval {
                lo: self.lo,
                hi: mid,
            },
            Interval {
                lo: mid,
                hi: self.hi,
            },
        ))
    }
}

impl fmt::Debug for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.lo.ticks(), self.hi.ticks())
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.lo.ticks(), self.hi.ticks())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_and_contains() {
        let i = Interval::from_ticks(10, 20);
        assert_eq!(i.width(), Dur::from_ticks(10));
        assert!(i.contains(Time::from_ticks(10)));
        assert!(i.contains(Time::from_ticks(19)));
        assert!(!i.contains(Time::from_ticks(20)));
        assert!(!i.contains(Time::from_ticks(9)));
    }

    #[test]
    fn empty_interval() {
        let i = Interval::from_ticks(5, 5);
        assert!(i.is_empty());
        assert!(!i.contains(Time::from_ticks(5)));
    }

    #[test]
    fn overlap_and_intersection() {
        let a = Interval::from_ticks(0, 10);
        let b = Interval::from_ticks(5, 15);
        let c = Interval::from_ticks(10, 20);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c), "touching intervals do not overlap");
        assert_eq!(a.intersect(&b), Some(Interval::from_ticks(5, 10)));
        assert_eq!(a.intersect(&c), None);
    }

    #[test]
    fn split_halves_cover_whole() {
        let i = Interval::from_ticks(4, 13); // width 9
        let (older, younger) = i.split().unwrap();
        assert_eq!(older, Interval::from_ticks(4, 8));
        assert_eq!(younger, Interval::from_ticks(8, 13));
        assert_eq!(older.width() + younger.width(), i.width());
        assert!(!older.overlaps(&younger));
    }

    #[test]
    fn split_even_width_is_exact_halves() {
        let (a, b) = Interval::from_ticks(0, 8).split().unwrap();
        assert_eq!(a.width(), b.width());
    }

    #[test]
    fn split_below_two_ticks_fails() {
        assert!(Interval::from_ticks(3, 4).split().is_none());
        assert!(Interval::from_ticks(3, 3).split().is_none());
        assert!(Interval::from_ticks(3, 5).split().is_some());
    }

    #[test]
    #[should_panic]
    fn inverted_interval_panics() {
        Interval::from_ticks(5, 3);
    }
}
