//! # tcw-window — the controlled time-window multiple-access protocol
//!
//! This crate is the primary contribution of the reproduced paper:
//! Kurose, Schwartz & Yemini, *"Controlling Window Protocols for
//! Time-Constrained Communication in a Multiple Access Environment"* (1983).
//!
//! ## The protocol (paper §2)
//!
//! All stations monitor a shared broadcast channel and execute the same
//! deterministic procedure, so they stay in lock-step without any central
//! coordinator:
//!
//! 1. pick a *window* of past time (every station picks the same one);
//! 2. stations holding a message that **arrived inside the window**
//!    transmit;
//! 3. after one propagation delay `tau`, everyone knows the outcome:
//!    *idle* (no arrivals in the window), *success* (exactly one), or
//!    *collision* (two or more);
//! 4. a collision is resolved by splitting the window in half and probing
//!    one half — recursively, until a single message is isolated;
//! 5. when a half is found empty while its sibling is known to contain two
//!    or more arrivals, the sibling is split immediately without a probe.
//!
//! ## The control policy (paper §§2–3)
//!
//! Operation is controlled at each *decision point* (whenever a new initial
//! window must be chosen) by four policy elements:
//! **(1)** the window's position, **(2)** its length, **(3)** the
//! splitting rule, and **(4)** discarding messages older than the deadline
//! `K`. Theorem 1 shows the loss-optimal choice of (1) and (3): place the
//! window at the *oldest* time not exceeding `K` in the past, and always
//! probe the *older* half first — global FCFS, i.e. minimum-slack-time
//! scheduling. Element (2) has no closed form; [`analysis`] implements the
//! paper's heuristic (minimize mean scheduling time).
//!
//! ## Crate layout
//!
//! * [`interval`] / [`timeline`] — half-open tick intervals and the
//!   station's view of the time axis (paper fig. 2): which past intervals
//!   may still hold untransmitted arrivals;
//! * [`pseudo`] — the pseudo-time compression of §3.1 (paper fig. 3);
//! * [`policy`] — the four-element control policy with `controlled`,
//!   `fcfs`, `lcfs` and `random` presets;
//! * [`engine`] — the protocol state machine driving arrivals from
//!   `tcw-mac` over the shared channel;
//! * [`metrics`] — per-message loss/delay accounting (sender discards vs.
//!   receiver losses);
//! * [`analysis`] — exact splitting-process analysis under Poisson traffic:
//!   scheduling-time distribution and the optimal window length;
//! * [`trace`] — observer hooks and a human-readable trace recorder
//!   (regenerates the paper's figs. 1 and 4);
//! * [`mirror`] — a *distributed consistency checker*: an independent
//!   station model that sees only channel outcomes and must reproduce every
//!   window decision, proving the protocol needs no central state;
//! * [`controller`] — online control of element (2): static oracle, AIMD
//!   feedback control, and a rate estimator re-solving §4.1's recurrence
//!   at runtime, for loads the offline tuning never anticipated;
//! * `invariant` (feature `monitor`) — a runtime invariant monitor: an
//!   observer checking message conservation, FCFS order, deadline/age
//!   bounds, clock consistency and mirror consensus on every reported
//!   event, powering the `chaos` stress harness.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod controller;
pub mod engine;
pub mod interval;
#[cfg(feature = "monitor")]
pub mod invariant;
pub mod metrics;
pub mod mirror;
pub mod multiclass;
pub mod policy;
pub mod pseudo;
pub mod timeline;
pub mod trace;

pub use controller::{
    AimdConfig, AimdController, ControllerConfig, EstimatorConfig, EstimatorController,
    SlotContext, StaticController, WindowController,
};
pub use engine::{Engine, EngineConfig, ResyncPolicy};
pub use interval::Interval;
#[cfg(feature = "monitor")]
pub use invariant::{InvariantClass, InvariantMonitor, MonitorConfig, Violation};
pub use metrics::Metrics;
pub use mirror::{DivergenceDetector, StationMirror};
pub use policy::{ControlPolicy, SplitRule, WindowLength, WindowPosition};
pub use timeline::Timeline;
